//! Reactor front-end soak (the CI "reactor smoke"): the server must
//! hold over a thousand simultaneously open **idle** connections —
//! an order of magnitude past the old thread-per-connection cap of 64 —
//! while 8 active connections saturate it with queries, and the idle
//! sockets must stay *live* (a [`MatchClient::ping`] round trip
//! answers) without ever having held a frame-pool worker.
//!
//! Checked properties:
//! * ≥ 1024 idle connections are admitted concurrently (the old
//!   front-end bound one `WorkerPool` slot per socket, so this many
//!   would have been typed-rejected at `max_open_sockets = 64`);
//! * sampled idle connections answer `ping` *after* the query storm,
//!   proving admission is per-frame, not per-connection: a silent
//!   socket costs an fd, not a worker;
//! * query throughput on the 8 active connections does not collapse
//!   under the idle load (the `connection_scaling` bench tracks the
//!   precise ratio in `BENCH_7.json`; this test enforces a generous
//!   floor so scheduler noise cannot flake CI);
//! * the active connections see correct answers throughout, and
//!   shutdown force-closes every tracked socket (drain-then-join).

use std::net::SocketAddr;
use std::time::Instant;

use cm_core::{wait_all, Backend, BitString, MatcherConfig, WorkerPool};
use cm_server::{MatchClient, MatchServer, ServerConfig, TenantAccess, TenantRegistry};

const KEY: [u8; 32] = [0x1D; 32];
const IDLE_CONNECTIONS: usize = 1024;
const ACTIVE_CONNECTIONS: usize = 8;
const ROUNDS_PER_CLIENT: usize = 25;

fn haystack() -> BitString {
    BitString::from_ascii(&"the reactor serves frames not connections ".repeat(40))
}

/// Saturates the server with `ACTIVE_CONNECTIONS` concurrent clients ×
/// `ROUNDS_PER_CLIENT` queries each and returns queries per second.
fn saturate(addr: SocketAddr, clients: &WorkerPool, expected: &[usize]) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = (0..ACTIVE_CONNECTIONS)
        .map(|_| {
            let expected = expected.to_vec();
            clients.submit(move || {
                let mut client = MatchClient::connect(addr).unwrap();
                let access = TenantAccess::new("soak", &KEY);
                let needle = BitString::from_ascii("frames");
                for _ in 0..ROUNDS_PER_CLIENT {
                    let reply = client.search_bits(&access, &needle).unwrap();
                    assert_eq!(reply.indices, expected);
                }
            })
        })
        .collect();
    wait_all(handles).unwrap();
    (ACTIVE_CONNECTIONS * ROUNDS_PER_CLIENT) as f64 / start.elapsed().as_secs_f64()
}

#[test]
fn a_thousand_idle_connections_stay_live_while_queries_saturate() {
    // GitHub runners default the soft fd limit to 1024; the soak needs
    // one fd per idle client plus server-side accepts and headroom.
    let limit = cm_reactor::sys::raise_nofile_limit(4 * IDLE_CONNECTIONS as u64)
        .expect("raising RLIMIT_NOFILE");
    assert!(
        limit >= 2 * IDLE_CONNECTIONS as u64 + 64,
        "fd limit {limit} cannot hold {IDLE_CONNECTIONS} idle connections on both ends"
    );

    let data = haystack();
    let needle = BitString::from_ascii("frames");
    let expected = data.find_all(&needle);
    assert!(!expected.is_empty(), "the haystack must contain the needle");

    let mut registry = TenantRegistry::new();
    registry
        .register(
            "soak",
            MatcherConfig::new(Backend::Plain).build().unwrap(),
            &KEY,
            &data,
        )
        .unwrap();
    let server = MatchServer::with_config(
        registry,
        ServerConfig {
            max_open_sockets: IDLE_CONNECTIONS + 128,
            max_inflight_frames: 16,
            memory_budget: None,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn("127.0.0.1:0")
    .unwrap();
    let addr = server.addr();
    let clients = WorkerPool::new(ACTIVE_CONNECTIONS).unwrap();

    // Baseline: saturated throughput with no idle load.
    let qps_alone = saturate(addr, &clients, &expected);

    // Open the idle herd. Every one of these would have been rejected
    // typed at the old `max_open_sockets = 64` front-end once the cap
    // filled; here they are all admitted and each costs one fd.
    let mut idle: Vec<MatchClient> = (0..IDLE_CONNECTIONS)
        .map(|i| {
            MatchClient::connect(addr)
                .unwrap_or_else(|e| panic!("idle connection {i} refused: {e}"))
        })
        .collect();

    // Saturate again with the herd held open.
    let qps_loaded = saturate(addr, &clients, &expected);

    // The herd is still live: sampled idle connections (first, last,
    // and every 64th) answer a ping round trip after the query storm —
    // without a single one of them ever occupying a frame-pool slot
    // while idle.
    let sample: Vec<usize> = std::iter::once(0)
        .chain((1..IDLE_CONNECTIONS).filter(|i| i % 64 == 0))
        .chain(std::iter::once(IDLE_CONNECTIONS - 1))
        .collect();
    for &i in &sample {
        idle[i]
            .ping()
            .unwrap_or_else(|e| panic!("idle connection {i} went dead: {e}"));
    }

    // Idle sockets are readiness-driven, so holding 1024 of them must
    // not collapse active throughput. The precise within-10% tracking
    // lives in the committed `BENCH_7.json` (see the
    // `connection_scaling` bench); the in-test floor is deliberately
    // loose so a noisy shared runner cannot flake CI.
    assert!(
        qps_loaded >= 0.5 * qps_alone,
        "throughput collapsed under idle load: {qps_alone:.0} q/s alone \
         vs {qps_loaded:.0} q/s with {IDLE_CONNECTIONS} idle connections"
    );
    println!(
        "saturated {ACTIVE_CONNECTIONS} active: {qps_alone:.0} q/s alone, \
         {qps_loaded:.0} q/s with {IDLE_CONNECTIONS} idle ({:.1}%)",
        100.0 * qps_loaded / qps_alone
    );

    // Shutdown force-closes every tracked socket: the idle herd
    // observes EOF instead of hanging.
    drop(idle);
    server.shutdown();
}

#[test]
fn inflight_cap_rejects_typed_while_sockets_stay_cheap() {
    // A server with room for many sockets but exactly one in-flight
    // frame: connections are cheap, *work* is the scarce resource.
    let data = haystack();
    let mut registry = TenantRegistry::new();
    registry
        .register(
            "soak",
            MatcherConfig::new(Backend::Plain).build().unwrap(),
            &KEY,
            &data,
        )
        .unwrap();
    let server = MatchServer::with_config(
        registry,
        ServerConfig {
            max_open_sockets: 256,
            max_inflight_frames: 1,
            memory_budget: None,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn("127.0.0.1:0")
    .unwrap();
    let addr = server.addr();

    // Dozens of open sockets — far past the frame cap — all admitted.
    let mut many: Vec<MatchClient> = (0..128)
        .map(|_| MatchClient::connect(addr).unwrap())
        .collect();
    // Strict request-reply traffic never exceeds one frame in flight
    // per moment from a single client, so each ping succeeds even at
    // `max_inflight_frames = 1`.
    for client in many.iter_mut().take(16) {
        client.ping().unwrap();
    }
    drop(many);
    server.shutdown();
}
