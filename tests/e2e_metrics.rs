//! End-to-end telemetry test (the CI "telemetry smoke"): drives a live
//! server through a known workload — N match queries, exactly one
//! socket-cap `ServerBusy` rejection, exactly one budget demotion — and
//! asserts the [`Request::Metrics`] snapshot counts match the workload
//! **exactly**, not approximately. A metrics layer that drops or
//! double-counts events under concurrency is worse than none.
//!
//! Checked properties:
//! * `cm_server_requests_total{tag="match"}` equals the number of match
//!   queries the client sent and got answers for;
//! * `cm_server_busy_rejections_total{cap="sockets"}` is exactly 1 (one
//!   connection past `max_open_sockets = 2`), `cap="frames"` exactly 0;
//! * `cm_registry_demotions_total` is exactly 1 (the second upload
//!   pushed the first tenant out of a budget sized for ~1.5 databases),
//!   and the hot-bytes gauge equals the surviving database's bytes;
//! * `cm_server_upload_bytes_total` equals the byte-exact sum of both
//!   uploaded databases;
//! * per-frame tracing separates queue wait from serve time: for the
//!   match tag, `queue_wait.sum + serve_time.sum <= latency.sum`, and
//!   the server-side latency sum is bounded by the client-side
//!   end-to-end sum (the server interval nests inside the client RTT);
//! * the snapshot travels the wire: everything above is read via
//!   [`MatchClient::metrics`], i.e. through the codec, not in-process.
//!
//! [`Request::Metrics`]: cm_server::Request

use std::time::Instant;

use cm_core::{Backend, BitString, MatchError, MatcherConfig};
use cm_server::{MatchClient, MatchServer, ServerConfig, TenantAccess, TenantRegistry, TenantSpec};
use cm_telemetry::metric_names;

const KEY_ONE: [u8; 32] = [0xE1; 32];
const KEY_TWO: [u8; 32] = [0xE2; 32];
const MATCH_QUERIES: usize = 7;

/// Client-side build of an encrypted database ready to upload.
fn export(seed: u64, text: &str) -> (MatcherConfig, Vec<u8>, BitString) {
    let data = BitString::from_ascii(text);
    let config = MatcherConfig::new(Backend::Ciphermatch)
        .insecure_test()
        .seed(seed);
    let mut owner = config.build().unwrap();
    owner.load_database(&data).unwrap();
    let encoded = owner.export_database().unwrap();
    (config, encoded, data)
}

#[test]
fn wire_snapshot_counts_match_the_workload_exactly() {
    let (config_one, encoded_one, _) = export(501, "tenant one is uploaded first and demoted");
    let (config_two, encoded_two, data_two) =
        export(502, "tenant two arrives second and stays hot in memory");
    let (b1, b2) = (encoded_one.len() as u64, encoded_two.len() as u64);

    // Each database fits alone, both together do not: the second upload
    // demotes the first (LRU), exactly once.
    let budget = b1 + b2 - 1;
    let server = MatchServer::with_config(
        TenantRegistry::new(),
        ServerConfig {
            max_open_sockets: 2,
            memory_budget: Some(budget),
            // Exercise the slow-query path on every frame: the stderr
            // line must never corrupt replies or panic a pump worker.
            slow_query_micros: Some(0),
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn("127.0.0.1:0")
    .unwrap();
    let addr = server.addr();

    // --- The workload, single-client serial for exact counts ----------
    let mut client = MatchClient::connect(addr).unwrap();
    let one = TenantAccess::new("tenant-one", &KEY_ONE);
    let two = TenantAccess::new("tenant-two", &KEY_TWO);

    let (bytes, demoted) = client
        .upload_database(
            &one,
            &TenantSpec::from_config(&config_one, 1),
            &encoded_one,
            1,
        )
        .unwrap();
    assert_eq!(bytes, b1);
    assert!(demoted.is_empty(), "the first upload fits the budget");
    let (bytes, demoted) = client
        .upload_database(
            &two,
            &TenantSpec::from_config(&config_two, 1),
            &encoded_two,
            1,
        )
        .unwrap();
    assert_eq!(bytes, b2);
    assert_eq!(
        demoted,
        vec!["tenant-one".to_string()],
        "the second upload demotes exactly the first tenant"
    );

    // N match queries, timed client-side: every server-side trace
    // interval nests inside one of these RTTs.
    let pattern = BitString::from_ascii("second");
    let truth = data_two.find_all(&pattern);
    assert!(!truth.is_empty());
    let mut client_side_us: u64 = 0;
    let mut hom_adds_sent: u64 = 0;
    for _ in 0..MATCH_QUERIES {
        let start = Instant::now();
        let reply = client.search_bits(&two, &pattern).unwrap();
        client_side_us += start.elapsed().as_micros() as u64;
        assert_eq!(reply.indices, truth);
        assert!(reply.stats.hom_adds > 0, "CM-SW search must run Hom-Adds");
        hom_adds_sent += reply.stats.hom_adds;
    }

    // Exactly one connection past the socket cap: the holder takes slot
    // 2 of 2, the straggler is rejected typed at the front door.
    let mut holder = MatchClient::connect(addr).unwrap();
    holder.ping().unwrap();
    let mut straggler = MatchClient::connect(addr).unwrap();
    assert_eq!(
        straggler.ping().err(),
        Some(MatchError::ServerBusy {
            max_open_sockets: 2
        })
    );
    drop(straggler);
    drop(holder);

    // --- The snapshot, read over the wire ------------------------------
    let snapshot = client.metrics().unwrap();

    let counter = |name, labels: &[(&str, &str)]| {
        snapshot
            .counter(name, labels)
            .unwrap_or_else(|| panic!("{name}{labels:?} missing from the snapshot"))
    };
    assert_eq!(
        counter(metric_names::SERVER_REQUESTS, &[("tag", "match")]),
        MATCH_QUERIES as u64,
        "every answered match query is counted, none twice"
    );
    assert_eq!(
        counter(metric_names::SERVER_BUSY_REJECTIONS, &[("cap", "sockets")]),
        1,
        "exactly the straggler was rejected at the socket cap"
    );
    assert_eq!(
        counter(metric_names::SERVER_BUSY_REJECTIONS, &[("cap", "frames")]),
        0,
        "serial request-reply traffic never hits the frame cap"
    );
    assert_eq!(
        counter(metric_names::REGISTRY_DEMOTIONS, &[]),
        1,
        "exactly one demotion (tenant-one on tenant-two's upload)"
    );
    assert_eq!(counter(metric_names::REGISTRY_REMATERIALIZATIONS, &[]), 0);
    assert_eq!(
        counter(metric_names::SERVER_UPLOAD_BYTES, &[]),
        b1 + b2,
        "upload accounting is byte-exact"
    );
    assert_eq!(
        snapshot.gauge(metric_names::REGISTRY_HOT_BYTES, &[]),
        Some(b2 as i64),
        "after the demotion only tenant-two is charged to the hot tier"
    );
    assert_eq!(
        snapshot.gauge(metric_names::REGISTRY_MEMORY_BUDGET_BYTES, &[]),
        Some(budget as i64)
    );

    // --- Tracing separates queue wait from serve time -------------------
    let histogram = |name| {
        snapshot
            .histogram(name, &[("tag", "match")])
            .unwrap_or_else(|| panic!("{name} missing from the snapshot"))
    };
    let latency = histogram(metric_names::SERVER_REQUEST_LATENCY_US);
    let queue_wait = histogram(metric_names::SERVER_QUEUE_WAIT_US);
    let serve_time = histogram(metric_names::SERVER_SERVE_TIME_US);
    assert_eq!(latency.count, MATCH_QUERIES as u64);
    assert_eq!(queue_wait.count, MATCH_QUERIES as u64);
    assert_eq!(serve_time.count, MATCH_QUERIES as u64);
    assert!(
        queue_wait.sum + serve_time.sum <= latency.sum,
        "queue wait ({}) + serve time ({}) must nest inside end-to-end \
         latency ({}), all in µs",
        queue_wait.sum,
        serve_time.sum,
        latency.sum
    );
    assert!(
        latency.sum <= client_side_us,
        "server-side latency ({} µs) cannot exceed the client-side \
         end-to-end total ({} µs)",
        latency.sum,
        client_side_us
    );

    // --- Hom-Add accounting matches the replies the client saw ----------
    assert_eq!(
        counter(metric_names::SERVER_HOM_ADDS_TOTAL, &[]),
        hom_adds_sent,
        "the Hom-Add total equals the sum of per-reply stats"
    );
    let hom_adds = snapshot
        .histogram(metric_names::SERVER_HOM_ADDS, &[])
        .expect("per-request Hom-Add histogram missing from the snapshot");
    assert_eq!(hom_adds.count, MATCH_QUERIES as u64);
    assert_eq!(
        hom_adds.sum, hom_adds_sent,
        "per-request histogram sum equals the total counter"
    );
    let adds_per_sec = snapshot
        .gauge(metric_names::SERVER_HOM_ADDS_PER_SEC, &[])
        .expect("derived Hom-Add throughput gauge missing from the snapshot");
    assert!(
        adds_per_sec >= 0,
        "the derived adds/sec gauge is never negative"
    );
    // The rate is windowed with a >= 10ms minimum interval, so even the
    // first snapshot is bounded by total-adds / 10ms — never the old
    // total-over-microseconds-of-uptime garbage.
    assert!(
        adds_per_sec as u64 <= hom_adds_sent * 100,
        "adds/sec ({adds_per_sec}) must respect the minimum rate window \
         (total {hom_adds_sent} over >= 10ms)"
    );

    // The per-tenant counter sees every tenant-two frame: Begin + one
    // chunk + Commit of the upload, then the match queries.
    assert_eq!(
        counter(
            metric_names::SERVER_TENANT_REQUESTS,
            &[("tenant", "tenant-two")]
        ),
        3 + MATCH_QUERIES as u64
    );

    // Lower layers registered into the same registry and saw traffic
    // (the straggler was rejected, not accepted, so it does not count).
    assert!(counter(metric_names::REACTOR_ACCEPTS, &[]) >= 2);
    assert!(counter(metric_names::REACTOR_FRAMES_ASSEMBLED, &[]) > 0);

    // A second snapshot counts the first one's Metrics frame.
    let again = client.metrics().unwrap();
    assert_eq!(
        again.counter(metric_names::SERVER_REQUESTS, &[("tag", "metrics")]),
        Some(1),
        "the first Metrics request is visible to the second"
    );
    // No Hom-Adds ran between the two snapshots, so the windowed rate
    // either held its value (inside the guard interval) or decayed to
    // the honest current throughput: zero. A whole-uptime average would
    // instead report some in-between dilution.
    let rate_again = again
        .gauge(metric_names::SERVER_HOM_ADDS_PER_SEC, &[])
        .expect("derived Hom-Add throughput gauge missing from the snapshot");
    assert!(
        rate_again == adds_per_sec || rate_again == 0,
        "an idle re-snapshot must hold ({adds_per_sec}) or decay to 0, \
         got {rate_again}"
    );

    // The text exposition renders every series the snapshot carries.
    let text = again.render_text();
    assert!(text.contains("cm_server_requests_total{tag=\"match\"} 7"));
    assert!(text.contains("cm_registry_demotions_total 1"));
    server.shutdown();
}
