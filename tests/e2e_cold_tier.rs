//! End-to-end cold-tier test (the CI "cold-tier smoke"): drives a live
//! server over TCP through the full two-tier lifecycle and asserts the
//! acceptance criteria of the flash-backed cold store:
//!
//! * demotion leaves the hot-tier accounting excluding the demoted
//!   bytes AND removes the host-RAM copy — the simulated SSD's pages
//!   are the master copy, observable over the wire as
//!   `cm_registry_cold_bytes` / `cm_registry_flash_wear_total`;
//! * a demoted `ifp` tenant answers a Match query **while cold**,
//!   correctly, with `flash_wear > 0` in its lifetime stats (the
//!   demotion write) and zero wear from the query itself — cold is
//!   IFP's native tier, not a penalty (`cm_registry_cold_hits`,
//!   `cm_registry_rematerializations_total` stays 0);
//! * `DatabaseInfo` and stats reads never re-materialize a cold tenant
//!   (`tier` stays `"flash"`, `resident` stays false);
//! * after churning every tenant out, both the hot- and cold-tier
//!   accounting return to zero — no byte leaks into either tier.

use cm_core::{Backend, BitString, MatcherConfig};
use cm_server::{
    IfpMatcher, MatchClient, MatchServer, ServerConfig, TenantAccess, TenantRegistry, TenantSpec,
};
use cm_telemetry::metric_names;

const KEY_IFP: [u8; 32] = [0xC0; 32];
const KEY_PUSH: [u8; 32] = [0xC1; 32];

/// Client-side build of an in-flash (`ifp`) encrypted database: keys are
/// derived deterministically from the spec seed, so the server rebuilds
/// the matching device from the spec alone.
fn export_ifp(seed: u64, text: &str) -> (TenantSpec, Vec<u8>, BitString) {
    let data = BitString::from_ascii(text);
    let mut owner = cm_core::erase(IfpMatcher::for_spec(seed, true).unwrap(), seed);
    owner.load_database(&data).unwrap();
    let encoded = owner.export_database().unwrap();
    let spec = TenantSpec {
        backend: "ifp".into(),
        seed,
        window: 0,
        threads: 1,
        insecure: true,
        workers: 1,
    };
    (spec, encoded, data)
}

/// Client-side build of a CIPHERMATCH (software) database sized to evict
/// the ifp tenant from a one-database budget.
fn export_pusher(seed: u64, text: &str) -> (TenantSpec, Vec<u8>) {
    let config = MatcherConfig::new(Backend::Ciphermatch)
        .insecure_test()
        .seed(seed);
    let mut owner = config.build().unwrap();
    owner.load_database(&BitString::from_ascii(text)).unwrap();
    (
        TenantSpec::from_config(&config, 1),
        owner.export_database().unwrap(),
    )
}

#[test]
fn cold_ifp_tenants_serve_from_flash_and_accounting_returns_to_zero() {
    let (ifp_spec, ifp_encoded, data) = export_ifp(
        4242,
        "queries answered from the cold tier must stay correct",
    );
    let (push_spec, push_encoded) =
        export_pusher(4343, "this tenant exists to push the ifp tenant cold");
    let ifp_bytes = ifp_encoded.len() as u64;
    let push_bytes = push_encoded.len() as u64;

    // Each database fits alone; both together do not.
    let budget = ifp_bytes.max(push_bytes) + 1;
    let server = MatchServer::with_config(
        TenantRegistry::new(),
        ServerConfig {
            memory_budget: Some(budget),
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn("127.0.0.1:0")
    .unwrap();

    let mut client = MatchClient::connect(server.addr()).unwrap();
    let ifp = TenantAccess::new("ifp-tenant", &KEY_IFP);
    let pusher = TenantAccess::new("pusher", &KEY_PUSH);
    let pattern = BitString::from_ascii("correct");
    let truth = data.find_all(&pattern);
    assert!(!truth.is_empty());

    // --- Hot: upload, query, confirm the flash-native tier label -------
    let (bytes, demoted) = client
        .upload_database(&ifp, &ifp_spec, &ifp_encoded, 1)
        .unwrap();
    assert_eq!(bytes, ifp_bytes);
    assert!(demoted.is_empty());
    let hot_reply = client.search_bits(&ifp, &pattern).unwrap();
    assert_eq!(hot_reply.indices, truth);
    let info = client.database_info("ifp-tenant").unwrap();
    assert!(info.resident);
    assert_eq!(info.tier, "flash", "ifp is flash-native even while hot");

    // --- Demote: the second upload churns the ifp tenant cold ----------
    let (_, demoted) = client
        .upload_database(&pusher, &push_spec, &push_encoded, 1)
        .unwrap();
    assert_eq!(demoted, vec!["ifp-tenant".to_string()]);

    let snapshot = client.metrics().unwrap();
    let pages = ifp_bytes.div_ceil(1024); // default cold-store page size
    assert_eq!(
        snapshot.gauge(metric_names::REGISTRY_HOT_BYTES, &[]),
        Some(push_bytes as i64),
        "hot accounting excludes the demoted bytes"
    );
    assert_eq!(
        snapshot.gauge(metric_names::REGISTRY_COLD_BYTES, &[]),
        Some(ifp_bytes as i64),
        "the demoted bytes are charged to the cold tier"
    );
    assert_eq!(
        snapshot.counter(metric_names::REGISTRY_FLASH_WEAR, &[]),
        Some(pages),
        "demotion programs one flash page per 1 KiB written"
    );

    // --- Cold serve: correct answer, no rebuild, no extra wear ----------
    let cold_reply = client.search_bits(&ifp, &pattern).unwrap();
    assert_eq!(
        cold_reply.indices, truth,
        "a cold ifp tenant answers identically from flash"
    );
    assert_eq!(
        cold_reply.stats.flash_wear, 0,
        "the in-flash search is latch-only: the query wears nothing"
    );

    let info = client.database_info("ifp-tenant").unwrap();
    assert!(!info.resident, "serving cold must not promote");
    assert_eq!(info.tier, "flash");
    let (stats, queries) = client.tenant_stats("ifp-tenant").unwrap();
    assert_eq!(queries, 2, "hot + cold queries both counted");
    assert_eq!(
        stats.flash_wear, pages,
        "lifetime wear = the demotion write, charged exactly once"
    );
    // Info and stats reads above were pure reads.
    assert!(!client.database_info("ifp-tenant").unwrap().resident);

    let snapshot = client.metrics().unwrap();
    assert_eq!(
        snapshot.counter(metric_names::REGISTRY_COLD_HITS, &[]),
        Some(1),
        "exactly the one cold query served straight from flash"
    );
    assert_eq!(
        snapshot.counter(metric_names::REGISTRY_REMATERIALIZATIONS, &[]),
        Some(0),
        "the flash-native path never rebuilt a host-memory pool"
    );
    assert_eq!(
        snapshot.counter(metric_names::REGISTRY_FLASH_WEAR, &[]),
        Some(pages),
        "cold serving added zero wear"
    );

    // --- Churn everything out: both tiers drain to exactly zero --------
    let freed = client.evict_database(&pusher, 2).unwrap();
    assert_eq!(freed, push_bytes);
    let freed = client.evict_database(&ifp, 2).unwrap();
    assert_eq!(freed, 0, "evicting a cold tenant frees no hot bytes");

    let snapshot = client.metrics().unwrap();
    assert_eq!(
        snapshot.gauge(metric_names::REGISTRY_HOT_BYTES, &[]),
        Some(0),
        "no hot-tier byte leak"
    );
    assert_eq!(
        snapshot.gauge(metric_names::REGISTRY_COLD_BYTES, &[]),
        Some(0),
        "no cold-tier byte leak: eviction released the flash pages"
    );
    server.shutdown();
}
