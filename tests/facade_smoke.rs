//! Facade smoke test: every path below goes through the `ciphermatch::*`
//! re-exports rather than the `cm_*` crates directly, so a workspace
//! manifest or re-export regression in the facade is caught by tier-1
//! (`cargo test -q`) even if the underlying crates still build on their own.

use ciphermatch::bfv::{BfvContext, BfvParams};
use ciphermatch::core::{bitwise_find_all, BitString, Client, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// End-to-end through the facade: encrypt a database, run the CM-SW search
/// on the server, and recover plaintext match indices.
#[test]
fn facade_encrypt_search_decrypt_roundtrip() {
    let ctx = BfvContext::new(BfvParams::insecure_test_add());
    let mut rng = StdRng::seed_from_u64(2025);
    let client = Client::new(&ctx, &mut rng);

    let haystack = "in-flash processing pairs well with data packing";
    let needle = "data packing";
    let data = BitString::from_ascii(haystack);
    let mut server = Server::new(&ctx, client.encrypt_database(&data, &mut rng));
    server.install_index_generator(client.delegate_index_generation());

    let query = client
        .prepare_query(&BitString::from_ascii(needle), &mut rng)
        .expect("non-empty query");
    let got = server
        .search_indices(&query)
        .expect("index generator installed");

    let expect = bitwise_find_all(
        &BitString::from_ascii(haystack),
        &BitString::from_ascii(needle),
    );
    assert_eq!(got, expect);
    assert_eq!(got, vec![haystack.find(needle).unwrap() * 8]);
}

/// Touches each remaining facade re-export so a missing path dependency in
/// the root manifest fails this test rather than only downstream users.
#[test]
fn facade_reexports_are_wired() {
    let mut rng = StdRng::seed_from_u64(7);

    // hemath: a ring context is constructible through the facade.
    let q = ciphermatch::hemath::find_ntt_prime(30, 32);
    let ring = ciphermatch::hemath::RingContext::new(ciphermatch::hemath::Modulus::new(q), 32);
    assert_eq!(ring.n(), 32);

    // aes: block encrypt/decrypt roundtrip.
    let aes = ciphermatch::aes::Aes::new_128(&[0x2b; 16]);
    let block = *b"ciphermatch-asplo";
    let block: [u8; 16] = block[..16].try_into().unwrap();
    assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);

    // workloads: deterministic DNA genome generation.
    let genome = ciphermatch::workloads::DnaGenome::random(64, &mut rng);
    assert_eq!(genome.len(), 64);

    // core: the unified backend API is reachable through the facade.
    let mut matcher = ciphermatch::core::MatcherConfig::new(ciphermatch::core::Backend::Plain)
        .build()
        .unwrap();
    matcher
        .load_database(&ciphermatch::core::BitString::from_ascii("abc"))
        .unwrap();
    let facade_q = ciphermatch::core::BitString::from_ascii("b");
    assert_eq!(
        matcher.find_all(&facade_q).unwrap(),
        ciphermatch::core::BitString::from_ascii("abc").find_all(&facade_q)
    );

    // tfhe: parameter presets resolve.
    let params = ciphermatch::tfhe::TfheParams::fast_insecure_test();
    assert!(params.lwe_dim > 0);

    // flash + ssd + sim: types/constants reachable through the facade.
    let geom = ciphermatch::flash::FlashGeometry::tiny_test();
    assert!(geom.page_bytes > 0);
    let _ = ciphermatch::ssd::TransposeMode::Software;
    let consts = ciphermatch::sim::SystemConstants::paper_default();
    assert!(consts.geometry.page_bytes > 0);
}
