//! Integration at the paper's configuration points: the full Table 3
//! flash geometry (sparse functional storage), the paper's n = 1024 /
//! 32-bit parameter sets, and the 1000-query protocol loop at reduced
//! data size.

use cm_bfv::{BfvContext, BfvParams, Decryptor, Encryptor, KeyGenerator};
use cm_core::{BitString, CiphermatchEngine};
use cm_flash::FlashGeometry;
use cm_ssd::{CmIfpServer, TransposeMode};
use cm_workloads::KvDatabase;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn ifp_on_full_paper_geometry() {
    // Table 3 geometry: 8 ch x 8 dies x 2 planes, 2048 blocks/plane,
    // 4 KiB pages. The store is sparse, so only touched pages materialize.
    let ctx = BfvContext::new(BfvParams::ciphermatch_ifp_1024());
    let mut rng = StdRng::seed_from_u64(3001);
    let (sk, pk) = {
        let kg = KeyGenerator::new(&ctx, &mut rng);
        (kg.secret_key(), kg.public_key(&mut rng))
    };
    let enc = Encryptor::new(&ctx, pk);
    let dec = Decryptor::new(&ctx, sk);
    let engine = CiphermatchEngine::new(&ctx);

    let data = BitString::from_ascii("paper geometry: eight channels, eight dies, two planes");
    let db = engine.encrypt_database(&enc, &data, &mut rng);
    let geometry = FlashGeometry::paper_default();
    assert_eq!(geometry.total_planes(), 128);
    let mut server = CmIfpServer::new(&ctx, geometry, TransposeMode::Hardware, &db);

    let pattern = BitString::from_ascii("two planes");
    let query = engine.prepare_query(&enc, &pattern, &mut rng);
    let (result, reports) = server.search(&query);
    let indices = engine.generate_indices(&dec, &result);
    assert_eq!(indices, data.find_all(&pattern));
    // One full-page group per 32768 coefficients; the paper's n = 1024
    // ciphertexts tile it exactly (16 ciphertexts per group).
    assert!(reports.iter().all(|r| r.ledger.wear() == 0));
    let expect_group_reads = 32; // one group -> 32 wordline reads per variant
    assert!(reports.iter().all(|r| r.ledger.reads == expect_group_reads));
}

#[test]
fn paper_params_thousand_query_loop_scaled() {
    // The paper's encrypted-database-search workload simulates 1000
    // queries; we run a scaled-down deterministic version (50 queries)
    // end to end with the paper's software parameters.
    let ctx = BfvContext::new(BfvParams::ciphermatch_1024());
    let mut rng = StdRng::seed_from_u64(3002);
    let (sk, pk) = {
        let kg = KeyGenerator::new(&ctx, &mut rng);
        (kg.secret_key(), kg.public_key(&mut rng))
    };
    let enc = Encryptor::new(&ctx, pk);
    let dec = Decryptor::new(&ctx, sk);
    let mut engine = CiphermatchEngine::new(&ctx);

    let kv = KvDatabase::random(128, 6, 10, &mut rng);
    let bits = BitString::from_ascii(&kv.flatten());
    let db = engine.encrypt_database(&enc, &bits, &mut rng);
    let record_bits = kv.record_bytes() * 8;

    let queries = kv.sample_queries(50, &mut rng);
    for key in &queries {
        let q = BitString::from_ascii(key);
        let got = engine.find_all(&enc, &dec, &db, &q, &mut rng);
        let expect = kv.find_record(key).unwrap() * 8;
        assert!(got.contains(&expect), "key {key}");
        // Record-aligned hits resolve unambiguously.
        assert!(got.iter().filter(|&&b| b % record_bits == 0).count() >= 1);
    }
    // 50 queries x variants x polys additions, all on one engine.
    assert!(engine.stats().hom_adds > 1000);
}

#[test]
fn ciphermatch_1024_and_ifp_variant_agree_on_plaintexts() {
    // The NTT-prime (fast) and power-of-two (flash-compatible) parameter
    // sets must produce identical match sets — they differ only in the
    // ciphertext modulus.
    let mut results = Vec::new();
    for params in [
        BfvParams::ciphermatch_1024(),
        BfvParams::ciphermatch_ifp_1024(),
    ] {
        let ctx = BfvContext::new(params);
        let mut rng = StdRng::seed_from_u64(3003);
        let (sk, pk) = {
            let kg = KeyGenerator::new(&ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        let enc = Encryptor::new(&ctx, pk);
        let dec = Decryptor::new(&ctx, sk);
        let mut engine = CiphermatchEngine::new(&ctx);
        let data = BitString::from_ascii("modulus-agnostic matching semantics");
        let db = engine.encrypt_database(&enc, &data, &mut rng);
        let q = BitString::from_ascii("agnostic");
        results.push(engine.find_all(&enc, &dec, &db, &q, &mut rng));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], vec![8 * 8]);
}
