//! The unified-API contract, checked end to end: one generic test
//! function drives a backend over shared fixtures (empty-match,
//! multi-match, query == database, 1-bit query) and asserts its
//! `find_all` agrees with the `BitString::find_all` ground truth; it is
//! instantiated once per backend. Plus heterogeneous-registry and batch
//! session coverage that only the erased API makes possible.

use cm_core::{Backend, BitString, ErasedMatcher, MatchSession, MatcherConfig};

/// The shared fixtures: `(database, query, label)`. Sizes are small
/// enough that even the Boolean backend (every bootstrap run for real on
/// fast parameters) stays fast.
fn fixtures() -> Vec<(BitString, BitString, &'static str)> {
    vec![
        (
            BitString::from_ascii("abcd"),
            BitString::from_ascii("zz"),
            "empty-match",
        ),
        (
            BitString::from_bytes(&[0xA5, 0xA5]),
            BitString::from_bytes(&[0xA5]),
            "multi-match",
        ),
        (
            BitString::from_ascii("xy"),
            BitString::from_ascii("xy"),
            "query == database",
        ),
        (
            BitString::from_bits(&[
                true, false, false, true, true, false, true, false, false, true, true, true,
            ]),
            BitString::from_bits(&[true]),
            "1-bit query",
        ),
    ]
}

/// The generic contract check, instantiated for every backend below.
///
/// A fresh matcher is built per fixture because the window-bound
/// backends (Yasuda, Batched) fix the query length at database-layout
/// time — itself part of the contract under test.
fn check_backend_agrees(backend: Backend) {
    for (db, q, label) in fixtures() {
        let mut matcher = MatcherConfig::new(backend)
            .insecure_test()
            .window(q.len())
            .threads(2) // exercises the threaded search paths too
            .seed(2025)
            .build()
            .expect("valid configuration");
        assert_eq!(matcher.backend(), backend);
        assert!(!matcher.has_database());
        matcher.load_database(&db).expect("database encrypts");
        assert!(matcher.has_database());
        let got = matcher.find_all(&q).expect("query fits the window");
        assert_eq!(got, db.find_all(&q), "{backend}: {label}");
        // Repeat searches against the same loaded database stay correct
        // (fresh query randomness, same keys).
        let again = matcher.find_all(&q).expect("query fits the window");
        assert_eq!(again, got, "{backend}: {label} (repeat)");
        assert!(
            matcher.stats().total_ops() > 0 || backend == Backend::Plain,
            "{backend} must report homomorphic work"
        );
    }
}

#[test]
fn ciphermatch_backend_agrees_with_ground_truth() {
    check_backend_agrees(Backend::Ciphermatch);
}

#[test]
fn yasuda_backend_agrees_with_ground_truth() {
    check_backend_agrees(Backend::Yasuda);
}

#[test]
fn batched_backend_agrees_with_ground_truth() {
    check_backend_agrees(Backend::Batched);
}

#[test]
fn boolean_backend_agrees_with_ground_truth() {
    check_backend_agrees(Backend::Boolean);
}

#[test]
fn plain_backend_agrees_with_ground_truth() {
    check_backend_agrees(Backend::Plain);
}

/// The erased API's reason to exist: heterogeneous backends in one
/// registry, exercised uniformly.
#[test]
fn heterogeneous_registry_serves_every_backend() {
    let data = BitString::from_ascii("backends!");
    let query = data.slice(8, 8);
    let truth = data.find_all(&query);
    let mut registry: Vec<Box<dyn ErasedMatcher>> = Backend::ALL
        .iter()
        .map(|&backend| {
            MatcherConfig::new(backend)
                .insecure_test()
                .window(query.len())
                .threads(4)
                .seed(7)
                .build()
                .expect("valid configuration")
        })
        .collect();
    for matcher in &mut registry {
        matcher.load_database(&data).expect("database encrypts");
        assert_eq!(
            matcher.find_all(&query).expect("query fits the window"),
            truth,
            "backend {}",
            matcher.backend()
        );
    }
    // The per-backend cost profiles split exactly as Table 1 says: only
    // CM-SW avoids every expensive operation.
    for matcher in &registry {
        let stats = matcher.stats();
        match matcher.backend() {
            Backend::Ciphermatch => {
                assert!(stats.hom_adds > 0);
                assert_eq!(stats.hom_muls + stats.rotations + stats.bootstraps, 0);
            }
            Backend::Yasuda => assert!(stats.hom_muls > 0),
            Backend::Batched => assert!(stats.hom_muls > 0 && stats.rotations > 0),
            Backend::Boolean => assert!(stats.bootstraps > 0),
            Backend::Plain => assert_eq!(stats.total_ops(), 0),
            // Addition-only like CM-SW; its registry entry is built by
            // cm_server (it needs an SSD device), covered in e2e_server.
            Backend::Ifp => unreachable!("MatcherConfig cannot build the IFP backend"),
        }
    }
}

/// A batch session over a non-CM backend: the service layer is genuinely
/// backend-agnostic.
#[test]
fn session_batches_over_the_batched_backend() {
    let data = BitString::from_ascii("sessions fan out over any backend");
    let queries: Vec<BitString> = [8usize, 48, 96]
        .iter()
        .map(|&start| data.slice(start, 16))
        .collect();
    let config = MatcherConfig::new(Backend::Batched)
        .insecure_test()
        .window(16)
        .threads(3)
        .seed(11);
    let mut session = MatchSession::new(&config).unwrap();
    session.load_database(&data).unwrap();
    let report = session.run_batch(&queries).unwrap();
    let got = report.into_indices().expect("no per-query errors");
    for (q, indices) in queries.iter().zip(&got) {
        assert_eq!(indices, &data.find_all(q));
    }
    assert!(session.stats().rotations > 0);
}
