//! Cross-crate integration: the in-flash pipeline (cm-ssd + cm-flash)
//! against the software engine (cm-core + cm-bfv), plus the secure index
//! channel (cm-aes).

use cm_bfv::{BfvContext, BfvParams, Decryptor, Encryptor, KeyGenerator};
use cm_core::{BitString, CiphermatchEngine, TrustedIndexGenerator};
use cm_flash::FlashGeometry;
use cm_ssd::{CmIfpServer, SecureIndexChannel, TransposeMode};
use cm_workloads::DnaGenome;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    ctx: BfvContext,
    sk: cm_bfv::SecretKey,
    pk: cm_bfv::PublicKey,
}

fn fixture(seed: u64) -> Fixture {
    let ctx = BfvContext::new(BfvParams::insecure_test_pow2());
    let mut rng = StdRng::seed_from_u64(seed);
    let (sk, pk) = {
        let kg = KeyGenerator::new(&ctx, &mut rng);
        (kg.secret_key(), kg.public_key(&mut rng))
    };
    Fixture { ctx, sk, pk }
}

#[test]
fn ifp_pipeline_equals_software_on_dna_workload() {
    let f = fixture(10);
    let mut rng = StdRng::seed_from_u64(11);
    let enc = Encryptor::new(&f.ctx, f.pk.clone());
    let dec = Decryptor::new(&f.ctx, f.sk.clone());
    let mut engine = CiphermatchEngine::new(&f.ctx);

    let genome = DnaGenome::random(2000, &mut rng);
    let bits = BitString::from_dna(&genome.to_string_seq());
    let db = engine.encrypt_database(&enc, &bits, &mut rng);
    let mut server = CmIfpServer::new(
        &f.ctx,
        FlashGeometry::tiny_test(),
        TransposeMode::Software,
        &db,
    );

    for bases in [8usize, 12] {
        let (read, pos) = genome.sample_read(bases, 0, &mut rng);
        let read_bits = BitString::from_dna(&read);
        let query = engine.prepare_query(&enc, &read_bits, &mut rng);

        let sw = engine.search(&db, &query);
        let (ifp, reports) = server.search(&query);
        assert_eq!(
            ifp, sw,
            "{bases} bp read: raw results must be bit-identical"
        );
        assert!(reports.iter().all(|r| r.ledger.wear() == 0));

        let indices = engine.generate_indices(&dec, &ifp);
        assert!(indices.contains(&(pos * 2)));
        assert_eq!(indices, bits.find_all(&read_bits));
    }
}

#[test]
fn cm_search_command_with_sealed_indices() {
    let f = fixture(20);
    let mut rng = StdRng::seed_from_u64(21);
    let enc = Encryptor::new(&f.ctx, f.pk.clone());
    let engine = CiphermatchEngine::new(&f.ctx);

    let data = BitString::from_ascii("sealed indices travel back to the client");
    let db = engine.encrypt_database(&enc, &data, &mut rng);
    let mut server = CmIfpServer::new(
        &f.ctx,
        FlashGeometry::tiny_test(),
        TransposeMode::Hardware,
        &db,
    );

    let pattern = BitString::from_ascii("client");
    let query = engine.prepare_query(&enc, &pattern, &mut rng);
    let index_gen = TrustedIndexGenerator::from_secret(&f.ctx, f.sk.clone());
    let (indices, reports) = server.cm_search_command(&query, &index_gen);
    assert_eq!(indices, data.find_all(&pattern));
    assert!(!reports.is_empty());

    // §7.2: seal on the SSD, open at the client.
    let key = [9u8; 32];
    let ssd_side = SecureIndexChannel::new(&key);
    let (sealed, _) = ssd_side.seal(&indices, 1);
    let client_side = SecureIndexChannel::new(&key);
    assert_eq!(client_side.open(&sealed, 1), indices);
}

#[test]
fn corrupted_stored_ciphertext_is_detected_by_comparison() {
    // Fault injection: flip one stored coefficient bit via a dirty
    // writeback. The in-flash result must now diverge from the software
    // result — demonstrating the bit-exactness check in the other tests
    // has teeth (a single-bit upset cannot hide).
    let f = fixture(40);
    let mut rng = StdRng::seed_from_u64(41);
    let enc = Encryptor::new(&f.ctx, f.pk.clone());
    let mut engine = CiphermatchEngine::new(&f.ctx);

    let data = BitString::from_ascii("a single flipped bit must be visible downstream");
    let db = engine.encrypt_database(&enc, &data, &mut rng);
    let query = engine.prepare_query(&enc, &BitString::from_ascii("visible"), &mut rng);
    let sw = engine.search(&db, &query);

    let mut server = CmIfpServer::new(
        &f.ctx,
        FlashGeometry::tiny_test(),
        TransposeMode::Software,
        &db,
    );
    // Corrupt one bit of group 0 through the writeback path.
    {
        let ssd = server.ssd_mut();
        let mut words = ssd.cm_read_group(0);
        words[7] ^= 1 << 13;
        ssd.handle_dirty_writeback(0, &words);
    }
    let (ifp, _) = server.search(&query);
    assert_ne!(ifp, sw, "a flipped stored bit must change the raw result");
}

#[test]
fn conventional_and_cm_regions_coexist() {
    let f = fixture(30);
    let mut rng = StdRng::seed_from_u64(31);
    let enc = Encryptor::new(&f.ctx, f.pk.clone());
    let engine = CiphermatchEngine::new(&f.ctx);

    let data = BitString::from_ascii("two regions, one drive");
    let db = engine.encrypt_database(&enc, &data, &mut rng);
    let mut server = CmIfpServer::new(
        &f.ctx,
        FlashGeometry::tiny_test(),
        TransposeMode::Software,
        &db,
    );

    // The CM region holds ciphertexts; the search must still behave after
    // repeated queries (latch state is per-search).
    let q1 = engine.prepare_query(&enc, &BitString::from_ascii("drive"), &mut rng);
    let (r1, _) = server.search(&q1);
    let (r2, _) = server.search(&q1);
    assert_eq!(r1, r2, "searches must be reproducible");
}
