//! Cross-crate integration: every secure matcher agrees with the
//! plaintext ground truth on the same workloads, and CM-SW agrees with
//! the Boolean and arithmetic baselines.

use cm_bfv::{BfvContext, BfvParams, Decryptor, Encryptor, KeyGenerator};
use cm_core::{bitwise_find_all, BitString, BooleanEngine, CiphermatchEngine, YasudaEngine};
use cm_tfhe::{ClientKey, ServerKey, TfheParams};
use cm_workloads::{DnaGenome, KvDatabase};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bfv_fixture(params: BfvParams, seed: u64) -> (BfvContext, cm_bfv::SecretKey, cm_bfv::PublicKey) {
    let ctx = BfvContext::new(params);
    let mut rng = StdRng::seed_from_u64(seed);
    let (sk, pk) = {
        let kg = KeyGenerator::new(&ctx, &mut rng);
        (kg.secret_key(), kg.public_key(&mut rng))
    };
    (ctx, sk, pk)
}

#[test]
fn cmsw_and_yasuda_agree_on_dna_reads() {
    let mut rng = StdRng::seed_from_u64(1);
    let genome = DnaGenome::random(3000, &mut rng);
    let bits = BitString::from_dna(&genome.to_string_seq());

    let (cm_ctx, cm_sk, cm_pk) = bfv_fixture(BfvParams::insecure_test_add(), 2);
    let cm_enc = Encryptor::new(&cm_ctx, cm_pk);
    let cm_dec = Decryptor::new(&cm_ctx, cm_sk);
    let mut cm = CiphermatchEngine::new(&cm_ctx);
    let cm_db = cm.encrypt_database(&cm_enc, &bits, &mut rng);

    let (ya_ctx, ya_sk, ya_pk) = bfv_fixture(BfvParams::insecure_test_mul(), 3);
    let ya_enc = Encryptor::new(&ya_ctx, ya_pk);
    let ya_dec = Decryptor::new(&ya_ctx, ya_sk);
    let mut ya = YasudaEngine::new(&ya_ctx);

    for bases in [8usize, 16, 24] {
        let (read, pos) = genome.sample_read(bases, 0, &mut rng);
        let read_bits = BitString::from_dna(&read);
        let truth = bits.find_all(&read_bits);
        assert!(truth.contains(&(pos * 2)));
        assert_eq!(truth, bitwise_find_all(&bits, &read_bits));

        let got_cm = cm.find_all(&cm_enc, &cm_dec, &cm_db, &read_bits, &mut rng);
        assert_eq!(got_cm, truth, "CM-SW, {bases} bp read");

        let ya_db = ya.encrypt_database(&ya_enc, &bits, read_bits.len(), &mut rng);
        let got_ya = ya.find_all(&ya_enc, &ya_dec, &ya_db, &read_bits, &mut rng);
        assert_eq!(got_ya, truth, "Yasuda, {bases} bp read");
    }
}

#[test]
fn boolean_matcher_agrees_on_small_inputs() {
    let mut rng = StdRng::seed_from_u64(4);
    let client = ClientKey::generate(TfheParams::fast_insecure_test(), &mut rng);
    let server = ServerKey::generate(&client, &mut rng);
    let engine = BooleanEngine::new(&client, &server);

    let db_bits = BitString::from_bytes(&[0b1011_0010, 0b0110_1011]);
    let db = engine.encrypt_database(&db_bits, &mut rng);
    for (start, len) in [(0usize, 4usize), (3, 5), (9, 6)] {
        let q = db_bits.slice(start, len);
        let got = engine.find_all(&db, &q, &mut rng);
        assert_eq!(got, db_bits.find_all(&q), "window ({start},{len})");
    }
}

#[test]
fn kv_search_resolves_records_end_to_end() {
    let mut rng = StdRng::seed_from_u64(5);
    let kv = KvDatabase::random(64, 6, 10, &mut rng);
    let bits = BitString::from_ascii(&kv.flatten());

    let (ctx, sk, pk) = bfv_fixture(BfvParams::insecure_test_add(), 6);
    let enc = Encryptor::new(&ctx, pk);
    let dec = Decryptor::new(&ctx, sk);
    let mut engine = CiphermatchEngine::new(&ctx);
    let db = engine.encrypt_database(&enc, &bits, &mut rng);

    for key in kv.sample_queries(5, &mut rng) {
        let q = BitString::from_ascii(&key);
        let got = engine.find_all(&enc, &dec, &db, &q, &mut rng);
        let expect_bit = kv.find_record(&key).unwrap() * 8;
        assert!(got.contains(&expect_bit), "key {key}");
        assert_eq!(got, bits.find_all(&q));
    }
}

#[test]
fn cmsw_matches_across_every_bit_offset() {
    // Exhaustive per-offset agreement on a dense pattern.
    let mut rng = StdRng::seed_from_u64(7);
    let (ctx, sk, pk) = bfv_fixture(BfvParams::insecure_test_add(), 8);
    let enc = Encryptor::new(&ctx, pk);
    let dec = Decryptor::new(&ctx, sk);
    let mut engine = CiphermatchEngine::new(&ctx);

    let db_bits = BitString::from_bytes(&[0x3C, 0xA5, 0x3C, 0xA5, 0x3C, 0x99]);
    let db = engine.encrypt_database(&enc, &db_bits, &mut rng);
    for offset in 0..32 {
        let q = db_bits.slice(offset, 13);
        let got = engine.find_all(&enc, &dec, &db, &q, &mut rng);
        assert_eq!(got, db_bits.find_all(&q), "offset {offset}");
    }
}
