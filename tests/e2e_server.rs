//! End-to-end serving test (the CI "server smoke"): boots a `cm_server`
//! process-in-a-thread on a localhost ephemeral port, registers three
//! tenants with different key material — sharded CM-SW, the in-flash
//! CM-IFP engine, and a hosted plaintext reference — and fires concurrent
//! TCP queries at all of them.
//!
//! Checked properties:
//! * every decrypted (AES-opened) index list equals the plaintext ground
//!   truth, including shard-boundary-straddling patterns;
//! * sharded execution demonstrably splits the database: each reply
//!   carries one `MatchStats` per shard, every shard worked, and the
//!   field-wise sum equals the reply total (and the tenant's lifetime
//!   totals);
//! * the IFP tenant's in-flash searches report **zero** program/erase
//!   cycles (`flash_wear == 0`) while still counting `Hom-Add`s;
//! * protocol failures (unknown tenant, wire queries to a backend
//!   without a wire format, truncated encrypted queries) surface as typed
//!   errors, never hangs or panics;
//! * two queries for the *same* tenant are in flight simultaneously
//!   (a barrier inside a gated backend proves the overlap) — the
//!   per-tenant matcher pool, not a per-tenant mutex;
//! * connections past the configured `max_open_sockets` cap receive a
//!   typed `ServerBusy` rejection instead of an unbounded thread spawn,
//!   and a freed slot readmits new connections.

use std::sync::{Arc, Condvar, Mutex};

use cm_bfv::BfvParams;
use cm_core::{Backend, BitString, MatchError, MatchStats, MatcherConfig};
use cm_flash::FlashGeometry;
use cm_server::{
    IfpMatcher, MatchClient, MatchReply, MatchServer, ServerConfig, ShardedCmMatcher, TenantAccess,
    TenantRegistry,
};
use cm_ssd::TransposeMode;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ALICE_KEY: [u8; 32] = [0xA1; 32];
const BOB_KEY: [u8; 32] = [0xB0; 32];
const CAROL_KEY: [u8; 32] = [0xC4; 32];

const ALICE_SHARDS: usize = 3;

fn alice_db() -> BitString {
    // ~1100 bytes -> 5 polynomials under insecure_test_add (2048 bits
    // each), so 3 shards own [2, 2, 1] polynomials.
    let bytes: Vec<u8> = (0..1100usize).map(|i| (i * 37 % 251) as u8).collect();
    BitString::from_bytes(&bytes)
}

fn bob_db() -> BitString {
    BitString::from_ascii(
        "the in-flash engine answers encrypted queries from inside the ssd \
         without wearing out a single cell of the array",
    )
}

fn carol_db() -> BitString {
    BitString::from_ascii("carol hosts her keys on the server and queries in the clear")
}

fn assert_shards_sum_to_total(reply: &MatchReply) {
    let mut sum = MatchStats::default();
    for s in &reply.shard_stats {
        sum.merge(s);
    }
    assert_eq!(sum, reply.stats, "per-shard stats must sum to the total");
}

#[test]
fn concurrent_multi_tenant_serving_over_tcp() {
    // --- Provisioning (the paper's offline step, in-process) ---------
    let alice = ShardedCmMatcher::new(BfvParams::insecure_test_add(), ALICE_SHARDS, 1001).unwrap();
    let alice_kit = Arc::new(alice.query_kit());
    let mut rng = StdRng::seed_from_u64(1002);
    let bob = IfpMatcher::new(
        BfvParams::insecure_test_pow2(),
        FlashGeometry::tiny_test(),
        TransposeMode::Software,
        &mut rng,
    )
    .unwrap();
    let bob_kit = Arc::new(bob.query_kit());

    let mut registry = TenantRegistry::new();
    registry
        .register("alice", Box::new(alice), &ALICE_KEY, &alice_db())
        .unwrap();
    registry
        .register("bob", cm_core::erase(bob, 1002), &BOB_KEY, &bob_db())
        .unwrap();
    registry
        .register(
            "carol",
            MatcherConfig::new(Backend::Plain).build().unwrap(),
            &CAROL_KEY,
            &carol_db(),
        )
        .unwrap();

    let server = MatchServer::new(registry).spawn("127.0.0.1:0").unwrap();
    let addr = server.addr();

    // --- Discovery ---------------------------------------------------
    let mut probe = MatchClient::connect(addr).unwrap();
    let backends = probe.backends().unwrap();
    assert!(backends.contains(&"ifp".to_string()), "{backends:?}");
    assert_eq!(backends.len(), Backend::WIRE.len());
    let tenants = probe.tenants().unwrap();
    assert_eq!(
        tenants
            .iter()
            .map(|t| (t.id.as_str(), t.backend.as_str()))
            .collect::<Vec<_>>(),
        vec![("alice", "ciphermatch"), ("bob", "ifp"), ("carol", "plain")]
    );

    // --- Concurrent query fan-out: 10 clients, 3 tenants -------------
    let a_data = alice_db();
    let b_data = bob_db();
    let c_data = carol_db();
    // Alice's patterns include two that straddle shard boundaries (2048
    // bits per polynomial, shards own polys [0,2), [2,4), [4,5)).
    let alice_slices: [(usize, usize); 5] =
        [(0, 16), (4090, 24), (8185, 22), (2040, 33), (5000, 18)];
    let bob_patterns = ["encrypted", "the ssd", "wearing out"];
    let carol_patterns = ["keys", "clear"];

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, &(start, len)) in alice_slices.iter().enumerate() {
            let (kit, data, addr) = (Arc::clone(&alice_kit), &a_data, addr);
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(7000 + i as u64);
                let pattern = data.slice(start, len);
                let encoded = kit.encode_query(&pattern, &mut rng).unwrap();
                let mut client = MatchClient::connect(addr).unwrap();
                let access = TenantAccess::new("alice", &ALICE_KEY);
                let reply = client.search_encoded(&access, &encoded).unwrap();
                assert_eq!(
                    reply.indices,
                    data.find_all(&pattern),
                    "alice slice ({start}, {len})"
                );
                assert_eq!(reply.shard_stats.len(), ALICE_SHARDS);
                assert!(
                    reply.shard_stats.iter().all(|s| s.hom_adds > 0),
                    "every shard must have run its Hom-Add sweep"
                );
                assert_shards_sum_to_total(&reply);
            }));
        }
        for (i, pattern) in bob_patterns.iter().enumerate() {
            let (kit, data, addr) = (Arc::clone(&bob_kit), &b_data, addr);
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(8000 + i as u64);
                let pattern = BitString::from_ascii(pattern);
                let encoded = kit.encode_query(&pattern, &mut rng).unwrap();
                let mut client = MatchClient::connect(addr).unwrap();
                let access = TenantAccess::new("bob", &BOB_KEY);
                let reply = client.search_encoded(&access, &encoded).unwrap();
                assert_eq!(reply.indices, data.find_all(&pattern));
                assert!(reply.stats.hom_adds > 0, "in-flash adds are counted");
                assert_eq!(
                    reply.stats.flash_wear, 0,
                    "bop_add must consume zero program/erase cycles"
                );
                assert_shards_sum_to_total(&reply);
            }));
        }
        for pattern in carol_patterns {
            let (data, addr) = (&c_data, addr);
            handles.push(scope.spawn(move || {
                let pattern = BitString::from_ascii(pattern);
                let mut client = MatchClient::connect(addr).unwrap();
                let access = TenantAccess::new("carol", &CAROL_KEY);
                let reply = client.search_bits(&access, &pattern).unwrap();
                assert_eq!(reply.indices, data.find_all(&pattern));
                assert_shards_sum_to_total(&reply);
            }));
        }
        assert!(handles.len() >= 8, "the smoke test must fire >= 8 queries");
        for handle in handles {
            handle.join().expect("client thread panicked");
        }
    });

    // --- Lifetime accounting -----------------------------------------
    let (alice_totals, alice_queries) = probe.tenant_stats("alice").unwrap();
    assert_eq!(alice_queries, alice_slices.len() as u64);
    assert!(alice_totals.hom_adds > 0);
    let (bob_totals, bob_queries) = probe.tenant_stats("bob").unwrap();
    assert_eq!(bob_queries, bob_patterns.len() as u64);
    assert_eq!(bob_totals.flash_wear, 0);

    // --- Typed failure paths ------------------------------------------
    assert_eq!(
        probe
            .search_bits(
                &TenantAccess::new("mallory", &[0; 32]),
                &BitString::from_ascii("x")
            )
            .err(),
        Some(MatchError::UnknownTenant("mallory".to_string()))
    );
    assert_eq!(
        probe
            .search_encoded(&TenantAccess::new("carol", &CAROL_KEY), &[1, 2, 3])
            .err(),
        Some(MatchError::WireQueryUnsupported(Backend::Plain))
    );
    let mut rng = StdRng::seed_from_u64(9999);
    let valid = alice_kit
        .encode_query(&a_data.slice(8, 16), &mut rng)
        .unwrap();
    assert!(matches!(
        probe
            .search_encoded(
                &TenantAccess::new("alice", &ALICE_KEY),
                &valid[..valid.len() / 3]
            )
            .unwrap_err(),
        MatchError::Decode(_)
    ));
    // The connection survives all three rejections.
    assert_eq!(probe.tenants().unwrap().len(), 3);

    server.shutdown();
}

// ---------------------------------------------------------------------------
// Per-tenant concurrency: two queries for ONE tenant in flight at once
// ---------------------------------------------------------------------------

/// Counts overlapping `find_all` calls; each call blocks until a second
/// call is in flight (or a timeout passes), so the test deadlock-freely
/// distinguishes "the tenant pool ran us concurrently" from "queries for
/// one tenant still serialize".
struct Gate {
    state: Mutex<(usize, usize)>, // (in flight now, peak overlap)
    cv: Condvar,
}

impl Gate {
    fn new() -> Self {
        Self {
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
        }
    }

    fn enter(&self) {
        let mut s = self.state.lock().unwrap();
        s.0 += 1;
        s.1 = s.1.max(s.0);
        self.cv.notify_all();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while s.1 < 2 {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                break; // serialized execution: report via peak(), don't hang
            }
            s = self.cv.wait_timeout(s, left).unwrap().0;
        }
    }

    fn exit(&self) {
        self.state.lock().unwrap().0 -= 1;
    }

    fn peak(&self) -> usize {
        self.state.lock().unwrap().1
    }
}

/// A plaintext matcher whose searches rendezvous on a shared [`Gate`];
/// clones share the gate, exactly like pool members share a database.
struct GatedPlainMatcher {
    data: Option<BitString>,
    gate: Arc<Gate>,
}

impl cm_core::ErasedMatcher for GatedPlainMatcher {
    fn backend(&self) -> Backend {
        Backend::Plain
    }

    fn load_database(&mut self, data: &BitString) -> Result<(), MatchError> {
        self.data = Some(data.clone());
        Ok(())
    }

    fn has_database(&self) -> bool {
        self.data.is_some()
    }

    fn database_bytes(&self) -> Option<u64> {
        self.data.as_ref().map(|d| d.len().div_ceil(8) as u64)
    }

    fn find_all(&mut self, query: &BitString) -> Result<Vec<usize>, MatchError> {
        let data = self.data.as_ref().ok_or(MatchError::NoDatabase)?;
        self.gate.enter();
        let hits = data.find_all(query);
        self.gate.exit();
        Ok(hits)
    }

    fn stats(&self) -> MatchStats {
        MatchStats::default()
    }

    fn reset_stats(&mut self) {}

    fn reseed(&mut self, _seed: u64) {}

    fn boxed_clone(&self) -> Box<dyn cm_core::ErasedMatcher> {
        Box::new(GatedPlainMatcher {
            data: self.data.clone(),
            gate: Arc::clone(&self.gate),
        })
    }
}

/// The ROADMAP-flagged serialization is gone: with a matcher pool of K=2,
/// two TCP queries for the *same* tenant overlap inside the backend
/// (proved by a barrier both must pass), instead of queueing on one
/// matcher mutex.
#[test]
fn one_tenants_queries_run_concurrently() {
    let gate = Arc::new(Gate::new());
    let data = BitString::from_ascii("two queries, one tenant, zero serialization");
    let mut registry = TenantRegistry::new();
    registry
        .register_with_workers(
            "solo",
            Box::new(GatedPlainMatcher {
                data: None,
                gate: Arc::clone(&gate),
            }),
            2,
            &CAROL_KEY,
            &data,
        )
        .unwrap();
    let server = MatchServer::new(registry).spawn("127.0.0.1:0").unwrap();
    let addr = server.addr();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for pattern in ["queries", "tenant"] {
            let data = &data;
            handles.push(scope.spawn(move || {
                let mut client = MatchClient::connect(addr).unwrap();
                let pattern = BitString::from_ascii(pattern);
                let reply = client
                    .search_bits(&TenantAccess::new("solo", &CAROL_KEY), &pattern)
                    .unwrap();
                assert_eq!(reply.indices, data.find_all(&pattern));
            }));
        }
        for handle in handles {
            handle.join().expect("client thread panicked");
        }
    });
    assert!(
        gate.peak() >= 2,
        "two queries for one tenant must be in flight simultaneously, \
         saw a peak overlap of {}",
        gate.peak()
    );
    server.shutdown();
}

// ---------------------------------------------------------------------------
// The connection bound: reject, typed, never spawn past the cap
// ---------------------------------------------------------------------------

#[test]
fn connections_past_the_cap_get_a_typed_busy_error() {
    let mut registry = TenantRegistry::new();
    let data = BitString::from_ascii("bounded front door");
    registry
        .register(
            "solo",
            MatcherConfig::new(Backend::Plain).build().unwrap(),
            &CAROL_KEY,
            &data,
        )
        .unwrap();
    let server = MatchServer::with_config(
        registry,
        ServerConfig {
            max_open_sockets: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn("127.0.0.1:0")
    .unwrap();
    let addr = server.addr();

    // First client occupies the single slot...
    let mut first = MatchClient::connect(addr).unwrap();
    assert!(!first.backends().unwrap().is_empty());

    // ...so the second is rejected with the typed wire error, not queued
    // onto a freshly spawned thread.
    let mut second = MatchClient::connect(addr).unwrap();
    assert_eq!(
        second.backends().err(),
        Some(MatchError::ServerBusy {
            max_open_sockets: 1
        })
    );

    // Releasing the slot readmits new connections (retry: the server
    // notices the hangup asynchronously).
    drop(first);
    let mut admitted = false;
    for _ in 0..100 {
        let mut retry = MatchClient::connect(addr).unwrap();
        if retry.backends().is_ok() {
            admitted = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(admitted, "a freed slot must readmit connections");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// The remote database lifecycle, end to end over TCP
// ---------------------------------------------------------------------------

/// The full remote lifecycle for three concurrent tenants, entirely over
/// the wire: each key owner builds its matcher locally, exports the
/// encrypted database, uploads it chunked, queries it, checks the
/// registry's byte-accurate accounting via `DatabaseInfo`, evicts it
/// (after which matching reports `UnknownTenant`), re-uploads, and
/// verifies the post-re-upload answers equal the pre-eviction ones.
#[test]
fn remote_database_lifecycle_over_tcp() {
    let registry = TenantRegistry::new();
    registry.set_memory_budget(Some(64 << 20));
    let server = MatchServer::new(registry).spawn("127.0.0.1:0").unwrap();
    let addr = server.addr();

    let tenants: [(&str, [u8; 32], &str, &str); 3] = [
        (
            "tenant-a",
            [0xA7; 32],
            "tenant a keeps genome reads on the serving host",
            "genome",
        ),
        (
            "tenant-b",
            [0xB7; 32],
            "tenant b uploads, queries, evicts, and uploads again",
            "evicts",
        ),
        (
            "tenant-c",
            [0xC7; 32],
            "tenant c shares the host but never a key domain",
            "key domain",
        ),
    ];

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, (id, key, text, needle)) in tenants.into_iter().enumerate() {
            handles.push(scope.spawn(move || {
                let data = BitString::from_ascii(text);
                let pattern = BitString::from_ascii(needle);
                let truth = data.find_all(&pattern);
                assert!(!truth.is_empty(), "{id}: pattern must occur");

                // Offline step, fully client-side: build the matcher,
                // encrypt the database under its keys, export the bytes.
                let config = MatcherConfig::new(Backend::Ciphermatch)
                    .insecure_test()
                    .seed(7100 + i as u64);
                let mut owner = config.build().unwrap();
                owner.load_database(&data).unwrap();
                let encoded = owner.export_database().unwrap();
                let spec = cm_server::TenantSpec::from_config(&config, 2);

                let mut client = MatchClient::connect(addr).unwrap();
                let access = TenantAccess::new(id, &key);

                // Upload (chunked) and match over the wire.
                let (bytes, demoted) = client.upload_database(&access, &spec, &encoded, 1).unwrap();
                assert_eq!(bytes, encoded.len() as u64, "{id}: byte-accurate");
                assert!(demoted.is_empty(), "{id}: budget fits everyone");
                let before = client.search_bits(&access, &pattern).unwrap();
                assert_eq!(before.indices, truth, "{id}: pre-eviction match");
                assert!(before.stats.hom_adds > 0);

                // Accounting and lifetime stats, read over the wire.
                let info = client.database_info(id).unwrap();
                assert_eq!(info.bytes, encoded.len() as u64, "{id}");
                assert!(info.resident);
                assert!(!info.pinned);
                assert_eq!(info.backend, "ciphermatch");
                assert_eq!(info.workers, 2);
                assert_eq!(info.queries, 1);
                let (totals, queries) = client.tenant_stats(id).unwrap();
                assert_eq!(queries, 1);
                assert_eq!(totals.hom_adds, before.stats.hom_adds);

                // Evict: the accounting returns the full charge, and the
                // tenant is gone for matching *and* info.
                let freed = client.evict_database(&access, 2).unwrap();
                assert_eq!(freed, encoded.len() as u64, "{id}: full refund");
                assert_eq!(
                    client.search_bits(&access, &pattern).err(),
                    Some(MatchError::UnknownTenant(id.to_string())),
                    "{id}: evicted tenants are unknown"
                );
                assert_eq!(
                    client.database_info(id).err(),
                    Some(MatchError::UnknownTenant(id.to_string()))
                );

                // Re-upload (fresh nonce — the old one is burned) and
                // verify the answers agree with the pre-eviction run.
                let (bytes, _) = client.upload_database(&access, &spec, &encoded, 3).unwrap();
                assert_eq!(bytes, encoded.len() as u64);
                let after = client.search_bits(&access, &pattern).unwrap();
                assert_eq!(
                    after.indices, before.indices,
                    "{id}: post-re-upload answers agree"
                );
                // Replies are sealed under fresh nonces across the
                // re-registration: identical indices, different bytes.
                assert_ne!(after.stats.hom_adds, 0);
            }));
        }
        for handle in handles {
            handle.join().expect("lifecycle client thread panicked");
        }
    });

    // All three re-uploaded tenants still serve from one process.
    let mut probe = MatchClient::connect(addr).unwrap();
    assert_eq!(probe.tenants().unwrap().len(), 3);
    server.shutdown();
}

/// A second, smaller boot proves the server is restartable within one
/// process (fresh ephemeral port, fresh registry) and that wrong AES
/// credentials fail *closed* — a reply sealed for the tenant's key
/// cannot be opened with another.
#[test]
fn wrong_channel_key_fails_closed() {
    let mut registry = TenantRegistry::new();
    let data = BitString::from_ascii("sealed against the wrong key");
    registry
        .register(
            "solo",
            MatcherConfig::new(Backend::Plain).build().unwrap(),
            &CAROL_KEY,
            &data,
        )
        .unwrap();
    let server = MatchServer::new(registry).spawn("127.0.0.1:0").unwrap();
    let mut client = MatchClient::connect(server.addr()).unwrap();
    let pattern = BitString::from_ascii("wrong");
    let truth = data.find_all(&pattern);

    // Right key: ground truth.
    let good = client
        .search_bits(&TenantAccess::new("solo", &CAROL_KEY), &pattern)
        .unwrap();
    assert_eq!(good.indices, truth);

    // Wrong key: a typed error or garbage — never the real indices.
    match client.search_bits(&TenantAccess::new("solo", &[0xEE; 32]), &pattern) {
        Ok(reply) => assert_ne!(reply.indices, truth),
        Err(e) => assert!(matches!(e, MatchError::Frame(_))),
    }
    server.shutdown();
}
