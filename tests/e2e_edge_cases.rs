//! Edge-case integration tests: degenerate databases and queries across
//! the full stack.

use cm_bfv::{BfvContext, BfvParams, Decryptor, Encryptor, KeyGenerator};
use cm_core::{BitString, CiphermatchEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (BfvContext, cm_bfv::SecretKey, cm_bfv::PublicKey) {
    let ctx = BfvContext::new(BfvParams::insecure_test_add());
    let mut rng = StdRng::seed_from_u64(60);
    let (sk, pk) = {
        let kg = KeyGenerator::new(&ctx, &mut rng);
        (kg.secret_key(), kg.public_key(&mut rng))
    };
    (ctx, sk, pk)
}

#[test]
fn query_longer_than_database_yields_nothing() {
    let (ctx, sk, pk) = setup();
    let mut rng = StdRng::seed_from_u64(61);
    let enc = Encryptor::new(&ctx, pk);
    let dec = Decryptor::new(&ctx, sk);
    let mut engine = CiphermatchEngine::new(&ctx);
    let data = BitString::from_ascii("tiny");
    let db = engine.encrypt_database(&enc, &data, &mut rng);
    let q = BitString::from_ascii("much longer than the database");
    assert!(engine.find_all(&enc, &dec, &db, &q, &mut rng).is_empty());
}

#[test]
fn single_bit_queries_work() {
    let (ctx, sk, pk) = setup();
    let mut rng = StdRng::seed_from_u64(62);
    let enc = Encryptor::new(&ctx, pk);
    let dec = Decryptor::new(&ctx, sk);
    let mut engine = CiphermatchEngine::new(&ctx);
    let data = BitString::from_bits(&[true, false, false, true, false, true]);
    let db = engine.encrypt_database(&enc, &data, &mut rng);
    for bit in [true, false] {
        let q = BitString::from_bits(&[bit]);
        let got = engine.find_all(&enc, &dec, &db, &q, &mut rng);
        assert_eq!(got, data.find_all(&q), "bit = {bit}");
    }
}

#[test]
fn sub_segment_database() {
    // A database smaller than one 8-bit segment still packs and matches.
    let (ctx, sk, pk) = setup();
    let mut rng = StdRng::seed_from_u64(63);
    let enc = Encryptor::new(&ctx, pk);
    let dec = Decryptor::new(&ctx, sk);
    let mut engine = CiphermatchEngine::new(&ctx);
    let data = BitString::from_bits(&[true, true, false, true, true]);
    let db = engine.encrypt_database(&enc, &data, &mut rng);
    let q = data.slice(1, 3);
    let got = engine.find_all(&enc, &dec, &db, &q, &mut rng);
    assert_eq!(got, data.find_all(&q));
}

#[test]
fn query_equal_to_database_matches_once() {
    let (ctx, sk, pk) = setup();
    let mut rng = StdRng::seed_from_u64(64);
    let enc = Encryptor::new(&ctx, pk);
    let dec = Decryptor::new(&ctx, sk);
    let mut engine = CiphermatchEngine::new(&ctx);
    let data = BitString::from_ascii("exact");
    let db = engine.encrypt_database(&enc, &data, &mut rng);
    let got = engine.find_all(&enc, &dec, &db, &data, &mut rng);
    assert_eq!(got, vec![0]);
}

#[test]
fn all_zero_and_all_one_databases() {
    // Degenerate content: the negated-query sums hit the all-ones and
    // all-zeros boundary values.
    let (ctx, sk, pk) = setup();
    let mut rng = StdRng::seed_from_u64(65);
    let enc = Encryptor::new(&ctx, pk);
    let dec = Decryptor::new(&ctx, sk);
    let mut engine = CiphermatchEngine::new(&ctx);
    for fill in [false, true] {
        let data = BitString::from_bits(&[fill; 64]);
        let db = engine.encrypt_database(&enc, &data, &mut rng);
        let hit = BitString::from_bits(&[fill; 9]);
        let miss = BitString::from_bits(&[!fill; 9]);
        assert_eq!(
            engine.find_all(&enc, &dec, &db, &hit, &mut rng),
            data.find_all(&hit),
            "fill = {fill}"
        );
        assert!(engine.find_all(&enc, &dec, &db, &miss, &mut rng).is_empty());
    }
}
