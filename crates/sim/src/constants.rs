//! System constants from Tables 2–3 and §3.2.

use cm_flash::{FlashEnergy, FlashGeometry, FlashTimings};
use cm_pum::PumConfig;

/// Byte count helpers.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Fixed platform constants shared by every analytical model.
#[derive(Debug, Clone)]
pub struct SystemConstants {
    /// Host PCIe 4.0 x4 bandwidth (Table 3: 7 GB/s).
    pub pcie_bw: f64,
    /// One NAND channel's I/O rate (Table 3: 1.2 GB/s).
    pub nand_channel_bw: f64,
    /// Number of NAND channels (Table 3: 8).
    pub nand_channels: usize,
    /// External DRAM peak bandwidth (Table 3: 19.2 GB/s).
    pub dram_bw: f64,
    /// Effective CPU-side copy/compute-stream bandwidth (memcpy-limited).
    pub cpu_stream_bw: f64,
    /// External DRAM capacity in bytes (Table 2/3: 32 GB).
    pub dram_capacity: f64,
    /// SSD-internal DRAM capacity in bytes (Table 3: 2 GB).
    pub internal_dram_capacity: f64,
    /// CPU package power, watts (Table 2 class Xeon).
    pub cpu_power: f64,
    /// DRAM subsystem power, watts.
    pub dram_power: f64,
    /// SSD active power, watts (980 Pro class).
    pub ssd_power: f64,
    /// SSD controller power, watts (5 ARM R5 cores).
    pub controller_power: f64,
    /// SSD-internal LPDDR4 power, watts.
    pub internal_dram_power: f64,
    /// DRAM array + I/O energy per byte touched by in-memory compute
    /// (~100 pJ/B, DDR4-class activation + access estimates), joules.
    pub dram_energy_per_byte: f64,
    /// Flash geometry (Table 3).
    pub geometry: FlashGeometry,
    /// Flash timing constants (Table 3).
    pub flash_t: FlashTimings,
    /// Flash energy constants (Table 3).
    pub flash_e: FlashEnergy,
    /// External-DRAM PuM configuration.
    pub pum_ext: PumConfig,
    /// Internal-DRAM PuM configuration.
    pub pum_int: PumConfig,
}

impl SystemConstants {
    /// The paper's configuration.
    pub fn paper_default() -> Self {
        Self {
            pcie_bw: 7.0e9,
            nand_channel_bw: 1.2e9,
            nand_channels: 8,
            dram_bw: 19.2e9,
            cpu_stream_bw: 12.0e9,
            dram_capacity: 32.0 * GIB,
            internal_dram_capacity: 2.0 * GIB,
            cpu_power: 105.0,
            dram_power: 10.0,
            ssd_power: 8.0,
            controller_power: 2.0,
            internal_dram_power: 2.0,
            dram_energy_per_byte: 100e-12,
            geometry: FlashGeometry::paper_default(),
            flash_t: FlashTimings::paper_default(),
            flash_e: FlashEnergy::paper_default(),
            pum_ext: PumConfig::external_ddr4(),
            pum_int: PumConfig::internal_lpddr4(),
        }
    }

    /// Aggregate internal NAND bandwidth (`channels × channel rate`).
    pub fn nand_bw(&self) -> f64 {
        self.nand_channel_bw * self.nand_channels as f64
    }
}

/// The real CPU system of Table 2, for documentation output.
#[derive(Debug, Clone)]
pub struct HostProfile {
    /// CPU model string.
    pub cpu: &'static str,
    /// Core count.
    pub cores: usize,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Cache sizes (L1/L2/L3 text).
    pub caches: &'static str,
    /// Main memory description.
    pub memory: &'static str,
    /// Storage description.
    pub storage: &'static str,
    /// Operating system.
    pub os: &'static str,
}

impl HostProfile {
    /// Table 2 verbatim.
    pub fn paper_table2() -> Self {
        Self {
            cpu: "Intel(R) Xeon(R) Gold 5118 (Skylake, x86-64)",
            cores: 6,
            clock_ghz: 3.2,
            caches: "L1 32 KiB/8-way + L2 256 KiB/4-way + L3 8 MiB/16-way, 64 B lines",
            memory: "32 GB DDR4-2400, 4 channels",
            storage: "Samsung 980 Pro PCIe 4.0 NVMe SSD, 2 TB",
            os: "Ubuntu 22.04.1 LTS",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_hierarchy_matches_paper() {
        let c = SystemConstants::paper_default();
        // Internal NAND bandwidth exceeds PCIe: the premise of in-storage
        // processing (§3.2).
        assert!(c.nand_bw() > c.pcie_bw);
        assert!(c.dram_bw > c.pcie_bw);
        assert!((c.nand_bw() - 9.6e9).abs() < 1.0);
    }

    #[test]
    fn capacities() {
        let c = SystemConstants::paper_default();
        assert!((c.dram_capacity - 32.0 * GIB).abs() < 1.0);
        assert!(c.internal_dram_capacity < c.dram_capacity);
    }
}
