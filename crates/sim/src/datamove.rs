//! The data-movement model behind Figure 3 (§3.2).
//!
//! Transfer latency for a database of `D` bytes when secure string
//! matching runs on (1) the CPU, (2) main memory (PuM), or (3) the SSD
//! controller. Paths that stage data in host DRAM pay re-fetch penalties
//! once the encrypted database exceeds DRAM capacity (the paper's
//! "diminishing benefit" effect).

use crate::constants::SystemConstants;

/// Transfer-latency breakdown for one database size.
#[derive(Debug, Clone, Copy)]
pub struct TransferLatency {
    /// Compute in the SSD controller: flash → controller only.
    pub storage: f64,
    /// Compute in main memory: flash → controller → host DRAM.
    pub dram: f64,
    /// Compute on the CPU: the above plus DRAM → CPU streaming.
    pub cpu: f64,
}

impl TransferLatency {
    /// Latencies normalized to the CPU path = 100 (the paper's y-axis).
    pub fn normalized(&self) -> (f64, f64, f64) {
        (
            100.0,
            100.0 * self.dram / self.cpu,
            100.0 * self.storage / self.cpu,
        )
    }
}

/// The Figure 3 model.
#[derive(Debug, Clone)]
pub struct DataMoveModel {
    constants: SystemConstants,
    /// Number of passes over the data (query shifts) that re-fetch spilled
    /// data when the database exceeds DRAM capacity.
    pub reaccess_passes: f64,
}

impl DataMoveModel {
    /// Creates the model with the paper constants and 8 re-access passes.
    pub fn new(constants: SystemConstants) -> Self {
        Self {
            constants,
            reaccess_passes: 8.0,
        }
    }

    /// Computes the three-path transfer latency for `db_bytes`.
    pub fn latency(&self, db_bytes: f64) -> TransferLatency {
        let c = &self.constants;
        let storage = db_bytes / c.nand_bw();
        let spill = (db_bytes - c.dram_capacity).max(0.0);
        // Host paths: internal flash channels, then PCIe into DRAM; data
        // beyond DRAM capacity is re-fetched on every pass.
        let to_dram = storage + db_bytes / c.pcie_bw + self.reaccess_passes * spill / c.pcie_bw;
        let cpu = to_dram + db_bytes / c.cpu_stream_bw;
        TransferLatency {
            storage,
            dram: to_dram,
            cpu,
        }
    }

    /// The paper's Fig. 3 sweep: 8–256 GB encrypted databases.
    pub fn sweep(&self) -> Vec<(f64, TransferLatency)> {
        [8.0, 16.0, 32.0, 64.0, 128.0, 256.0]
            .iter()
            .map(|&gb| (gb, self.latency(gb * crate::constants::GIB)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::GIB;

    fn model() -> DataMoveModel {
        DataMoveModel::new(SystemConstants::paper_default())
    }

    #[test]
    fn storage_always_saves_most() {
        let m = model();
        for (_, lat) in m.sweep() {
            let (cpu, dram, storage) = lat.normalized();
            assert!(storage < dram && dram < cpu);
            // Paper: storage-side compute saves the majority of transfer
            // latency at every size.
            assert!(storage < 40.0, "storage path {storage}% too expensive");
        }
    }

    #[test]
    fn dram_benefit_shrinks_with_database_size() {
        // Paper: 25% reduction at 8 GB, only ~6% at 256 GB.
        let m = model();
        let small = m.latency(8.0 * GIB);
        let large = m.latency(256.0 * GIB);
        let saving_small = 100.0 - small.normalized().1;
        let saving_large = 100.0 - large.normalized().1;
        assert!(saving_small > 20.0, "small-DB DRAM saving {saving_small}%");
        assert!(saving_large < 10.0, "large-DB DRAM saving {saving_large}%");
        assert!(saving_small > 2.0 * saving_large);
    }

    #[test]
    fn storage_saving_grows_past_dram_capacity() {
        let m = model();
        let at32 = 100.0 - m.latency(32.0 * GIB).normalized().2;
        let at256 = 100.0 - m.latency(256.0 * GIB).normalized().2;
        // Paper: 94% reduction at 256 GB.
        assert!(at256 > at32);
        assert!(at256 > 85.0, "storage saving at 256 GB = {at256}%");
    }

    #[test]
    fn below_capacity_no_spill() {
        let m = model();
        let a = m.latency(8.0 * GIB);
        let b = m.latency(16.0 * GIB);
        // Linear scaling below capacity: normalized values identical.
        let (_, da, sa) = a.normalized();
        let (_, db, sb) = b.normalized();
        assert!((da - db).abs() < 1e-9);
        assert!((sa - sb).abs() < 1e-9);
    }
}
