//! Calibration of the analytical models with measured per-operation costs.
//!
//! The paper measures its software baselines on a real Xeon (Table 2) and
//! feeds the resulting rates into its in-house simulator. We do the same:
//! the Criterion benches in `cm-bench` measure this repository's own BFV /
//! TFHE implementations, and their results parameterize
//! [`CalibrationProfile`]. Defaults below were measured on the development
//! machine (see EXPERIMENTS.md); override them to re-calibrate.

/// How many `Hom-Add` passes a `k`-bit query needs (see DESIGN.md §5 and
/// EXPERIMENTS.md for the discussion of the paper's under-specified shift
/// count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassModel {
    /// Complete bit-granular matching: `sum_r ceil((r+k)/16)` variants —
    /// what `cm-core` actually implements (correct for every alignment).
    Complete,
    /// The paper's literal description (Algorithm 1 line 8): one shift per
    /// bit offset, i.e. `min(k, 16)` passes, independent of `k` beyond one
    /// segment. Misses some alignments for `k > 16` but reproduces the
    /// paper's cost trend.
    PaperShifts,
}

impl PassModel {
    /// Number of `Hom-Add` passes over the database for a `k`-bit query.
    pub fn passes(&self, k: usize, seg_bits: usize) -> u64 {
        match self {
            PassModel::Complete => (0..seg_bits)
                .map(|r| ((r + k).div_ceil(seg_bits)) as u64)
                .sum(),
            PassModel::PaperShifts => k.min(seg_bits) as u64,
        }
    }
}

/// Measured per-operation costs of this repository's implementations.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationProfile {
    /// One `Hom-Add` on an `n = 1024`, 32-bit-q ciphertext (8 KiB of
    /// ciphertext), seconds.
    pub t_hom_add_1024: f64,
    /// One ciphertext-ciphertext multiplication at `n = 2048` (Yasuda
    /// block), seconds.
    pub t_hom_mult_2048: f64,
    /// One `Hom-Add` at `n = 2048`, seconds.
    pub t_hom_add_2048: f64,
    /// One bootstrapped TFHE gate (`boolean_default` parameters), seconds.
    pub t_tfhe_gate: f64,
    /// Fraction of PuM row-lanes concurrently active (activation-power /
    /// tFAW derating; the paper leaves SIMDRAM bank concurrency
    /// unspecified — see EXPERIMENTS.md).
    pub pum_active_fraction: f64,
    /// Pass-count model for query variants.
    pub pass_model: PassModel,
}

impl CalibrationProfile {
    /// Defaults measured with `cargo bench -p cm-bench` on the development
    /// machine (order-of-magnitude stable across x86-64 hosts).
    pub fn default_measured() -> Self {
        Self {
            t_hom_add_1024: 3.0e-6,
            t_hom_mult_2048: 4.5e-3,
            t_hom_add_2048: 6.4e-6,
            t_tfhe_gate: 0.42,
            pum_active_fraction: 0.085,
            pass_model: PassModel::Complete,
        }
    }

    /// Rates back-derived from the paper's own measurements (see
    /// EXPERIMENTS.md): SEAL-class Hom-Add streaming at ~0.2 GB/s,
    /// SEAL-class n = 2048 multiplication at ~2.5 ms, and the effective
    /// per-gate cost implied by the paper's "6.6 s for a 32-bit query in a
    /// 32-byte database" Boolean data point (≈ 0.47 ms/gate with SIMD
    /// batching). Use this profile to reproduce the paper's absolute
    /// ratios; use [`Self::default_measured`] for this repository's.
    pub fn paper_rates() -> Self {
        Self {
            t_hom_add_1024: 40.0e-6,
            t_hom_mult_2048: 2.5e-3,
            t_hom_add_2048: 40.0e-6,
            t_tfhe_gate: 0.47e-3,
            pum_active_fraction: 0.085,
            pass_model: PassModel::Complete,
        }
    }

    /// CM-SW effective hom-add streaming rate over ciphertext bytes
    /// (one 8 KiB ciphertext per `t_hom_add_1024`).
    pub fn cmsw_add_bw(&self) -> f64 {
        8192.0 / self.t_hom_add_1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_pass_counts() {
        let m = PassModel::Complete;
        assert_eq!(m.passes(16, 16), 31);
        assert_eq!(
            m.passes(8, 16),
            (0..16).map(|r| ((r + 8 + 15) / 16) as u64).sum()
        );
        assert!(m.passes(256, 16) > m.passes(64, 16));
    }

    #[test]
    fn paper_pass_counts_saturate() {
        let m = PassModel::PaperShifts;
        assert_eq!(m.passes(8, 16), 8);
        assert_eq!(m.passes(16, 16), 16);
        assert_eq!(m.passes(256, 16), 16);
    }

    #[test]
    fn default_profile_is_sane() {
        let p = CalibrationProfile::default_measured();
        assert!(
            p.t_hom_mult_2048 > 100.0 * p.t_hom_add_2048,
            "mult must dwarf add"
        );
        assert!(p.t_tfhe_gate > 1e-3, "bootstrapped gates are milliseconds+");
        assert!(p.cmsw_add_bw() > 1e8, "hom-add streams at >100 MB/s");
        assert!(p.pum_active_fraction > 0.0 && p.pum_active_fraction <= 1.0);
    }
}
