//! Series builders for every simulated figure (Figs. 3, 7–12).
//!
//! Each function returns typed rows that the `repro` binary prints; the
//! tests here assert the load-bearing shape properties (who wins, rough
//! factors, crossover locations) so regressions in any model break the
//! build, not just the report.

use crate::calibration::CalibrationProfile;
use crate::constants::{SystemConstants, GIB};
use crate::datamove::DataMoveModel;
use crate::hw_models::HwModels;
use crate::sw_models::{SwModels, Workload};

/// Query sizes swept by Figures 7, 8, 10 and 11.
pub const QUERY_SIZES: [usize; 5] = [16, 32, 64, 128, 256];

/// Encrypted database sizes (GB) swept by Figures 9 and 12.
pub const DB_SIZES_GB: [f64; 5] = [8.0, 16.0, 32.0, 64.0, 128.0];

/// One row of Figure 3.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Row {
    /// Encrypted database size in GB.
    pub db_gb: f64,
    /// CPU-path latency normalized to 100.
    pub cpu: f64,
    /// Main-memory-path latency (% of CPU).
    pub dram: f64,
    /// Storage-path latency (% of CPU).
    pub storage: f64,
}

/// Builds Figure 3.
pub fn fig3(constants: &SystemConstants) -> Vec<Fig3Row> {
    let model = DataMoveModel::new(constants.clone());
    model
        .sweep()
        .into_iter()
        .map(|(db_gb, lat)| {
            let (cpu, dram, storage) = lat.normalized();
            Fig3Row {
                db_gb,
                cpu,
                dram,
                storage,
            }
        })
        .collect()
}

/// One row of Figures 7/8 (query-size sweep of the software approaches).
#[derive(Debug, Clone, Copy)]
pub struct SwSweepRow {
    /// Query size in bits.
    pub k: usize,
    /// Arithmetic \[27\] speedup (Fig. 7) or energy reduction (Fig. 8) over
    /// the Boolean baseline.
    pub arithmetic_vs_boolean: f64,
    /// CM-SW speedup / energy reduction over the Boolean baseline.
    pub cmsw_vs_boolean: f64,
    /// CM-SW speedup / energy reduction over the arithmetic baseline.
    pub cmsw_vs_arithmetic: f64,
}

fn sw_sweep(
    constants: &SystemConstants,
    calibration: &CalibrationProfile,
    energy: bool,
) -> Vec<SwSweepRow> {
    let m = SwModels::new(constants.clone(), *calibration);
    QUERY_SIZES
        .iter()
        .map(|&k| {
            // 128 GB encrypted with CM packing = 32 GB plaintext; 1 query.
            let w = Workload {
                plain_bytes: 32.0 * GIB,
                k,
                queries: 1,
            };
            let cm = m.cmsw(&w);
            let ya = m.yasuda(&w);
            let bo = m.boolean(&w);
            let metric = |a: &crate::sw_models::Cost, b: &crate::sw_models::Cost| {
                if energy {
                    a.energy_reduction_vs(b)
                } else {
                    a.speedup_vs(b)
                }
            };
            SwSweepRow {
                k,
                arithmetic_vs_boolean: metric(&ya, &bo),
                cmsw_vs_boolean: metric(&cm, &bo),
                cmsw_vs_arithmetic: metric(&cm, &ya),
            }
        })
        .collect()
}

/// Builds Figure 7 (speedups over the Boolean baseline, 128 GB, 1 query).
pub fn fig7(constants: &SystemConstants, calibration: &CalibrationProfile) -> Vec<SwSweepRow> {
    sw_sweep(constants, calibration, false)
}

/// Builds Figure 8 (energy reductions over the Boolean baseline).
pub fn fig8(constants: &SystemConstants, calibration: &CalibrationProfile) -> Vec<SwSweepRow> {
    sw_sweep(constants, calibration, true)
}

/// One row of Figure 9 (database-size sweep, 16-bit query, 1000 queries).
#[derive(Debug, Clone, Copy)]
pub struct Fig9Row {
    /// Encrypted database size in GB.
    pub db_gb: f64,
    /// Arithmetic speedup over Boolean.
    pub arithmetic_vs_boolean: f64,
    /// CM-SW speedup over Boolean.
    pub cmsw_vs_boolean: f64,
    /// CM-SW speedup over arithmetic.
    pub cmsw_vs_arithmetic: f64,
}

/// Builds Figure 9.
pub fn fig9(constants: &SystemConstants, calibration: &CalibrationProfile) -> Vec<Fig9Row> {
    let m = SwModels::new(constants.clone(), *calibration);
    DB_SIZES_GB
        .iter()
        .map(|&db_gb| {
            let w = Workload {
                plain_bytes: db_gb * GIB / 4.0,
                k: 16,
                queries: 1000,
            };
            let cm = m.cmsw(&w);
            let ya = m.yasuda(&w);
            let bo = m.boolean(&w);
            Fig9Row {
                db_gb,
                arithmetic_vs_boolean: ya.speedup_vs(&bo),
                cmsw_vs_boolean: cm.speedup_vs(&bo),
                cmsw_vs_arithmetic: cm.speedup_vs(&ya),
            }
        })
        .collect()
}

/// One row of Figures 10/11/12 (hardware variants vs CM-SW).
#[derive(Debug, Clone, Copy)]
pub struct HwSweepRow {
    /// X value: query bits (Figs. 10/11) or encrypted GB (Fig. 12).
    pub x: f64,
    /// CM-PuM speedup / energy reduction over CM-SW.
    pub pum: f64,
    /// CM-PuM-SSD speedup / energy reduction over CM-SW.
    pub pum_ssd: f64,
    /// CM-IFP speedup / energy reduction over CM-SW.
    pub ifp: f64,
}

fn hw_sweep_queries(
    constants: &SystemConstants,
    calibration: &CalibrationProfile,
    energy: bool,
) -> Vec<HwSweepRow> {
    let m = HwModels::new(constants.clone(), *calibration);
    QUERY_SIZES
        .iter()
        .map(|&k| {
            let w = Workload {
                plain_bytes: 32.0 * GIB,
                k,
                queries: 1,
            };
            let sw = m.cmsw_baseline(&w);
            let metric = |c: &crate::sw_models::Cost| {
                if energy {
                    c.energy_reduction_vs(&sw)
                } else {
                    c.speedup_vs(&sw)
                }
            };
            HwSweepRow {
                x: k as f64,
                pum: metric(&m.cm_pum(&w)),
                pum_ssd: metric(&m.cm_pum_ssd(&w)),
                ifp: metric(&m.cm_ifp(&w)),
            }
        })
        .collect()
}

/// Builds Figure 10 (speedup over CM-SW vs query size, 128 GB, 1 query).
pub fn fig10(constants: &SystemConstants, calibration: &CalibrationProfile) -> Vec<HwSweepRow> {
    hw_sweep_queries(constants, calibration, false)
}

/// Builds Figure 11 (energy reduction over CM-SW vs query size).
pub fn fig11(constants: &SystemConstants, calibration: &CalibrationProfile) -> Vec<HwSweepRow> {
    hw_sweep_queries(constants, calibration, true)
}

/// Builds Figure 12 (speedup over CM-SW vs encrypted DB size, 16-bit
/// query, 1000 queries).
pub fn fig12(constants: &SystemConstants, calibration: &CalibrationProfile) -> Vec<HwSweepRow> {
    let m = HwModels::new(constants.clone(), *calibration);
    DB_SIZES_GB
        .iter()
        .map(|&db_gb| {
            let w = Workload {
                plain_bytes: db_gb * GIB / 4.0,
                k: 16,
                queries: 1000,
            };
            let sw = m.cmsw_baseline(&w);
            HwSweepRow {
                x: db_gb,
                pum: m.cm_pum(&w).speedup_vs(&sw),
                pum_ssd: m.cm_pum_ssd(&w).speedup_vs(&sw),
                ifp: m.cm_ifp(&w).speedup_vs(&sw),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SystemConstants, CalibrationProfile) {
        (
            SystemConstants::paper_default(),
            CalibrationProfile::paper_rates(),
        )
    }

    #[test]
    fn fig3_storage_dominates_and_grows() {
        let (c, _) = setup();
        let rows = fig3(&c);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.storage < r.dram && r.dram < r.cpu);
        }
        // Storage saving grows with DB size (paper: 94% at 256 GB).
        assert!(rows.last().unwrap().storage < rows[0].storage);
        assert!(100.0 - rows.last().unwrap().storage > 85.0);
    }

    #[test]
    fn fig7_magnitudes_match_paper_bands() {
        let (c, cal) = setup();
        let rows = fig7(&c, &cal);
        for r in &rows {
            // Paper: CM-SW 2.0e5–6.2e5x over Boolean; arithmetic ~1e4x.
            assert!(
                (5e4..2e6).contains(&r.cmsw_vs_boolean),
                "k={}: cmsw vs boolean {}",
                r.k,
                r.cmsw_vs_boolean
            );
            assert!(
                (1e3..1e5).contains(&r.arithmetic_vs_boolean),
                "k={}: arith vs boolean {}",
                r.k,
                r.arithmetic_vs_boolean
            );
            // Paper: CM-SW 20.7–62.2x over arithmetic.
            assert!(
                (3.0..200.0).contains(&r.cmsw_vs_arithmetic),
                "k={}: cmsw vs arith {}",
                r.k,
                r.cmsw_vs_arithmetic
            );
        }
        // CM-SW's Boolean advantage grows with query size (paper trend).
        assert!(rows.last().unwrap().cmsw_vs_boolean > rows[0].cmsw_vs_boolean);
    }

    #[test]
    fn fig8_energy_reductions_positive_and_ordered() {
        let (c, cal) = setup();
        for r in fig8(&c, &cal) {
            assert!(r.cmsw_vs_boolean > r.arithmetic_vs_boolean);
            assert!(r.cmsw_vs_arithmetic > 1.0);
        }
    }

    #[test]
    fn fig9_dip_beyond_dram_capacity() {
        let (c, cal) = setup();
        let rows = fig9(&c, &cal);
        // CM-SW-vs-arithmetic should not improve when the encrypted DB
        // stops fitting in DRAM (paper: 1.16x reduction past 32 GB).
        let small = rows[0].cmsw_vs_arithmetic;
        let large = rows.last().unwrap().cmsw_vs_arithmetic;
        assert!(large <= small * 1.05, "expected dip: {small} -> {large}");
        for r in &rows {
            assert!(r.cmsw_vs_boolean > 1e4);
        }
    }

    #[test]
    fn fig10_orderings_and_crossover() {
        let (c, cal) = setup();
        let rows = fig10(&c, &cal);
        let first = &rows[0];
        let last = rows.last().unwrap();
        // k = 16: IFP leads everything (paper: 216x).
        assert!(first.ifp > first.pum && first.ifp > first.pum_ssd);
        assert!(first.ifp > 50.0, "IFP speedup at k=16: {}", first.ifp);
        // k = 256: CM-PuM overtakes CM-IFP (paper: 1.21x).
        assert!(
            last.pum > last.ifp,
            "PuM {} vs IFP {} at k=256",
            last.pum,
            last.ifp
        );
        // IFP's advantage over PuM declines monotonically toward the
        // crossover (the paper's Fig. 10 trend).
        assert!(first.ifp / first.pum > last.ifp / last.pum);
        // CM-PuM beats CM-PuM-SSD for single queries (paper: 1.5–3.5x).
        for r in &rows {
            assert!(
                r.pum > r.pum_ssd,
                "k={}: pum {} vs pum-ssd {}",
                r.x,
                r.pum,
                r.pum_ssd
            );
        }
    }

    #[test]
    fn fig11_ifp_most_energy_efficient() {
        let (c, cal) = setup();
        for r in fig11(&c, &cal) {
            assert!(r.ifp > r.pum, "k={}: ifp {} pum {}", r.x, r.ifp, r.pum);
            assert!(
                r.pum_ssd > r.pum,
                "k={}: pum-ssd must beat pum on energy",
                r.x
            );
            assert!(r.ifp > 10.0);
        }
    }

    #[test]
    fn fig12_capacity_crossover() {
        let (c, cal) = setup();
        let rows = fig12(&c, &cal);
        // Fits in DRAM (8–32 GB): CM-PuM ahead of CM-IFP (paper: 1.41x).
        assert!(
            rows[0].pum > rows[0].ifp,
            "8 GB: pum {} ifp {}",
            rows[0].pum,
            rows[0].ifp
        );
        // 128 GB: CM-IFP ahead (paper: 8.29x) and PuM-SSD between.
        let last = rows.last().unwrap();
        assert!(
            last.ifp > last.pum_ssd && last.pum_ssd > last.pum,
            "128 GB ordering: ifp {} pum_ssd {} pum {}",
            last.ifp,
            last.pum_ssd,
            last.pum
        );
        // All NDP systems always beat CM-SW.
        for r in &rows {
            assert!(r.pum > 1.0 && r.pum_ssd > 1.0 && r.ifp > 1.0);
        }
    }

    #[test]
    fn figures_also_run_with_measured_profile() {
        // The honest (this-repo) calibration must produce the same
        // qualitative shapes.
        let c = SystemConstants::paper_default();
        let cal = CalibrationProfile::default_measured();
        let f10 = fig10(&c, &cal);
        assert!(f10[0].ifp > f10[0].pum);
        let f12 = fig12(&c, &cal);
        assert!(f12.last().unwrap().ifp > f12.last().unwrap().pum);
    }
}
