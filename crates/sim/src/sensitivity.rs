//! Sensitivity analysis of the evaluation's conclusions to the simulator
//! knobs the paper leaves unspecified (see EXPERIMENTS.md).
//!
//! The two crossover claims — CM-PuM overtaking CM-IFP at large queries
//! (Fig. 10) and CM-IFP overtaking CM-PuM past DRAM capacity (Fig. 12) —
//! are the paper's load-bearing qualitative results. This module sweeps
//! the calibration knobs and reports where each conclusion holds, so a
//! reader can judge how much of the result is physics (bandwidth and
//! capacity) versus modeling choice.

use crate::calibration::CalibrationProfile;
use crate::constants::{SystemConstants, GIB};
use crate::hw_models::HwModels;
use crate::sw_models::Workload;

/// Outcome of the two crossover checks for one knob setting.
#[derive(Debug, Clone, Copy)]
pub struct CrossoverOutcome {
    /// The knob value swept.
    pub knob: f64,
    /// Fig. 10: does CM-IFP beat CM-PuM at 16-bit queries?
    pub ifp_wins_small_queries: bool,
    /// Fig. 10: does CM-PuM beat CM-IFP at 256-bit queries?
    pub pum_wins_large_queries: bool,
    /// Fig. 12: does CM-PuM beat CM-IFP at 8 GB (fits DRAM)?
    pub pum_wins_small_db: bool,
    /// Fig. 12: does CM-IFP beat CM-PuM at 128 GB?
    pub ifp_wins_large_db: bool,
}

impl CrossoverOutcome {
    /// True when all four of the paper's qualitative claims hold.
    pub fn all_hold(&self) -> bool {
        self.ifp_wins_small_queries
            && self.pum_wins_large_queries
            && self.pum_wins_small_db
            && self.ifp_wins_large_db
    }
}

fn outcome_for(
    constants: &SystemConstants,
    cal: &CalibrationProfile,
    knob: f64,
) -> CrossoverOutcome {
    let m = HwModels::new(constants.clone(), *cal);
    let small_q = Workload {
        plain_bytes: 32.0 * GIB,
        k: 16,
        queries: 1,
    };
    let large_q = Workload {
        plain_bytes: 32.0 * GIB,
        k: 256,
        queries: 1,
    };
    let small_db = Workload {
        plain_bytes: 2.0 * GIB,
        k: 16,
        queries: 1000,
    };
    let large_db = Workload {
        plain_bytes: 32.0 * GIB,
        k: 16,
        queries: 1000,
    };
    CrossoverOutcome {
        knob,
        ifp_wins_small_queries: m.cm_ifp(&small_q).time < m.cm_pum(&small_q).time,
        pum_wins_large_queries: m.cm_pum(&large_q).time < m.cm_ifp(&large_q).time,
        pum_wins_small_db: m.cm_pum(&small_db).time < m.cm_ifp(&small_db).time,
        ifp_wins_large_db: m.cm_ifp(&large_db).time < m.cm_pum(&large_db).time,
    }
}

/// Sweeps the SIMDRAM activation derating (`pum_active_fraction`).
pub fn sweep_pum_fraction(
    constants: &SystemConstants,
    base: &CalibrationProfile,
) -> Vec<CrossoverOutcome> {
    [0.02, 0.04, 0.06, 0.085, 0.12, 0.2, 0.5, 1.0]
        .iter()
        .map(|&f| {
            let mut cal = *base;
            cal.pum_active_fraction = f;
            outcome_for(constants, &cal, f)
        })
        .collect()
}

/// Sweeps the CM-SW Hom-Add streaming rate (seconds per 8 KiB ciphertext).
pub fn sweep_cmsw_rate(
    constants: &SystemConstants,
    base: &CalibrationProfile,
) -> Vec<CrossoverOutcome> {
    [1.0e-6, 3.0e-6, 10.0e-6, 40.0e-6, 100.0e-6]
        .iter()
        .map(|&t| {
            let mut cal = *base;
            cal.t_hom_add_1024 = t;
            outcome_for(constants, &cal, t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_knobs_satisfy_all_crossovers() {
        let c = SystemConstants::paper_default();
        let out = outcome_for(&c, &CalibrationProfile::paper_rates(), 0.0);
        assert!(out.all_hold(), "{out:?}");
    }

    #[test]
    fn crossovers_require_a_pum_derating_window() {
        // The reproduction's most interesting finding (EXPERIMENTS.md):
        // the four crossover claims only coexist in a narrow SIMDRAM
        // derating window. Below it, CM-PuM's compute is too slow to win
        // anywhere; above it (toward Table 3's raw bbop throughput),
        // CM-PuM would beat CM-IFP at *every* size and Fig. 12's
        // conclusion would invert. The monotone structure is asserted
        // here.
        let c = SystemConstants::paper_default();
        let outs = sweep_pum_fraction(&c, &CalibrationProfile::paper_rates());
        // IFP's wins are monotonically lost as PuM speeds up...
        let ifp_large: Vec<bool> = outs.iter().map(|o| o.ifp_wins_large_db).collect();
        assert!(ifp_large.windows(2).all(|w| w[0] || !w[1]), "{ifp_large:?}");
        // ...and PuM's wins are monotonically gained.
        let pum_large_q: Vec<bool> = outs.iter().map(|o| o.pum_wins_large_queries).collect();
        assert!(
            pum_large_q.windows(2).all(|w| !w[0] || w[1]),
            "{pum_large_q:?}"
        );
        // Both regimes are non-empty, and at least one knob value (the
        // default) satisfies everything at once.
        assert!(ifp_large.iter().any(|&b| b) && ifp_large.iter().any(|&b| !b));
        assert!(
            outs.iter().any(|o| o.all_hold()),
            "no knob satisfies all claims"
        );
    }

    #[test]
    fn cmsw_rate_does_not_affect_ndp_orderings() {
        // The CM-SW baseline rate scales every speedup but cannot change
        // which NDP system wins: orderings are rate-invariant.
        let c = SystemConstants::paper_default();
        let outs = sweep_cmsw_rate(&c, &CalibrationProfile::paper_rates());
        let first = outs[0];
        for o in &outs {
            assert_eq!(o.ifp_wins_small_queries, first.ifp_wins_small_queries);
            assert_eq!(o.pum_wins_large_queries, first.pum_wins_large_queries);
            assert_eq!(o.pum_wins_small_db, first.pum_wins_small_db);
            assert_eq!(o.ifp_wins_large_db, first.ifp_wins_large_db);
        }
    }
}
