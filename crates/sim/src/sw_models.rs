//! Analytical cost models of the three software approaches (Figures 7–9).
//!
//! Each model projects the measured per-operation costs
//! ([`CalibrationProfile`]) onto arbitrary database sizes with the §3.2
//! data-movement structure: databases stream from the SSD once per query
//! when they exceed DRAM, and every query variant (shift) re-touches the
//! cached data.

use crate::calibration::CalibrationProfile;
use crate::constants::SystemConstants;

/// A workload point: plaintext database size, query length, query count.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Plaintext database size in bytes.
    pub plain_bytes: f64,
    /// Query length in bits.
    pub k: usize,
    /// Number of queries.
    pub queries: u64,
}

/// Time + energy of one approach on one workload.
#[derive(Debug, Clone, Copy)]
pub struct Cost {
    /// Execution time, seconds.
    pub time: f64,
    /// Energy, joules.
    pub energy: f64,
    /// Encrypted database footprint, bytes.
    pub footprint: f64,
}

impl Cost {
    /// Speedup of `self` relative to a baseline (>1 means faster).
    pub fn speedup_vs(&self, baseline: &Cost) -> f64 {
        baseline.time / self.time
    }

    /// Energy reduction relative to a baseline (>1 means less energy).
    pub fn energy_reduction_vs(&self, baseline: &Cost) -> f64 {
        baseline.energy / self.energy
    }
}

/// The software-approaches model.
#[derive(Debug, Clone)]
pub struct SwModels {
    /// Platform constants.
    pub constants: SystemConstants,
    /// Measured per-op costs.
    pub calibration: CalibrationProfile,
}

impl SwModels {
    /// Creates the model set.
    pub fn new(constants: SystemConstants, calibration: CalibrationProfile) -> Self {
        Self {
            constants,
            calibration,
        }
    }

    /// I/O time to make `enc` encrypted bytes available per query: loaded
    /// once if they fit in DRAM, re-streamed per query otherwise.
    fn io_time(&self, enc: f64, queries: u64) -> f64 {
        if enc <= self.constants.dram_capacity {
            enc / self.constants.pcie_bw
        } else {
            queries as f64 * enc / self.constants.pcie_bw
        }
    }

    fn energy(&self, compute_time: f64, io_time: f64, total: f64) -> f64 {
        compute_time * self.constants.cpu_power
            + io_time * self.constants.ssd_power
            + total * self.constants.dram_power
    }

    /// CM-SW: dense packing (4x), `Hom-Add`-only passes.
    pub fn cmsw(&self, w: &Workload) -> Cost {
        let enc = 4.0 * w.plain_bytes;
        let passes = self.calibration.pass_model.passes(w.k, 16) * w.queries;
        let compute = passes as f64 * enc / self.calibration.cmsw_add_bw();
        let io = self.io_time(enc, w.queries);
        let time = compute + io;
        Cost {
            time,
            energy: self.energy(compute, io, time),
            footprint: enc,
        }
    }

    /// Arithmetic baseline (Yasuda \[27\]): single-bit packing (n = 2048,
    /// 56-bit q → 112x footprint), 2 Hom-Mul + 3 Hom-Add per overlapping
    /// block, per query.
    pub fn yasuda(&self, w: &Workload) -> Cost {
        let n = 2048.0;
        let plain_bits = w.plain_bytes * 8.0;
        let block_bytes = 2.0 * n * 7.0; // two 56-bit-coeff polynomials
        let stride = n - (w.k as f64 - 1.0);
        let blocks = ((plain_bits - w.k as f64 + 1.0) / stride).ceil().max(1.0);
        let enc = blocks * block_bytes;
        let per_query = blocks
            * (2.0 * self.calibration.t_hom_mult_2048 + 3.0 * self.calibration.t_hom_add_2048);
        let compute = w.queries as f64 * per_query;
        let io = self.io_time(enc, w.queries);
        let time = compute + io;
        Cost {
            time,
            energy: self.energy(compute, io, time),
            footprint: enc,
        }
    }

    /// Boolean baseline (Aziz \[17\] / Pradel \[33\]): per-bit TFHE, one
    /// bootstrapped gate per XNOR/AND, `(m - k + 1)(2k - 1)` gates per
    /// query.
    pub fn boolean(&self, w: &Workload) -> Cost {
        let plain_bits = w.plain_bytes * 8.0;
        let windows = (plain_bits - w.k as f64 + 1.0).max(0.0);
        let gates = windows * (2.0 * w.k as f64 - 1.0);
        let enc = plain_bits * 631.0 * 4.0; // (n_lwe + 1) u32 words per bit
        let compute = w.queries as f64 * gates * self.calibration.t_tfhe_gate;
        let io = self.io_time(enc, w.queries);
        let time = compute + io;
        Cost {
            time,
            energy: self.energy(compute, io, time),
            footprint: enc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> SwModels {
        SwModels::new(
            SystemConstants::paper_default(),
            CalibrationProfile::default_measured(),
        )
    }

    fn w(plain_gb: f64, k: usize, queries: u64) -> Workload {
        Workload {
            plain_bytes: plain_gb * crate::constants::GIB,
            k,
            queries,
        }
    }

    #[test]
    fn ordering_cmsw_yasuda_boolean() {
        let m = models();
        for k in [16usize, 32, 64, 128, 256] {
            let wl = w(32.0, k, 1);
            let cm = m.cmsw(&wl);
            let ya = m.yasuda(&wl);
            let bo = m.boolean(&wl);
            assert!(cm.time < ya.time, "k={k}: CM-SW must beat arithmetic");
            assert!(ya.time < bo.time, "k={k}: arithmetic must beat Boolean");
            // Paper-scale ratios: tens-x over arithmetic, >=10^4x over
            // Boolean.
            let vs_arith = cm.speedup_vs(&ya);
            let vs_bool = cm.speedup_vs(&bo);
            assert!(
                (5.0..5000.0).contains(&vs_arith),
                "k={k}: vs arith {vs_arith}"
            );
            assert!(vs_bool > 1e4, "k={k}: vs boolean {vs_bool}");
        }
    }

    #[test]
    fn footprints_match_packing_claims() {
        let m = models();
        let wl = w(1.0, 16, 1);
        let cm = m.cmsw(&wl);
        let ya = m.yasuda(&wl);
        let bo = m.boolean(&wl);
        // 4x for dense packing; ~112x for single-bit; >200x for per-bit
        // TFHE (paper §3.1 / §4.2.1).
        assert!((cm.footprint / wl.plain_bytes - 4.0).abs() < 0.01);
        let ya_ratio = ya.footprint / wl.plain_bytes;
        assert!((60.0..150.0).contains(&ya_ratio), "yasuda ratio {ya_ratio}");
        assert!(bo.footprint / wl.plain_bytes > 200.0);
    }

    #[test]
    fn energy_ordering_follows_time() {
        let m = models();
        let wl = w(32.0, 64, 1);
        assert!(m.cmsw(&wl).energy < m.yasuda(&wl).energy);
        assert!(m.yasuda(&wl).energy < m.boolean(&wl).energy);
    }

    #[test]
    fn dram_capacity_kink_in_cmsw() {
        // Beyond 32 GB encrypted (8 GB plain x4), multi-query workloads
        // re-stream from the SSD: normalized per-query time jumps (the
        // Fig. 9 dip). Use a fast-CPU profile so the I/O term is visible,
        // as in the paper's multi-threaded Fig. 9 setup.
        let mut cal = CalibrationProfile::default_measured();
        cal.t_hom_add_1024 = 0.4e-6;
        let m = SwModels::new(SystemConstants::paper_default(), cal);
        let per_query = |plain_gb: f64| {
            let wl = w(plain_gb, 16, 1000);
            m.cmsw(&wl).time / 1000.0 / plain_gb
        };
        let small = per_query(4.0); // 16 GB encrypted: fits
        let large = per_query(16.0); // 64 GB encrypted: streams
        assert!(large > small * 1.05, "no capacity kink: {small} vs {large}");
    }

    #[test]
    fn boolean_gate_count_dominates() {
        let m = models();
        let wl = w(0.001, 32, 1);
        let bo = m.boolean(&wl);
        // ~8.4 M bits -> ~5e8 gates at 0.5 s/gate: compute-bound.
        assert!(bo.time > 1e6);
    }
}
