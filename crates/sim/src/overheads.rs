//! Overhead analysis of CM-IFP (paper §6.3, §7.1, §7.2).

use cm_flash::FlashGeometry;

/// Storage overheads of enabling CIPHERMATCH in an SSD (§6.3).
#[derive(Debug, Clone, Copy)]
pub struct StorageOverheads {
    /// Internal-DRAM bytes buffering homomorphic-addition results
    /// (one page per plane).
    pub result_buffer_bytes: usize,
    /// Internal-DRAM bytes holding the `bop_add` µ-program.
    pub microprogram_bytes: usize,
    /// Capacity factor lost by running the CIPHERMATCH region in SLC
    /// instead of TLC mode (3 bits -> 1 bit per cell).
    pub slc_capacity_factor: f64,
}

/// Computes the §6.3 storage overheads for a geometry.
pub fn storage_overheads(geometry: &FlashGeometry) -> StorageOverheads {
    StorageOverheads {
        // 4 KiB (page) × channels × dies × planes.
        result_buffer_bytes: geometry.page_bytes * geometry.total_planes(),
        microprogram_bytes: 1024, // "less than 1 KB" (§6.3)
        slc_capacity_factor: 3.0,
    }
}

/// Area overheads (§6.3, §7.1, §7.2).
#[derive(Debug, Clone, Copy)]
pub struct AreaOverheads {
    /// NAND peripheral modification (ParaBit transistors), fraction of die
    /// area.
    pub nand_periphery_fraction: f64,
    /// Hardware transposition unit (§7.1), mm² in 22 nm.
    pub transposition_unit_mm2: f64,
    /// Hardware transposition unit latency per 4 KiB, seconds.
    pub transposition_latency: f64,
    /// AES-256 engine (§7.2), mm² in 22 nm.
    pub aes_mm2: f64,
    /// AES-256 latency per 16-byte block, seconds.
    pub aes_block_latency: f64,
}

/// The paper's synthesis estimates.
pub fn area_overheads() -> AreaOverheads {
    AreaOverheads {
        nand_periphery_fraction: 0.006,
        transposition_unit_mm2: 0.24,
        transposition_latency: 158e-9,
        aes_mm2: 0.13,
        aes_block_latency: 12.6e-9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_buffer_matches_paper_half_mb() {
        // §6.3: 4 KB × 8 channels × 8 dies × 2 planes = 0.5 MB.
        let o = storage_overheads(&FlashGeometry::paper_default());
        assert_eq!(o.result_buffer_bytes, 4096 * 8 * 8 * 2);
        assert_eq!(o.result_buffer_bytes, 512 * 1024);
        assert!(o.microprogram_bytes <= 1024);
    }

    #[test]
    fn area_numbers_match_paper() {
        let a = area_overheads();
        assert!((a.nand_periphery_fraction - 0.006).abs() < 1e-12);
        assert!((a.transposition_unit_mm2 - 0.24).abs() < 1e-12);
        assert!((a.transposition_latency - 158e-9).abs() < 1e-15);
        assert!((a.aes_mm2 - 0.13).abs() < 1e-12);
        assert!((a.aes_block_latency - 12.6e-9).abs() < 1e-15);
    }

    #[test]
    fn hw_transposition_hides_under_z_nand_reads() {
        // §7.1: with 3 µs Z-NAND reads, only the hardware unit still hides.
        let a = area_overheads();
        let z_nand_read = 3e-6;
        let software_latency = 13.6e-6;
        assert!(a.transposition_latency < z_nand_read);
        assert!(
            software_latency > z_nand_read,
            "software unit cannot hide under Z-NAND"
        );
    }
}
