//! Analytical cost models of the hardware CIPHERMATCH variants
//! (Figures 10–12): CM-PuM, CM-PuM-SSD and CM-IFP against the simulated
//! CM-SW baseline (§5.2).
//!
//! Modeling choices (recorded in EXPERIMENTS.md):
//!
//! * Within one query, all shift variants are tiled over the data — the
//!   database is streamed (or flash-read) once per query and every variant
//!   is applied to the resident chunk. For CM-IFP this amortizes the
//!   22.5 µs SLC read across variants (only the latch ops and DMAs repeat).
//! * Queries arrive online. The host-side systems (CM-SW, CM-PuM) re-fetch
//!   databases larger than DRAM per query; the in-storage systems
//!   (CM-PuM-SSD, CM-IFP) schedule the whole batch inside the drive.
//! * External-DRAM bulk ops are derated by
//!   [`CalibrationProfile::pum_active_fraction`] (activation-power limits);
//!   the SSD-internal LPDDR runs un-derated under controller scheduling.

use crate::calibration::CalibrationProfile;
use crate::constants::SystemConstants;
use crate::sw_models::{Cost, Workload};

/// The hardware-variants model.
#[derive(Debug, Clone)]
pub struct HwModels {
    /// Platform constants.
    pub constants: SystemConstants,
    /// Calibration knobs.
    pub calibration: CalibrationProfile,
}

impl HwModels {
    /// Creates the model set.
    pub fn new(constants: SystemConstants, calibration: CalibrationProfile) -> Self {
        Self {
            constants,
            calibration,
        }
    }

    fn passes(&self, k: usize) -> f64 {
        self.calibration.pass_model.passes(k, 16) as f64
    }

    /// Flash array read energy for streaming `bytes` out of NAND
    /// (`E_read / page` amortized per byte).
    fn flash_read_energy(&self, bytes: f64) -> f64 {
        let c = &self.constants;
        bytes * c.flash_e.e_read_slc / c.geometry.page_bytes as f64
    }

    /// CM-SW as simulated for the hardware comparison (footnote 2 of the
    /// paper: CPU compute + DRAM + SSD + I/O, variants tiled per query).
    pub fn cmsw_baseline(&self, w: &Workload) -> Cost {
        let c = &self.constants;
        let enc = 4.0 * w.plain_bytes;
        let v = self.passes(w.k);
        let io = if enc <= c.dram_capacity {
            enc / c.pcie_bw
        } else {
            w.queries as f64 * enc / c.pcie_bw
        };
        let compute = w.queries as f64 * v * enc / self.calibration.cmsw_add_bw();
        let time = io + compute;
        let io_bytes = io * c.pcie_bw;
        let energy = compute * c.cpu_power + time * c.dram_power + self.flash_read_energy(io_bytes);
        Cost {
            time,
            energy,
            footprint: enc,
        }
    }

    /// CM-PuM: SIMDRAM bit-serial addition in external DDR4.
    pub fn cm_pum(&self, w: &Workload) -> Cost {
        let c = &self.constants;
        let enc = 4.0 * w.plain_bytes;
        let v = self.passes(w.k);
        let compute_bw = c.pum_ext.add_throughput() * self.calibration.pum_active_fraction;
        let io = if enc <= c.pum_ext.capacity_bytes as f64 {
            enc / c.pcie_bw
        } else {
            w.queries as f64 * enc / c.pcie_bw
        };
        let compute = w.queries as f64 * v * enc / compute_bw;
        let time = io + compute;
        let elements = (enc / 4.0) as u64;
        // In-array bbop energy plus DRAM array traffic (triple-row
        // activation per add: two operands, one result).
        let bbop_energy = w.queries as f64 * v * c.pum_ext.add_energy(elements, 32);
        let array_energy = w.queries as f64 * v * enc * 3.0 * c.dram_energy_per_byte;
        let energy = bbop_energy
            + array_energy
            + self.flash_read_energy(io * c.pcie_bw)
            + time * c.dram_power;
        Cost {
            time,
            energy,
            footprint: enc,
        }
    }

    /// CM-PuM-SSD: SIMDRAM semantics in the SSD-internal LPDDR4, fed over
    /// the internal NAND channels, batch-scheduled by the controller.
    pub fn cm_pum_ssd(&self, w: &Workload) -> Cost {
        let c = &self.constants;
        let enc = 4.0 * w.plain_bytes;
        let v = self.passes(w.k);
        let compute_bw = c.pum_int.add_throughput();
        // Controller tiles the whole query batch: one pass over flash.
        let io = enc / c.nand_bw();
        let compute = w.queries as f64 * v * enc / compute_bw;
        let time = io + compute;
        let elements = (enc / 4.0) as u64;
        let bbop_energy = w.queries as f64 * v * c.pum_int.add_energy(elements, 32);
        let array_energy = w.queries as f64 * v * enc * 3.0 * c.dram_energy_per_byte;
        let energy = bbop_energy
            + array_energy
            + self.flash_read_energy(enc)
            + time * (c.controller_power + c.internal_dram_power);
        Cost {
            time,
            energy,
            footprint: enc,
        }
    }

    /// CM-IFP: bit-serial addition inside the flash arrays (Eq. 9–11),
    /// with the SLC read shared by all variants of a query.
    pub fn cm_ifp(&self, w: &Workload) -> Cost {
        let c = &self.constants;
        let enc = 4.0 * w.plain_bytes;
        let v = self.passes(w.k);
        let coeffs = enc / 4.0;
        let lanes = (c.geometry.total_planes() * c.geometry.page_bits()) as f64;
        let rounds = (coeffs / lanes).ceil();
        let bit_steps = rounds * 32.0;
        // Per bit-step: one flash read, then per variant the latch ops and
        // the two DMAs (query bit in, sum bit out).
        let latch_and_dma = c.flash_t.t_bit_add() - c.flash_t.t_read_slc;
        let step_time = c.flash_t.t_read_slc + v * latch_and_dma;
        let time = w.queries as f64 * bit_steps * step_time;
        // Energy: per-channel accounting (Table 3 units are µJ/channel).
        let page_kb = c.geometry.page_bytes as f64 / 1024.0;
        let e_rest = c.flash_e.e_bit_add(page_kb) - c.flash_e.e_read_slc;
        let step_energy = c.geometry.channels as f64 * (c.flash_e.e_read_slc + v * e_rest);
        let energy = w.queries as f64 * bit_steps * step_energy + time * c.controller_power;
        Cost {
            time,
            energy,
            footprint: enc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::GIB;

    fn models() -> HwModels {
        HwModels::new(
            SystemConstants::paper_default(),
            CalibrationProfile::default_measured(),
        )
    }

    fn w(enc_gb: f64, k: usize, queries: u64) -> Workload {
        Workload {
            plain_bytes: enc_gb * GIB / 4.0,
            k,
            queries,
        }
    }

    #[test]
    fn all_ndp_variants_beat_cmsw() {
        let m = models();
        for k in [16usize, 64, 256] {
            let wl = w(128.0, k, 1);
            let sw = m.cmsw_baseline(&wl);
            for (name, cost) in [
                ("pum", m.cm_pum(&wl)),
                ("pum-ssd", m.cm_pum_ssd(&wl)),
                ("ifp", m.cm_ifp(&wl)),
            ] {
                assert!(
                    cost.time < sw.time,
                    "k={k}: {name} ({}) must beat CM-SW ({})",
                    cost.time,
                    sw.time
                );
            }
        }
    }

    #[test]
    fn fig10_ifp_wins_small_queries_pum_wins_large() {
        // Paper Fig. 10: CM-IFP leads at 16-bit queries; CM-PuM overtakes
        // at 256-bit.
        let m = models();
        let small = w(128.0, 16, 1);
        assert!(
            m.cm_ifp(&small).time < m.cm_pum(&small).time,
            "IFP must win at k=16"
        );
        let large = w(128.0, 256, 1);
        assert!(
            m.cm_pum(&large).time < m.cm_ifp(&large).time,
            "PuM must win at k=256"
        );
    }

    #[test]
    fn fig12_crossover_at_dram_capacity() {
        // Paper Fig. 12 (1000 queries, 16-bit): CM-PuM wins while the
        // encrypted DB fits in 32 GB DRAM; CM-IFP wins beyond.
        let m = models();
        let small = w(8.0, 16, 1000);
        assert!(
            m.cm_pum(&small).time < m.cm_ifp(&small).time,
            "PuM must win at 8 GB"
        );
        let large = w(128.0, 16, 1000);
        assert!(
            m.cm_ifp(&large).time < m.cm_pum(&large).time,
            "IFP must win at 128 GB"
        );
    }

    #[test]
    fn ifp_energy_reduction_is_largest() {
        // Paper Fig. 11: CM-IFP has the best energy reduction across query
        // sizes.
        let m = models();
        for k in [16usize, 64, 256] {
            let wl = w(128.0, k, 1);
            let sw = m.cmsw_baseline(&wl);
            let ifp = m.cm_ifp(&wl).energy_reduction_vs(&sw);
            let pum = m.cm_pum(&wl).energy_reduction_vs(&sw);
            let pum_ssd = m.cm_pum_ssd(&wl).energy_reduction_vs(&sw);
            assert!(ifp > pum, "k={k}: ifp {ifp} vs pum {pum}");
            assert!(ifp > 10.0, "k={k}: ifp reduction {ifp} too small");
            // Paper: CM-PuM-SSD is more energy-efficient than CM-PuM.
            assert!(pum_ssd > pum, "k={k}: pum-ssd {pum_ssd} vs pum {pum}");
        }
    }

    #[test]
    fn pum_ssd_sits_between_on_large_databases() {
        // Paper Fig. 12 at 128 GB: CM-IFP > CM-PuM-SSD > CM-PuM.
        let m = models();
        let wl = w(128.0, 16, 1000);
        let ifp = m.cm_ifp(&wl).time;
        let pum_ssd = m.cm_pum_ssd(&wl).time;
        let pum = m.cm_pum(&wl).time;
        assert!(
            ifp < pum_ssd && pum_ssd < pum,
            "ifp {ifp} pum_ssd {pum_ssd} pum {pum}"
        );
    }

    #[test]
    fn eq9_consistency_single_variant() {
        // With one variant, the per-bit-step cost must equal Eq. 9.
        let m = models();
        let c = &m.constants;
        let latch_and_dma = c.flash_t.t_bit_add() - c.flash_t.t_read_slc;
        let step = c.flash_t.t_read_slc + 1.0 * latch_and_dma;
        assert!((step - c.flash_t.t_bit_add()).abs() < 1e-15);
    }
}
