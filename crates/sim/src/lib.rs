#![warn(missing_docs)]

//! # cm-sim
//!
//! The analytical performance and energy models that reproduce the
//! CIPHERMATCH evaluation (paper §5–§6): the data-movement model behind
//! Figure 3, the software-approach models behind Figures 7–9, the
//! hardware-variant models (CM-PuM / CM-PuM-SSD / CM-IFP) behind
//! Figures 10–12, and the §6.3/§7 overhead analysis.
//!
//! Models are parameterized by [`SystemConstants`] (Tables 2–3 verbatim)
//! and a [`CalibrationProfile`] carrying measured per-operation costs —
//! either this repository's own measured rates
//! ([`CalibrationProfile::default_measured`]) or rates back-derived from
//! the paper's data points ([`CalibrationProfile::paper_rates`]).
//!
//! ## Example
//!
//! ```
//! use cm_sim::{fig12, CalibrationProfile, SystemConstants};
//!
//! let rows = fig12(&SystemConstants::paper_default(),
//!                  &CalibrationProfile::paper_rates());
//! // The Fig. 12 crossover: CM-PuM wins while the database fits in DRAM,
//! // CM-IFP wins at 128 GB.
//! assert!(rows[0].pum > rows[0].ifp);
//! assert!(rows.last().unwrap().ifp > rows.last().unwrap().pum);
//! ```

mod calibration;
mod constants;
mod datamove;
mod figures;
mod hw_models;
mod overheads;
mod sensitivity;
mod sw_models;

pub use calibration::{CalibrationProfile, PassModel};
pub use constants::{HostProfile, SystemConstants, GIB};
pub use datamove::{DataMoveModel, TransferLatency};
pub use figures::{
    fig10, fig11, fig12, fig3, fig7, fig8, fig9, Fig3Row, Fig9Row, HwSweepRow, SwSweepRow,
    DB_SIZES_GB, QUERY_SIZES,
};
pub use hw_models::HwModels;
pub use overheads::{area_overheads, storage_overheads, AreaOverheads, StorageOverheads};
pub use sensitivity::{sweep_cmsw_rate, sweep_pum_fraction, CrossoverOutcome};
pub use sw_models::{Cost, SwModels, Workload};
