//! Property-based tests for the math substrate: ring axioms, NTT
//! consistency, and exact wide multiplication.

use cm_hemath::{
    find_ntt_prime, schoolbook_exact_negacyclic, schoolbook_negacyclic_mul, Modulus, Poly,
    RingContext, WideMultiplier,
};
use proptest::prelude::*;

const N: usize = 32;

fn ring() -> RingContext {
    RingContext::new(Modulus::new(find_ntt_prime(30, N)), N)
}

fn arb_poly() -> impl Strategy<Value = Vec<u64>> {
    let q = find_ntt_prime(30, N);
    prop::collection::vec(0..q, N)
}

fn arb_signed(bound: i64) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-bound..=bound, N)
}

proptest! {
    #[test]
    fn addition_is_commutative(a in arb_poly(), b in arb_poly()) {
        let r = ring();
        let pa = Poly::from_coeffs(a);
        let pb = Poly::from_coeffs(b);
        prop_assert_eq!(r.add(&pa, &pb), r.add(&pb, &pa));
    }

    #[test]
    fn addition_is_associative(a in arb_poly(), b in arb_poly(), c in arb_poly()) {
        let r = ring();
        let (pa, pb, pc) = (Poly::from_coeffs(a), Poly::from_coeffs(b), Poly::from_coeffs(c));
        prop_assert_eq!(
            r.add(&r.add(&pa, &pb), &pc),
            r.add(&pa, &r.add(&pb, &pc))
        );
    }

    #[test]
    fn multiplication_is_commutative(a in arb_poly(), b in arb_poly()) {
        let r = ring();
        let pa = Poly::from_coeffs(a);
        let pb = Poly::from_coeffs(b);
        prop_assert_eq!(r.mul(&pa, &pb), r.mul(&pb, &pa));
    }

    #[test]
    fn multiplication_distributes_over_addition(
        a in arb_poly(), b in arb_poly(), c in arb_poly()
    ) {
        let r = ring();
        let (pa, pb, pc) = (Poly::from_coeffs(a), Poly::from_coeffs(b), Poly::from_coeffs(c));
        prop_assert_eq!(
            r.mul(&pa, &r.add(&pb, &pc)),
            r.add(&r.mul(&pa, &pb), &r.mul(&pa, &pc))
        );
    }

    #[test]
    fn ntt_mul_equals_schoolbook(a in arb_poly(), b in arb_poly()) {
        let r = ring();
        let expect = schoolbook_negacyclic_mul(r.modulus(), &a, &b);
        let got = r.mul(&Poly::from_coeffs(a), &Poly::from_coeffs(b));
        prop_assert_eq!(got.coeffs(), &expect[..]);
    }

    #[test]
    fn automorphism_is_additive(a in arb_poly(), b in arb_poly(), gi in 0usize..N) {
        let r = ring();
        let g = 2 * gi + 1; // any odd Galois element
        let pa = Poly::from_coeffs(a);
        let pb = Poly::from_coeffs(b);
        prop_assert_eq!(
            r.automorphism(&r.add(&pa, &pb), g),
            r.add(&r.automorphism(&pa, g), &r.automorphism(&pb, g))
        );
    }

    #[test]
    fn wide_mul_matches_schoolbook(a in arb_signed(1 << 30), b in arb_signed(1 << 30)) {
        let w = WideMultiplier::new(N);
        prop_assert_eq!(w.mul(&a, &b), schoolbook_exact_negacyclic(&a, &b));
    }

    #[test]
    fn centered_lift_roundtrip(a in arb_poly()) {
        let r = ring();
        let p = Poly::from_coeffs(a);
        let centered = r.to_centered(&p);
        prop_assert_eq!(r.from_signed(&centered), p);
    }
}
