//! Property tests pinning the vectorized slice kernels to the scalar
//! reference, and the lazy-reduction NTT to its algebraic definition.
//!
//! The vectorized kernels in `cm_hemath::kernels` are the Hom-Add hot
//! path; the `scalar_ref` module is the boring per-word oracle. Any
//! divergence between the two — including at the edge values `0`, `q-1`,
//! and all-max slices, and for both NTT-friendly and NTT-unfriendly
//! moduli — is a correctness bug, not a performance trade.

use cm_hemath::kernels::{self, scalar_ref};
use cm_hemath::{find_ntt_prime, schoolbook_negacyclic_mul, Modulus, NttTable};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Moduli spanning the interesting regimes: tiny, NTT-friendly for
/// n = 1024 in both the lazy (< 2^62) and exact (>= 2^62) butterfly
/// ranges, an even non-prime, and the largest supported odd value.
fn moduli() -> Vec<Modulus> {
    vec![
        Modulus::new(2),
        Modulus::new(97),
        Modulus::new(12289),
        Modulus::new(find_ntt_prime(30, 1024)),
        Modulus::new(find_ntt_prime(50, 1024)),
        Modulus::new(find_ntt_prime(63, 1024)),
        Modulus::new(1 << 40), // even, non-prime
        Modulus::new((1u64 << 63) - 1),
    ]
}

/// A random reduced slice with edge values salted in: positions are
/// forced to `0`, `q - 1`, or left random, so every run exercises the
/// wrap-around paths of the branchless select idioms.
fn edgy_slice(rng: &mut StdRng, q: u64, len: usize) -> Vec<u64> {
    (0..len)
        .map(|_| match rng.gen_range(0..4u8) {
            0 => 0,
            1 => q - 1,
            _ => rng.gen_range(0..q),
        })
        .collect()
}

proptest! {
    #[test]
    fn elementwise_kernels_match_scalar_reference(
        seed in 0u64..u64::MAX,
        len in 0usize..67,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for modulus in moduli() {
            let q = modulus.value();
            let a = edgy_slice(&mut rng, q, len);
            let b = edgy_slice(&mut rng, q, len);
            // The scalar constant is an arbitrary word: the kernel must
            // reduce it itself.
            let c = rng.gen::<u64>();

            let mut fast = vec![0u64; len];
            let mut slow = vec![0u64; len];

            kernels::add_slices(&modulus, &a, &b, &mut fast);
            scalar_ref::add_slices(&modulus, &a, &b, &mut slow);
            prop_assert_eq!(&fast, &slow, "add, q = {}", q);

            let mut acc_fast = a.clone();
            let mut acc_slow = a.clone();
            kernels::add_assign_slices(&modulus, &mut acc_fast, &b);
            scalar_ref::add_assign_slices(&modulus, &mut acc_slow, &b);
            prop_assert_eq!(&acc_fast, &acc_slow, "add_assign, q = {}", q);
            prop_assert_eq!(&acc_fast, &fast, "add_assign vs add, q = {}", q);

            kernels::sub_slices(&modulus, &a, &b, &mut fast);
            scalar_ref::sub_slices(&modulus, &a, &b, &mut slow);
            prop_assert_eq!(&fast, &slow, "sub, q = {}", q);

            kernels::neg_slice(&modulus, &a, &mut fast);
            scalar_ref::neg_slice(&modulus, &a, &mut slow);
            prop_assert_eq!(&fast, &slow, "neg, q = {}", q);

            kernels::scalar_mul_slice(&modulus, &a, c, &mut fast);
            scalar_ref::scalar_mul_slice(&modulus, &a, c, &mut slow);
            prop_assert_eq!(&fast, &slow, "scalar_mul by {}, q = {}", c, q);

            // Every output word is fully reduced.
            prop_assert!(fast.iter().all(|&x| x < q), "unreduced output, q = {}", q);
        }
    }

    #[test]
    fn all_max_slices_stay_equivalent(len in 1usize..40) {
        // Degenerate slices — all zeros and all q-1 — at every modulus.
        for modulus in moduli() {
            let q = modulus.value();
            for value in [0u64, q - 1] {
                let a = vec![value; len];
                let b = vec![q - 1; len];
                let mut fast = vec![0u64; len];
                let mut slow = vec![0u64; len];
                kernels::add_slices(&modulus, &a, &b, &mut fast);
                scalar_ref::add_slices(&modulus, &a, &b, &mut slow);
                prop_assert_eq!(&fast, &slow);
                kernels::sub_slices(&modulus, &a, &b, &mut fast);
                scalar_ref::sub_slices(&modulus, &a, &b, &mut slow);
                prop_assert_eq!(&fast, &slow);
                kernels::scalar_mul_slice(&modulus, &a, u64::MAX, &mut fast);
                scalar_ref::scalar_mul_slice(&modulus, &a, u64::MAX, &mut slow);
                prop_assert_eq!(&fast, &slow);
            }
        }
    }

    #[test]
    fn ntt_round_trips_on_random_slices(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 64;
        // Lazy-butterfly range and exact-butterfly range.
        for bits in [14u32, 45, 63] {
            let modulus = Modulus::new(find_ntt_prime(bits, n));
            let q = modulus.value();
            let table = NttTable::new(modulus, n);
            for _ in 0..4 {
                let a = edgy_slice(&mut rng, q, n);
                let mut x = a.clone();
                table.forward(&mut x);
                prop_assert!(x.iter().all(|&w| w < q), "forward unreduced, q = {}", q);
                table.inverse(&mut x);
                prop_assert_eq!(&x, &a, "round trip, q = {}", q);
            }
        }
    }

    #[test]
    fn ntt_multiply_matches_schoolbook(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 32;
        for bits in [20u32, 58, 63] {
            let modulus = Modulus::new(find_ntt_prime(bits, n));
            let q = modulus.value();
            let table = NttTable::new(modulus, n);
            let a = edgy_slice(&mut rng, q, n);
            let b = edgy_slice(&mut rng, q, n);
            let fast = table.negacyclic_mul(&a, &b);
            let slow = schoolbook_negacyclic_mul(&modulus, &a, &b);
            prop_assert_eq!(&fast, &slow, "negacyclic mul, q = {}", q);
        }
    }
}
