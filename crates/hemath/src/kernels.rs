//! Flat-slice modular kernels: the vectorizable inner loops every ring
//! operation in this workspace bottoms out in.
//!
//! CIPHERMATCH's dense packing reduces secure matching to *nothing but
//! wide modular additions*, so the add sweep is the serving hot path.
//! These kernels take plain `&[u64]` slices and use branchless
//! select/min idioms (`s.min(s.wrapping_sub(q))` instead of
//! `if s >= q { s - q }`) in `chunks_exact` bodies, which LLVM
//! autovectorizes into full-width SIMD compares and selects. The
//! wrapping tricks are sound because every modulus is below `2^63`
//! (see [`Modulus::new`]), leaving a slack bit for `a + b`.
//!
//! [`scalar_ref`] keeps the obvious one-coefficient-at-a-time versions
//! built on [`Modulus`]'s branchy primitives. They are the equivalence
//! oracle for the proptests in `tests/kernel_equivalence.rs` and the
//! baseline the `hot_path` bench measures speedups against; they must
//! never be "optimized".

use crate::modulus::Modulus;

/// Unroll width for the `chunks_exact` kernel bodies. Eight 64-bit
/// lanes cover one AVX-512 register or two AVX2 / NEON registers;
/// the point is a fixed-trip-count inner loop the autovectorizer can
/// flatten, not a hand-tuned width.
const LANES: usize = 8;

/// Asserts the three slices of one binary kernel agree in length.
#[inline]
fn check_binary(a: &[u64], b: &[u64], out: &[u64]) {
    assert_eq!(a.len(), b.len(), "kernel input lengths differ");
    assert_eq!(a.len(), out.len(), "kernel output length differs");
}

/// Branchless `x + y mod q` for reduced operands.
///
/// `x + y < 2q < 2^64` cannot overflow; when the sum is below `q` the
/// wrapping subtraction underflows to a huge value and `min` keeps the
/// sum, otherwise it keeps the reduced difference.
#[inline(always)]
fn add_mod(q: u64, x: u64, y: u64) -> u64 {
    let s = x + y;
    s.min(s.wrapping_sub(q))
}

/// Branchless `x - y mod q` for reduced operands.
#[inline(always)]
fn sub_mod(q: u64, x: u64, y: u64) -> u64 {
    let d = x.wrapping_sub(y);
    d.min(d.wrapping_add(q))
}

/// Branchless `-x mod q` for a reduced operand: `q - x` masked to zero
/// when `x == 0`.
#[inline(always)]
fn neg_mod(q: u64, x: u64) -> u64 {
    (q - x) & ((x != 0) as u64).wrapping_neg()
}

/// Branchless Shoup multiply by a fixed reduced constant `c`:
/// the quotient estimate leaves the result in `[0, 2q)`, closed by one
/// select. Sound for any `x < 2^64`.
#[inline(always)]
fn mul_shoup_mod(q: u64, x: u64, c: u64, c_shoup: u64) -> u64 {
    let quot = ((x as u128 * c_shoup as u128) >> 64) as u64;
    let r = x.wrapping_mul(c).wrapping_sub(quot.wrapping_mul(q));
    r.min(r.wrapping_sub(q))
}

/// `out[i] = a[i] + b[i] mod q`, element-wise over reduced slices.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add_slices(modulus: &Modulus, a: &[u64], b: &[u64], out: &mut [u64]) {
    check_binary(a, b, out);
    let q = modulus.value();
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    let mut oc = out.chunks_exact_mut(LANES);
    for ((xa, xb), xo) in (&mut ac).zip(&mut bc).zip(&mut oc) {
        for i in 0..LANES {
            xo[i] = add_mod(q, xa[i], xb[i]);
        }
    }
    for ((&x, &y), o) in ac
        .remainder()
        .iter()
        .zip(bc.remainder())
        .zip(oc.into_remainder())
    {
        *o = add_mod(q, x, y);
    }
}

/// `acc[i] = acc[i] + b[i] mod q` in place — the Hom-Add sweep kernel.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn add_assign_slices(modulus: &Modulus, acc: &mut [u64], b: &[u64]) {
    assert_eq!(acc.len(), b.len(), "kernel input lengths differ");
    let q = modulus.value();
    let mut acc_c = acc.chunks_exact_mut(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (xa, xb) in (&mut acc_c).zip(&mut bc) {
        for i in 0..LANES {
            xa[i] = add_mod(q, xa[i], xb[i]);
        }
    }
    for (x, &y) in acc_c.into_remainder().iter_mut().zip(bc.remainder()) {
        *x = add_mod(q, *x, y);
    }
}

/// `out[i] = a[i] - b[i] mod q`, element-wise over reduced slices.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn sub_slices(modulus: &Modulus, a: &[u64], b: &[u64], out: &mut [u64]) {
    check_binary(a, b, out);
    let q = modulus.value();
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    let mut oc = out.chunks_exact_mut(LANES);
    for ((xa, xb), xo) in (&mut ac).zip(&mut bc).zip(&mut oc) {
        for i in 0..LANES {
            xo[i] = sub_mod(q, xa[i], xb[i]);
        }
    }
    for ((&x, &y), o) in ac
        .remainder()
        .iter()
        .zip(bc.remainder())
        .zip(oc.into_remainder())
    {
        *o = sub_mod(q, x, y);
    }
}

/// `out[i] = -a[i] mod q`, element-wise over a reduced slice.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn neg_slice(modulus: &Modulus, a: &[u64], out: &mut [u64]) {
    assert_eq!(a.len(), out.len(), "kernel output length differs");
    let q = modulus.value();
    let mut ac = a.chunks_exact(LANES);
    let mut oc = out.chunks_exact_mut(LANES);
    for (xa, xo) in (&mut ac).zip(&mut oc) {
        for i in 0..LANES {
            xo[i] = neg_mod(q, xa[i]);
        }
    }
    for (&x, o) in ac.remainder().iter().zip(oc.into_remainder()) {
        *o = neg_mod(q, x);
    }
}

/// `out[i] = a[i] * c mod q` for a scalar `c` (reduced internally),
/// via one Shoup precomputation amortized over the whole slice.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn scalar_mul_slice(modulus: &Modulus, a: &[u64], c: u64, out: &mut [u64]) {
    assert_eq!(a.len(), out.len(), "kernel output length differs");
    let q = modulus.value();
    let c = modulus.reduce(c);
    let c_shoup = modulus.shoup(c);
    let mut ac = a.chunks_exact(LANES);
    let mut oc = out.chunks_exact_mut(LANES);
    for (xa, xo) in (&mut ac).zip(&mut oc) {
        for i in 0..LANES {
            xo[i] = mul_shoup_mod(q, xa[i], c, c_shoup);
        }
    }
    for (&x, o) in ac.remainder().iter().zip(oc.into_remainder()) {
        *o = mul_shoup_mod(q, x, c, c_shoup);
    }
}

/// The one-coefficient-at-a-time reference kernels, built directly on
/// [`Modulus`]'s branchy scalar primitives.
///
/// These mirror the vectorized kernels' signatures exactly, serve as
/// the oracle in the kernel-equivalence proptests, and are the baseline
/// the `hot_path` bench measures the vectorized sweep against. Keep
/// them boring.
pub mod scalar_ref {
    use crate::modulus::Modulus;

    /// Reference `out[i] = a[i] + b[i] mod q`.
    pub fn add_slices(modulus: &Modulus, a: &[u64], b: &[u64], out: &mut [u64]) {
        super::check_binary(a, b, out);
        for ((&x, &y), o) in a.iter().zip(b).zip(out) {
            *o = modulus.add(x, y);
        }
    }

    /// Reference in-place `acc[i] += b[i] mod q`.
    pub fn add_assign_slices(modulus: &Modulus, acc: &mut [u64], b: &[u64]) {
        assert_eq!(acc.len(), b.len(), "kernel input lengths differ");
        for (x, &y) in acc.iter_mut().zip(b) {
            *x = modulus.add(*x, y);
        }
    }

    /// Reference `out[i] = a[i] - b[i] mod q`.
    pub fn sub_slices(modulus: &Modulus, a: &[u64], b: &[u64], out: &mut [u64]) {
        super::check_binary(a, b, out);
        for ((&x, &y), o) in a.iter().zip(b).zip(out) {
            *o = modulus.sub(x, y);
        }
    }

    /// Reference `out[i] = -a[i] mod q`.
    pub fn neg_slice(modulus: &Modulus, a: &[u64], out: &mut [u64]) {
        assert_eq!(a.len(), out.len(), "kernel output length differs");
        for (&x, o) in a.iter().zip(out) {
            *o = modulus.neg(x);
        }
    }

    /// Reference `out[i] = a[i] * c mod q` via Barrett multiplication.
    pub fn scalar_mul_slice(modulus: &Modulus, a: &[u64], c: u64, out: &mut [u64]) {
        assert_eq!(a.len(), out.len(), "kernel output length differs");
        let c = modulus.reduce(c);
        for (&x, o) in a.iter().zip(out) {
            *o = modulus.mul(x, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moduli() -> Vec<Modulus> {
        vec![
            Modulus::new(2),
            Modulus::new(97),
            Modulus::new(12289),
            Modulus::new(crate::modulus::find_ntt_prime(32, 1024)),
            Modulus::new((1u64 << 63) - 25), // largest prime below 2^63
        ]
    }

    fn sample(q: u64, len: usize, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(23);
                state % q
            })
            .collect()
    }

    #[test]
    fn vectorized_matches_reference_on_random_slices() {
        for q in moduli() {
            // 19 exercises both the LANES body and the remainder tail.
            for len in [0usize, 1, 7, 8, 19, 64] {
                let a = sample(q.value(), len, 11);
                let b = sample(q.value(), len, 29);
                let mut got = vec![0u64; len];
                let mut want = vec![0u64; len];
                add_slices(&q, &a, &b, &mut got);
                scalar_ref::add_slices(&q, &a, &b, &mut want);
                assert_eq!(got, want, "add q={}", q.value());
                sub_slices(&q, &a, &b, &mut got);
                scalar_ref::sub_slices(&q, &a, &b, &mut want);
                assert_eq!(got, want, "sub q={}", q.value());
                neg_slice(&q, &a, &mut got);
                scalar_ref::neg_slice(&q, &a, &mut want);
                assert_eq!(got, want, "neg q={}", q.value());
                scalar_mul_slice(&q, &a, 0xDEAD_BEEF, &mut got);
                scalar_ref::scalar_mul_slice(&q, &a, 0xDEAD_BEEF, &mut want);
                assert_eq!(got, want, "scalar_mul q={}", q.value());
                let mut acc = a.clone();
                add_assign_slices(&q, &mut acc, &b);
                scalar_ref::add_slices(&q, &a, &b, &mut want);
                assert_eq!(acc, want, "add_assign q={}", q.value());
            }
        }
    }

    #[test]
    fn extreme_values_stay_reduced() {
        for q in moduli() {
            let top = q.value() - 1;
            let a = vec![top; 17];
            let b = vec![top; 17];
            let mut out = vec![0u64; 17];
            add_slices(&q, &a, &b, &mut out);
            assert!(out.iter().all(|&x| x < q.value()));
            assert_eq!(out[0], q.sub(top, 1));
            sub_slices(&q, &b, &a, &mut out);
            assert!(out.iter().all(|&x| x == 0));
            neg_slice(&q, &a, &mut out);
            assert_eq!(out[0], q.neg(top));
            scalar_mul_slice(&q, &a, top, &mut out);
            assert_eq!(out[0], q.mul(top, top));
        }
    }

    #[test]
    fn zero_negates_to_zero() {
        let q = Modulus::new(0xFFF0_0001);
        let a = vec![0u64; 9];
        let mut out = vec![1u64; 9];
        neg_slice(&q, &a, &mut out);
        assert!(out.iter().all(|&x| x == 0));
    }
}
