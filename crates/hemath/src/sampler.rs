//! Randomness for lattice cryptography.
//!
//! Three distributions are needed by the schemes in this workspace:
//! uniform ring elements (public-key `a` components), ternary secrets, and
//! (rounded) Gaussian errors. All samplers take an external `Rng` so keys
//! and ciphertexts are reproducible from a seed in tests.

use rand::Rng;

use crate::poly::{Poly, RingContext};

/// Samples a uniformly random ring element.
pub fn uniform_poly<R: Rng + ?Sized>(ctx: &RingContext, rng: &mut R) -> Poly {
    let q = ctx.modulus().value();
    Poly::from_coeffs((0..ctx.n()).map(|_| rng.gen_range(0..q)).collect())
}

/// Samples a vector of `n` ternary values in `{-1, 0, 1}`, each with
/// probability 1/3.
pub fn ternary_vec<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<i64> {
    (0..n).map(|_| rng.gen_range(-1i64..=1)).collect()
}

/// Samples a vector of `n` integers from a rounded Gaussian with standard
/// deviation `sigma` (Box-Muller on `f64`, then round).
///
/// This is the sampling approach used by research HE libraries; it is not a
/// constant-time production sampler.
pub fn gaussian_vec<R: Rng + ?Sized>(n: usize, sigma: f64, rng: &mut R) -> Vec<i64> {
    assert!(sigma >= 0.0, "sigma must be non-negative");
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Box-Muller produces two independent normals per two uniforms.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let mag = (-2.0 * u1.ln()).sqrt();
        let z0 = mag * (2.0 * std::f64::consts::PI * u2).cos();
        let z1 = mag * (2.0 * std::f64::consts::PI * u2).sin();
        out.push((z0 * sigma).round() as i64);
        if out.len() < n {
            out.push((z1 * sigma).round() as i64);
        }
    }
    out
}

/// Samples a ternary secret as a ring element.
pub fn ternary_poly<R: Rng + ?Sized>(ctx: &RingContext, rng: &mut R) -> Poly {
    ctx.from_signed(&ternary_vec(ctx.n(), rng))
}

/// Samples a Gaussian error ring element with standard deviation `sigma`.
pub fn gaussian_poly<R: Rng + ?Sized>(ctx: &RingContext, sigma: f64, rng: &mut R) -> Poly {
    ctx.from_signed(&gaussian_vec(ctx.n(), sigma, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulus::{find_ntt_prime, Modulus};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> RingContext {
        RingContext::new(Modulus::new(find_ntt_prime(30, 64)), 64)
    }

    #[test]
    fn uniform_is_reduced_and_seed_deterministic() {
        let r = ctx();
        let a = uniform_poly(&r, &mut StdRng::seed_from_u64(7));
        let b = uniform_poly(&r, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        assert!(a.coeffs().iter().all(|&c| c < r.modulus().value()));
    }

    #[test]
    fn ternary_values_in_range() {
        let v = ternary_vec(10_000, &mut StdRng::seed_from_u64(1));
        assert!(v.iter().all(|&x| (-1..=1).contains(&x)));
        // All three values should occur in a sample this large.
        for target in [-1i64, 0, 1] {
            assert!(v.contains(&target));
        }
    }

    #[test]
    fn gaussian_statistics_are_plausible() {
        let sigma = 3.2;
        let v = gaussian_vec(100_000, sigma, &mut StdRng::seed_from_u64(2));
        let mean = v.iter().sum::<i64>() as f64 / v.len() as f64;
        let var = v.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean} too far from 0");
        assert!(
            (var.sqrt() - sigma).abs() < 0.2,
            "std {} too far from {sigma}",
            var.sqrt()
        );
        // 6-sigma tail should be empty at this sample size.
        assert!(v.iter().all(|&x| (x as f64).abs() < 8.0 * sigma));
    }

    #[test]
    fn gaussian_zero_sigma_is_all_zero() {
        let v = gaussian_vec(64, 0.0, &mut StdRng::seed_from_u64(3));
        assert!(v.iter().all(|&x| x == 0));
    }
}
