//! Word-sized modular arithmetic.
//!
//! All ring-LWE arithmetic in this workspace happens modulo word-sized
//! primes. [`Modulus`] bundles a modulus value with the precomputed
//! constants needed for fast reduction (Barrett) and fast multiplication by
//! precomputed constants (Shoup). Primality testing is deterministic for
//! `u64` via Miller-Rabin with a fixed witness set.

/// A modulus `q < 2^63` with precomputed Barrett constant.
///
/// The `2^63` bound leaves one slack bit so `a + b` of two reduced values
/// never overflows `u64`.
///
/// # Examples
///
/// ```
/// use cm_hemath::Modulus;
/// let q = Modulus::new(12289);
/// assert_eq!(q.add(12000, 300), 11);
/// assert_eq!(q.mul(12288, 12288), 1); // (-1)^2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    value: u64,
    /// floor(2^128 / q), used for Barrett reduction of 128-bit products.
    barrett_hi: u64,
    barrett_lo: u64,
}

impl Modulus {
    /// Creates a new modulus.
    ///
    /// # Panics
    ///
    /// Panics if `value < 2` or `value >= 2^63`.
    pub fn new(value: u64) -> Self {
        assert!(value >= 2, "modulus must be at least 2");
        assert!(value < (1u64 << 63), "modulus must be below 2^63");
        // ratio = floor(2^128 / q). For q not a power of two this equals
        // floor((2^128 - 1) / q); for q = 2^k it is 2^(128-k), computed as a
        // double shift so the k = 1 case does not overflow.
        let ratio = if value.is_power_of_two() {
            (1u128 << (127 - value.trailing_zeros())) << 1
        } else {
            u128::MAX / value as u128
        };
        Self {
            value,
            barrett_hi: (ratio >> 64) as u64,
            barrett_lo: ratio as u64,
        }
    }

    /// The modulus value `q`.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Number of significant bits of `q`.
    #[inline]
    pub fn bits(&self) -> u32 {
        64 - self.value.leading_zeros()
    }

    /// Reduces an arbitrary `u64` into `[0, q)`.
    #[inline]
    pub fn reduce(&self, a: u64) -> u64 {
        a % self.value
    }

    /// Reduces an arbitrary `u128` into `[0, q)` using Barrett reduction.
    #[inline]
    pub fn reduce_u128(&self, a: u128) -> u64 {
        // Barrett: approximate quotient via the precomputed 128-bit ratio.
        let lo = a as u64;
        let hi = (a >> 64) as u64;
        // q_approx = floor(a * ratio / 2^128); compute the 256-bit product's top half.
        let r_lo = self.barrett_lo as u128;
        let r_hi = self.barrett_hi as u128;
        let a_lo = lo as u128;
        let a_hi = hi as u128;
        // (a_hi*2^64 + a_lo) * (r_hi*2^64 + r_lo) >> 128
        let ll = a_lo * r_lo;
        let lh = a_lo * r_hi;
        let hl = a_hi * r_lo;
        let hh = a_hi * r_hi;
        let mid = (ll >> 64) + (lh & 0xFFFF_FFFF_FFFF_FFFF) + (hl & 0xFFFF_FFFF_FFFF_FFFF);
        let top = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
        let quot = top;
        let mut r = (a.wrapping_sub(quot.wrapping_mul(self.value as u128))) as u64;
        while r >= self.value {
            r -= self.value;
        }
        r
    }

    /// Modular addition of two reduced values.
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        let s = a + b;
        if s >= self.value {
            s - self.value
        } else {
            s
        }
    }

    /// Modular subtraction of two reduced values.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        if a >= b {
            a - b
        } else {
            a + self.value - b
        }
    }

    /// Modular negation of a reduced value.
    #[inline]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.value);
        if a == 0 {
            0
        } else {
            self.value - a
        }
    }

    /// Modular multiplication of two reduced values.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Modular exponentiation `base^exp mod q`.
    pub fn pow(&self, base: u64, mut exp: u64) -> u64 {
        let mut base = self.reduce(base);
        let mut acc = 1u64 % self.value;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Modular inverse via Fermat's little theorem.
    ///
    /// # Panics
    ///
    /// Panics if the modulus is not prime or `a == 0`, in which case no
    /// inverse exists.
    pub fn inv(&self, a: u64) -> u64 {
        assert!(!a.is_multiple_of(self.value), "zero has no modular inverse");
        let r = self.pow(a, self.value - 2);
        assert_eq!(
            self.mul(r, self.reduce(a)),
            1,
            "modulus must be prime for inv()"
        );
        r
    }

    /// Precomputes the Shoup representation `floor(w * 2^64 / q)` of a
    /// constant `w`, enabling [`Self::mul_shoup`].
    #[inline]
    pub fn shoup(&self, w: u64) -> u64 {
        debug_assert!(w < self.value);
        (((w as u128) << 64) / self.value as u128) as u64
    }

    /// Multiplies `a` by the constant `w` given its Shoup precomputation.
    ///
    /// Requires `a < q` and `w < q`; returns a value in `[0, q)`.
    #[inline]
    pub fn mul_shoup(&self, a: u64, w: u64, w_shoup: u64) -> u64 {
        let quot = ((a as u128 * w_shoup as u128) >> 64) as u64;
        let r = a
            .wrapping_mul(w)
            .wrapping_sub(quot.wrapping_mul(self.value));
        if r >= self.value {
            r - self.value
        } else {
            r
        }
    }

    /// Multiplies `a` by the constant `w` given its Shoup precomputation,
    /// *without* the final conditional subtraction: the result is in
    /// `[0, 2q)` for any `a < 2^64` and reduced `w`.
    ///
    /// This is the butterfly primitive of the Harvey lazy-reduction NTT,
    /// where operands deliberately live in `[0, 2q)`/`[0, 4q)` between
    /// stages and only the transform's final pass reduces fully.
    #[inline]
    pub fn mul_shoup_lazy(&self, a: u64, w: u64, w_shoup: u64) -> u64 {
        let quot = ((a as u128 * w_shoup as u128) >> 64) as u64;
        a.wrapping_mul(w)
            .wrapping_sub(quot.wrapping_mul(self.value))
    }

    /// Lifts a reduced value into the centered interval `(-q/2, q/2]`.
    #[inline]
    pub fn center(&self, a: u64) -> i64 {
        debug_assert!(a < self.value);
        if a > self.value / 2 {
            a as i64 - self.value as i64
        } else {
            a as i64
        }
    }

    /// Reduces a signed value into `[0, q)`.
    #[inline]
    pub fn from_signed(&self, a: i64) -> u64 {
        let q = self.value as i64;
        let r = a % q;
        if r < 0 {
            (r + q) as u64
        } else {
            r as u64
        }
    }

    /// Reduces a signed `i128` value into `[0, q)`.
    #[inline]
    pub fn from_signed_i128(&self, a: i128) -> u64 {
        let q = self.value as i128;
        let r = a % q;
        if r < 0 {
            (r + q) as u64
        } else {
            r as u64
        }
    }
}

/// Deterministic Miller-Rabin primality test, exact for all `u64`.
///
/// Uses the classical 12-witness set which is known to be sufficient below
/// 2^64.
///
/// ```
/// assert!(cm_hemath::is_prime(12289));
/// assert!(!cm_hemath::is_prime(12287 * 3));
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    let mulmod = |a: u128, b: u128| -> u128 { a * b % n as u128 };
    let powmod = |mut b: u128, mut e: u64| -> u128 {
        let mut acc = 1u128;
        b %= n as u128;
        while e > 0 {
            if e & 1 == 1 {
                acc = mulmod(acc, b);
            }
            b = mulmod(b, b);
            e >>= 1;
        }
        acc
    };
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = powmod(a as u128, d);
        if x == 1 || x == (n - 1) as u128 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mulmod(x, x);
            if x == (n - 1) as u128 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Finds the largest prime `q < 2^bits` with `q ≡ 1 (mod 2n)`, i.e. an
/// NTT-friendly prime supporting negacyclic transforms of length `n`.
///
/// # Panics
///
/// Panics if `n` is not a power of two, `bits` is out of `\[4, 63\]`, or no
/// such prime exists in range (practically impossible for the sizes used
/// here).
///
/// ```
/// let q = cm_hemath::find_ntt_prime(32, 1024);
/// assert!(cm_hemath::is_prime(q));
/// assert_eq!(q % 2048, 1);
/// assert!(q < 1u64 << 32);
/// ```
pub fn find_ntt_prime(bits: u32, n: usize) -> u64 {
    assert!(n.is_power_of_two(), "ring degree must be a power of two");
    find_prime_1_mod(bits, 2 * n as u64)
}

/// Finds the largest prime `q < 2^bits` with `q ≡ 1 (mod modulo)`.
///
/// BFV wants `q ≡ 1 (mod 2n)` for the NTT *and* `q ≡ 1 (mod t)` so the
/// rounding residue `r_t(q) = q mod t` stays tiny; callers pass
/// `lcm(2n, t)`.
///
/// # Panics
///
/// Panics if `bits` is out of `\[4, 63\]` or no such prime exists in range.
///
/// ```
/// let q = cm_hemath::find_prime_1_mod(32, 65536);
/// assert!(cm_hemath::is_prime(q));
/// assert_eq!(q % 65536, 1);
/// ```
pub fn find_prime_1_mod(bits: u32, modulo: u64) -> u64 {
    assert!((4..=63).contains(&bits), "bits must be in [4, 63]");
    assert!(modulo >= 2, "modulo must be at least 2");
    let top = 1u64 << bits;
    // Start at the largest value ≡ 1 (mod modulo) strictly below 2^bits.
    let mut cand = top - 1 - ((top - 2) % modulo);
    while cand > modulo {
        if is_prime(cand) {
            return cand;
        }
        cand -= modulo;
    }
    panic!("no prime of {bits} bits congruent to 1 mod {modulo}");
}

/// Finds a primitive `2n`-th root of unity modulo the prime `q`.
///
/// Requires `2n | q - 1`. A candidate `c = x^((q-1)/2n)` has order dividing
/// `2n`; it is primitive iff `c^n == -1`.
///
/// # Panics
///
/// Panics if `2n` does not divide `q - 1`.
pub fn primitive_2n_root(modulus: &Modulus, n: usize) -> u64 {
    let q = modulus.value();
    let two_n = 2 * n as u64;
    assert_eq!((q - 1) % two_n, 0, "2n must divide q-1 for an NTT prime");
    let exp = (q - 1) / two_n;
    // Deterministic scan keeps key generation reproducible.
    for x in 2..q {
        let c = modulus.pow(x, exp);
        if modulus.pow(c, n as u64) == q - 1 {
            return c;
        }
    }
    unreachable!("a primitive root always exists modulo a prime");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulus_basic_ops() {
        let q = Modulus::new(97);
        assert_eq!(q.add(96, 5), 4);
        assert_eq!(q.sub(3, 9), 91);
        assert_eq!(q.neg(0), 0);
        assert_eq!(q.neg(1), 96);
        assert_eq!(q.mul(96, 96), 1);
        assert_eq!(q.pow(3, 96), 1); // Fermat
        assert_eq!(q.mul(q.inv(5), 5), 1);
    }

    #[test]
    fn barrett_matches_naive_reduction() {
        let q = Modulus::new(0xFFF0_0001);
        for a in [0u128, 1, 2, 96, 1 << 64, u128::MAX / 2, u128::MAX] {
            assert_eq!(q.reduce_u128(a), (a % q.value() as u128) as u64, "a={a}");
        }
    }

    #[test]
    fn barrett_large_modulus() {
        let q = Modulus::new((1u64 << 62) + 1 + 134);
        for a in [u128::MAX, (1u128 << 125) + 12345, 1u128 << 64] {
            assert_eq!(q.reduce_u128(a), (a % q.value() as u128) as u64);
        }
    }

    #[test]
    fn shoup_matches_plain_multiplication() {
        let q = Modulus::new(0x0FFF_FFFF_FFD8_0001);
        let w = 123_456_789_012_345 % q.value();
        let ws = q.shoup(w);
        for a in [0u64, 1, 2, q.value() - 1, q.value() / 2] {
            assert_eq!(q.mul_shoup(a, w, ws), q.mul(a, w));
        }
    }

    #[test]
    fn center_and_from_signed_roundtrip() {
        let q = Modulus::new(101);
        for a in 0..101u64 {
            assert_eq!(q.from_signed(q.center(a)), a);
        }
        assert_eq!(q.center(51), -50);
        assert_eq!(q.center(50), 50);
    }

    #[test]
    fn primality_small_and_known() {
        let primes = [2u64, 3, 5, 7, 12289, 0xFFF0_0001, 4293918721];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        let composites = [1u64, 4, 9, 12287 * 3, 0xFFF0_0001 * 2 + 1 - 1];
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn ntt_prime_search_properties() {
        for (bits, n) in [(32u32, 1024usize), (56, 2048), (62, 4096), (30, 256)] {
            let q = find_ntt_prime(bits, n);
            assert!(is_prime(q));
            assert_eq!(q % (2 * n as u64), 1);
            assert!(q < 1u64 << bits);
            // The search should not wander far from the top of the range.
            assert!(q > (1u64 << bits) - (1u64 << (bits - 2)));
        }
    }

    #[test]
    fn primitive_root_has_exact_order() {
        let n = 1024usize;
        let q = Modulus::new(find_ntt_prime(32, n));
        let psi = primitive_2n_root(&q, n);
        assert_eq!(q.pow(psi, n as u64), q.value() - 1);
        assert_eq!(q.pow(psi, 2 * n as u64), 1);
    }

    #[test]
    fn power_of_two_modulus_reduction() {
        let q = Modulus::new(1u64 << 32);
        assert_eq!(q.reduce_u128((1u128 << 64) + 5), 5);
        assert_eq!(q.reduce_u128(u128::MAX), (u128::MAX % (1u128 << 32)) as u64);
    }
}
