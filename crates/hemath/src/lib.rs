#![warn(missing_docs)]

//! # cm-hemath
//!
//! Math substrate for the CIPHERMATCH reproduction: word-sized modular
//! arithmetic, negacyclic NTTs, the polynomial ring `Z_q[x]/(x^n + 1)`,
//! exact wide multiplication for BFV tensoring, and lattice samplers.
//!
//! Everything in this crate is built from scratch on the Rust standard
//! library plus `rand`; no big-integer or FFT dependencies are used.
//!
//! ## Example
//!
//! ```
//! use cm_hemath::{find_ntt_prime, Modulus, Poly, RingContext};
//!
//! let n = 1024;
//! let q = Modulus::new(find_ntt_prime(32, n));
//! let ring = RingContext::new(q, n);
//! let a = ring.constant(3);
//! let b = ring.constant(4);
//! assert_eq!(ring.mul(&a, &b).coeffs()[0], 12);
//! ```

pub mod kernels;
mod modulus;
mod ntt;
mod poly;
mod sampler;
mod widemul;

pub use modulus::{find_ntt_prime, find_prime_1_mod, is_prime, primitive_2n_root, Modulus};
pub use ntt::{bit_reverse, schoolbook_negacyclic_mul, NttTable};
pub use poly::{Poly, RingContext};
pub use sampler::{gaussian_poly, gaussian_vec, ternary_poly, ternary_vec, uniform_poly};
pub use widemul::{schoolbook_exact_negacyclic, WideMultiplier};
