//! Polynomial ring `R_q = Z_q[x]/(x^n + 1)`.
//!
//! [`RingContext`] owns the modulus and (when the modulus permits) the NTT
//! tables for a fixed ring degree; [`Poly`] is a plain coefficient vector.
//! All operations are exposed as context methods so a single set of tables
//! is shared by every polynomial in a scheme.

use std::sync::Arc;

use crate::kernels;
use crate::modulus::Modulus;
use crate::ntt::{schoolbook_negacyclic_mul, NttTable};

/// Shared ring description: degree, modulus, and optional NTT tables.
#[derive(Debug, Clone)]
pub struct RingContext {
    n: usize,
    modulus: Modulus,
    ntt: Option<Arc<NttTable>>,
}

/// A polynomial in `R_q`, stored as `n` reduced coefficients
/// (`coeffs[i]` is the coefficient of `x^i`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Poly {
    coeffs: Vec<u64>,
}

impl Poly {
    /// Wraps a coefficient vector. Coefficients must already be reduced.
    pub fn from_coeffs(coeffs: Vec<u64>) -> Self {
        Self { coeffs }
    }

    /// The zero polynomial of degree bound `n`.
    pub fn zero(n: usize) -> Self {
        Self { coeffs: vec![0; n] }
    }

    /// Borrow the coefficients.
    #[inline]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Mutably borrow the coefficients.
    #[inline]
    pub fn coeffs_mut(&mut self) -> &mut [u64] {
        &mut self.coeffs
    }

    /// Consumes the polynomial, returning its coefficient vector.
    pub fn into_coeffs(self) -> Vec<u64> {
        self.coeffs
    }

    /// Number of coefficients (the ring degree).
    #[inline]
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// True if the polynomial has no coefficients.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// True if every coefficient is zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }
}

impl RingContext {
    /// Creates a ring context. NTT tables are built when the modulus is an
    /// NTT-friendly prime (`q ≡ 1 mod 2n`); otherwise multiplication falls
    /// back to schoolbook convolution.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two at least 2.
    pub fn new(modulus: Modulus, n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "ring degree must be a power of two >= 2"
        );
        let ntt = if (modulus.value() - 1).is_multiple_of(2 * n as u64)
            && crate::modulus::is_prime(modulus.value())
        {
            Some(Arc::new(NttTable::new(modulus, n)))
        } else {
            None
        };
        Self { n, modulus, ntt }
    }

    /// Ring degree `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Coefficient modulus.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// NTT tables, if the modulus supports them.
    #[inline]
    pub fn ntt(&self) -> Option<&NttTable> {
        self.ntt.as_deref()
    }

    /// Validates that `p` belongs to this ring.
    ///
    /// # Panics
    ///
    /// Panics when the degree does not match.
    #[inline]
    fn check(&self, p: &Poly) {
        assert_eq!(p.len(), self.n, "polynomial degree does not match ring");
    }

    /// `a + b`.
    pub fn add(&self, a: &Poly, b: &Poly) -> Poly {
        self.check(a);
        self.check(b);
        let mut out = vec![0u64; self.n];
        kernels::add_slices(&self.modulus, a.coeffs(), b.coeffs(), &mut out);
        Poly::from_coeffs(out)
    }

    /// `a += b` in place.
    pub fn add_assign(&self, a: &mut Poly, b: &Poly) {
        self.check(a);
        self.check(b);
        kernels::add_assign_slices(&self.modulus, a.coeffs_mut(), b.coeffs());
    }

    /// `a - b`.
    pub fn sub(&self, a: &Poly, b: &Poly) -> Poly {
        self.check(a);
        self.check(b);
        let mut out = vec![0u64; self.n];
        kernels::sub_slices(&self.modulus, a.coeffs(), b.coeffs(), &mut out);
        Poly::from_coeffs(out)
    }

    /// `-a`.
    pub fn neg(&self, a: &Poly) -> Poly {
        self.check(a);
        let mut out = vec![0u64; self.n];
        kernels::neg_slice(&self.modulus, a.coeffs(), &mut out);
        Poly::from_coeffs(out)
    }

    /// `a * c` for a scalar `c`.
    pub fn scalar_mul(&self, a: &Poly, c: u64) -> Poly {
        self.check(a);
        let mut out = vec![0u64; self.n];
        kernels::scalar_mul_slice(&self.modulus, a.coeffs(), c, &mut out);
        Poly::from_coeffs(out)
    }

    /// Full ring product `a * b mod (x^n + 1, q)`.
    pub fn mul(&self, a: &Poly, b: &Poly) -> Poly {
        self.check(a);
        self.check(b);
        Poly::from_coeffs(self.mul_slices(a.coeffs(), b.coeffs()))
    }

    /// Full ring product over raw coefficient slices — the borrowed-view
    /// entry point flat-arena callers (e.g. decryption over a search
    /// result arena) use without materializing `Poly`s first.
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from the ring degree.
    pub fn mul_slices(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        assert_eq!(a.len(), self.n, "polynomial degree does not match ring");
        assert_eq!(b.len(), self.n, "polynomial degree does not match ring");
        match &self.ntt {
            Some(t) => t.negacyclic_mul(a, b),
            None => schoolbook_negacyclic_mul(&self.modulus, a, b),
        }
    }

    /// Applies the Galois automorphism `x -> x^g` for odd `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is even (even exponents are not ring automorphisms of
    /// the `2n`-th cyclotomic).
    pub fn automorphism(&self, a: &Poly, g: usize) -> Poly {
        self.check(a);
        assert!(g % 2 == 1, "Galois element must be odd");
        let n = self.n;
        let two_n = 2 * n;
        let mut out = vec![0u64; n];
        for (i, &c) in a.coeffs().iter().enumerate() {
            if c == 0 {
                continue;
            }
            let k = (i * g) % two_n;
            if k < n {
                out[k] = self.modulus.add(out[k], c);
            } else {
                out[k - n] = self.modulus.sub(out[k - n], c);
            }
        }
        Poly::from_coeffs(out)
    }

    /// Multiplies by the monomial `x^k` (`k` may exceed `n`; signs wrap).
    pub fn mul_monomial(&self, a: &Poly, k: usize) -> Poly {
        self.check(a);
        let n = self.n;
        let k = k % (2 * n);
        let mut out = vec![0u64; n];
        for (i, &c) in a.coeffs().iter().enumerate() {
            if c == 0 {
                continue;
            }
            let pos = (i + k) % (2 * n);
            if pos < n {
                out[pos] = self.modulus.add(out[pos], c);
            } else {
                out[pos - n] = self.modulus.sub(out[pos - n], c);
            }
        }
        Poly::from_coeffs(out)
    }

    /// Builds a polynomial from signed coefficients, reducing into `[0, q)`.
    pub fn from_signed(&self, coeffs: &[i64]) -> Poly {
        assert_eq!(coeffs.len(), self.n);
        Poly::from_coeffs(
            coeffs
                .iter()
                .map(|&c| self.modulus.from_signed(c))
                .collect(),
        )
    }

    /// Lifts every coefficient to the centered representative.
    pub fn to_centered(&self, a: &Poly) -> Vec<i64> {
        self.check(a);
        a.coeffs().iter().map(|&c| self.modulus.center(c)).collect()
    }

    /// The constant polynomial `c`.
    pub fn constant(&self, c: u64) -> Poly {
        let mut p = Poly::zero(self.n);
        p.coeffs_mut()[0] = self.modulus.reduce(c);
        p
    }

    /// Infinity norm of the centered representation.
    pub fn inf_norm(&self, a: &Poly) -> u64 {
        self.check(a);
        a.coeffs()
            .iter()
            .map(|&c| self.modulus.center(c).unsigned_abs())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulus::find_ntt_prime;

    fn ctx(n: usize) -> RingContext {
        RingContext::new(Modulus::new(find_ntt_prime(30, n)), n)
    }

    #[test]
    fn add_sub_roundtrip() {
        let r = ctx(16);
        let a = Poly::from_coeffs((0..16u64).collect());
        let b = Poly::from_coeffs((100..116u64).collect());
        let s = r.add(&a, &b);
        assert_eq!(r.sub(&s, &b), a);
    }

    #[test]
    fn neg_is_additive_inverse() {
        let r = ctx(8);
        let a = Poly::from_coeffs((1..9u64).collect());
        assert!(r.add(&a, &r.neg(&a)).is_zero());
    }

    #[test]
    fn ntt_context_built_for_friendly_prime() {
        let r = ctx(64);
        assert!(r.ntt().is_some());
    }

    #[test]
    fn schoolbook_fallback_for_unfriendly_modulus() {
        // 101 is prime but 101 - 1 = 100 is not divisible by 2 * 16 = 32.
        let r = RingContext::new(Modulus::new(101), 16);
        assert!(r.ntt().is_none());
        let a = r.constant(3);
        let b = r.constant(5);
        assert_eq!(r.mul(&a, &b).coeffs()[0], 15);
    }

    #[test]
    fn automorphism_identity_and_composition() {
        let r = ctx(16);
        let a = Poly::from_coeffs((0..16u64).collect());
        assert_eq!(r.automorphism(&a, 1), a);
        // sigma_3 then sigma_11 equals sigma_(3*11 mod 32) = sigma_1 = id.
        let g1 = 3usize;
        let g2 = 11usize;
        assert_eq!((g1 * g2) % 32, 1);
        let once = r.automorphism(&a, g1);
        assert_eq!(r.automorphism(&once, g2), a);
    }

    #[test]
    fn automorphism_commutes_with_multiplication() {
        let r = ctx(32);
        let a = Poly::from_coeffs((3..35u64).collect());
        let b = Poly::from_coeffs((7..39u64).collect());
        let g = 5usize;
        let lhs = r.automorphism(&r.mul(&a, &b), g);
        let rhs = r.mul(&r.automorphism(&a, g), &r.automorphism(&b, g));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn monomial_multiplication_wraps_sign() {
        let r = ctx(8);
        let a = r.constant(2);
        // x^8 = -1, so multiplying the constant 2 by x^8 gives -2.
        let shifted = r.mul_monomial(&a, 8);
        assert_eq!(shifted.coeffs()[0], r.modulus().value() - 2);
        // x^16 = 1 brings it back.
        assert_eq!(r.mul_monomial(&a, 16), a);
    }

    #[test]
    fn mul_monomial_matches_ring_mul() {
        let r = ctx(16);
        let a = Poly::from_coeffs((1..17u64).collect());
        for k in [0usize, 1, 5, 15, 17, 31] {
            let mut mono = Poly::zero(16);
            if k % 32 < 16 {
                mono.coeffs_mut()[k % 32] = 1;
            } else {
                mono.coeffs_mut()[k % 32 - 16] = r.modulus().value() - 1;
            }
            assert_eq!(r.mul_monomial(&a, k), r.mul(&a, &mono), "k={k}");
        }
    }

    #[test]
    fn centered_roundtrip_and_norm() {
        let r = ctx(8);
        let p = r.from_signed(&[-1, 2, -3, 4, 0, 0, 7, -8]);
        assert_eq!(r.to_centered(&p), vec![-1, 2, -3, 4, 0, 0, 7, -8]);
        assert_eq!(r.inf_norm(&p), 8);
    }
}
