//! Exact negacyclic multiplication over the integers.
//!
//! BFV homomorphic multiplication needs the tensor product of ciphertext
//! polynomials *over `Z[x]/(x^n + 1)`* — i.e. without reduction modulo the
//! ciphertext modulus `q` — followed by a scaled rounding. With centered
//! representatives the tensor coefficients are bounded by `n * (q/2)^2`,
//! which exceeds `u64` but fits `i128` for every parameter set in this
//! workspace. We compute the product exactly with NTTs modulo two auxiliary
//! 62-bit primes and reconstruct via Garner's CRT.

use crate::modulus::{find_ntt_prime, Modulus};
use crate::ntt::NttTable;

/// Exact wide multiplier for negacyclic polynomials of degree `n`.
#[derive(Debug, Clone)]
pub struct WideMultiplier {
    n: usize,
    p1: Modulus,
    p2: Modulus,
    ntt1: NttTable,
    ntt2: NttTable,
    /// p1^{-1} mod p2, for Garner reconstruction.
    p1_inv_mod_p2: u64,
    /// p1 * p2 as u128.
    big_modulus: u128,
}

impl WideMultiplier {
    /// Builds a wide multiplier for ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "ring degree must be a power of two");
        let q1 = find_ntt_prime(62, n);
        // Continue the search below q1 for a distinct second prime.
        let step = 2 * n as u64;
        let mut cand = q1 - step;
        while !crate::modulus::is_prime(cand) {
            cand -= step;
        }
        let q2 = cand;
        let p1 = Modulus::new(q1);
        let p2 = Modulus::new(q2);
        let ntt1 = NttTable::new(p1, n);
        let ntt2 = NttTable::new(p2, n);
        let p1_inv_mod_p2 = p2.inv(q1 % q2);
        Self {
            n,
            p1,
            p2,
            ntt1,
            ntt2,
            p1_inv_mod_p2,
            big_modulus: q1 as u128 * q2 as u128,
        }
    }

    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Largest centered-input magnitude this multiplier can handle exactly:
    /// inputs with `|a_i|, |b_i| <= bound` produce tensor coefficients within
    /// the CRT range.
    pub fn max_input_magnitude(&self) -> u64 {
        // Need n * bound^2 < big_modulus / 2.
        let limit = self.big_modulus / (2 * self.n as u128);
        (limit as f64).sqrt() as u64 - 1
    }

    /// Exact negacyclic product of two centered-coefficient polynomials.
    ///
    /// Inputs are signed coefficient vectors; the output is the exact
    /// integer result of `a * b mod (x^n + 1)` (no modular reduction).
    ///
    /// # Panics
    ///
    /// Panics if input lengths differ from `n`, or if input magnitudes
    /// exceed [`Self::max_input_magnitude`] (the result could alias).
    pub fn mul(&self, a: &[i64], b: &[i64]) -> Vec<i128> {
        assert_eq!(a.len(), self.n);
        assert_eq!(b.len(), self.n);
        let bound = self.max_input_magnitude() as i64;
        debug_assert!(
            a.iter().chain(b.iter()).all(|&c| c.abs() <= bound),
            "input magnitude exceeds exact CRT range"
        );

        let residues =
            |m: &Modulus, v: &[i64]| -> Vec<u64> { v.iter().map(|&c| m.from_signed(c)).collect() };
        let r1 = self
            .ntt1
            .negacyclic_mul(&residues(&self.p1, a), &residues(&self.p1, b));
        let r2 = self
            .ntt2
            .negacyclic_mul(&residues(&self.p2, a), &residues(&self.p2, b));

        let half = self.big_modulus / 2;
        r1.iter()
            .zip(&r2)
            .map(|(&x1, &x2)| {
                // Garner: v = x1 + p1 * ((x2 - x1) * p1^{-1} mod p2)
                let diff = self
                    .p2
                    .sub(self.p2.reduce(x2), self.p2.reduce(x1 % self.p2.value()));
                let t = self.p2.mul(diff, self.p1_inv_mod_p2);
                let v = x1 as u128 + self.p1.value() as u128 * t as u128;
                if v > half {
                    v as i128 - self.big_modulus as i128
                } else {
                    v as i128
                }
            })
            .collect()
    }
}

/// Reference exact negacyclic multiplication with `i128` accumulation,
/// O(n^2). Used to validate [`WideMultiplier`].
pub fn schoolbook_exact_negacyclic(a: &[i64], b: &[i64]) -> Vec<i128> {
    let n = a.len();
    assert_eq!(b.len(), n);
    let mut out = vec![0i128; n];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            let prod = ai as i128 * bj as i128;
            let k = i + j;
            if k < n {
                out[k] += prod;
            } else {
                out[k - n] -= prod;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_mul_matches_schoolbook_small() {
        let w = WideMultiplier::new(8);
        let a = vec![1i64, -2, 3, -4, 5, -6, 7, -8];
        let b = vec![9i64, 8, -7, 6, -5, 4, -3, 2];
        assert_eq!(w.mul(&a, &b), schoolbook_exact_negacyclic(&a, &b));
    }

    #[test]
    fn wide_mul_matches_schoolbook_large_magnitudes() {
        let n = 64;
        let w = WideMultiplier::new(n);
        // Magnitudes close to a 56-bit q/2, the largest used by cm-bfv.
        let big = (1i64 << 55) - 12345;
        let a: Vec<i64> = (0..n as i64)
            .map(|i| if i % 2 == 0 { big - i } else { -(big - 2 * i) })
            .collect();
        let b: Vec<i64> = (0..n as i64)
            .map(|i| {
                if i % 3 == 0 {
                    -(big - 7 * i)
                } else {
                    big - 5 * i
                }
            })
            .collect();
        assert_eq!(w.mul(&a, &b), schoolbook_exact_negacyclic(&a, &b));
    }

    #[test]
    fn max_magnitude_is_sufficient_for_bfv_params() {
        // cm-bfv needs |coeff| <= q/2 for q up to 56 bits at n = 2048 and
        // 4096.
        for n in [1024usize, 2048, 4096] {
            let w = WideMultiplier::new(n);
            assert!(
                w.max_input_magnitude() >= 1u64 << 55,
                "n={n}: max magnitude {} too small",
                w.max_input_magnitude()
            );
        }
    }

    #[test]
    fn zero_times_anything_is_zero() {
        let w = WideMultiplier::new(16);
        let z = vec![0i64; 16];
        let b: Vec<i64> = (0..16).map(|i| i * i - 40).collect();
        assert!(w.mul(&z, &b).iter().all(|&c| c == 0));
    }
}
