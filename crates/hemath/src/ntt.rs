//! Negacyclic number-theoretic transform.
//!
//! Implements the standard in-place iterative NTT over
//! `Z_q[x]/(x^n + 1)` (Longa-Naehrig formulation) with twiddle factors
//! stored in bit-reversed order and Shoup-precomputed for fast constant
//! multiplication. Multiplying two polynomials is `forward`, point-wise
//! product, `inverse` — the wrap-around sign of the negacyclic ring is
//! absorbed into the `psi` powers.
//!
//! For moduli below `2^62` the butterflies use Harvey's lazy reduction:
//! forward-transform values live in `[0, 4q)` and inverse-transform
//! values in `[0, 2q)` between stages, with
//! [`Modulus::mul_shoup_lazy`] (no trailing conditional subtraction)
//! inside the butterfly and full reduction deferred to one branchless
//! pass at the end. That removes the two data-dependent branches per
//! butterfly that otherwise stall the pipeline and block
//! autovectorization. Moduli of 62 bits or more (where `4q` would
//! overflow a word) fall back to the exact per-butterfly reduction.

use crate::modulus::{primitive_2n_root, Modulus};

/// Precomputed tables for a negacyclic NTT of length `n` modulo a prime `q`
/// with `q ≡ 1 (mod 2n)`.
#[derive(Debug, Clone)]
pub struct NttTable {
    n: usize,
    modulus: Modulus,
    /// psi^bitrev(i) for the forward transform.
    psi_rev: Vec<u64>,
    psi_rev_shoup: Vec<u64>,
    /// psi^{-bitrev(i)} for the inverse transform.
    psi_inv_rev: Vec<u64>,
    psi_inv_rev_shoup: Vec<u64>,
    n_inv: u64,
    n_inv_shoup: u64,
    /// Whether the butterflies run the Harvey lazy-reduction path:
    /// requires `4q` to fit a word, i.e. `q < 2^62`.
    lazy: bool,
}

/// Reverses the lowest `bits` bits of `i`.
#[inline]
pub fn bit_reverse(i: usize, bits: u32) -> usize {
    i.reverse_bits() >> (usize::BITS - bits)
}

impl NttTable {
    /// Builds NTT tables for ring degree `n` and modulus `q`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two at least 2, or if
    /// `q ≢ 1 (mod 2n)` (no primitive `2n`-th root exists).
    pub fn new(modulus: Modulus, n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "n must be a power of two >= 2"
        );
        let psi = primitive_2n_root(&modulus, n);
        let psi_inv = modulus.inv(psi);
        let bits = n.trailing_zeros();
        let mut psi_rev = vec![0u64; n];
        let mut psi_inv_rev = vec![0u64; n];
        let mut pow = 1u64;
        let mut pow_inv = 1u64;
        for i in 0..n {
            let r = bit_reverse(i, bits);
            psi_rev[r] = pow;
            psi_inv_rev[r] = pow_inv;
            pow = modulus.mul(pow, psi);
            pow_inv = modulus.mul(pow_inv, psi_inv);
        }
        let psi_rev_shoup = psi_rev.iter().map(|&w| modulus.shoup(w)).collect();
        let psi_inv_rev_shoup = psi_inv_rev.iter().map(|&w| modulus.shoup(w)).collect();
        let n_inv = modulus.inv(n as u64);
        let n_inv_shoup = modulus.shoup(n_inv);
        let lazy = modulus.value() < (1u64 << 62);
        Self {
            n,
            modulus,
            psi_rev,
            psi_rev_shoup,
            psi_inv_rev,
            psi_inv_rev_shoup,
            n_inv,
            n_inv_shoup,
            lazy,
        }
    }

    /// Ring degree this table was built for.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The modulus this table was built for.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// In-place forward negacyclic NTT. Output is fully reduced.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal ring degree");
        if self.lazy {
            self.forward_lazy(a);
            // Two branchless select passes take [0, 4q) down to [0, q).
            let q = self.modulus.value();
            let two_q = 2 * q;
            for x in a.iter_mut() {
                let r = (*x).min(x.wrapping_sub(two_q));
                *x = r.min(r.wrapping_sub(q));
            }
        } else {
            self.forward_exact(a);
        }
    }

    /// Harvey lazy forward transform: stage inputs live in `[0, 4q)`,
    /// the butterfly reduces `u` to `[0, 2q)` with one select and uses
    /// [`Modulus::mul_shoup_lazy`] for `v`, and the output is *not*
    /// fully reduced — every element is in `[0, 4q)`. Sound only when
    /// `4q` fits a word (`self.lazy`).
    fn forward_lazy(&self, a: &mut [u64]) {
        let q = &self.modulus;
        let two_q = 2 * q.value();
        let n = self.n;
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t /= 2;
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = self.psi_rev[m + i];
                let s_sh = self.psi_rev_shoup[m + i];
                // Disjoint halves let the compiler drop bounds checks
                // and vectorize the butterfly body.
                let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    let u = (*x).min(x.wrapping_sub(two_q));
                    let v = q.mul_shoup_lazy(*y, s, s_sh);
                    *x = u + v;
                    *y = u + two_q - v;
                }
            }
            m *= 2;
        }
    }

    /// Exact forward butterflies (full reduction at every step), kept
    /// for moduli of 62 bits and above where `4q` would overflow.
    fn forward_exact(&self, a: &mut [u64]) {
        let q = &self.modulus;
        let n = self.n;
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t /= 2;
            for i in 0..m {
                let j1 = 2 * i * t;
                let j2 = j1 + t;
                let s = self.psi_rev[m + i];
                let s_sh = self.psi_rev_shoup[m + i];
                for j in j1..j2 {
                    let u = a[j];
                    let v = q.mul_shoup(a[j + t], s, s_sh);
                    a[j] = q.add(u, v);
                    a[j + t] = q.sub(u, v);
                }
            }
            m *= 2;
        }
    }

    /// In-place inverse negacyclic NTT (including the `1/n` scaling).
    /// Output is fully reduced.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal ring degree");
        if self.lazy {
            self.inverse_lazy(a);
        } else {
            self.inverse_exact(a);
        }
    }

    /// Harvey lazy inverse transform: stage values live in `[0, 2q)`
    /// (one select on the sum, `mul_shoup_lazy` on the difference), and
    /// the final `1/n` scaling uses the exact [`Modulus::mul_shoup`] —
    /// which maps *any* word to `[0, q)` — so the output is fully
    /// reduced. Sound only when `4q` fits a word (`self.lazy`).
    fn inverse_lazy(&self, a: &mut [u64]) {
        let q = &self.modulus;
        let two_q = 2 * q.value();
        let n = self.n;
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0usize;
            for i in 0..h {
                let s = self.psi_inv_rev[h + i];
                let s_sh = self.psi_inv_rev_shoup[h + i];
                let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    let u = *x;
                    let v = *y;
                    let sum = u + v;
                    *x = sum.min(sum.wrapping_sub(two_q));
                    *y = q.mul_shoup_lazy(u + two_q - v, s, s_sh);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = q.mul_shoup(*x, self.n_inv, self.n_inv_shoup);
        }
    }

    /// Exact inverse butterflies, kept for moduli of 62 bits and above.
    fn inverse_exact(&self, a: &mut [u64]) {
        let q = &self.modulus;
        let n = self.n;
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0usize;
            for i in 0..h {
                let j2 = j1 + t;
                let s = self.psi_inv_rev[h + i];
                let s_sh = self.psi_inv_rev_shoup[h + i];
                for j in j1..j2 {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = q.add(u, v);
                    a[j + t] = q.mul_shoup(q.sub(u, v), s, s_sh);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = q.mul_shoup(*x, self.n_inv, self.n_inv_shoup);
        }
    }

    /// Point-wise product `a[i] * b[i] mod q` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from `n`.
    pub fn pointwise(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        assert!(a.len() == self.n && b.len() == self.n && out.len() == self.n);
        for i in 0..self.n {
            out[i] = self.modulus.mul(a[i], b[i]);
        }
    }

    /// Point-wise multiply-accumulate: `acc[i] += a[i] * b[i] mod q`.
    pub fn pointwise_acc(&self, a: &[u64], b: &[u64], acc: &mut [u64]) {
        assert!(a.len() == self.n && b.len() == self.n && acc.len() == self.n);
        for i in 0..self.n {
            acc[i] = self.modulus.add(acc[i], self.modulus.mul(a[i], b[i]));
        }
    }

    /// Full negacyclic product of two coefficient-domain polynomials.
    pub fn negacyclic_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        let mut out = vec![0u64; self.n];
        if self.lazy {
            // Skip the full-reduction tail of both forwards: the
            // Barrett point-wise product takes the lazy `[0, 4q)`
            // values straight back to `[0, q)` (the u128 product of two
            // sub-`2^64` words cannot overflow).
            self.forward_lazy(&mut fa);
            self.forward_lazy(&mut fb);
            for ((&x, &y), o) in fa.iter().zip(&fb).zip(&mut out) {
                *o = self.modulus.reduce_u128(x as u128 * y as u128);
            }
        } else {
            self.forward(&mut fa);
            self.forward(&mut fb);
            self.pointwise(&fa, &fb, &mut out);
        }
        self.inverse(&mut out);
        out
    }
}

/// Reference O(n^2) negacyclic multiplication, used to validate the NTT and
/// as a fallback for non-NTT-friendly moduli.
pub fn schoolbook_negacyclic_mul(modulus: &Modulus, a: &[u64], b: &[u64]) -> Vec<u64> {
    let n = a.len();
    assert_eq!(b.len(), n);
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            let prod = modulus.mul(ai, bj);
            let k = i + j;
            if k < n {
                out[k] = modulus.add(out[k], prod);
            } else {
                out[k - n] = modulus.sub(out[k - n], prod);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulus::find_ntt_prime;

    fn table(bits: u32, n: usize) -> NttTable {
        NttTable::new(Modulus::new(find_ntt_prime(bits, n)), n)
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let t = table(32, 64);
        let orig: Vec<u64> = (0..64u64).map(|i| i * i + 7).collect();
        let mut a = orig.clone();
        t.forward(&mut a);
        assert_ne!(a, orig, "forward transform must change the data");
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn ntt_mul_matches_schoolbook() {
        for n in [4usize, 16, 256] {
            let q = Modulus::new(find_ntt_prime(30, n));
            let t = NttTable::new(q, n);
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 11) % q.value()).collect();
            let b: Vec<u64> = (0..n as u64).map(|i| (i * i * 5 + 3) % q.value()).collect();
            assert_eq!(
                t.negacyclic_mul(&a, &b),
                schoolbook_negacyclic_mul(&q, &a, &b)
            );
        }
    }

    #[test]
    fn x_times_x_n_minus_1_wraps_negatively() {
        // x * x^(n-1) = x^n = -1 in the negacyclic ring.
        let n = 16;
        let q = Modulus::new(find_ntt_prime(30, n));
        let t = NttTable::new(q, n);
        let mut a = vec![0u64; n];
        a[1] = 1;
        let mut b = vec![0u64; n];
        b[n - 1] = 1;
        let c = t.negacyclic_mul(&a, &b);
        let mut expect = vec![0u64; n];
        expect[0] = q.value() - 1;
        assert_eq!(c, expect);
    }

    #[test]
    fn multiplication_by_one_is_identity() {
        let n = 32;
        let q = Modulus::new(find_ntt_prime(30, n));
        let t = NttTable::new(q, n);
        let a: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
        let mut one = vec![0u64; n];
        one[0] = 1;
        assert_eq!(t.negacyclic_mul(&a, &one), a);
    }

    #[test]
    fn bit_reverse_involution() {
        for i in 0..64usize {
            assert_eq!(bit_reverse(bit_reverse(i, 6), 6), i);
        }
        assert_eq!(bit_reverse(1, 4), 8);
        assert_eq!(bit_reverse(0b0011, 4), 0b1100);
    }

    #[test]
    fn lazy_and_exact_butterflies_agree() {
        let n = 64usize;
        // 30/56-bit moduli take the lazy path, 63-bit the exact
        // fallback (4q no longer fits a word); all must round-trip,
        // match schoolbook, and emit fully reduced transforms.
        for bits in [30u32, 56, 63] {
            let q = Modulus::new(find_ntt_prime(bits, n));
            let t = NttTable::new(q, n);
            let orig: Vec<u64> = (0..n as u64)
                .map(|i| (i * 0x9E37 + 0xB9) % q.value())
                .collect();
            let mut a = orig.clone();
            t.forward(&mut a);
            assert!(
                a.iter().all(|&x| x < q.value()),
                "forward output must be fully reduced (bits={bits})"
            );
            t.inverse(&mut a);
            assert_eq!(a, orig, "roundtrip (bits={bits})");
            let b: Vec<u64> = (0..n as u64).map(|i| (i * i + 3) % q.value()).collect();
            assert_eq!(
                t.negacyclic_mul(&orig, &b),
                schoolbook_negacyclic_mul(&q, &orig, &b),
                "negacyclic product (bits={bits})"
            );
        }
    }

    #[test]
    fn pointwise_acc_accumulates() {
        let t = table(30, 8);
        let a = vec![2u64; 8];
        let b = vec![3u64; 8];
        let mut acc = vec![1u64; 8];
        t.pointwise_acc(&a, &b, &mut acc);
        assert_eq!(acc, vec![7u64; 8]);
    }
}
