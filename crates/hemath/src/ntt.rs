//! Negacyclic number-theoretic transform.
//!
//! Implements the standard in-place iterative NTT over
//! `Z_q[x]/(x^n + 1)` (Longa-Naehrig formulation) with twiddle factors
//! stored in bit-reversed order and Shoup-precomputed for fast constant
//! multiplication. Multiplying two polynomials is `forward`, point-wise
//! product, `inverse` — the wrap-around sign of the negacyclic ring is
//! absorbed into the `psi` powers.

use crate::modulus::{primitive_2n_root, Modulus};

/// Precomputed tables for a negacyclic NTT of length `n` modulo a prime `q`
/// with `q ≡ 1 (mod 2n)`.
#[derive(Debug, Clone)]
pub struct NttTable {
    n: usize,
    modulus: Modulus,
    /// psi^bitrev(i) for the forward transform.
    psi_rev: Vec<u64>,
    psi_rev_shoup: Vec<u64>,
    /// psi^{-bitrev(i)} for the inverse transform.
    psi_inv_rev: Vec<u64>,
    psi_inv_rev_shoup: Vec<u64>,
    n_inv: u64,
    n_inv_shoup: u64,
}

/// Reverses the lowest `bits` bits of `i`.
#[inline]
pub fn bit_reverse(i: usize, bits: u32) -> usize {
    i.reverse_bits() >> (usize::BITS - bits)
}

impl NttTable {
    /// Builds NTT tables for ring degree `n` and modulus `q`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two at least 2, or if
    /// `q ≢ 1 (mod 2n)` (no primitive `2n`-th root exists).
    pub fn new(modulus: Modulus, n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "n must be a power of two >= 2"
        );
        let psi = primitive_2n_root(&modulus, n);
        let psi_inv = modulus.inv(psi);
        let bits = n.trailing_zeros();
        let mut psi_rev = vec![0u64; n];
        let mut psi_inv_rev = vec![0u64; n];
        let mut pow = 1u64;
        let mut pow_inv = 1u64;
        for i in 0..n {
            let r = bit_reverse(i, bits);
            psi_rev[r] = pow;
            psi_inv_rev[r] = pow_inv;
            pow = modulus.mul(pow, psi);
            pow_inv = modulus.mul(pow_inv, psi_inv);
        }
        let psi_rev_shoup = psi_rev.iter().map(|&w| modulus.shoup(w)).collect();
        let psi_inv_rev_shoup = psi_inv_rev.iter().map(|&w| modulus.shoup(w)).collect();
        let n_inv = modulus.inv(n as u64);
        let n_inv_shoup = modulus.shoup(n_inv);
        Self {
            n,
            modulus,
            psi_rev,
            psi_rev_shoup,
            psi_inv_rev,
            psi_inv_rev_shoup,
            n_inv,
            n_inv_shoup,
        }
    }

    /// Ring degree this table was built for.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The modulus this table was built for.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// In-place forward negacyclic NTT.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal ring degree");
        let q = &self.modulus;
        let n = self.n;
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t /= 2;
            for i in 0..m {
                let j1 = 2 * i * t;
                let j2 = j1 + t;
                let s = self.psi_rev[m + i];
                let s_sh = self.psi_rev_shoup[m + i];
                for j in j1..j2 {
                    let u = a[j];
                    let v = q.mul_shoup(a[j + t], s, s_sh);
                    a[j] = q.add(u, v);
                    a[j + t] = q.sub(u, v);
                }
            }
            m *= 2;
        }
    }

    /// In-place inverse negacyclic NTT (including the `1/n` scaling).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal ring degree");
        let q = &self.modulus;
        let n = self.n;
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0usize;
            for i in 0..h {
                let j2 = j1 + t;
                let s = self.psi_inv_rev[h + i];
                let s_sh = self.psi_inv_rev_shoup[h + i];
                for j in j1..j2 {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = q.add(u, v);
                    a[j + t] = q.mul_shoup(q.sub(u, v), s, s_sh);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = q.mul_shoup(*x, self.n_inv, self.n_inv_shoup);
        }
    }

    /// Point-wise product `a[i] * b[i] mod q` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from `n`.
    pub fn pointwise(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        assert!(a.len() == self.n && b.len() == self.n && out.len() == self.n);
        for i in 0..self.n {
            out[i] = self.modulus.mul(a[i], b[i]);
        }
    }

    /// Point-wise multiply-accumulate: `acc[i] += a[i] * b[i] mod q`.
    pub fn pointwise_acc(&self, a: &[u64], b: &[u64], acc: &mut [u64]) {
        assert!(a.len() == self.n && b.len() == self.n && acc.len() == self.n);
        for i in 0..self.n {
            acc[i] = self.modulus.add(acc[i], self.modulus.mul(a[i], b[i]));
        }
    }

    /// Full negacyclic product of two coefficient-domain polynomials.
    pub fn negacyclic_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        let mut out = vec![0u64; self.n];
        self.pointwise(&fa, &fb, &mut out);
        self.inverse(&mut out);
        out
    }
}

/// Reference O(n^2) negacyclic multiplication, used to validate the NTT and
/// as a fallback for non-NTT-friendly moduli.
pub fn schoolbook_negacyclic_mul(modulus: &Modulus, a: &[u64], b: &[u64]) -> Vec<u64> {
    let n = a.len();
    assert_eq!(b.len(), n);
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            let prod = modulus.mul(ai, bj);
            let k = i + j;
            if k < n {
                out[k] = modulus.add(out[k], prod);
            } else {
                out[k - n] = modulus.sub(out[k - n], prod);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulus::find_ntt_prime;

    fn table(bits: u32, n: usize) -> NttTable {
        NttTable::new(Modulus::new(find_ntt_prime(bits, n)), n)
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let t = table(32, 64);
        let orig: Vec<u64> = (0..64u64).map(|i| i * i + 7).collect();
        let mut a = orig.clone();
        t.forward(&mut a);
        assert_ne!(a, orig, "forward transform must change the data");
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn ntt_mul_matches_schoolbook() {
        for n in [4usize, 16, 256] {
            let q = Modulus::new(find_ntt_prime(30, n));
            let t = NttTable::new(q, n);
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 11) % q.value()).collect();
            let b: Vec<u64> = (0..n as u64).map(|i| (i * i * 5 + 3) % q.value()).collect();
            assert_eq!(
                t.negacyclic_mul(&a, &b),
                schoolbook_negacyclic_mul(&q, &a, &b)
            );
        }
    }

    #[test]
    fn x_times_x_n_minus_1_wraps_negatively() {
        // x * x^(n-1) = x^n = -1 in the negacyclic ring.
        let n = 16;
        let q = Modulus::new(find_ntt_prime(30, n));
        let t = NttTable::new(q, n);
        let mut a = vec![0u64; n];
        a[1] = 1;
        let mut b = vec![0u64; n];
        b[n - 1] = 1;
        let c = t.negacyclic_mul(&a, &b);
        let mut expect = vec![0u64; n];
        expect[0] = q.value() - 1;
        assert_eq!(c, expect);
    }

    #[test]
    fn multiplication_by_one_is_identity() {
        let n = 32;
        let q = Modulus::new(find_ntt_prime(30, n));
        let t = NttTable::new(q, n);
        let a: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
        let mut one = vec![0u64; n];
        one[0] = 1;
        assert_eq!(t.negacyclic_mul(&a, &one), a);
    }

    #[test]
    fn bit_reverse_involution() {
        for i in 0..64usize {
            assert_eq!(bit_reverse(bit_reverse(i, 6), 6), i);
        }
        assert_eq!(bit_reverse(1, 4), 8);
        assert_eq!(bit_reverse(0b0011, 4), 0b1100);
    }

    #[test]
    fn pointwise_acc_accumulates() {
        let t = table(30, 8);
        let a = vec![2u64; 8];
        let b = vec![3u64; 8];
        let mut acc = vec![1u64; 8];
        t.pointwise_acc(&a, &b, &mut acc);
        assert_eq!(acc, vec![7u64; 8]);
    }
}
