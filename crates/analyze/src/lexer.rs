//! A minimal hand-rolled Rust lexer: just enough structure for the
//! lexical rules in [`crate`] — identifiers, integer literals, strings,
//! and punctuation, each stamped with its 1-based source line.
//!
//! Comments are consumed (never tokenized), but `//` comments are
//! scanned for inline waivers of the form
//! `cm_analyze::allow(<rule>): <justification>`; a waiver with an empty
//! justification is ignored. Strings, raw strings, byte strings, char
//! literals, and lifetimes are disambiguated so that quote characters
//! inside them can never desynchronize the token stream.

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`thread`, `fn`, `unwrap`, …).
    Ident,
    /// An integer literal (`0`, `0x1F`, `1_000u64`, …).
    Int,
    /// A string, raw-string, byte-string, or char literal (contents
    /// dropped — only its presence matters to the rules).
    Str,
    /// Any other punctuation, longest-match (`::`, `==`, `=>`, `{`, …).
    Punct,
}

/// One lexeme with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// The lexeme class.
    pub kind: TokenKind,
    /// The lexeme text (empty for [`TokenKind::Str`]).
    pub text: String,
    /// 1-based line the lexeme starts on.
    pub line: usize,
}

/// An inline rule waiver parsed from a `//` comment.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// Line the waiver comment sits on; it covers violations on this
    /// line and the next (a trailing comment covers its own statement, a
    /// comment on its own line covers the statement below).
    pub line: usize,
    /// The rule name inside `cm_analyze::allow(...)`.
    pub rule: String,
    /// The mandatory justification after the colon.
    pub justification: String,
}

/// Multi-character punctuation, tried longest-first so `::` never lexes
/// as two `:`.
const PUNCTS: &[&str] = &[
    "..=", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes `source`, returning the token stream and any inline waivers.
pub fn lex(source: &str) -> (Vec<Token>, Vec<Waiver>) {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut waivers = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            line += 1;
            i += 1;
        } else if c.is_ascii_whitespace() {
            i += 1;
        } else if source[i..].starts_with("//") {
            let end = source[i..].find('\n').map_or(bytes.len(), |n| i + n);
            parse_waiver(&source[i..end], line, &mut waivers);
            i = end;
        } else if source[i..].starts_with("/*") {
            i = skip_block_comment(source, i, &mut line);
        } else if let Some(next) = try_string(source, i, &mut line, &mut tokens) {
            i = next;
        } else if c == b'\'' {
            i = lex_quote(source, i, &mut line, &mut tokens);
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Int,
                text: source[start..i].to_string(),
                line,
            });
        } else if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: source[start..i].to_string(),
                line,
            });
        } else {
            let mut matched = 1;
            for p in PUNCTS {
                if source[i..].starts_with(p) {
                    matched = p.len();
                    break;
                }
            }
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: source[i..i + matched].to_string(),
                line,
            });
            i += matched;
        }
    }
    (tokens, waivers)
}

/// Records a waiver if `comment` carries a well-formed
/// `cm_analyze::allow(<rule>): <justification>` marker.
fn parse_waiver(comment: &str, line: usize, waivers: &mut Vec<Waiver>) {
    const MARKER: &str = "cm_analyze::allow(";
    let Some(at) = comment.find(MARKER) else {
        return;
    };
    let rest = &comment[at + MARKER.len()..];
    let Some(close) = rest.find(')') else {
        return;
    };
    let rule = rest[..close].trim();
    let after = &rest[close + 1..];
    let Some(colon) = after.find(':') else {
        return;
    };
    let justification = after[colon + 1..].trim();
    if rule.is_empty() || justification.is_empty() {
        return;
    }
    waivers.push(Waiver {
        line,
        rule: rule.to_string(),
        justification: justification.to_string(),
    });
}

/// Skips a (nested) `/* ... */` comment starting at `i`.
fn skip_block_comment(source: &str, mut i: usize, line: &mut usize) -> usize {
    let bytes = source.as_bytes();
    let mut depth = 0usize;
    while i < bytes.len() {
        if source[i..].starts_with("/*") {
            depth += 1;
            i += 2;
        } else if source[i..].starts_with("*/") {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            if bytes[i] == b'\n' {
                *line += 1;
            }
            i += 1;
        }
    }
    i
}

/// Lexes a string / raw-string / byte-string literal if one starts at
/// `i`, returning the index just past it.
fn try_string(source: &str, i: usize, line: &mut usize, tokens: &mut Vec<Token>) -> Option<usize> {
    let rest = &source[i..];
    let start_line = *line;
    let (prefix, raw) = if rest.starts_with("r\"") || rest.starts_with("r#") {
        (1, true)
    } else if rest.starts_with("br\"") || rest.starts_with("br#") {
        (2, true)
    } else if rest.starts_with("b\"") {
        (1, false)
    } else if rest.starts_with('"') {
        (0, false)
    } else {
        return None;
    };
    let end = if raw {
        let hashes = source[i + prefix..]
            .bytes()
            .take_while(|&b| b == b'#')
            .count();
        let open = i + prefix + hashes + 1; // past the opening quote
        let closer: String = std::iter::once('"')
            .chain("#".repeat(hashes).chars())
            .collect();
        let close = source[open..]
            .find(&closer)
            .map_or(source.len(), |n| open + n);
        *line += source[i..close].bytes().filter(|&b| b == b'\n').count();
        (close + closer.len()).min(source.len())
    } else {
        let bytes = source.as_bytes();
        let mut j = i + prefix + 1;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'"' => {
                    j += 1;
                    break;
                }
                b'\n' => {
                    *line += 1;
                    j += 1;
                }
                _ => j += 1,
            }
        }
        j
    };
    tokens.push(Token {
        kind: TokenKind::Str,
        text: String::new(),
        line: start_line,
    });
    Some(end)
}

/// Lexes a `'`-introduced lexeme: a char literal (one [`TokenKind::Str`]
/// token) or a lifetime (a `'` punct; the name lexes as a normal ident).
fn lex_quote(source: &str, i: usize, line: &mut usize, tokens: &mut Vec<Token>) -> usize {
    let bytes = source.as_bytes();
    let next = bytes.get(i + 1).copied();
    let is_lifetime = match next {
        Some(b'\\') | None => false,
        Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
            // `'x'` is a char literal, `'x` (no closing quote after the
            // ident run) is a lifetime.
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            bytes.get(j) != Some(&b'\'')
        }
        _ => false,
    };
    if is_lifetime {
        tokens.push(Token {
            kind: TokenKind::Punct,
            text: "'".to_string(),
            line: *line,
        });
        return i + 1;
    }
    // Char literal: scan to the closing quote, honoring escapes.
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\'' => {
                j += 1;
                break;
            }
            b'\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    tokens.push(Token {
        kind: TokenKind::Str,
        text: String::new(),
        line: *line,
    });
    j
}

/// Marks every token inside `#[test]` / `#[cfg(test)]`-gated items (the
/// attribute, any stacked attributes, and the braced item body), so
/// rules can exempt test-only code. `#[cfg(not(test))]` is *not*
/// exempt.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].kind == TokenKind::Punct && tokens[i].text == "#") {
            i += 1;
            continue;
        }
        let Some((attr_end, is_test)) = scan_attr(tokens, i) else {
            i += 1;
            continue;
        };
        if !is_test {
            i = attr_end;
            continue;
        }
        // Swallow any further stacked attributes, then the item they
        // gate: everything through the matching `}` of the item body (a
        // `;`-terminated item has no body to mask beyond itself).
        let mut j = attr_end;
        while j < tokens.len() && tokens[j].kind == TokenKind::Punct && tokens[j].text == "#" {
            match scan_attr(tokens, j) {
                Some((end, _)) => j = end,
                None => break,
            }
        }
        let mut depth = 0usize;
        let mut end = j;
        while end < tokens.len() {
            let t = &tokens[end];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" => depth += 1,
                    // A stray `}` (the attribute sat at the end of a
                    // block) ends the item scan without underflowing.
                    "}" if depth == 0 => break,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end += 1;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        end += 1;
                        break;
                    }
                    _ => {}
                }
            }
            end += 1;
        }
        for m in mask.iter_mut().take(end).skip(i) {
            *m = true;
        }
        i = end;
    }
    mask
}

/// Scans the attribute group starting at the `#` at `i`; returns the
/// index just past its `]` and whether it gates test-only code.
fn scan_attr(tokens: &[Token], i: usize) -> Option<(usize, bool)> {
    let open = i + 1;
    if !(tokens.get(open)?.kind == TokenKind::Punct && tokens[open].text == "[") {
        return None;
    }
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct && t.text == "[" {
            depth += 1;
        } else if t.kind == TokenKind::Punct && t.text == "]" {
            depth -= 1;
            if depth == 0 {
                return Some((j + 1, has_test && !has_not));
            }
        } else if t.kind == TokenKind::Ident {
            if t.text == "test" {
                has_test = true;
            }
            if t.text == "not" {
                has_not = true;
            }
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).0.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn lexes_idents_puncts_and_ints() {
        assert_eq!(
            texts("std::thread::spawn(0x1F);"),
            ["std", "::", "thread", "::", "spawn", "(", "0x1F", ")", ";"]
        );
    }

    #[test]
    fn strings_and_chars_hide_their_contents() {
        let (toks, _) = lex(r#"let s = "a // not a comment == x"; let c = '"';"#);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "let", "c"]);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 2);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) -> bool { x == r#\"quote \" inside\"# }");
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
        assert!(toks.iter().any(|t| t.text == "=="));
    }

    #[test]
    fn waivers_require_a_justification() {
        let src = "\
let a = 1; // cm_analyze::allow(no-panic): invariant holds by construction
let b = 2; // cm_analyze::allow(no-panic):
let c = 3; // cm_analyze::allow(no-panic) missing colon
";
        let (_, waivers) = lex(src);
        assert_eq!(waivers.len(), 1);
        assert_eq!(waivers[0].line, 1);
        assert_eq!(waivers[0].rule, "no-panic");
        assert_eq!(waivers[0].justification, "invariant holds by construction");
    }

    #[test]
    fn test_mask_covers_gated_items_only() {
        let src = "\
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn gated() { y.unwrap(); }
}
#[cfg(not(test))]
fn also_live() { z.unwrap(); }
";
        let (toks, _) = lex(src);
        let mask = test_mask(&toks);
        let masked: Vec<&str> = toks
            .iter()
            .zip(&mask)
            .filter(|(t, &m)| m && t.kind == TokenKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"gated"));
        assert!(!masked.contains(&"live"));
        assert!(!masked.contains(&"also_live"));
        assert!(masked.contains(&"y"));
        assert!(!masked.contains(&"z"));
    }

    #[test]
    fn block_comments_nest_and_track_lines() {
        let (toks, _) = lex("/* a /* b */ still comment */ after\nnext");
        assert_eq!(toks[0].text, "after");
        assert_eq!(toks[1].line, 2);
    }
}
