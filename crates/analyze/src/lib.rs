#![warn(missing_docs)]

//! # cm-analyze
//!
//! The workspace's offline static-analysis pass: a hand-rolled lexer
//! ([`lexer`]) plus a registry of lexical rules that enforce the
//! invariants the CIPHERMATCH codebase is built around — concurrency
//! only through the shared `cm_core::exec` runtime, constant-time
//! comparison of secret material, no panics on serving paths, a
//! duplicate-free and fully-used wire-tag registry, no lock guards held
//! across work-pool submission, and manifests that resolve shimmed
//! crates to the in-tree shims.
//!
//! Run it as `cargo run -p cm_analyze` (from anywhere in the workspace):
//! it walks `crates/`, `src/`, `examples/`, and `tests/` under the
//! workspace root, prints `file:line: rule: message` diagnostics, and
//! exits nonzero when any unwaived violation remains. A finding can be
//! waived inline with
//! `// cm_analyze::allow(<rule>): <justification>` on the offending
//! line or the line above; waivers without a justification are ignored,
//! and every honored waiver is counted and reported.
//!
//! The rules are *lexical*: they see tokens, not types, so they can run
//! with zero dependencies and no compiler plumbing. That buys
//! simplicity at the price of blind spots (a call submitted through a
//! re-exported alias, a lock guard passed across a function boundary),
//! which is the usual static-analysis trade and why the waiver requires
//! a written justification rather than being a bare marker.

pub mod lexer;

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lexer::{lex, test_mask, Token, TokenKind, Waiver};

/// Rule: concurrency only through `cm_core::exec` — no raw
/// `std::thread::{spawn, scope, Builder}` outside the runtime module
/// and test code.
pub const RULE_EXEC_THREADS: &str = "exec-threads";
/// Rule: no `==`/`!=` on secret-named values; compare through
/// `cm_server::secrecy::{keys_match, tags_match}`.
pub const RULE_CT_SECRECY: &str = "ct-secrecy";
/// Rule: no `unwrap`/`expect`/`panic!`-family macros in `cm_server`
/// or `cm_reactor` non-test code; serving paths return typed
/// `MatchError`s.
pub const RULE_NO_PANIC: &str = "no-panic";
/// Rule: the `wire.rs` tag registry is duplicate-free per family, every
/// constant is used on both codec paths, and codecs never match or push
/// raw integer tags.
pub const RULE_WIRE_TAGS: &str = "wire-tags";
/// Rule: no `.lock()` / `lock_unpoisoned` guard lexically live across a
/// `submit` / `submit_measured` / `run_batch` call.
pub const RULE_LOCK_ACROSS_SUBMIT: &str = "lock-across-submit";
/// Rule: manifests must resolve crates shadowed by `shims/` as
/// path/workspace dependencies, never by crates.io version.
pub const RULE_SHIM_HYGIENE: &str = "shim-hygiene";
/// Rule: the `metric_names` table in `cm_telemetry` is duplicate-free,
/// and no `register_counter`/`register_gauge`/`register_histogram` call
/// outside it passes a raw string literal as the metric name.
pub const RULE_METRIC_NAMES: &str = "metric-names";

/// Every rule this analyzer evaluates.
pub const RULES: &[&str] = &[
    RULE_EXEC_THREADS,
    RULE_CT_SECRECY,
    RULE_NO_PANIC,
    RULE_WIRE_TAGS,
    RULE_LOCK_ACROSS_SUBMIT,
    RULE_SHIM_HYGIENE,
    RULE_METRIC_NAMES,
];

/// The one module allowed to touch raw scoped/spawned threads.
const EXEC_FILE: &str = "crates/core/src/exec.rs";
/// The reactor's event loop: the one legitimate non-exec thread in the
/// workspace. It multiplexes every socket and must outlive any single
/// pool job, so it cannot itself be a job (a pool drain would deadlock
/// behind its own front-end).
const REACTOR_FILE: &str = "crates/reactor/src/reactor.rs";
/// The one module allowed to compare secret bytes (in constant time).
const SECRECY_FILE: &str = "crates/server/src/secrecy.rs";
/// The wire codec whose tag registry [`RULE_WIRE_TAGS`] audits.
const WIRE_FILE: &str = "crates/server/src/wire.rs";
/// The metric-name table whose values [`RULE_METRIC_NAMES`] audits for
/// duplicates — and the one place a metric-name string literal may live.
const METRIC_NAMES_FILE: &str = "crates/telemetry/src/metric_names.rs";
/// The no-panic serving surface: the dispatch layer…
const SERVER_SRC: &str = "crates/server/src/";
/// …and the reactor, which owns every socket — a panic there drops all
/// of them at once.
const REACTOR_SRC: &str = "crates/reactor/src/";

/// One diagnostic: a rule violated at a source location.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Workspace-relative path (unix separators).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description of the finding.
    pub message: String,
    /// `Some(justification)` when an inline waiver covers this finding.
    pub waived: Option<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The outcome of analyzing a tree: every finding, waived or not.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in walk order.
    pub violations: Vec<Violation>,
}

impl Report {
    /// The findings no waiver covers — these fail the build.
    pub fn unwaived(&self) -> Vec<&Violation> {
        self.violations
            .iter()
            .filter(|v| v.waived.is_none())
            .collect()
    }

    /// How many findings an inline waiver covers.
    pub fn waived_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.waived.is_some())
            .count()
    }
}

/// One constant parsed from the `metric_names` table in `cm_telemetry`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricNameConst {
    /// The constant's name (`SERVER_REQUESTS`, …).
    pub name: String,
    /// The metric name the constant carries (`cm_server_requests_total`).
    pub value: String,
    /// Line the constant is declared on.
    pub line: usize,
}

/// One constant parsed from the `mod tags` registry in `wire.rs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TagConst {
    /// Tag family: the name's prefix up to the first `_` (`REQ`,
    /// `RESP`, `ERR`, …). Values must be unique per family.
    pub family: String,
    /// The constant's name.
    pub name: String,
    /// The constant's value.
    pub value: u64,
    /// Line the constant is declared on.
    pub line: usize,
}

/// Analyzes a whole tree rooted at `root` (the workspace root): every
/// `.rs` file and `Cargo.toml` under `crates/`, `src/`, `examples/`,
/// and `tests/`, plus the root manifest. Directories named `target` or
/// `fixtures` (and hidden ones) are skipped.
///
/// # Errors
///
/// Propagates I/O errors from walking and reading the tree (individual
/// unreadable files abort the run — a lint that silently skips files
/// reads as a pass it never performed).
pub fn analyze_root(root: &Path) -> io::Result<Report> {
    let shimmed = shimmed_crates(root)?;
    let mut files = Vec::new();
    for top in ["crates", "src", "examples", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_files(&dir, &mut files)?;
        }
    }
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        files.push(root_manifest);
    }
    files.sort();
    let mut violations = Vec::new();
    for path in files {
        let rel = relative_path(root, &path);
        let source = fs::read_to_string(&path)?;
        if rel.ends_with(".rs") {
            violations.extend(analyze_rust_source(&rel, &source));
        } else {
            violations.extend(analyze_manifest(&rel, &source, &shimmed));
        }
    }
    Ok(Report { violations })
}

/// The crate names `shims/` shadows (one subdirectory per shim).
///
/// # Errors
///
/// Propagates `read_dir` failures; a missing `shims/` directory is an
/// empty list, not an error.
pub fn shimmed_crates(root: &Path) -> io::Result<Vec<String>> {
    let dir = root.join("shims");
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut names = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry.path().is_dir() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    Ok(names)
}

fn collect_files(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_files(&path, files)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            files.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs every Rust-source rule over one file. `rel_path` is the
/// workspace-relative path with unix separators (it selects which rules
/// and whitelists apply). Waivers are already applied in the result.
pub fn analyze_rust_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let (tokens, waivers) = lex(source);
    let mask = test_mask(&tokens);
    let is_test_path = rel_path.split('/').any(|c| c == "tests" || c == "benches");
    let mut out = Vec::new();
    if !is_test_path {
        if rel_path != EXEC_FILE && rel_path != REACTOR_FILE {
            rule_exec_threads(rel_path, &tokens, &mask, &mut out);
        }
        if rel_path != SECRECY_FILE {
            rule_ct_secrecy(rel_path, &tokens, &mask, &mut out);
        }
        if rel_path.starts_with(SERVER_SRC) || rel_path.starts_with(REACTOR_SRC) {
            rule_no_panic(rel_path, &tokens, &mask, &mut out);
        }
        rule_lock_across_submit(rel_path, &tokens, &mask, &mut out);
        if rel_path != METRIC_NAMES_FILE {
            rule_metric_names_adhoc(rel_path, &tokens, &mask, &mut out);
        }
    }
    if rel_path == WIRE_FILE {
        rule_wire_tags(rel_path, &tokens, &mask, &mut out);
    }
    if rel_path == METRIC_NAMES_FILE {
        rule_metric_names_table(rel_path, source, &mut out);
    }
    apply_waivers(&waivers, &mut out);
    out
}

fn apply_waivers(waivers: &[Waiver], violations: &mut [Violation]) {
    for v in violations {
        if let Some(w) = waivers
            .iter()
            .find(|w| w.rule == v.rule && (w.line == v.line || w.line + 1 == v.line))
        {
            v.waived = Some(w.justification.clone());
        }
    }
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

// ---------------------------------------------------------------------
// Rule: exec-threads
// ---------------------------------------------------------------------

/// Thread entry points that bypass the shared runtime.
const RAW_THREAD_CALLS: &[&str] = &["spawn", "scope", "Builder"];

fn rule_exec_threads(rel: &str, tokens: &[Token], mask: &[bool], out: &mut Vec<Violation>) {
    for i in 0..tokens.len().saturating_sub(2) {
        if is_ident(&tokens[i], "thread")
            && is_punct(&tokens[i + 1], "::")
            && tokens[i + 2].kind == TokenKind::Ident
            && RAW_THREAD_CALLS.contains(&tokens[i + 2].text.as_str())
            && !mask[i + 2]
        {
            out.push(Violation {
                file: rel.to_string(),
                line: tokens[i + 2].line,
                rule: RULE_EXEC_THREADS,
                message: format!(
                    "raw `std::thread::{}` outside `cm_core::exec` — route concurrency \
                     through the shared work-pool runtime (`WorkerPool`, `fan_out`, `join_all`)",
                    tokens[i + 2].text
                ),
                waived: None,
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: ct-secrecy
// ---------------------------------------------------------------------

/// Identifiers that always denote secret material.
const SECRET_NAMES: &[&str] = &["channel_key", "auth_tag", "upload_tag", "content_digest"];
/// Field names that denote secret material when accessed as `.field`.
const SECRET_FIELDS: &[&str] = &["tag", "key", "digest", "content", "channel_key"];
/// How many tokens each side of a comparison operator the rule
/// inspects (bounded by expression delimiters first).
const SECRECY_WINDOW: usize = 10;

fn rule_ct_secrecy(rel: &str, tokens: &[Token], mask: &[bool], out: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        if mask[i] || !(is_punct(&tokens[i], "==") || is_punct(&tokens[i], "!=")) {
            continue;
        }
        let boundary = |t: &Token| {
            is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}") || is_punct(t, ",")
        };
        let lo = (i.saturating_sub(SECRECY_WINDOW)..i)
            .rev()
            .find(|&j| boundary(&tokens[j]))
            .map_or(i.saturating_sub(SECRECY_WINDOW), |j| j + 1);
        let hi = (i + 1..tokens.len().min(i + 1 + SECRECY_WINDOW))
            .find(|&j| boundary(&tokens[j]))
            .unwrap_or(tokens.len().min(i + 1 + SECRECY_WINDOW));
        for j in lo..hi {
            let t = &tokens[j];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let named_secret = SECRET_NAMES.contains(&t.text.as_str());
            let field_secret =
                SECRET_FIELDS.contains(&t.text.as_str()) && j > 0 && is_punct(&tokens[j - 1], ".");
            if named_secret || field_secret {
                out.push(Violation {
                    file: rel.to_string(),
                    line: tokens[i].line,
                    rule: RULE_CT_SECRECY,
                    message: format!(
                        "`{}` on secret material (`{}`) leaks the matching prefix through \
                         timing — compare via `cm_server::secrecy::{{keys_match, tags_match}}`",
                        tokens[i].text, t.text
                    ),
                    waived: None,
                });
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: no-panic
// ---------------------------------------------------------------------

/// Panicking macros forbidden on serving paths.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn rule_no_panic(rel: &str, tokens: &[Token], mask: &[bool], out: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        if mask[i] || tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let text = tokens[i].text.as_str();
        let method_call = (text == "unwrap" || text == "expect")
            && i > 0
            && is_punct(&tokens[i - 1], ".")
            && i + 1 < tokens.len()
            && is_punct(&tokens[i + 1], "(");
        let macro_call =
            PANIC_MACROS.contains(&text) && i + 1 < tokens.len() && is_punct(&tokens[i + 1], "!");
        if method_call || macro_call {
            let rendered = if method_call {
                format!(".{text}()")
            } else {
                format!("{text}!")
            };
            out.push(Violation {
                file: rel.to_string(),
                line: tokens[i].line,
                rule: RULE_NO_PANIC,
                message: format!(
                    "`{rendered}` on a serving path — surface a typed error \
                     (e.g. `MatchError::Internal`) instead of panicking a worker"
                ),
                waived: None,
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: wire-tags
// ---------------------------------------------------------------------

/// Parses the `mod tags { ... }` registry out of `wire.rs` source.
/// Returns an empty table when the module is missing (which
/// [`RULE_WIRE_TAGS`] reports as its own violation).
pub fn wire_tag_table(source: &str) -> Vec<TagConst> {
    let (tokens, _) = lex(source);
    match find_tags_region(&tokens) {
        Some((start, end)) => parse_tag_consts(&tokens[start..end]),
        None => Vec::new(),
    }
}

/// Locates the token range strictly inside `mod tags { ... }`.
fn find_tags_region(tokens: &[Token]) -> Option<(usize, usize)> {
    for i in 0..tokens.len().saturating_sub(2) {
        if is_ident(&tokens[i], "mod")
            && is_ident(&tokens[i + 1], "tags")
            && is_punct(&tokens[i + 2], "{")
        {
            let mut depth = 0usize;
            for (j, t) in tokens.iter().enumerate().skip(i + 2) {
                if is_punct(t, "{") {
                    depth += 1;
                } else if is_punct(t, "}") {
                    depth -= 1;
                    if depth == 0 {
                        return Some((i + 3, j));
                    }
                }
            }
        }
    }
    None
}

fn parse_tag_consts(tokens: &[Token]) -> Vec<TagConst> {
    let mut consts = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_ident(&tokens[i], "const")
            && i + 5 < tokens.len()
            && tokens[i + 1].kind == TokenKind::Ident
            && is_punct(&tokens[i + 2], ":")
            && tokens[i + 3].kind == TokenKind::Ident
            && is_punct(&tokens[i + 4], "=")
            && tokens[i + 5].kind == TokenKind::Int
        {
            let name = tokens[i + 1].text.clone();
            if let Some(value) = parse_int(&tokens[i + 5].text) {
                let family = name.split('_').next().unwrap_or(&name).to_string();
                consts.push(TagConst {
                    family,
                    name,
                    value,
                    line: tokens[i + 1].line,
                });
            }
            i += 6;
        } else {
            i += 1;
        }
    }
    consts
}

/// Parses a Rust integer literal (decimal/hex/octal/binary, `_`
/// separators, optional type suffix).
fn parse_int(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    let (radix, digits) = if let Some(d) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (16, d)
    } else if let Some(d) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        (8, d)
    } else if let Some(d) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        (2, d)
    } else {
        (10, t.as_str())
    };
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    u64::from_str_radix(&digits[..end], radix).ok()
}

/// Codec functions in `wire.rs` that must route every tag through the
/// registry rather than raw integer literals.
const CODEC_FNS: &[&str] = &["encode", "decode", "put_error", "read_error"];

fn rule_wire_tags(rel: &str, tokens: &[Token], mask: &[bool], out: &mut Vec<Violation>) {
    let Some((start, end)) = find_tags_region(tokens) else {
        out.push(Violation {
            file: rel.to_string(),
            line: 1,
            rule: RULE_WIRE_TAGS,
            message: "wire.rs has no `mod tags` registry — wire tags must be named constants"
                .to_string(),
            waived: None,
        });
        return;
    };
    let consts = parse_tag_consts(&tokens[start..end]);
    // Duplicate values within a family.
    let mut seen: HashMap<(String, u64), String> = HashMap::new();
    for c in &consts {
        if let Some(prev) = seen.insert((c.family.clone(), c.value), c.name.clone()) {
            out.push(Violation {
                file: rel.to_string(),
                line: c.line,
                rule: RULE_WIRE_TAGS,
                message: format!(
                    "duplicate wire tag: `{}` = {} collides with `{}` in the `{}` family",
                    c.name, c.value, prev, c.family
                ),
                waived: None,
            });
        }
    }
    // Every constant must appear on both codec paths: at least two uses
    // outside the registry itself.
    for c in &consts {
        let uses = tokens
            .iter()
            .enumerate()
            .filter(|&(j, t)| (j < start || j >= end) && is_ident(t, &c.name) && !mask[j])
            .count();
        if uses < 2 {
            out.push(Violation {
                file: rel.to_string(),
                line: c.line,
                rule: RULE_WIRE_TAGS,
                message: format!(
                    "wire tag `{}` is referenced {uses} time(s) outside the registry — \
                     a registered tag must be used on both the encode and decode paths",
                    c.name
                ),
                waived: None,
            });
        }
    }
    // Codec bodies must not match on or push raw integer tags.
    let mut i = 0;
    while i + 1 < tokens.len() {
        if !(is_ident(&tokens[i], "fn")
            && tokens[i + 1].kind == TokenKind::Ident
            && CODEC_FNS.contains(&tokens[i + 1].text.as_str())
            && !mask[i + 1])
        {
            i += 1;
            continue;
        }
        let fn_name = tokens[i + 1].text.clone();
        // Find the body: first `{` after the signature, then its match.
        let Some(open) = (i + 2..tokens.len()).find(|&j| is_punct(&tokens[j], "{")) else {
            break;
        };
        let mut depth = 0usize;
        let mut close = open;
        for (j, t) in tokens.iter().enumerate().skip(open) {
            if is_punct(t, "{") {
                depth += 1;
            } else if is_punct(t, "}") {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
        }
        for j in open..close {
            if tokens[j].kind != TokenKind::Int {
                continue;
            }
            let arm = j + 1 < tokens.len() && is_punct(&tokens[j + 1], "=>");
            let pushed =
                j >= 2 && is_punct(&tokens[j - 1], "(") && is_ident(&tokens[j - 2], "push");
            if arm || pushed {
                out.push(Violation {
                    file: rel.to_string(),
                    line: tokens[j].line,
                    rule: RULE_WIRE_TAGS,
                    message: format!(
                        "raw integer `{}` used as a wire tag in `{fn_name}` — name it in \
                         the `tags::` registry",
                        tokens[j].text
                    ),
                    waived: None,
                });
            }
        }
        i = close.max(i + 1);
    }
}

// ---------------------------------------------------------------------
// Rule: metric-names
// ---------------------------------------------------------------------

/// Registration entry points whose first argument must be a
/// `metric_names::` constant, never a raw string literal.
const REGISTER_CALLS: &[&str] = &["register_counter", "register_gauge", "register_histogram"];

/// Parses the `pub const NAME: &str = "value";` table out of
/// `crates/telemetry/src/metric_names.rs` source. This works on the raw
/// source (not the token stream) because the lexer deliberately drops
/// string contents — here the string *is* the datum.
pub fn metric_name_table(source: &str) -> Vec<MetricNameConst> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = raw.trim();
        let Some(rest) = line
            .strip_prefix("pub const ")
            .or_else(|| line.strip_prefix("const "))
        else {
            continue;
        };
        let Some((name, rest)) = rest.split_once(':') else {
            continue;
        };
        let Some((ty, value)) = rest.split_once('=') else {
            continue;
        };
        if !ty.contains("str") {
            continue;
        }
        let value = value.trim().trim_end_matches(';').trim_end();
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            continue;
        };
        out.push(MetricNameConst {
            name: name.trim().to_string(),
            value: value.to_string(),
            line: idx + 1,
        });
    }
    out
}

/// Audits the metric-name table itself: two constants sharing one
/// exposition name would silently merge two series.
fn rule_metric_names_table(rel: &str, source: &str, out: &mut Vec<Violation>) {
    let mut seen: HashMap<String, String> = HashMap::new();
    for c in metric_name_table(source) {
        if let Some(prev) = seen.insert(c.value.clone(), c.name.clone()) {
            out.push(Violation {
                file: rel.to_string(),
                line: c.line,
                rule: RULE_METRIC_NAMES,
                message: format!(
                    "duplicate metric name: `{}` = \"{}\" collides with `{}` — two \
                     constants exposing one series name merge silently in the exposition",
                    c.name, c.value, prev
                ),
                waived: None,
            });
        }
    }
}

/// Flags `register_counter("raw literal", …)`-style calls outside the
/// table module: a metric name that is not a `metric_names::` constant
/// is invisible to the catalog and to this lint's duplicate check.
fn rule_metric_names_adhoc(rel: &str, tokens: &[Token], mask: &[bool], out: &mut Vec<Violation>) {
    for i in 0..tokens.len().saturating_sub(2) {
        if tokens[i].kind == TokenKind::Ident
            && REGISTER_CALLS.contains(&tokens[i].text.as_str())
            && !mask[i]
            && is_punct(&tokens[i + 1], "(")
            && tokens[i + 2].kind == TokenKind::Str
        {
            out.push(Violation {
                file: rel.to_string(),
                line: tokens[i + 2].line,
                rule: RULE_METRIC_NAMES,
                message: format!(
                    "raw string literal passed to `{}` — register metric names through \
                     the `cm_telemetry::metric_names` table so the catalog stays \
                     collision-checked and greppable",
                    tokens[i].text
                ),
                waived: None,
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: lock-across-submit
// ---------------------------------------------------------------------

/// Pool-submission entry points a lock guard must not be held across.
const SUBMIT_CALLS: &[&str] = &["submit", "submit_measured", "run_batch"];

fn rule_lock_across_submit(rel: &str, tokens: &[Token], mask: &[bool], out: &mut Vec<Violation>) {
    struct Binding {
        name: String,
        depth: usize,
    }
    let mut live: Vec<Binding> = Vec::new();
    // Bindings activate at the `;` ending their `let` statement.
    let mut pending: Vec<(usize, Binding)> = Vec::new();
    let mut depth = 0usize;
    for i in 0..tokens.len() {
        while let Some(pos) = pending.iter().position(|(at, _)| *at <= i) {
            live.push(pending.remove(pos).1);
        }
        let t = &tokens[i];
        if is_punct(t, "{") {
            depth += 1;
        } else if is_punct(t, "}") {
            depth = depth.saturating_sub(1);
            live.retain(|b| b.depth <= depth);
            pending.retain(|(_, b)| b.depth <= depth);
        } else if is_ident(t, "drop") && i + 3 < tokens.len() && is_punct(&tokens[i + 1], "(") {
            if tokens[i + 2].kind == TokenKind::Ident && is_punct(&tokens[i + 3], ")") {
                let name = &tokens[i + 2].text;
                live.retain(|b| &b.name != name);
            }
        } else if is_ident(t, "let") && !mask[i] {
            let mut j = i + 1;
            if j < tokens.len() && is_ident(&tokens[j], "mut") {
                j += 1;
            }
            // Only simple `let name = ...` / `let name: T = ...`
            // bindings are tracked (patterns don't bind one clear
            // guard).
            if j + 1 >= tokens.len()
                || tokens[j].kind != TokenKind::Ident
                || tokens[j].text == "_"
                || !(is_punct(&tokens[j + 1], "=") || is_punct(&tokens[j + 1], ":"))
            {
                continue;
            }
            let name = tokens[j].text.clone();
            // Scan the initializer to the statement's `;` (at this
            // brace depth) looking for a lock acquisition.
            let mut k = j + 1;
            let mut local_depth = 0usize;
            let mut locks = false;
            let mut stmt_end = tokens.len();
            while k < tokens.len() {
                let u = &tokens[k];
                if is_punct(u, "{") || is_punct(u, "(") || is_punct(u, "[") {
                    local_depth += 1;
                } else if is_punct(u, "}") || is_punct(u, ")") || is_punct(u, "]") {
                    local_depth = local_depth.saturating_sub(1);
                } else if is_punct(u, ";") && local_depth == 0 {
                    stmt_end = k;
                    break;
                } else if (is_ident(u, "lock") && k > 0 && is_punct(&tokens[k - 1], "."))
                    || is_ident(u, "lock_unpoisoned")
                {
                    locks = true;
                }
                k += 1;
            }
            if locks {
                pending.push((stmt_end, Binding { name, depth }));
            }
        } else if t.kind == TokenKind::Ident
            && SUBMIT_CALLS.contains(&t.text.as_str())
            && !mask[i]
            && i > 0
            && is_punct(&tokens[i - 1], ".")
            && i + 1 < tokens.len()
            && is_punct(&tokens[i + 1], "(")
        {
            if let Some(b) = live.last() {
                out.push(Violation {
                    file: rel.to_string(),
                    line: t.line,
                    rule: RULE_LOCK_ACROSS_SUBMIT,
                    message: format!(
                        "`.{}()` called while lock guard `{}` is live — a pool job \
                         blocking on that mutex deadlocks the runtime; release the guard \
                         (scope or `drop`) before submitting",
                        t.text, b.name
                    ),
                    waived: None,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: shim-hygiene
// ---------------------------------------------------------------------

/// Runs the manifest rule over one `Cargo.toml`. `shimmed` lists the
/// crate names `shims/` shadows. Waivers are not supported in
/// manifests (TOML comments are not Rust comments); fix the manifest
/// instead.
pub fn analyze_manifest(rel_path: &str, source: &str, shimmed: &[String]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut section = String::new();
    // `[dependencies.<name>]`-style table currently open, if any:
    // (name, header line, saw a path/workspace key).
    let mut open_table: Option<(String, usize, bool)> = None;
    let flush = |table: &mut Option<(String, usize, bool)>, out: &mut Vec<Violation>| {
        if let Some((name, line, satisfied)) = table.take() {
            if !satisfied {
                out.push(shim_violation(rel_path, line, &name));
            }
        }
    };
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            flush(&mut open_table, &mut out);
            section = line
                .trim_matches(|c| c == '[' || c == ']')
                .trim()
                .to_string();
            if let Some((kind, name)) = section.rsplit_once('.') {
                if is_dep_section(kind) && shimmed.iter().any(|s| s == name) {
                    open_table = Some((name.to_string(), line_no, false));
                }
            }
            continue;
        }
        if let Some(table) = &mut open_table {
            if line.starts_with("path") || line.starts_with("workspace") {
                table.2 = true;
            }
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        // Dotted keys: `rand.workspace = true` / `rand.path = "..."`.
        if let Some((base, sub)) = key.split_once('.') {
            if shimmed.iter().any(|s| s == base) && !(sub == "workspace" || sub == "path") {
                out.push(shim_violation(rel_path, line_no, base));
            }
            continue;
        }
        if shimmed.iter().any(|s| s == key)
            && !(value.contains("path") || value.contains("workspace"))
        {
            out.push(shim_violation(rel_path, line_no, key));
        }
    }
    flush(&mut open_table, &mut out);
    out
}

fn is_dep_section(name: &str) -> bool {
    name == "dependencies"
        || name == "dev-dependencies"
        || name == "build-dependencies"
        || name.ends_with(".dependencies")
        || name.ends_with(".dev-dependencies")
        || name.ends_with(".build-dependencies")
}

fn shim_violation(rel: &str, line: usize, name: &str) -> Violation {
    Violation {
        file: rel.to_string(),
        line,
        rule: RULE_SHIM_HYGIENE,
        message: format!(
            "dependency `{name}` is shadowed by `shims/{name}` — declare it as a \
             path/workspace dependency so offline builds never reach for crates.io"
        ),
        waived: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn exec_threads_flags_raw_spawn_but_not_exec_or_tests() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(
            rules_fired(&analyze_rust_source("crates/core/src/api.rs", src)),
            [RULE_EXEC_THREADS]
        );
        assert!(analyze_rust_source(super::EXEC_FILE, src).is_empty());
        // The reactor's event loop is the one other blessed thread; the
        // rest of its crate is NOT exempt.
        assert!(analyze_rust_source(super::REACTOR_FILE, src).is_empty());
        assert_eq!(
            rules_fired(&analyze_rust_source("crates/reactor/src/sys.rs", src)),
            [RULE_EXEC_THREADS]
        );
        assert!(analyze_rust_source("crates/core/tests/e2e.rs", src).is_empty());
        let gated = "#[cfg(test)]\nmod tests { fn f() { std::thread::scope(|s| {}); } }";
        assert!(analyze_rust_source("crates/core/src/api.rs", gated).is_empty());
    }

    #[test]
    fn ct_secrecy_flags_equality_on_secrets() {
        let src = "fn f(a: &[u8; 32], channel_key: &[u8; 32]) -> bool { a == channel_key }";
        assert_eq!(
            rules_fired(&analyze_rust_source("crates/server/src/x.rs", src)),
            [RULE_CT_SECRECY]
        );
        let field = "fn f() -> bool { expected != auth.tag }";
        assert_eq!(
            rules_fired(&analyze_rust_source("crates/server/src/x.rs", field)),
            [RULE_CT_SECRECY]
        );
        // The blessed module itself is exempt.
        let blessed = "pub fn tags_match(a: u8, b: u8) -> bool { a ^ b == 0 }";
        assert!(analyze_rust_source(super::SECRECY_FILE, blessed).is_empty());
        // A `tag` ident that is not a field access is not secret.
        let benign = "fn f(tag: u8) -> bool { tag == 3 }";
        assert!(analyze_rust_source("crates/server/src/x.rs", benign).is_empty());
    }

    #[test]
    fn no_panic_is_scoped_to_server_sources() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(
            rules_fired(&analyze_rust_source("crates/server/src/x.rs", src)),
            [RULE_NO_PANIC]
        );
        assert!(analyze_rust_source("crates/core/src/x.rs", src).is_empty());
        // The reactor owns every socket: its whole crate is a serving
        // path, event loop included.
        assert_eq!(
            rules_fired(&analyze_rust_source("crates/reactor/src/reactor.rs", src)),
            [RULE_NO_PANIC]
        );
        let macros = "fn f() { panic!(\"boom\"); }";
        assert_eq!(
            rules_fired(&analyze_rust_source("crates/server/src/x.rs", macros)),
            [RULE_NO_PANIC]
        );
        // `unwrap_or_else` is not `unwrap`.
        let benign = "fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }";
        assert!(analyze_rust_source("crates/server/src/x.rs", benign).is_empty());
    }

    #[test]
    fn waivers_suppress_with_justification_only() {
        let waived = "fn f(x: Option<u8>) -> u8 {\n    \
            // cm_analyze::allow(no-panic): checked non-None two lines up\n    \
            x.unwrap()\n}";
        let found = analyze_rust_source("crates/server/src/x.rs", waived);
        assert_eq!(found.len(), 1);
        assert!(found[0].waived.is_some());
        let unjustified = "fn f(x: Option<u8>) -> u8 {\n    \
            // cm_analyze::allow(no-panic):\n    \
            x.unwrap()\n}";
        let found = analyze_rust_source("crates/server/src/x.rs", unjustified);
        assert_eq!(found.len(), 1);
        assert!(found[0].waived.is_none());
        // A waiver for a different rule does not apply.
        let wrong = "fn f(x: Option<u8>) -> u8 {\n    \
            // cm_analyze::allow(exec-threads): wrong rule\n    \
            x.unwrap()\n}";
        let found = analyze_rust_source("crates/server/src/x.rs", wrong);
        assert!(found[0].waived.is_none());
    }

    #[test]
    fn lock_across_submit_tracks_guard_lifetimes() {
        let bad = "fn f() { let g = m.lock().unwrap(); pool.submit(|| {}); }";
        assert_eq!(
            rules_fired(&analyze_rust_source("crates/core/src/x.rs", bad)),
            [RULE_LOCK_ACROSS_SUBMIT]
        );
        // Guard released by scope before the submit: clean.
        let scoped = "fn f() { { let g = m.lock().unwrap(); g.push(1); } pool.submit(|| {}); }";
        assert!(analyze_rust_source("crates/core/src/x.rs", scoped).is_empty());
        // Guard dropped explicitly before the submit: clean.
        let dropped = "fn f() { let g = m.lock().unwrap(); drop(g); pool.submit(|| {}); }";
        assert!(analyze_rust_source("crates/core/src/x.rs", dropped).is_empty());
        // The lock inside the submitted closure itself is fine.
        let inside = "fn f() { pool.submit(|| { let g = m.lock().unwrap(); }); }";
        assert!(analyze_rust_source("crates/core/src/x.rs", inside).is_empty());
    }

    #[test]
    fn wire_tags_catches_duplicates_unused_and_raw_ints() {
        let src = "\
pub mod tags {
    pub const REQ_PING: u8 = 0;
    pub const REQ_MATCH: u8 = 0;
    pub const REQ_UNUSED: u8 = 2;
}
impl Request {
    pub fn encode(&self) { out.push(tags::REQ_PING); out.push(tags::REQ_MATCH); }
    pub fn decode(d: &[u8]) {
        match d[0] {
            tags::REQ_PING => {}
            tags::REQ_MATCH => {}
            7 => {}
            _ => {}
        }
    }
}
";
        let found = analyze_rust_source(super::WIRE_FILE, src);
        let fired = rules_fired(&found);
        assert_eq!(fired.iter().filter(|r| **r == RULE_WIRE_TAGS).count(), 3);
        assert!(found.iter().any(|v| v.message.contains("duplicate")));
        assert!(found.iter().any(|v| v.message.contains("REQ_UNUSED")));
        assert!(found.iter().any(|v| v.message.contains("raw integer `7`")));
    }

    #[test]
    fn wire_tag_table_parses_families() {
        let src = "pub mod tags { pub const REQ_PING: u8 = 0; pub const ERR_DECODE: u8 = 7; }";
        let table = wire_tag_table(src);
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].family, "REQ");
        assert_eq!(table[1].value, 7);
    }

    #[test]
    fn metric_name_table_parses_consts_only() {
        let src = "\
//! Table docs.
pub const SERVER_REQUESTS: &str = \"cm_server_requests_total\";
/// Docs.
pub const HOT_BYTES: &str = \"cm_registry_hot_bytes\";
pub const NOT_A_NAME: u8 = 7;
";
        let table = metric_name_table(src);
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].name, "SERVER_REQUESTS");
        assert_eq!(table[0].value, "cm_server_requests_total");
        assert_eq!(table[0].line, 2);
        assert_eq!(table[1].value, "cm_registry_hot_bytes");
    }

    #[test]
    fn metric_names_catches_duplicates_in_the_table() {
        let src = "\
pub const A: &str = \"cm_x_total\";
pub const B: &str = \"cm_y_total\";
pub const C: &str = \"cm_x_total\";
";
        let found = analyze_rust_source(super::METRIC_NAMES_FILE, src);
        assert_eq!(rules_fired(&found), [RULE_METRIC_NAMES]);
        assert!(found[0].message.contains("duplicate metric name"));
        assert_eq!(found[0].line, 3);
        // A duplicate-free table is clean.
        let clean = "pub const A: &str = \"cm_x_total\";\npub const B: &str = \"cm_y_total\";\n";
        assert!(analyze_rust_source(super::METRIC_NAMES_FILE, clean).is_empty());
    }

    #[test]
    fn metric_names_flags_adhoc_literals_outside_the_table() {
        let adhoc = "fn f(r: &MetricsRegistry) { r.register_counter(\"cm_adhoc_total\", &[]); }";
        assert_eq!(
            rules_fired(&analyze_rust_source("crates/core/src/x.rs", adhoc)),
            [RULE_METRIC_NAMES]
        );
        // Registration through the table is the blessed form.
        let blessed =
            "fn f(r: &MetricsRegistry) { r.register_gauge(metric_names::HOT_BYTES, &[]); }";
        assert!(analyze_rust_source("crates/core/src/x.rs", blessed).is_empty());
        // Label literals in the second argument are fine.
        let labels = "fn f(r: &MetricsRegistry) { \
             r.register_histogram(metric_names::LATENCY, &[(\"tag\", tag)]); }";
        assert!(analyze_rust_source("crates/core/src/x.rs", labels).is_empty());
        // Test code and test trees are exempt, like every lexical rule.
        let gated = "#[cfg(test)]\nmod tests { fn f() { r.register_counter(\"cm_t\", &[]); } }";
        assert!(analyze_rust_source("crates/core/src/x.rs", gated).is_empty());
        assert!(analyze_rust_source("crates/core/tests/x.rs", adhoc).is_empty());
    }

    #[test]
    fn manifest_rule_requires_shim_resolution() {
        let shimmed = vec!["rand".to_string(), "serde".to_string()];
        let bad = "[dependencies]\nrand = \"0.8\"\n";
        let found = analyze_manifest("crates/x/Cargo.toml", bad, &shimmed);
        assert_eq!(rules_fired(&found), [RULE_SHIM_HYGIENE]);
        let good = "[dependencies]\nrand.workspace = true\nserde = { path = \"../serde\" }\n";
        assert!(analyze_manifest("crates/x/Cargo.toml", good, &shimmed).is_empty());
        let table = "[dependencies.rand]\nversion = \"0.8\"\n";
        assert_eq!(
            rules_fired(&analyze_manifest("crates/x/Cargo.toml", table, &shimmed)),
            [RULE_SHIM_HYGIENE]
        );
        let table_ok = "[dependencies.rand]\npath = \"../../shims/rand\"\n";
        assert!(analyze_manifest("crates/x/Cargo.toml", table_ok, &shimmed).is_empty());
        // Non-shimmed crates are not the rule's business.
        let other = "[dependencies]\nlibc = \"0.2\"\n";
        assert!(analyze_manifest("crates/x/Cargo.toml", other, &shimmed).is_empty());
    }

    #[test]
    fn int_literals_parse_across_radixes() {
        assert_eq!(parse_int("19"), Some(19));
        assert_eq!(parse_int("0x1F"), Some(31));
        assert_eq!(parse_int("0b101"), Some(5));
        assert_eq!(parse_int("1_000u64"), Some(1000));
        assert_eq!(parse_int("0u8"), Some(0));
    }
}
