//! `cm_analyze` CLI: lint the workspace (or an explicit root) and exit
//! nonzero when any unwaived violation remains.
//!
//! ```text
//! cargo run -p cm_analyze            # lint the workspace this crate lives in
//! cargo run -p cm_analyze -- <root>  # lint an explicit tree (used by the self-tests)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map_or_else(
        || PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        PathBuf::from,
    );
    let root = root.canonicalize().unwrap_or(root);
    let report = match cm_analyze::analyze_root(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("cm_analyze: failed to read {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for v in &report.violations {
        match &v.waived {
            Some(justification) => println!("{v} [waived: {justification}]"),
            None => println!("{v}"),
        }
    }
    let unwaived = report.unwaived().len();
    println!(
        "cm_analyze: {} file-checked rule(s), {unwaived} violation(s), {} waived",
        cm_analyze::RULES.len(),
        report.waived_count()
    );
    if unwaived > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
