// Marks `rand` as shimmed in this fixture tree (the analyzer lists
// shims/ subdirectories to learn which crate names are shadowed).
