//! Fixture for the `no-panic` rule's reactor extension: the reactor
//! crate is a serving path (its one thread owns every socket), so
//! panicking constructs here must be flagged exactly as in `cm_server`.

fn unwraps(x: Option<u8>) -> u8 {
    x.unwrap()
}

fn unreachables() {
    unreachable!("fixture");
}

#[cfg(test)]
mod tests {
    #[test]
    fn gated_unwrap_is_exempt() {
        Some(1u8).unwrap();
    }
}
