//! Fixture for the `exec-threads` rule's reactor blessing: this path is
//! the one legitimate non-exec thread in the workspace (the event loop
//! must outlive any single pool job), so raw thread entry points here
//! must NOT be flagged — while the rest of the crate stays covered (see
//! `panics.rs` for the `no-panic` side).

fn blessed_event_loop_thread() {
    let _ = std::thread::Builder::new()
        .name("cm-reactor".to_string())
        .spawn(|| {});
}
