//! Fixture for the `lock-across-submit` rule: a mutex guard lexically
//! live across a pool submission (a job that takes the same mutex would
//! deadlock the runtime).

fn holds_guard_across_submit(m: &std::sync::Mutex<u32>, pool: &Pool) {
    let guard = m.lock().unwrap();
    pool.submit(move || {});
    drop(guard);
}

struct Pool;

impl Pool {
    fn submit<F: FnOnce()>(&self, f: F) {
        f();
    }
}
