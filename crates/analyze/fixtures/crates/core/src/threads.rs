//! Fixture for the `exec-threads` rule: raw thread entry points outside
//! `cm_core::exec`. The second spawn carries a justified waiver, so an
//! analyzer run over this tree must report one unwaived `exec-threads`
//! violation and count one waived.

fn unblessed() {
    std::thread::spawn(|| {});
}

fn waived() {
    // cm_analyze::allow(exec-threads): fixture exercising the waiver path
    std::thread::spawn(|| {});
}

#[cfg(test)]
mod tests {
    #[test]
    fn gated_threads_are_exempt() {
        std::thread::scope(|_s| {});
    }
}
