//! Fixture for the `no-panic` rule: panicking constructs on what the
//! path layout marks as a cm_server serving path.

fn unwraps(x: Option<u8>) -> u8 {
    x.unwrap()
}

fn expects(x: Option<u8>) -> u8 {
    x.expect("fixture")
}

fn panics() {
    panic!("fixture");
}

#[cfg(test)]
mod tests {
    #[test]
    fn gated_unwrap_is_exempt() {
        Some(1u8).unwrap();
    }
}
