//! Fixture: a metric registered under a raw string literal instead of a
//! `metric_names::` constant — the `metric-names` rule must flag it.

fn register(registry: &MetricsRegistry) {
    let _ = registry.register_counter("cm_fixture_adhoc_total", &[]);
}
