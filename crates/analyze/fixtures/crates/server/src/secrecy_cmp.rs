//! Fixture for the `ct-secrecy` rule: branchy equality on secret-named
//! values instead of the constant-time helpers.

fn compares_keys(provided: &[u8; 32], channel_key: &[u8; 32]) -> bool {
    provided == channel_key
}

struct Auth {
    tag: [u8; 16],
}

fn compares_tags(expected: [u8; 16], auth: &Auth) -> bool {
    expected != auth.tag
}
