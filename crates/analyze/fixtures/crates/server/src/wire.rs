//! Fixture for the `wire-tags` rule: a tag registry with a duplicate
//! value in one family, an unreferenced constant, and a codec matching
//! on a raw integer.

pub mod tags {
    pub const REQ_PING: u8 = 0;
    pub const REQ_MATCH: u8 = 0; // duplicate of REQ_PING in the REQ family
    pub const REQ_ORPHAN: u8 = 2; // referenced by no codec
}

pub fn encode(out: &mut Vec<u8>, ping: bool) {
    if ping {
        out.push(tags::REQ_PING);
    } else {
        out.push(tags::REQ_MATCH);
    }
}

pub fn decode(data: &[u8]) -> &'static str {
    match data[0] {
        tags::REQ_PING => "ping",
        tags::REQ_MATCH => "match",
        7 => "raw integer arm",
        _ => "unknown",
    }
}
