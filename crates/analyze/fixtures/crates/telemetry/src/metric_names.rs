//! Fixture: a metric-name table with a duplicate exposition name — the
//! `metric-names` rule must flag the collision.

/// First claimant of the name.
pub const FRAMES_SERVED: &str = "cm_fixture_frames_total";
/// A different gauge, no collision.
pub const HOT_BYTES: &str = "cm_fixture_hot_bytes";
/// Collides with `FRAMES_SERVED` above.
pub const FRAMES_ANSWERED: &str = "cm_fixture_frames_total";
