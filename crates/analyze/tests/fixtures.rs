//! Self-test of the analyzer against its committed fixture tree (every
//! rule must fire, the waiver must be honored) and against the real
//! workspace (which must be clean — this is the same gate CI's
//! `static-analysis` job enforces via `cargo run -p cm_analyze`).

use std::path::PathBuf;

use cm_analyze::{
    analyze_root, Report, RULES, RULE_CT_SECRECY, RULE_EXEC_THREADS, RULE_LOCK_ACROSS_SUBMIT,
    RULE_METRIC_NAMES, RULE_NO_PANIC, RULE_SHIM_HYGIENE, RULE_WIRE_TAGS,
};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn unwaived_rules(report: &Report) -> Vec<&'static str> {
    report.unwaived().iter().map(|v| v.rule).collect()
}

#[test]
fn every_rule_fires_on_the_fixture_tree() {
    let report = analyze_root(&fixtures_root()).expect("fixture tree is readable");
    let fired = unwaived_rules(&report);
    for rule in RULES {
        assert!(
            fired.contains(rule),
            "rule {rule} found nothing in the fixture tree; fired: {fired:?}"
        );
    }
}

#[test]
fn fixture_violations_carry_file_and_line() {
    let report = analyze_root(&fixtures_root()).expect("fixture tree is readable");
    for v in report.unwaived() {
        assert!(v.line >= 1, "{v} has no line");
        assert!(!v.file.is_empty(), "violation without a file");
        assert!(
            v.file.contains('/') && !v.file.contains('\\'),
            "{} is not a unix-style relative path",
            v.file
        );
    }
    // The known fixture sites, by rule.
    let has = |rule: &str, file: &str| {
        report
            .unwaived()
            .iter()
            .any(|v| v.rule == rule && v.file == file)
    };
    assert!(has(RULE_EXEC_THREADS, "crates/core/src/threads.rs"));
    assert!(has(RULE_NO_PANIC, "crates/server/src/panics.rs"));
    // The reactor crate is a serving path too…
    assert!(has(RULE_NO_PANIC, "crates/reactor/src/panics.rs"));
    // …but its event loop is the blessed non-exec thread: the raw
    // `thread::Builder` spawn in the fixture must NOT fire.
    assert!(!has(RULE_EXEC_THREADS, "crates/reactor/src/reactor.rs"));
    assert!(has(RULE_CT_SECRECY, "crates/server/src/secrecy_cmp.rs"));
    assert!(has(RULE_WIRE_TAGS, "crates/server/src/wire.rs"));
    assert!(has(
        RULE_LOCK_ACROSS_SUBMIT,
        "crates/core/src/lock_submit.rs"
    ));
    assert!(has(RULE_SHIM_HYGIENE, "crates/server/Cargo.toml"));
    // Both halves of the metric-names rule: the duplicate in the table…
    assert!(has(
        RULE_METRIC_NAMES,
        "crates/telemetry/src/metric_names.rs"
    ));
    // …and the ad-hoc string literal outside it.
    assert!(has(RULE_METRIC_NAMES, "crates/server/src/metrics_adhoc.rs"));
}

#[test]
fn fixture_waiver_is_counted_not_failed() {
    let report = analyze_root(&fixtures_root()).expect("fixture tree is readable");
    assert!(
        report.waived_count() >= 1,
        "the waived fixture spawn should be reported as waived"
    );
    let waived: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.waived.is_some())
        .collect();
    assert!(
        waived
            .iter()
            .any(|v| v.rule == RULE_EXEC_THREADS && v.file == "crates/core/src/threads.rs"),
        "expected the waived spawn in threads.rs, got {waived:?}"
    );
    // The same file still has its unwaived twin.
    assert!(report
        .unwaived()
        .iter()
        .any(|v| v.rule == RULE_EXEC_THREADS && v.file == "crates/core/src/threads.rs"));
}

#[test]
fn the_real_workspace_is_clean() {
    let report = analyze_root(&workspace_root()).expect("workspace tree is readable");
    let offending: Vec<String> = report.unwaived().iter().map(|v| v.to_string()).collect();
    assert!(
        offending.is_empty(),
        "workspace has unwaived violations:\n{}",
        offending.join("\n")
    );
}

#[test]
fn the_real_metric_name_table_parses_and_is_consistent() {
    let src =
        std::fs::read_to_string(workspace_root().join("crates/telemetry/src/metric_names.rs"))
            .expect("metric_names.rs is readable");
    let table = cm_analyze::metric_name_table(&src);
    assert!(
        table.len() >= 20,
        "expected the full metric catalog, parsed {} constants",
        table.len()
    );
    for c in &table {
        assert!(
            c.value.starts_with("cm_"),
            "metric `{}` = \"{}\" breaks the `cm_<layer>_<what>` convention",
            c.name,
            c.value
        );
        assert_eq!(
            table.iter().filter(|o| o.value == c.value).count(),
            1,
            "metric name \"{}\" appears more than once",
            c.value
        );
    }
}

#[test]
fn the_real_wire_registry_parses_and_is_consistent() {
    let wire = std::fs::read_to_string(workspace_root().join("crates/server/src/wire.rs"))
        .expect("wire.rs is readable");
    let table = cm_analyze::wire_tag_table(&wire);
    assert!(
        table.len() >= 30,
        "expected the full tag registry, parsed {} constants",
        table.len()
    );
    for family in ["REQ", "RESP", "ERR", "QUERY", "PHASE", "DECODE"] {
        assert!(
            table.iter().any(|c| c.family == family),
            "family {family} missing from the parsed registry"
        );
    }
    // Families are dense from zero: values 0..n with no gaps, which is
    // what keeps `_ => unknown tag` decode arms honest.
    for family in ["REQ", "RESP", "ERR", "QUERY", "PHASE", "DECODE"] {
        let mut values: Vec<u64> = table
            .iter()
            .filter(|c| c.family == family)
            .map(|c| c.value)
            .collect();
        values.sort_unstable();
        let expected: Vec<u64> = (0..values.len() as u64).collect();
        assert_eq!(values, expected, "family {family} has gaps or duplicates");
    }
}
