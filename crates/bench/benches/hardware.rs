//! Hardware-simulator benchmarks: the functional `bop_add` µ-program,
//! data transposition, the PuM adder and the AES index channel.

use cm_aes::Aes;
use cm_flash::{
    bop_add, store_words_vertical, words_to_bitplanes, FlashArray, FlashGeometry, PlaneAddr,
};
use cm_pum::PumArray;
use cm_ssd::{TransposeMode, TranspositionUnit};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_bop_add(c: &mut Criterion) {
    let geometry = FlashGeometry::tiny_test();
    let width = geometry.page_bits();
    let mut flash = FlashArray::new(geometry);
    let plane = PlaneAddr {
        channel: 0,
        die: 0,
        plane: 0,
    };
    let a: Vec<u32> = (0..width as u32)
        .map(|i| i.wrapping_mul(2654435761))
        .collect();
    store_words_vertical(&mut flash, plane, 0, 0, &a);
    let b_planes = words_to_bitplanes(&vec![0xDEADBEEF; width], 32);
    let mut group = c.benchmark_group("flash");
    group.throughput(Throughput::Elements(width as u64));
    // One 32-bit bit-serial addition across all bitlines of a page.
    group.bench_function("bop_add_32b_512_lanes", |b| {
        b.iter(|| bop_add(&mut flash, plane, 0, 0, black_box(&b_planes)))
    });
    group.finish();
}

fn bench_transposition(c: &mut Criterion) {
    let words: Vec<u32> = (0..1024u32).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
    let mut unit = TranspositionUnit::new(TransposeMode::Software);
    let mut group = c.benchmark_group("transpose");
    group.throughput(Throughput::Bytes(4096));
    // 4 KiB horizontal -> vertical (the CM-write path).
    group.bench_function("to_vertical_4KiB", |b| {
        b.iter(|| unit.to_vertical(black_box(&words), 32))
    });
    group.finish();
}

fn bench_pum_adder(c: &mut Criterion) {
    let a: Vec<u32> = (0..4096u32).collect();
    let b_: Vec<u32> = (0..4096u32).map(|i| i * 7 + 1).collect();
    let mut arr = PumArray::new();
    let mut group = c.benchmark_group("pum");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("bit_serial_add_4096_lanes", |b| {
        b.iter(|| arr.add_u32_lanes(black_box(&a), black_box(&b_)))
    });
    group.finish();
}

fn bench_aes(c: &mut Criterion) {
    let aes = Aes::new_256(&[7u8; 32]);
    let block = [0xA5u8; 16];
    // The §7.2 index-encryption engine, per 16-byte block.
    c.bench_function("aes256_block", |b| {
        b.iter(|| aes.encrypt_block(black_box(&block)))
    });
}

criterion_group!(
    benches,
    bench_bop_add,
    bench_transposition,
    bench_pum_adder,
    bench_aes
);
criterion_main!(benches);
