//! Serving-layer micro-benchmarks: shard planning + splitting, wire-frame
//! codec throughput, and sharded vs. unsharded search on one process.
//!
//! Small sizes keep `cargo bench` fast; CI only compiles this
//! (`cargo bench --no-run`).

use cm_bench::random_bits;
use cm_bfv::{BfvContext, BfvParams, Encryptor, KeyGenerator};
use cm_core::{BitString, CiphermatchEngine, ErasedMatcher, MatchStats};
use cm_server::wire::{Request, Response};
use cm_server::{QueryPayload, ShardedCmMatcher, ShardedDatabase};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_shard_split(c: &mut Criterion) {
    let ctx = BfvContext::new(BfvParams::insecure_test_add());
    let mut rng = StdRng::seed_from_u64(5);
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let pk = kg.public_key(&mut rng);
    let enc = Encryptor::new(&ctx, pk);
    let engine = CiphermatchEngine::new(&ctx);
    let bpp = engine.packing().bits_per_poly();
    let data = random_bits(bpp * 8, 13); // eight polynomials
    let db = engine.encrypt_database(&enc, &data, &mut rng);

    let mut group = c.benchmark_group("shard");
    group.sample_size(10);
    for shards in [2usize, 4, 8] {
        group.bench_function(
            format!("split_{}polys_into_{shards}", db.poly_count()),
            |b| b.iter(|| ShardedDatabase::split(black_box(&db), bpp, shards, 1).unwrap()),
        );
    }
    group.finish();
}

fn bench_sharded_search(c: &mut Criterion) {
    // Four polynomials under the insecure test parameters.
    let data = random_bits(2048 * 4, 17);
    let query = data.slice(1000, 24);
    let mut group = c.benchmark_group("sharded_search");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        let mut matcher = ShardedCmMatcher::new(BfvParams::insecure_test_add(), shards, 3).unwrap();
        matcher.load_database(&data).unwrap();
        assert_eq!(matcher.find_all(&query).unwrap(), data.find_all(&query));
        group.bench_function(
            format!("find_all_{}b_db/{shards}_shards", data.len()),
            |b| b.iter(|| matcher.find_all(black_box(&query)).unwrap()),
        );
    }
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let request = Request::Match {
        tenant: "alice".to_string(),
        query: QueryPayload::Bits(BitString::from_bits(&[true; 256])),
    };
    let response = Response::Matched {
        nonce: 1,
        sealed_indices: vec![0xAB; 256],
        stats: MatchStats::default(),
        shard_stats: vec![MatchStats::default(); 4],
        seal_latency: Duration::from_nanos(500),
    };
    let req_bytes = request.encode();
    let resp_bytes = response.encode();

    let mut group = c.benchmark_group("wire");
    group.bench_function("encode_match_request", |b| {
        b.iter(|| black_box(&request).encode())
    });
    group.bench_function("decode_match_request", |b| {
        b.iter(|| Request::decode(black_box(&req_bytes)).unwrap())
    });
    group.bench_function("encode_matched_response", |b| {
        b.iter(|| black_box(&response).encode())
    });
    group.bench_function("decode_matched_response", |b| {
        b.iter(|| Response::decode(black_box(&resp_bytes)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shard_split,
    bench_sharded_search,
    bench_wire_codec
);
criterion_main!(benches);
