//! Serving-layer micro-benchmarks: shard planning + splitting, wire-frame
//! codec throughput, sharded vs. unsharded search, and single-tenant
//! saturation (1 vs K matcher-pool workers under concurrent queries —
//! the per-tenant throughput the shared exec runtime unlocked).
//!
//! Small sizes keep `cargo bench` fast; CI only compiles this
//! (`cargo bench --no-run`).

use cm_bench::random_bits;
use cm_bfv::{BfvContext, BfvParams, Encryptor, KeyGenerator};
use cm_core::WorkerPool;
use cm_core::{Backend, BitString, CiphermatchEngine, ErasedMatcher, MatchStats, MatcherConfig};
use cm_server::wire::{auth_tag, content_digest, upload_tag, Request, Response, OP_EVICT};
use cm_server::{
    EvictAuth, QueryPayload, ShardedCmMatcher, ShardedDatabase, TenantRegistry, TenantSpec,
    UploadAuth,
};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_shard_split(c: &mut Criterion) {
    let ctx = BfvContext::new(BfvParams::insecure_test_add());
    let mut rng = StdRng::seed_from_u64(5);
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let pk = kg.public_key(&mut rng);
    let enc = Encryptor::new(&ctx, pk);
    let engine = CiphermatchEngine::new(&ctx);
    let bpp = engine.packing().bits_per_poly();
    let data = random_bits(bpp * 8, 13); // eight polynomials
    let db = engine.encrypt_database(&enc, &data, &mut rng);

    let mut group = c.benchmark_group("shard");
    group.sample_size(10);
    for shards in [2usize, 4, 8] {
        group.bench_function(
            format!("split_{}polys_into_{shards}", db.poly_count()),
            |b| b.iter(|| ShardedDatabase::split(black_box(&db), bpp, shards, 1).unwrap()),
        );
    }
    group.finish();
}

fn bench_sharded_search(c: &mut Criterion) {
    // Four polynomials under the insecure test parameters.
    let data = random_bits(2048 * 4, 17);
    let query = data.slice(1000, 24);
    let mut group = c.benchmark_group("sharded_search");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        let mut matcher = ShardedCmMatcher::new(BfvParams::insecure_test_add(), shards, 3).unwrap();
        matcher.load_database(&data).unwrap();
        assert_eq!(matcher.find_all(&query).unwrap(), data.find_all(&query));
        group.bench_function(
            format!("find_all_{}b_db/{shards}_shards", data.len()),
            |b| b.iter(|| matcher.find_all(black_box(&query)).unwrap()),
        );
    }
    group.finish();
}

/// One tenant, 8 concurrent CM-SW queries per iteration: with K = 1 the
/// matcher pool serializes them (the old per-tenant-mutex behaviour);
/// with K = 4 four run at once, so per-tenant throughput scales with the
/// worker count. The perf trajectory watches the K=4 / K=1 ratio — on a
/// machine with ≥ 4 cores it sits at ~4× (a single core shows ~1×, since
/// the overlapped queries still share the one CPU; the e2e suite proves
/// the overlap itself scheduling-independently).
fn bench_single_tenant_saturation(c: &mut Criterion) {
    const CONCURRENT_QUERIES: usize = 8;

    let data = random_bits(2048 * 2, 23);
    let query = QueryPayload::Bits(data.slice(700, 24));
    let clients = WorkerPool::new(CONCURRENT_QUERIES).unwrap();

    let mut group = c.benchmark_group("tenant_saturation");
    group.sample_size(10);
    for workers in [1usize, 4] {
        let mut registry = TenantRegistry::new();
        let matcher = MatcherConfig::new(Backend::Ciphermatch)
            .insecure_test()
            .seed(2)
            .build()
            .unwrap();
        registry
            .register_with_workers("solo", matcher, workers, &[0x5A; 32], &data)
            .unwrap();
        let tenant = registry.get("solo").unwrap();
        group.bench_function(
            format!("{CONCURRENT_QUERIES}_concurrent_queries/{workers}_workers"),
            |b| {
                b.iter(|| {
                    let handles: Vec<_> = (0..CONCURRENT_QUERIES)
                        .map(|_| {
                            let tenant = Arc::clone(&tenant);
                            let query = query.clone();
                            clients.submit(move || tenant.run(&query).unwrap().stats.hom_adds)
                        })
                        .collect();
                    let total: u64 = cm_core::wait_all(handles).unwrap().into_iter().sum();
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let request = Request::Match {
        tenant: "alice".to_string(),
        query: QueryPayload::Bits(BitString::from_bits(&[true; 256])),
    };
    let response = Response::Matched {
        nonce: 1,
        sealed_indices: vec![0xAB; 256],
        stats: MatchStats::default(),
        shard_stats: vec![MatchStats::default(); 4],
        seal_latency: Duration::from_nanos(500),
    };
    let req_bytes = request.encode();
    let resp_bytes = response.encode();

    let mut group = c.benchmark_group("wire");
    group.bench_function("encode_match_request", |b| {
        b.iter(|| black_box(&request).encode())
    });
    group.bench_function("decode_match_request", |b| {
        b.iter(|| Request::decode(black_box(&req_bytes)).unwrap())
    });
    group.bench_function("encode_matched_response", |b| {
        b.iter(|| black_box(&response).encode())
    });
    group.bench_function("decode_matched_response", |b| {
        b.iter(|| Response::decode(black_box(&resp_bytes)).unwrap())
    });
    group.finish();
}

/// The remote lifecycle's hot paths: admitting a serialized database
/// into the registry (matcher rebuild + validated decode + accounting)
/// and the register→evict cycle whose accounting must never leak bytes.
/// Also the cold-tier round trip: demote by admission, re-materialize by
/// lookup.
fn bench_database_lifecycle(c: &mut Criterion) {
    const KEY: [u8; 32] = [0x4C; 32];

    let data = random_bits(2048 * 2, 29);
    let config = MatcherConfig::new(Backend::Ciphermatch)
        .insecure_test()
        .seed(6);
    let mut owner = config.build().unwrap();
    owner.load_database(&data).unwrap();
    let encoded = owner.export_database().unwrap();
    let spec = TenantSpec::from_config(&config, 1);

    let upload_auth = |tenant: &str, nonce: u64| {
        let content = content_digest(&KEY, &encoded);
        UploadAuth {
            nonce,
            channel_key: KEY,
            content,
            tag: upload_tag(&KEY, tenant, nonce, encoded.len() as u64, &spec, &content),
        }
    };

    let mut group = c.benchmark_group("lifecycle");
    group.sample_size(10);
    group.bench_function(format!("register_evict_cycle/{}B", encoded.len()), |b| {
        let registry = TenantRegistry::new();
        let mut nonce = 0u64;
        b.iter(|| {
            nonce += 1;
            registry
                .register_remote(
                    "bench",
                    &spec,
                    encoded.clone(),
                    &upload_auth("bench", nonce),
                )
                .unwrap();
            nonce += 1;
            let auth = EvictAuth {
                nonce,
                tag: auth_tag(&KEY, OP_EVICT, "bench", 0, nonce, &[]),
            };
            let freed = registry.evict("bench", &auth).unwrap();
            assert_eq!(registry.hot_bytes(), 0);
            black_box(freed)
        })
    });
    group.bench_function(format!("demote_rematerialize/{}B", encoded.len()), |b| {
        // A budget that fits exactly one of the two tenants: every
        // iteration's lookups demote one and re-materialize the other.
        let registry = TenantRegistry::new();
        registry.set_memory_budget(Some(encoded.len() as u64));
        registry
            .register_remote("ping", &spec, encoded.clone(), &upload_auth("ping", 1))
            .unwrap();
        registry
            .register_remote("pong", &spec, encoded.clone(), &upload_auth("pong", 1))
            .unwrap();
        b.iter(|| {
            let ping = registry.get("ping").unwrap();
            let pong = registry.get("pong").unwrap();
            black_box((ping.id().len(), pong.id().len()))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shard_split,
    bench_sharded_search,
    bench_single_tenant_saturation,
    bench_wire_codec,
    bench_database_lifecycle
);
criterion_main!(benches);
