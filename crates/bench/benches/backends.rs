//! Backend comparison through the unified `SecureMatcher` trait: the same
//! database and query, one `ErasedMatcher::find_all` call per backend —
//! the measured side of Table 1 with zero per-engine code.
//!
//! Sizes are kept small (and the Boolean backend on fast insecure
//! parameters) so `cargo bench` stays minutes, not hours; `cargo bench
//! --no-run` in CI only compiles this.

use cm_bench::random_bits;
use cm_core::{Backend, MatcherConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_unified_backends(c: &mut Criterion) {
    let db_bits = random_bits(512, 21);
    let query = db_bits.slice(37, 16);
    let mut group = c.benchmark_group("unified");
    group.sample_size(10);
    for backend in Backend::ALL {
        // The Boolean backend runs every bootstrap for real; a 64-bit
        // slice keeps its per-iteration cost around a second.
        let db = match backend {
            Backend::Boolean => db_bits.slice(32, 64),
            _ => db_bits.clone(),
        };
        let mut matcher = MatcherConfig::new(backend)
            .insecure_test()
            .window(query.len())
            .seed(9)
            .build()
            .expect("valid configuration");
        matcher.load_database(&db).expect("database encrypts");
        // Agreement is asserted once up front so the benchmark numbers
        // are guaranteed to measure *correct* searches.
        assert_eq!(
            matcher.find_all(&query).expect("query fits window"),
            db.find_all(&query),
            "backend {backend}"
        );
        group.bench_function(
            format!("find_all_{}b_db_16b_query/{backend}", db.len()),
            |b| b.iter(|| matcher.find_all(black_box(&query)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_unified_backends);
criterion_main!(benches);
