//! End-to-end matcher benchmarks: CM-SW search throughput, Yasuda block
//! cost, Boolean window cost, and the plaintext reference — the measured
//! side of Figure 2b.

use cm_bench::{random_bits, BfvFixture};
use cm_bfv::BfvParams;
use cm_core::{bitwise_find_all, BooleanEngine, CiphermatchEngine, YasudaEngine};
use cm_tfhe::{ClientKey, ServerKey, TfheParams};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_cmsw_search(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let f = BfvFixture::new(BfvParams::ciphermatch_1024(), 1);
    let mut engine = CiphermatchEngine::new(&f.ctx);
    // One full polynomial of database: 2 KiB plaintext.
    let db_bits = random_bits(engine.packing().bits_per_poly(), 5);
    let db = engine.encrypt_database(&f.encryptor(), &db_bits, &mut rng);
    let query = engine.prepare_query(&f.encryptor(), &db_bits.slice(64, 32), &mut rng);
    let mut group = c.benchmark_group("cmsw");
    group.throughput(Throughput::Bytes((db_bits.len() / 8) as u64));
    // Server-side Hom-Add sweep over the whole database (all variants).
    group.bench_function("search_2KiB_db_32b_query", |b| {
        b.iter(|| engine.search(black_box(&db), black_box(&query)))
    });
    group.finish();
}

fn bench_yasuda_block(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let f = BfvFixture::new(BfvParams::arithmetic_2048(), 2);
    let mut engine = YasudaEngine::new(&f.ctx);
    let db_bits = random_bits(2048, 7);
    let db = engine.encrypt_database(&f.encryptor(), &db_bits, 32, &mut rng);
    let query = db_bits.slice(10, 32);
    let enc = f.encryptor();
    let dec = f.decryptor();
    let mut group = c.benchmark_group("yasuda");
    group.sample_size(10);
    // One block = 2 Hom-Mul + 3 Hom-Add + decrypt (Fig. 2c's unit).
    group.bench_function("hd_block_2048b", |b| {
        b.iter(|| engine.find_all(&enc, &dec, black_box(&db), black_box(&query), &mut rng))
    });
    group.finish();
}

fn bench_boolean_window(c: &mut Criterion) {
    // Fast (insecure) parameters: the per-window gate structure is
    // identical, only the bootstrap is smaller.
    let mut rng = StdRng::seed_from_u64(3);
    let client = ClientKey::generate(TfheParams::fast_insecure_test(), &mut rng);
    let server = ServerKey::generate(&client, &mut rng);
    let engine = BooleanEngine::new(&client, &server);
    let db_bits = random_bits(64, 9);
    let db = engine.encrypt_database(&db_bits, &mut rng);
    let query = engine.encrypt_query(&db_bits.slice(8, 8), &mut rng);
    let mut group = c.benchmark_group("boolean");
    group.sample_size(10);
    // One window: 8 XNOR + 7 AND bootstraps.
    group.bench_function("window_8b_fast_params", |b| {
        b.iter(|| engine.match_window(black_box(&db), black_box(&query), 8))
    });
    group.finish();
}

fn bench_plaintext_reference(c: &mut Criterion) {
    // The paper's "5.9 us on unencrypted data" reference point (§3.1).
    let db = random_bits(32 * 8, 11);
    let q = db.slice(10, 32);
    c.bench_function("plaintext_bitwise_32B_db", |b| {
        b.iter(|| bitwise_find_all(black_box(&db), black_box(&q)))
    });
}

criterion_group!(
    benches,
    bench_cmsw_search,
    bench_yasuda_block,
    bench_boolean_window,
    bench_plaintext_reference
);
criterion_main!(benches);
