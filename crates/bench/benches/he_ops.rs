//! Micro-benchmarks of the homomorphic-encryption substrates: the
//! per-operation costs that calibrate `cm-sim` (Hom-Add vs Hom-Mul is the
//! entire story of Fig. 2c, and the absolute rates feed Figs. 7–12).

use cm_bench::BfvFixture;
use cm_bfv::{BfvParams, CoefficientEncoder, KeyGenerator};
use cm_hemath::{find_ntt_prime, Modulus, NttTable};
use cm_tfhe::{ClientKey, ServerKey, TfheParams};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_ntt(c: &mut Criterion) {
    let n = 1024;
    let table = NttTable::new(Modulus::new(find_ntt_prime(32, n)), n);
    let data: Vec<u64> = (0..n as u64).map(|i| i * 31 % 97).collect();
    c.bench_function("ntt_forward_1024", |b| {
        b.iter(|| {
            let mut v = data.clone();
            table.forward(black_box(&mut v));
            v
        })
    });
}

fn bench_bfv_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let f = BfvFixture::new(BfvParams::ciphermatch_1024(), 1);
    let coder = CoefficientEncoder::new(&f.ctx);
    let ev = f.evaluator();
    let x = f.encryptor().encrypt(&coder.encode(&[1, 2, 3]), &mut rng);
    let y = f.encryptor().encrypt(&coder.encode(&[4, 5, 6]), &mut rng);
    // The hot loop of CM-SW: Hom-Add on the paper's n=1024/32-bit params.
    c.bench_function("hom_add_1024_q32", |b| {
        b.iter(|| ev.add(black_box(&x), black_box(&y)))
    });
    c.bench_function("encrypt_1024_q32", |b| {
        b.iter(|| f.encryptor().encrypt(&coder.encode(&[7]), &mut rng))
    });
    c.bench_function("decrypt_1024_q32", |b| {
        let dec = f.decryptor();
        b.iter(|| dec.decrypt(black_box(&x)))
    });

    // The arithmetic baseline's dominant op: Hom-Mul (+relin) at n=2048.
    let g = BfvFixture::new(BfvParams::arithmetic_2048(), 2);
    let coder2 = CoefficientEncoder::new(&g.ctx);
    let ev2 = g.evaluator();
    let a = g.encryptor().encrypt(&coder2.encode(&[1, 0, 1]), &mut rng);
    let bb = g.encryptor().encrypt(&coder2.encode(&[0, 1, 1]), &mut rng);
    let mut group = c.benchmark_group("mult");
    group.sample_size(10);
    group.bench_function("hom_mult_2048_q56", |b| {
        b.iter(|| ev2.multiply(black_box(&a), black_box(&bb)))
    });
    let rk = {
        let mut krng = StdRng::seed_from_u64(3);
        KeyGenerator::from_secret(&g.ctx, g.sk.clone()).relin_key(&mut krng)
    };
    let prod = ev2.multiply(&a, &bb);
    group.bench_function("relinearize_2048_q56", |b| {
        b.iter(|| ev2.relinearize(black_box(&prod), &rk))
    });
    group.bench_function("hom_add_2048_q56", |b| {
        b.iter(|| ev2.add(black_box(&a), black_box(&bb)))
    });
    group.finish();
}

fn bench_tfhe_gate(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let client = ClientKey::generate(TfheParams::boolean_default(), &mut rng);
    let server = ServerKey::generate(&client, &mut rng);
    let x = client.encrypt(true, &mut rng);
    let y = client.encrypt(false, &mut rng);
    let mut group = c.benchmark_group("tfhe");
    group.sample_size(10);
    // One bootstrapped XNOR: the Boolean baseline's unit of work.
    group.bench_function("gate_xnor_bootstrap_n630_N1024", |b| {
        b.iter(|| server.xnor(black_box(&x), black_box(&y)))
    });
    group.finish();
}

criterion_group!(benches, bench_ntt, bench_bfv_ops, bench_tfhe_gate);
criterion_main!(benches);
