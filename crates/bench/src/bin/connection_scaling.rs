//! Connection-scaling trajectory: N idle connections held open while
//! M active connections saturate the server with queries, per backend.
//!
//! This seeds the perf trajectory the reactor front-end is accountable
//! to: idle sockets must be nearly free (readiness-driven, no thread, no
//! pool slot), so saturated throughput with 1024 idle connections held
//! open should stay within a few percent of the no-idle baseline.
//! Results are written machine-readably to `BENCH_7.json` at the
//! workspace root so future PRs can show deltas.
//!
//! Run with `cargo run --release -p cm_bench --bin connection_scaling`.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use cm_bench::random_bits;
use cm_core::{wait_all, Backend, BitString, MatcherConfig, WorkerPool};
use cm_server::{MatchClient, MatchServer, ServerConfig, TenantAccess, TenantRegistry};

const KEY: [u8; 32] = [0x5A; 32];
/// Saturating clients (matches the pre-reactor `tenant_saturation`
/// bench's 8 concurrent queries).
const ACTIVE: usize = 8;
/// Queries per active client per scenario.
const ROUNDS: usize = 40;
/// Idle-connection tiers; the last is the soak's ≥1024 target.
const IDLE_TIERS: &[usize] = &[0, 256, 1024];

struct Scenario {
    backend: &'static str,
    idle: usize,
    open_sockets: usize,
    queries: usize,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Saturates `tenant` with `ACTIVE` concurrent clients and returns
/// (queries/sec over wall time, p50 µs, p99 µs, query count).
fn saturate(
    addr: SocketAddr,
    pool: &WorkerPool,
    tenant: &'static str,
    query: &BitString,
) -> (f64, f64, f64, usize) {
    let start = Instant::now();
    let handles: Vec<_> = (0..ACTIVE)
        .map(|_| {
            let query = query.clone();
            pool.submit(move || {
                let mut client = MatchClient::connect(addr).expect("connect active client");
                let access = TenantAccess::new(tenant, &KEY);
                let mut latencies = Vec::with_capacity(ROUNDS);
                for _ in 0..ROUNDS {
                    let t = Instant::now();
                    let reply = client.search_bits(&access, &query).expect("query");
                    assert!(!reply.indices.is_empty(), "query must match");
                    latencies.push(t.elapsed());
                }
                latencies
            })
        })
        .collect();
    let latencies: Vec<Duration> = wait_all(handles)
        .expect("active clients")
        .into_iter()
        .flatten()
        .collect();
    let wall = start.elapsed().as_secs_f64();
    let mut us: Vec<f64> = latencies.iter().map(|d| d.as_secs_f64() * 1e6).collect();
    us.sort_by(f64::total_cmp);
    let pct = |q: f64| us[((us.len() - 1) as f64 * q).round() as usize];
    (us.len() as f64 / wall, pct(0.50), pct(0.99), us.len())
}

fn main() {
    let limit = cm_reactor::sys::raise_nofile_limit(16 * 1024).expect("raise fd limit");
    println!("fd limit: {limit}");

    // The pre-reactor `tenant_saturation` workload shape: two
    // polynomials of data, a 24-bit query.
    let data = random_bits(2048 * 2, 23);
    let query = data.slice(700, 24);

    let mut registry = TenantRegistry::new();
    registry
        .register(
            "plain",
            MatcherConfig::new(Backend::Plain).build().expect("plain"),
            &KEY,
            &data,
        )
        .expect("register plain");
    registry
        .register(
            "cm",
            MatcherConfig::new(Backend::Ciphermatch)
                .insecure_test()
                .seed(2)
                .build()
                .expect("ciphermatch"),
            &KEY,
            &data,
        )
        .expect("register cm");
    let server = MatchServer::with_config(
        registry,
        ServerConfig {
            max_open_sockets: 4096,
            max_inflight_frames: 64,
            memory_budget: None,
            ..ServerConfig::default()
        },
    )
    .expect("config")
    .spawn("127.0.0.1:0")
    .expect("spawn server");
    let addr = server.addr();
    let pool = WorkerPool::new(ACTIVE).expect("client pool");

    let mut scenarios: Vec<Scenario> = Vec::new();
    for (backend, tenant) in [("plain", "plain"), ("ciphermatch-insecure", "cm")] {
        for &idle in IDLE_TIERS {
            // Hold the idle herd open for the duration of the burst.
            let idle_conns: Vec<MatchClient> = (0..idle)
                .map(|i| {
                    MatchClient::connect(addr)
                        .unwrap_or_else(|e| panic!("idle connection {i} refused: {e}"))
                })
                .collect();
            let (qps, p50_us, p99_us, queries) = saturate(addr, &pool, tenant, &query);
            println!(
                "{backend:>20} idle={idle:<5} {qps:>8.1} q/s  p50={p50_us:>8.1}us  \
                 p99={p99_us:>9.1}us"
            );
            scenarios.push(Scenario {
                backend,
                idle,
                open_sockets: idle + ACTIVE,
                queries,
                qps,
                p50_us,
                p99_us,
            });
            drop(idle_conns);
        }
    }
    server.shutdown();

    // Machine-readable trajectory. `qps_vs_no_idle` is the soak
    // acceptance ratio: ≥ 0.9 means saturated throughput with the idle
    // herd held stays within 10% of the no-idle baseline.
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"connection_scaling\",\n");
    json.push_str(&format!("  \"active_connections\": {ACTIVE},\n"));
    json.push_str(&format!("  \"rounds_per_client\": {ROUNDS},\n"));
    json.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let baseline = scenarios
            .iter()
            .find(|b| b.backend == s.backend && b.idle == 0)
            .map_or(s.qps, |b| b.qps);
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"idle_connections\": {}, \"open_sockets\": {}, \
             \"queries\": {}, \"qps\": {:.2}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"qps_vs_no_idle\": {:.3}}}{}\n",
            s.backend,
            s.idle,
            s.open_sockets,
            s.queries,
            s.qps,
            s.p50_us,
            s.p99_us,
            s.qps / baseline,
            if i + 1 == scenarios.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_7.json");
    std::fs::write(&out, &json).expect("write BENCH_7.json");
    println!("wrote {}", out.display());
}
