//! `repro` — regenerates every table and figure of the CIPHERMATCH
//! evaluation.
//!
//! Usage: `cargo run --release -p cm-bench --bin repro -- <target>` where
//! `<target>` is one of `table1 fig2a fig2b fig2c fig3 fig7 fig8 fig9
//! fig10 fig11 fig12 table2 table3 overheads ablation casestudies
//! sensitivity calibrate all`.
//!
//! Measured targets (fig2a–fig2c, calibrate) run this repository's real
//! implementations at laptop scale; simulated targets (fig3, fig7–fig12)
//! evaluate the analytical models of `cm-sim` at paper scale, under both
//! the paper-derived calibration and this repository's measured rates.

use cm_bench::{fmt_bytes, fmt_time, random_bits, time_per_iter, BfvFixture};
use cm_bfv::BfvParams;
use cm_core::{
    table1_profiles, Backend, BooleanGateCount, CiphermatchEngine, MatchSession, MatcherConfig,
};
use cm_sim::{
    area_overheads, fig10, fig11, fig12, fig3, fig7, fig8, fig9, storage_overheads,
    CalibrationProfile, HostProfile, SystemConstants,
};
use cm_tfhe::{ClientKey, ServerKey, TfheParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let target = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = target == "all";
    let mut ran = false;
    macro_rules! run {
        ($name:literal, $f:expr) => {
            if all || target == $name {
                println!("\n================ {} ================", $name);
                $f;
                ran = true;
            }
        };
    }

    run!("table1", table1());
    run!("fig2a", fig2a());
    run!("fig2b", fig2b());
    run!("fig2c", fig2c());
    run!("fig3", fig3_out());
    run!("fig7", fig7_out());
    run!("fig8", fig8_out());
    run!("fig9", fig9_out());
    run!("fig10", fig10_out());
    run!("fig11", fig11_out());
    run!("fig12", fig12_out());
    run!("table2", table2());
    run!("table3", table3());
    run!("overheads", overheads());
    run!("ablation", ablation());
    run!("casestudies", case_studies());
    run!("sensitivity", sensitivity());
    run!("calibrate", calibrate());

    if !ran {
        eprintln!(
            "unknown target {target:?}; expected one of: table1 fig2a fig2b fig2c fig3 \
             fig7 fig8 fig9 fig10 fig11 fig12 table2 table3 overheads ablation casestudies sensitivity \
             calibrate all"
        );
        std::process::exit(2);
    }
}

/// Table 1: qualitative comparison of prior approaches.
fn table1() {
    println!(
        "{:<28} {:<22} {:<10} {:<9} {:<6} {:<14}",
        "Work", "Family", "ExecTime", "Scalable", "SIMD", "FlexibleQuery"
    );
    for p in table1_profiles() {
        println!(
            "{:<28} {:<22} {:<10} {:<9} {:<6} {:<14}",
            p.work,
            p.family,
            p.execution_time.to_string(),
            if p.scalable { "yes" } else { "no" },
            if p.simd { "yes" } else { "no" },
            if p.flexible_query { "yes" } else { "no" },
        );
    }
}

/// Fig. 2a: measured memory footprint after encryption (tiny databases).
/// Both BFV approaches are driven through the unified backend API; the
/// Boolean footprint is the analytic one-LWE-per-bit count at full
/// parameters.
fn fig2a() {
    let tfhe_params = TfheParams::boolean_default();
    // One matcher (one key set) per approach, reloaded per database size.
    let mut ya = MatcherConfig::new(Backend::Yasuda)
        .bfv_params(BfvParams::arithmetic_2048())
        .window(32)
        .seed(2)
        .build()
        .expect("valid config");
    let mut cm = MatcherConfig::new(Backend::Ciphermatch)
        .bfv_params(BfvParams::ciphermatch_1024())
        .seed(1)
        .build()
        .expect("valid config");
    println!(
        "{:<10} {:>14} {:>14} {:>14} (measured ciphertext bytes)",
        "DB size", "Boolean[17]", "Arith[27]", "CIPHERMATCH"
    );
    for plain_bytes in [8usize, 16, 32, 64, 128, 256] {
        let bits = random_bits(plain_bytes * 8, 42);
        // Boolean: one LWE ciphertext per bit.
        let boolean = bits.len() * tfhe_params.lwe_ciphertext_bytes();
        ya.load_database(&bits).expect("database encrypts");
        cm.load_database(&bits).expect("database encrypts");
        println!(
            "{:<10} {:>14} {:>14} {:>14}",
            fmt_bytes(plain_bytes as f64),
            fmt_bytes(boolean as f64),
            fmt_bytes(ya.database_bytes().unwrap() as f64),
            fmt_bytes(cm.database_bytes().unwrap() as f64),
        );
    }
    println!("(paper Fig. 2a: Boolean >> arithmetic >> CIPHERMATCH; CM = 4x plain)");
}

/// Fig. 2b: measured execution time vs query size on a small database.
fn fig2b() {
    let mut rng = StdRng::seed_from_u64(21);
    // 64 bytes so the largest (256-bit) query still fits with slack.
    let db_bits = random_bits(64 * 8, 7);

    // Measure one real bootstrapped gate at full parameters.
    let t_gate = {
        let client = ClientKey::generate(TfheParams::boolean_default(), &mut rng);
        let server = ServerKey::generate(&client, &mut rng);
        let a = client.encrypt(true, &mut rng);
        let b = client.encrypt(false, &mut rng);
        time_per_iter(3, || {
            let _ = server.xnor(&a, &b);
        })
    };

    let cm_fix = BfvFixture::new(BfvParams::ciphermatch_1024(), 3);
    let mut cm = MatcherConfig::new(Backend::Ciphermatch)
        .bfv_params(BfvParams::ciphermatch_1024())
        .seed(3)
        .build()
        .expect("valid config");
    cm.load_database(&db_bits).expect("database encrypts");

    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>16}",
        "Query", "Boolean[17]*", "Arith[27]", "CM-SW e2e", "CM-SW server"
    );
    for k in [16usize, 32, 64, 128, 256] {
        let query = db_bits.slice(3, k);
        // Boolean: projected = measured gate cost x gate count (running
        // every bootstrap at this scale takes hours, exactly the paper's
        // point).
        let gates = BooleanGateCount::for_search(db_bits.len(), k).total();
        let t_boolean = gates as f64 * t_gate;
        // Arithmetic through the unified API: a fresh matcher per k (the
        // window is fixed at database-layout time — Table 1's
        // inflexibility).
        let mut ya = MatcherConfig::new(Backend::Yasuda)
            .bfv_params(BfvParams::arithmetic_2048())
            .window(k)
            .seed(4)
            .build()
            .expect("valid config");
        ya.load_database(&db_bits).expect("database encrypts");
        let t_yasuda = time_per_iter(1, || {
            let _ = ya.find_all(&query).expect("query fits window");
        });
        // CM-SW through the unified API: end-to-end (client-side query
        // encryption included).
        let t_cm = time_per_iter(1, || {
            let _ = cm.find_all(&query).expect("query searches");
        });
        // CM-SW server-side Hom-Add sweep alone (engine-level, below the
        // unified API on purpose: the API has no search-only entry).
        let mut ceng = CiphermatchEngine::new(&cm_fix.ctx);
        let cdb = ceng.encrypt_database(&cm_fix.encryptor(), &db_bits, &mut rng);
        let eq = ceng.prepare_query(&cm_fix.encryptor(), &query, &mut rng);
        let t_server = time_per_iter(5, || {
            let _ = ceng.search(&cdb, &eq);
        });
        println!(
            "{:<8} {:>14} {:>14} {:>14} {:>16}",
            format!("{k} b"),
            fmt_time(t_boolean),
            fmt_time(t_yasuda),
            fmt_time(t_cm),
            fmt_time(t_server),
        );
    }
    println!(
        "(* Boolean projected from a measured bootstrap: {}/gate)",
        fmt_time(t_gate)
    );
}

/// Fig. 2c: measured latency breakdown of the arithmetic approach,
/// read off the unified `MatchStats`.
fn fig2c() {
    let db_bits = random_bits(6000, 9);
    let query = db_bits.slice(100, 32);
    let mut ya = MatcherConfig::new(Backend::Yasuda)
        .bfv_params(BfvParams::arithmetic_2048())
        .window(32)
        .seed(5)
        .build()
        .expect("valid config");
    ya.load_database(&db_bits).expect("database encrypts");
    let _ = ya.find_all(&query).expect("query fits window");
    let stats = ya.stats();
    println!(
        "Hom-Mult: {:>6.1}%  ({} ops, {})",
        100.0 * stats.mult_fraction(),
        stats.hom_muls,
        fmt_time(stats.mul_time.as_secs_f64()),
    );
    println!(
        "Hom-Add : {:>6.1}%  ({} ops, {})",
        100.0 * (1.0 - stats.mult_fraction()),
        stats.hom_adds,
        fmt_time(stats.add_time.as_secs_f64()),
    );
    println!("(paper Fig. 2c: 98.2% multiplication / 1.8% addition)");
}

fn profiles() -> [(&'static str, CalibrationProfile); 2] {
    [
        ("paper-rates", CalibrationProfile::paper_rates()),
        ("this-repo", CalibrationProfile::default_measured()),
    ]
}

/// Fig. 3: normalized transfer latency.
fn fig3_out() {
    let c = SystemConstants::paper_default();
    println!(
        "{:<10} {:>8} {:>8} {:>8} (normalized to CPU = 100)",
        "DB", "CPU", "DRAM", "Storage"
    );
    for r in fig3(&c) {
        println!(
            "{:<10} {:>8.1} {:>8.1} {:>8.1}",
            format!("{} GB", r.db_gb),
            r.cpu,
            r.dram,
            r.storage
        );
    }
    println!("(paper Fig. 3: storage saves >80%, 94% at 256 GB; DRAM benefit shrinks)");
}

/// Fig. 7: software speedups over the Boolean baseline.
fn fig7_out() {
    let c = SystemConstants::paper_default();
    for (name, cal) in profiles() {
        println!("--- calibration: {name} ---");
        println!(
            "{:<8} {:>18} {:>18} {:>18}",
            "Query", "Arith/Boolean", "CM-SW/Boolean", "CM-SW/Arith"
        );
        for r in fig7(&c, &cal) {
            println!(
                "{:<8} {:>18.3e} {:>18.3e} {:>18.1}",
                format!("{} b", r.k),
                r.arithmetic_vs_boolean,
                r.cmsw_vs_boolean,
                r.cmsw_vs_arithmetic
            );
        }
    }
    println!("(paper Fig. 7: CM-SW 2.0e5-6.2e5x over Boolean, 20.7-62.2x over arithmetic)");
}

/// Fig. 8: software energy reductions.
fn fig8_out() {
    let c = SystemConstants::paper_default();
    for (name, cal) in profiles() {
        println!("--- calibration: {name} ---");
        println!(
            "{:<8} {:>18} {:>18} {:>18}",
            "Query", "Arith/Boolean", "CM-SW/Boolean", "CM-SW/Arith"
        );
        for r in fig8(&c, &cal) {
            println!(
                "{:<8} {:>18.3e} {:>18.3e} {:>18.1}",
                format!("{} b", r.k),
                r.arithmetic_vs_boolean,
                r.cmsw_vs_boolean,
                r.cmsw_vs_arithmetic
            );
        }
    }
    println!("(paper Fig. 8: CM-SW 17.6-60.1x over arithmetic, 1.6e5-6.0e5x over Boolean)");
}

/// Fig. 9: database-size sweep of the software approaches.
fn fig9_out() {
    let c = SystemConstants::paper_default();
    for (name, cal) in profiles() {
        println!("--- calibration: {name} ---");
        println!(
            "{:<8} {:>18} {:>18} {:>18}",
            "DB", "Arith/Boolean", "CM-SW/Boolean", "CM-SW/Arith"
        );
        for r in fig9(&c, &cal) {
            println!(
                "{:<8} {:>18.3e} {:>18.3e} {:>18.1}",
                format!("{} GB", r.db_gb),
                r.arithmetic_vs_boolean,
                r.cmsw_vs_boolean,
                r.cmsw_vs_arithmetic
            );
        }
    }
    println!("(paper Fig. 9: CM-SW 62.2-72.1x over arithmetic; dip past 32 GB)");
}

fn hw_table(rows: &[cm_sim::HwSweepRow], xlabel: &str) {
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        xlabel, "CM-PuM", "CM-PuM-SSD", "CM-IFP"
    );
    for r in rows {
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>12.1}",
            r.x, r.pum, r.pum_ssd, r.ifp
        );
    }
}

/// Fig. 10: hardware speedups over CM-SW vs query size.
fn fig10_out() {
    let c = SystemConstants::paper_default();
    for (name, cal) in profiles() {
        println!("--- calibration: {name} (speedup over CM-SW) ---");
        hw_table(&fig10(&c, &cal), "Query(b)");
    }
    println!("(paper Fig. 10: IFP 76.6-216x, PuM-SSD 81.7-105.8x, PuM 26.4-53.9x; PuM overtakes IFP at 256 b)");
}

/// Fig. 11: hardware energy reductions over CM-SW.
fn fig11_out() {
    let c = SystemConstants::paper_default();
    for (name, cal) in profiles() {
        println!("--- calibration: {name} (energy reduction over CM-SW) ---");
        hw_table(&fig11(&c, &cal), "Query(b)");
    }
    println!("(paper Fig. 11: IFP 156-454x, PuM-SSD 49-112x, PuM 48-98x)");
}

/// Fig. 12: hardware speedups over CM-SW vs database size.
fn fig12_out() {
    let c = SystemConstants::paper_default();
    for (name, cal) in profiles() {
        println!("--- calibration: {name} (speedup over CM-SW) ---");
        hw_table(&fig12(&c, &cal), "DB(GB)");
    }
    println!("(paper Fig. 12: IFP 250-295x; PuM wins <=32 GB, IFP wins 8.29x at 128 GB)");
}

/// Table 2: the real-system configuration this reproduction models.
fn table2() {
    let h = HostProfile::paper_table2();
    println!(
        "CPU      : {} ({} cores @ {} GHz)",
        h.cpu, h.cores, h.clock_ghz
    );
    println!("Caches   : {}", h.caches);
    println!("Memory   : {}", h.memory);
    println!("Storage  : {}", h.storage);
    println!("OS       : {}", h.os);
}

/// Table 3: simulated configuration and the Eq. 9-11 derivations.
fn table3() {
    let c = SystemConstants::paper_default();
    let g = &c.geometry;
    println!(
        "NAND     : {} ch x {} dies x {} planes; {} blocks/plane; {} WL/block; {} B pages",
        g.channels,
        g.dies_per_channel,
        g.planes_per_die,
        g.blocks_per_plane,
        g.wordlines_per_block,
        g.page_bytes
    );
    println!(
        "Bandwidth: PCIe {} GB/s | NAND {} GB/s total | DRAM {} GB/s",
        c.pcie_bw / 1e9,
        c.nand_bw() / 1e9,
        c.dram_bw / 1e9
    );
    println!(
        "Latency  : T_read {} | T_AND/OR {} | T_latch {} | T_XOR {} | T_DMA {}",
        fmt_time(c.flash_t.t_read_slc),
        fmt_time(c.flash_t.t_and_or),
        fmt_time(c.flash_t.t_latch_transfer),
        fmt_time(c.flash_t.t_xor),
        fmt_time(c.flash_t.t_dma)
    );
    println!(
        "Eq. 10   : T_bop_add = {} (paper: 22.74 us implied)",
        fmt_time(c.flash_t.t_bop_add())
    );
    println!(
        "Eq. 9    : T_bit_add = {} (paper: 29.38 us)",
        fmt_time(c.flash_t.t_bit_add())
    );
    let page_kb = g.page_bytes as f64 / 1024.0;
    println!(
        "Eq. 11   : E_bit_add = {:.2} uJ/channel (paper: 32.22 uJ; see EXPERIMENTS.md)",
        c.flash_e.e_bit_add(page_kb) * 1e6
    );
    println!("PuM      : T_bbop 49 ns, E_bbop 0.864 nJ; ext 4ch x 16 banks x 8 KiB rows; int 1ch x 8 x 4 KiB");
}

/// §6.3 / §7.1 / §7.2 overheads.
fn overheads() {
    let s = storage_overheads(&SystemConstants::paper_default().geometry);
    println!(
        "Storage : result buffer {} (paper: 0.5 MB); u-program <= {} B; SLC costs {}x capacity",
        fmt_bytes(s.result_buffer_bytes as f64),
        s.microprogram_bytes,
        s.slc_capacity_factor
    );
    let a = area_overheads();
    println!(
        "Area    : NAND periphery +{:.1}% | transposition HW {:.2} mm2 @ {} / 4 KiB | AES {:.2} mm2 @ {} / block",
        100.0 * a.nand_periphery_fraction,
        a.transposition_unit_mm2,
        fmt_time(a.transposition_latency),
        a.aes_mm2,
        fmt_time(a.aes_block_latency)
    );
    println!(
        "Software transposition: 13.6 us / 4 KiB (hides under the 22.5 us SLC read; \
         hardware needed for 3 us Z-NAND)"
    );
}

/// Ablations of the design choices DESIGN.md calls out.
fn ablation() {
    use cm_sim::PassModel;
    let mut rng = StdRng::seed_from_u64(55);

    // (a) Packing ablation: dense (CIPHERMATCH) vs single-bit (Yasuda)
    // footprint and per-query server time, same data and query.
    println!("--- packing ablation (measured, 2 KiB database, 32-bit query) ---");
    let bits = random_bits(16 * 1024, 13);
    let query = bits.slice(999, 32);
    let cm = BfvFixture::new(BfvParams::ciphermatch_1024(), 61);
    let mut ceng = CiphermatchEngine::new(&cm.ctx);
    let cdb = ceng.encrypt_database(&cm.encryptor(), &bits, &mut rng);
    let cq = ceng.prepare_query(&cm.encryptor(), &query, &mut rng);
    let t_dense = time_per_iter(50, || {
        let _ = ceng.search(&cdb, &cq);
    });
    let mut ya = MatcherConfig::new(Backend::Yasuda)
        .bfv_params(BfvParams::arithmetic_2048())
        .window(32)
        .seed(62)
        .build()
        .expect("valid config");
    ya.load_database(&bits).expect("database encrypts");
    let t_single = time_per_iter(3, || {
        let _ = ya.find_all(&query).expect("query fits window");
    });
    println!(
        "dense packing    : footprint {} | search {}",
        fmt_bytes(cdb.byte_size(32) as f64),
        fmt_time(t_dense)
    );
    println!(
        "single-bit [27]  : footprint {} | search {}  ({:.1}x slower)",
        fmt_bytes(ya.database_bytes().unwrap() as f64),
        fmt_time(t_single),
        t_single / t_dense
    );

    // (b) Pass-model ablation: the paper's literal 16-shift description vs
    // the complete bit-granular variant set (see EXPERIMENTS.md).
    println!("--- pass-model ablation (CM-SW passes per query) ---");
    println!("{:<8} {:>10} {:>12}", "Query", "Complete", "PaperShifts");
    for k in [16usize, 64, 256] {
        println!(
            "{:<8} {:>10} {:>12}",
            format!("{k} b"),
            PassModel::Complete.passes(k, 16),
            PassModel::PaperShifts.passes(k, 16)
        );
    }

    // (c) Transposition ablation (§7.1): software vs hardware unit against
    // the two flash read speeds.
    println!("--- transposition ablation (per 4 KiB) ---");
    for (name, lat) in [
        ("software (controller)", 13.6e-6),
        ("hardware (22 nm unit)", 158e-9),
    ] {
        let hides_slc = lat < 22.5e-6;
        let hides_znand = lat < 3e-6;
        println!(
            "{name:<22}: {:>9} | hides under SLC read: {hides_slc} | under Z-NAND: {hides_znand}",
            fmt_time(lat)
        );
    }

    // (d) IFP DMA-contention ablation: Eq. 9 vs per-channel DMA
    // serialization at the paper geometry.
    println!("--- CM-IFP channel-contention ablation ---");
    let c = SystemConstants::paper_default();
    let t = &c.flash_t;
    let dma_per_bit = c.geometry.planes_per_channel() as f64 * 2.0 * t.t_dma;
    println!(
        "Eq. 9 per-bit: {} | per-channel DMA demand: {} | contention factor {:.1}x",
        fmt_time(t.t_bit_add()),
        fmt_time(dma_per_bit),
        dma_per_bit / t.t_bit_add()
    );
    println!("(broadcasting the query page per channel and overlapping reads is required");
    println!(" to sustain Eq. 9; the sum read-out remains the per-plane bottleneck)");
}

/// Sensitivity of the Fig. 10/12 crossovers to the under-specified
/// simulator knobs (see EXPERIMENTS.md).
fn sensitivity() {
    use cm_sim::{sweep_cmsw_rate, sweep_pum_fraction};
    let c = SystemConstants::paper_default();
    let base = CalibrationProfile::paper_rates();
    println!("--- pum_active_fraction sweep (4 crossover claims) ---");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "fraction", "IFP@k=16", "PuM@k=256", "PuM@8GB", "IFP@128GB"
    );
    for o in sweep_pum_fraction(&c, &base) {
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12}",
            o.knob,
            o.ifp_wins_small_queries,
            o.pum_wins_large_queries,
            o.pum_wins_small_db,
            o.ifp_wins_large_db
        );
    }
    println!("--- CM-SW Hom-Add rate sweep (orderings must be invariant) ---");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "t_add (s)", "IFP@k=16", "PuM@k=256", "PuM@8GB", "IFP@128GB"
    );
    for o in sweep_cmsw_rate(&c, &base) {
        println!(
            "{:<10.1e} {:>12} {:>12} {:>12} {:>12}",
            o.knob,
            o.ifp_wins_small_queries,
            o.pum_wins_large_queries,
            o.pum_wins_small_db,
            o.ifp_wins_large_db
        );
    }
    println!("(the DB-capacity crossover is physics; the query-size crossover is calibration)");
}

/// The two case studies of §5.3 at laptop scale, run for real through
/// the unified backend API (case study 2 through the batch session).
fn case_studies() {
    use cm_workloads::{DnaGenome, KvDatabase};
    let mut rng = StdRng::seed_from_u64(77);

    // --- Case study 1: exact DNA string matching -------------------------
    println!("--- DNA read mapping (16 kb genome, query sweep per §5.3) ---");
    let genome = DnaGenome::random(8192, &mut rng);
    let genome_bits = cm_core::BitString::from_dna(&genome.to_string_seq());
    let mut matcher = MatcherConfig::new(Backend::Ciphermatch)
        .bfv_params(BfvParams::ciphermatch_1024())
        .seed(71)
        .build()
        .expect("valid config");
    matcher
        .load_database(&genome_bits)
        .expect("genome encrypts");
    println!(
        "{:<10} {:>12} {:>10} {:>10}",
        "Read", "Search", "HomAdds", "Found"
    );
    for bases in [8usize, 16, 32, 64, 128] {
        let (read, pos) = genome.sample_read(bases, 0, &mut rng);
        let read_bits = cm_core::BitString::from_dna(&read);
        matcher.reset_stats();
        let t0 = std::time::Instant::now();
        let matches = matcher.find_all(&read_bits).expect("read searches");
        let dt = t0.elapsed().as_secs_f64();
        assert!(matches.contains(&(pos * 2)));
        println!(
            "{:<10} {:>12} {:>10} {:>10}",
            format!("{bases} bp"),
            fmt_time(dt),
            matcher.stats().hom_adds,
            matches.len()
        );
    }

    // --- Case study 2: encrypted database search -------------------------
    println!("--- encrypted KV search (256 records, 100 point queries, 4 workers) ---");
    let kv = KvDatabase::random(256, 8, 8, &mut rng);
    let bits = cm_core::BitString::from_ascii(&kv.flatten());
    let config = MatcherConfig::new(Backend::Ciphermatch)
        .bfv_params(BfvParams::ciphermatch_1024())
        .seed(72)
        .threads(4);
    let mut session = MatchSession::new(&config).expect("valid config");
    session.load_database(&bits).expect("database encrypts");
    let keys = kv.sample_queries(100, &mut rng);
    let queries: Vec<cm_core::BitString> = keys
        .iter()
        .map(|k| cm_core::BitString::from_ascii(k))
        .collect();
    let t0 = std::time::Instant::now();
    let report = session.run_batch(&queries).expect("batch runs");
    let dt = t0.elapsed().as_secs_f64();
    let resolved = keys
        .iter()
        .zip(&report.per_query)
        .filter(|(key, got)| {
            got.as_ref()
                .map(|g| g.contains(&(kv.find_record(key).unwrap() * 8)))
                .unwrap_or(false)
        })
        .count();
    println!(
        "resolved {resolved}/100 queries in {} ({} per query, {} Hom-Adds total)",
        fmt_time(dt),
        fmt_time(dt / 100.0),
        report.stats.hom_adds
    );
    assert_eq!(resolved, 100);
}

/// Measures this repository's per-op costs (feeds CalibrationProfile).
fn calibrate() {
    let mut rng = StdRng::seed_from_u64(99);

    let cm = BfvFixture::new(BfvParams::ciphermatch_1024(), 7);
    let coder = cm_bfv::CoefficientEncoder::new(&cm.ctx);
    let ev = cm.evaluator();
    let a = cm.encryptor().encrypt(&coder.encode(&[1, 2, 3]), &mut rng);
    let b = cm.encryptor().encrypt(&coder.encode(&[4, 5, 6]), &mut rng);
    let t_add = time_per_iter(2000, || {
        let _ = ev.add(&a, &b);
    });
    println!("t_hom_add_1024  = {t_add:.3e} s ({})", fmt_time(t_add));

    let ya = BfvFixture::new(BfvParams::arithmetic_2048(), 8);
    let coder2 = cm_bfv::CoefficientEncoder::new(&ya.ctx);
    let ev2 = ya.evaluator();
    let c1 = ya.encryptor().encrypt(&coder2.encode(&[1, 0, 1]), &mut rng);
    let c2 = ya.encryptor().encrypt(&coder2.encode(&[0, 1, 1]), &mut rng);
    let t_mult = time_per_iter(5, || {
        let _ = ev2.multiply(&c1, &c2);
    });
    let t_add2 = time_per_iter(2000, || {
        let _ = ev2.add(&c1, &c2);
    });
    println!("t_hom_mult_2048 = {t_mult:.3e} s ({})", fmt_time(t_mult));
    println!("t_hom_add_2048  = {t_add2:.3e} s ({})", fmt_time(t_add2));

    let client = ClientKey::generate(TfheParams::boolean_default(), &mut rng);
    let server = ServerKey::generate(&client, &mut rng);
    let x = client.encrypt(true, &mut rng);
    let y = client.encrypt(false, &mut rng);
    let t_gate = time_per_iter(3, || {
        let _ = server.xnor(&x, &y);
    });
    println!("t_tfhe_gate     = {t_gate:.3e} s ({})", fmt_time(t_gate));

    // Plaintext reference: the paper's "5.9 us unencrypted" comparison.
    let db = random_bits(32 * 8, 3);
    let q = db.slice(10, 32);
    let t_plain = time_per_iter(200, || {
        let _ = cm_core::bitwise_find_all(&db, &q);
    });
    println!("t_plain_32B_db  = {t_plain:.3e} s ({})", fmt_time(t_plain));
}
