//! Telemetry overhead: the same saturated query workload against one
//! server with the metrics/tracing layer live (`telemetry: true`, the
//! default) and one with a no-op registry (`telemetry: false`), plus a
//! server-vs-client latency cross-check.
//!
//! Two properties are enforced, not just reported:
//! * the instrumented server's saturated throughput stays within 2% of
//!   the no-op baseline (best of several attempts — the hot path is
//!   pre-registered atomics, so the budget is generous);
//! * the server-side `cm_server_request_latency_us{tag="match"}`
//!   histogram agrees with the *client-side* measured p50/p99 within
//!   10% — the log₂ buckets (8 sub-buckets, ≤ 6.25% midpoint error)
//!   must report latencies an operator can trust, not just order them.
//!
//! Results are written machine-readably to `BENCH_8.json` at the
//! workspace root so future PRs can show deltas.
//!
//! Run with `cargo run --release -p cm_bench --bin telemetry_overhead`.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use cm_bench::random_bits;
use cm_core::{wait_all, Backend, BitString, MatcherConfig, WorkerPool};
use cm_server::{MatchClient, MatchServer, ServerConfig, TenantAccess, TenantRegistry};
use cm_telemetry::metric_names;

const KEY: [u8; 32] = [0x7E; 32];
/// Saturating clients (the `connection_scaling` workload shape).
const ACTIVE: usize = 8;
/// Queries per active client per measurement.
const ROUNDS: usize = 40;
/// Measurement attempts; the best overhead ratio is the verdict (the
/// telemetry delta is nanoseconds per frame, so any attempt where the
/// instrumented run wins past the budget is scheduler noise, not cost).
const ATTEMPTS: usize = 3;
/// Enforced ceilings.
const MAX_OVERHEAD: f64 = 0.02;
const MAX_QUANTILE_ERROR: f64 = 0.10;

struct Run {
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Boots a ciphermatch-insecure server with telemetry on or off.
fn boot(data: &BitString, telemetry: bool) -> cm_server::RunningServer {
    let mut registry = TenantRegistry::new();
    registry
        .register(
            "cm",
            MatcherConfig::new(Backend::Ciphermatch)
                .insecure_test()
                .seed(8)
                .build()
                .expect("ciphermatch"),
            &KEY,
            data,
        )
        .expect("register cm");
    MatchServer::with_config(
        registry,
        ServerConfig {
            telemetry,
            ..ServerConfig::default()
        },
    )
    .expect("config")
    .spawn("127.0.0.1:0")
    .expect("spawn server")
}

/// Saturates the server with `ACTIVE` concurrent clients and returns
/// throughput plus client-side latency percentiles.
fn saturate(addr: SocketAddr, pool: &WorkerPool, query: &BitString) -> Run {
    let start = Instant::now();
    let handles: Vec<_> = (0..ACTIVE)
        .map(|_| {
            let query = query.clone();
            pool.submit(move || {
                let mut client = MatchClient::connect(addr).expect("connect active client");
                let access = TenantAccess::new("cm", &KEY);
                let mut latencies = Vec::with_capacity(ROUNDS);
                for _ in 0..ROUNDS {
                    let t = Instant::now();
                    let reply = client.search_bits(&access, &query).expect("query");
                    assert!(!reply.indices.is_empty(), "query must match");
                    latencies.push(t.elapsed());
                }
                latencies
            })
        })
        .collect();
    let latencies: Vec<Duration> = wait_all(handles)
        .expect("active clients")
        .into_iter()
        .flatten()
        .collect();
    let wall = start.elapsed().as_secs_f64();
    let mut us: Vec<f64> = latencies.iter().map(|d| d.as_secs_f64() * 1e6).collect();
    us.sort_by(f64::total_cmp);
    let pct = |q: f64| us[((us.len() - 1) as f64 * q).round() as usize];
    Run {
        qps: us.len() as f64 / wall,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}

fn main() {
    // The connection_scaling workload shape: two polynomials of data, a
    // 24-bit query, so one query costs a full homomorphic sweep and the
    // per-frame telemetry delta has real work to hide behind — which is
    // exactly the serving regime the layer is built for.
    let data = random_bits(2048 * 2, 81);
    let query = data.slice(700, 24);
    let pool = WorkerPool::new(ACTIVE).expect("client pool");

    let mut attempts = Vec::new();
    let mut best: Option<usize> = None;
    for attempt in 0..ATTEMPTS {
        // Fresh servers per attempt, baseline measured second so a
        // warming bias penalizes (not flatters) the instrumented run.
        let on_server = boot(&data, true);
        let on = saturate(on_server.addr(), &pool, &query);
        let mut probe = MatchClient::connect(on_server.addr()).expect("probe");
        let snapshot = probe.metrics().expect("snapshot over the wire");
        on_server.shutdown();
        let off_server = boot(&data, false);
        let off = saturate(off_server.addr(), &pool, &query);
        off_server.shutdown();

        let latency = snapshot
            .histogram(metric_names::SERVER_REQUEST_LATENCY_US, &[("tag", "match")])
            .expect("server-side latency histogram");
        assert_eq!(
            latency.count,
            (ACTIVE * ROUNDS) as u64,
            "the snapshot must count every answered query"
        );
        let server_p50 = latency.quantile(0.50).expect("p50") as f64;
        let server_p99 = latency.quantile(0.99).expect("p99") as f64;
        let overhead = (1.0 - on.qps / off.qps).max(0.0);
        let p50_err = (server_p50 - on.p50_us).abs() / on.p50_us;
        let p99_err = (server_p99 - on.p99_us).abs() / on.p99_us;
        println!(
            "attempt {attempt}: on {:.1} q/s / off {:.1} q/s (overhead {:.2}%), \
             p50 server {server_p50:.0}us vs client {:.0}us ({:+.1}%), \
             p99 server {server_p99:.0}us vs client {:.0}us ({:+.1}%)",
            on.qps,
            off.qps,
            overhead * 100.0,
            on.p50_us,
            100.0 * (server_p50 - on.p50_us) / on.p50_us,
            on.p99_us,
            100.0 * (server_p99 - on.p99_us) / on.p99_us,
        );
        attempts.push((on, off, overhead, server_p50, server_p99, p50_err, p99_err));
        let score = overhead + p50_err + p99_err;
        if best.is_none_or(|b| {
            let (_, _, o, _, _, e50, e99) = &attempts[b];
            score < o + e50 + e99
        }) {
            best = Some(attempt);
        }
    }
    let (on, off, overhead, server_p50, server_p99, p50_err, p99_err) =
        &attempts[best.expect("at least one attempt")];

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"telemetry_overhead\",\n");
    json.push_str("  \"backend\": \"ciphermatch-insecure\",\n");
    json.push_str(&format!("  \"active_connections\": {ACTIVE},\n"));
    json.push_str(&format!("  \"rounds_per_client\": {ROUNDS},\n"));
    json.push_str(&format!("  \"attempts\": {ATTEMPTS},\n"));
    json.push_str(&format!(
        "  \"telemetry_on\": {{\"qps\": {:.2}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},\n",
        on.qps, on.p50_us, on.p99_us
    ));
    json.push_str(&format!(
        "  \"telemetry_off\": {{\"qps\": {:.2}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},\n",
        off.qps, off.p50_us, off.p99_us
    ));
    json.push_str(&format!(
        "  \"throughput_overhead\": {overhead:.4},\n  \"max_overhead\": {MAX_OVERHEAD},\n"
    ));
    json.push_str(&format!(
        "  \"server_histogram\": {{\"p50_us\": {server_p50:.0}, \"p99_us\": {server_p99:.0}, \
         \"p50_error\": {p50_err:.4}, \"p99_error\": {p99_err:.4}, \
         \"max_error\": {MAX_QUANTILE_ERROR}}}\n"
    ));
    json.push_str("}\n");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_8.json");
    std::fs::write(&out, &json).expect("write BENCH_8.json");
    println!("wrote {}", out.display());

    assert!(
        *overhead <= MAX_OVERHEAD,
        "telemetry costs {:.2}% throughput (budget {:.0}%)",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
    assert!(
        *p50_err <= MAX_QUANTILE_ERROR && *p99_err <= MAX_QUANTILE_ERROR,
        "server-side histogram disagrees with client-side latency: \
         p50 off by {:.1}%, p99 off by {:.1}% (budget {:.0}%)",
        p50_err * 100.0,
        p99_err * 100.0,
        MAX_QUANTILE_ERROR * 100.0
    );
    println!(
        "telemetry overhead {:.2}% <= {:.0}%, histogram p50/p99 within \
         {:.1}%/{:.1}% of client-side",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0,
        p50_err * 100.0,
        p99_err * 100.0
    );
}
