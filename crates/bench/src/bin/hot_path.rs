//! Hot-path benchmark: single-query CM-SW search throughput at the
//! paper's parameters, vectorized slice kernels vs the scalar reference
//! sweep, measured **in the same run** so the recorded speedup is an
//! apples-to-apples ratio on one machine.
//!
//! Four measurements:
//! * the vectorized `CiphermatchEngine::search` sweep (flat-arena
//!   `add_into`, autovectorizable kernels) — searches/sec and derived
//!   Hom-Adds/sec;
//! * the `search_reference` sweep (per-ciphertext allocations, branchy
//!   per-word reduction) — the pre-optimization baseline;
//! * raw NTT forward transforms/sec at `n = 1024` (the lazy-reduction
//!   butterfly path, since the paper modulus is far below 2^62);
//! * p50/p99 *serve* latency of match queries through a live server,
//!   read from the server's own `cm_server_serve_time_us` histogram,
//!   plus the derived `cm_server_hom_adds_per_sec` gauge.
//!
//! Results go to `BENCH_9.json` at the workspace root. The full run
//! enforces the ISSUE 9 target — vectorized ≥ 2× the scalar reference —
//! while `--quick` (the CI perf-smoke mode) only requires the ratio to
//! stay ≥ 1×, so a noisy shared runner cannot flake the build on an
//! otherwise healthy kernel.
//!
//! Run with `cargo run --release -p cm_bench --bin hot_path [-- --quick]`.

use std::time::Instant;

use cm_bench::{random_bits, BfvFixture};
use cm_bfv::BfvParams;
use cm_core::{Backend, CiphermatchEngine, MatcherConfig};
use cm_hemath::{Modulus, NttTable};
use cm_server::{MatchClient, MatchServer, ServerConfig, TenantAccess, TenantRegistry};
use cm_telemetry::metric_names;
use rand::rngs::StdRng;
use rand::SeedableRng;

const KEY: [u8; 32] = [0x9A; 32];
/// The speedup the full run enforces (the ISSUE 9 acceptance bar) and
/// the floor the quick CI run enforces.
const MIN_SPEEDUP_FULL: f64 = 2.0;
const MIN_SPEEDUP_QUICK: f64 = 1.0;

struct Sweep {
    searches_per_sec: f64,
    hom_adds_per_sec: f64,
    us_per_search: f64,
}

fn measure_sweep<F: FnMut()>(iters: u32, hom_adds_per_search: u64, mut f: F) -> Sweep {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    Sweep {
        searches_per_sec: 1.0 / per_iter,
        hom_adds_per_sec: hom_adds_per_search as f64 / per_iter,
        us_per_search: per_iter * 1e6,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (iters, ntt_iters, attempts, rounds, db_polys) = if quick {
        (20u32, 2_000u32, 2usize, 8usize, 4usize)
    } else {
        (200, 20_000, 3, 40, 16)
    };

    // --- Core sweep at the paper's parameters ---------------------------
    let params = BfvParams::ciphermatch_1024();
    let n = params.n;
    let q = params.q;
    let fixture = BfvFixture::new(params, 9);
    let mut engine = CiphermatchEngine::new(&fixture.ctx);
    let enc = fixture.encryptor();
    let mut rng = StdRng::seed_from_u64(99);

    // `db_polys` polynomials of dense-packed data and a 32-bit query.
    let bits_per_poly = n * engine.packing().seg_bits();
    let data = random_bits(db_polys * bits_per_poly, 17);
    let db = engine.encrypt_database(&enc, &data, &mut rng);
    assert_eq!(db.poly_count(), db_polys);
    let pattern = data.slice((db_polys / 2) * bits_per_poly + 333, 32);
    let query = engine.prepare_query(&enc, &pattern, &mut rng);
    let hom_adds_per_search = (query.variant_count() * db_polys) as u64;

    // Both sweeps must produce identical results before either is timed.
    // `reusable` then serves as the steady-state caller-owned buffer the
    // allocation-free sweep rewrites on every iteration.
    let mut reusable = engine.search(&db, &query);
    assert_eq!(
        reusable,
        engine.search_reference(&db, &query),
        "vectorized and scalar-reference sweeps disagree"
    );

    // Interleaved attempts, best of each: the ratio of two best-case
    // runs is far more stable than a single pair under CI noise.
    let mut best_vec: Option<Sweep> = None;
    let mut best_ref: Option<Sweep> = None;
    for attempt in 0..attempts {
        let vec = measure_sweep(iters, hom_adds_per_search, || {
            engine.search_into(&db, &query, &mut reusable);
            std::hint::black_box(&reusable);
        });
        let scal = measure_sweep(iters, hom_adds_per_search, || {
            std::hint::black_box(engine.search_reference(&db, &query));
        });
        println!(
            "attempt {attempt}: vectorized {:.1}/s, scalar {:.1}/s ({:.2}x)",
            vec.searches_per_sec,
            scal.searches_per_sec,
            vec.searches_per_sec / scal.searches_per_sec
        );
        if best_vec
            .as_ref()
            .is_none_or(|b| vec.searches_per_sec > b.searches_per_sec)
        {
            best_vec = Some(vec);
        }
        if best_ref
            .as_ref()
            .is_none_or(|b| scal.searches_per_sec > b.searches_per_sec)
        {
            best_ref = Some(scal);
        }
    }
    let vec = best_vec.expect("at least one attempt");
    let scal = best_ref.expect("at least one attempt");
    let speedup = vec.searches_per_sec / scal.searches_per_sec;

    // --- Raw NTT throughput at the paper modulus ------------------------
    let modulus = Modulus::new(q);
    let table = NttTable::new(modulus, n);
    let mut slab: Vec<u64> = (0..n as u64).map(|i| i % modulus.value()).collect();
    let ntt_start = Instant::now();
    for _ in 0..ntt_iters {
        table.forward(&mut slab);
    }
    let ntt_per_sec = ntt_iters as f64 / ntt_start.elapsed().as_secs_f64();
    std::hint::black_box(&slab);

    // --- Serve latency through a live server ----------------------------
    let serve_data = random_bits(2048 * 2, 81);
    let serve_query = serve_data.slice(700, 24);
    let mut registry = TenantRegistry::new();
    registry
        .register(
            "cm",
            MatcherConfig::new(Backend::Ciphermatch)
                .insecure_test()
                .seed(9)
                .build()
                .expect("ciphermatch"),
            &KEY,
            &serve_data,
        )
        .expect("register cm");
    let server = MatchServer::with_config(registry, ServerConfig::default())
        .expect("config")
        .spawn("127.0.0.1:0")
        .expect("spawn server");
    let mut client = MatchClient::connect(server.addr()).expect("connect");
    let access = TenantAccess::new("cm", &KEY);
    for _ in 0..rounds {
        let reply = client.search_bits(&access, &serve_query).expect("query");
        assert!(!reply.indices.is_empty(), "query must match");
    }
    let snapshot = client.metrics().expect("snapshot over the wire");
    server.shutdown();
    let serve = snapshot
        .histogram(metric_names::SERVER_SERVE_TIME_US, &[("tag", "match")])
        .expect("serve-time histogram");
    assert_eq!(serve.count, rounds as u64);
    let serve_p50 = serve.quantile(0.50).expect("p50");
    let serve_p99 = serve.quantile(0.99).expect("p99");
    let adds_gauge = snapshot
        .gauge(metric_names::SERVER_HOM_ADDS_PER_SEC, &[])
        .expect("derived Hom-Add throughput gauge");

    // --- BENCH_9.json ---------------------------------------------------
    let min_speedup = if quick {
        MIN_SPEEDUP_QUICK
    } else {
        MIN_SPEEDUP_FULL
    };
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"hot_path\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"params\": \"ciphermatch_1024\",\n");
    json.push_str(&format!(
        "  \"db_polys\": {db_polys},\n  \"query_bits\": 32,\n  \"variants\": {},\n",
        query.variant_count()
    ));
    json.push_str(&format!(
        "  \"hom_adds_per_search\": {hom_adds_per_search},\n  \"iters\": {iters},\n"
    ));
    json.push_str(&format!(
        "  \"vectorized\": {{\"searches_per_sec\": {:.1}, \"hom_adds_per_sec\": {:.0}, \
         \"us_per_search\": {:.1}}},\n",
        vec.searches_per_sec, vec.hom_adds_per_sec, vec.us_per_search
    ));
    json.push_str(&format!(
        "  \"scalar_reference\": {{\"searches_per_sec\": {:.1}, \"hom_adds_per_sec\": {:.0}, \
         \"us_per_search\": {:.1}}},\n",
        scal.searches_per_sec, scal.hom_adds_per_sec, scal.us_per_search
    ));
    json.push_str(&format!(
        "  \"speedup\": {speedup:.2},\n  \"min_speedup\": {min_speedup},\n"
    ));
    json.push_str(&format!(
        "  \"ntt\": {{\"n\": {n}, \"forward_ops_per_sec\": {ntt_per_sec:.0}}},\n"
    ));
    json.push_str(&format!(
        "  \"server\": {{\"backend\": \"ciphermatch-insecure\", \"rounds\": {rounds}, \
         \"serve_p50_us\": {serve_p50}, \"serve_p99_us\": {serve_p99}, \
         \"hom_adds_per_sec_gauge\": {adds_gauge}}}\n"
    ));
    json.push_str("}\n");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_9.json");
    std::fs::write(&out, &json).expect("write BENCH_9.json");
    println!("wrote {}", out.display());

    println!(
        "vectorized {:.1} searches/s ({:.0} Hom-Adds/s), scalar reference {:.1} searches/s, \
         speedup {speedup:.2}x; NTT {ntt_per_sec:.0} fwd/s; \
         serve p50 {serve_p50} us / p99 {serve_p99} us",
        vec.searches_per_sec, vec.hom_adds_per_sec, scal.searches_per_sec
    );
    assert!(
        speedup >= min_speedup,
        "vectorized sweep is only {speedup:.2}x the scalar reference (floor {min_speedup}x)"
    );
}
