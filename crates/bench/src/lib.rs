#![warn(missing_docs)]

//! # cm-bench
//!
//! The benchmark harness: shared measurement helpers used by the `repro`
//! binary (one target per paper table/figure) and the Criterion
//! micro-benchmarks in `benches/`.

use std::time::Instant;

use cm_bfv::{BfvContext, BfvParams, Decryptor, Encryptor, Evaluator, KeyGenerator, SecretKey};
use cm_core::BitString;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A ready-to-use BFV fixture (context, keys, encryptor inputs).
pub struct BfvFixture {
    /// The context.
    pub ctx: BfvContext,
    /// The secret key.
    pub sk: SecretKey,
    /// The public key.
    pub pk: cm_bfv::PublicKey,
}

impl BfvFixture {
    /// Builds a fixture for the given parameters with a fixed seed.
    pub fn new(params: BfvParams, seed: u64) -> Self {
        let ctx = BfvContext::new(params);
        let mut rng = StdRng::seed_from_u64(seed);
        let (sk, pk) = {
            let kg = KeyGenerator::new(&ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        Self { ctx, sk, pk }
    }

    /// An encryptor over this fixture.
    pub fn encryptor(&self) -> Encryptor<'_> {
        Encryptor::new(&self.ctx, self.pk.clone())
    }

    /// A decryptor over this fixture.
    pub fn decryptor(&self) -> Decryptor<'_> {
        Decryptor::new(&self.ctx, self.sk.clone())
    }

    /// An evaluator over this fixture.
    pub fn evaluator(&self) -> Evaluator {
        Evaluator::new(&self.ctx)
    }
}

/// Times `f` over `iters` iterations, returning seconds per iteration.
pub fn time_per_iter<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// A deterministic pseudo-random bit string for workloads.
pub fn random_bits(len: usize, seed: u64) -> BitString {
    let mut s = seed | 1;
    let bits: Vec<bool> = (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 62) & 1 == 1
        })
        .collect();
    BitString::from_bits(&bits)
}

/// Formats seconds human-readably.
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Formats bytes human-readably.
pub fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.2} KB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_roundtrip() {
        let f = BfvFixture::new(BfvParams::insecure_test_add(), 1);
        let mut rng = StdRng::seed_from_u64(2);
        let coder = cm_bfv::CoefficientEncoder::new(&f.ctx);
        let ct = f.encryptor().encrypt(&coder.encode(&[42]), &mut rng);
        assert_eq!(f.decryptor().decrypt(&ct).coeffs()[0], 42);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_time(2.5), "2.50 s");
        assert_eq!(fmt_time(2.5e-3), "2.50 ms");
        assert_eq!(fmt_time(2.5e-6), "2.50 us");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
        assert_eq!(fmt_bytes(4096.0), "4.10 KB");
        assert_eq!(fmt_bytes(12.0), "12 B");
    }

    #[test]
    fn random_bits_deterministic() {
        assert_eq!(random_bits(100, 7), random_bits(100, 7));
        assert_ne!(random_bits(100, 7), random_bits(100, 8));
    }
}
