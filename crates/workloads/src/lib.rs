#![warn(missing_docs)]

//! # cm-workloads
//!
//! Synthetic workload generators for the two case studies of §5.3:
//!
//! 1. **Exact DNA string matching** — a reference genome over `ACGT`
//!    (2 bits per base) and reads sampled from it (with optional
//!    mismatches), query sizes 16–256 bits (8–128 base pairs).
//! 2. **Encrypted database search** — a key-value store flattened to a
//!    binary record stream, with fixed-width keys and point queries.

use rand::Rng;

/// A synthetic DNA genome (2-bit encoded bases).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnaGenome {
    bases: Vec<u8>, // 0..4 = ACGT
}

const BASES: [char; 4] = ['A', 'C', 'G', 'T'];

impl DnaGenome {
    /// Samples a uniform random genome of `len` bases.
    pub fn random<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
        Self {
            bases: (0..len).map(|_| rng.gen_range(0..4u8)).collect(),
        }
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// True if the genome is empty.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// The genome as an `ACGT` string.
    pub fn to_string_seq(&self) -> String {
        self.bases.iter().map(|&b| BASES[b as usize]).collect()
    }

    /// Extracts the read starting at base `start` of `len` bases.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read(&self, start: usize, len: usize) -> String {
        self.bases[start..start + len]
            .iter()
            .map(|&b| BASES[b as usize])
            .collect()
    }

    /// Samples a read of `len` bases from a random position, returning
    /// `(read, position)`. With `mismatches > 0`, that many bases are
    /// corrupted (for negative-control queries).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the genome length.
    pub fn sample_read<R: Rng + ?Sized>(
        &self,
        len: usize,
        mismatches: usize,
        rng: &mut R,
    ) -> (String, usize) {
        assert!(len <= self.bases.len(), "read longer than genome");
        let start = rng.gen_range(0..=self.bases.len() - len);
        let mut read: Vec<u8> = self.bases[start..start + len].to_vec();
        for _ in 0..mismatches {
            let pos = rng.gen_range(0..len);
            read[pos] = (read[pos] + rng.gen_range(1..4u8)) % 4;
        }
        (read.iter().map(|&b| BASES[b as usize]).collect(), start)
    }
}

/// A synthetic key-value database with fixed-width ASCII keys
/// (the encrypted-database-search case study).
#[derive(Debug, Clone)]
pub struct KvDatabase {
    /// Key width in bytes.
    pub key_bytes: usize,
    /// Value width in bytes.
    pub value_bytes: usize,
    records: Vec<(String, String)>,
}

impl KvDatabase {
    /// Generates `records` random records with the given key/value widths.
    /// Keys are unique alphanumeric ASCII strings.
    pub fn random<R: Rng + ?Sized>(
        records: usize,
        key_bytes: usize,
        value_bytes: usize,
        rng: &mut R,
    ) -> Self {
        const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
        let mut recs = Vec::with_capacity(records);
        let mut seen = std::collections::HashSet::new();
        while recs.len() < records {
            let key: String = (0..key_bytes)
                .map(|_| ALPHA[rng.gen_range(0..ALPHA.len())] as char)
                .collect();
            if !seen.insert(key.clone()) {
                continue;
            }
            let value: String = (0..value_bytes)
                .map(|_| ALPHA[rng.gen_range(0..ALPHA.len())] as char)
                .collect();
            recs.push((key, value));
        }
        Self {
            key_bytes,
            value_bytes,
            records: recs,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the database has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records.
    pub fn records(&self) -> &[(String, String)] {
        &self.records
    }

    /// Flattens the database into the binary record stream the server
    /// stores (key then value per record — Algorithm 1 line 1).
    pub fn flatten(&self) -> String {
        let mut s = String::with_capacity(self.len() * (self.key_bytes + self.value_bytes));
        for (k, v) in &self.records {
            s.push_str(k);
            s.push_str(v);
        }
        s
    }

    /// Record width in bytes.
    pub fn record_bytes(&self) -> usize {
        self.key_bytes + self.value_bytes
    }

    /// Picks `count` existing keys as queries.
    pub fn sample_queries<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<String> {
        (0..count)
            .map(|_| self.records[rng.gen_range(0..self.records.len())].0.clone())
            .collect()
    }

    /// The byte offset at which `key`'s record starts, if present.
    pub fn find_record(&self, key: &str) -> Option<usize> {
        self.records
            .iter()
            .position(|(k, _)| k == key)
            .map(|i| i * self.record_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn genome_reads_match_source() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = DnaGenome::random(1000, &mut rng);
        assert_eq!(g.len(), 1000);
        let (read, pos) = g.sample_read(50, 0, &mut rng);
        assert_eq!(read, g.read(pos, 50));
        assert!(read.chars().all(|c| "ACGT".contains(c)));
    }

    #[test]
    fn mismatched_reads_differ() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = DnaGenome::random(500, &mut rng);
        let (read, pos) = g.sample_read(40, 3, &mut rng);
        assert_ne!(read, g.read(pos, 40), "mismatches must corrupt the read");
    }

    #[test]
    fn genome_string_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = DnaGenome::random(64, &mut rng);
        let s = g.to_string_seq();
        assert_eq!(s.len(), 64);
        assert_eq!(g.read(0, 64), s);
    }

    #[test]
    fn kv_database_structure() {
        let mut rng = StdRng::seed_from_u64(4);
        let db = KvDatabase::random(100, 8, 24, &mut rng);
        assert_eq!(db.len(), 100);
        assert_eq!(db.record_bytes(), 32);
        let flat = db.flatten();
        assert_eq!(flat.len(), 3200);
        // Every record's key appears at its record offset.
        for (i, (k, _)) in db.records().iter().enumerate() {
            assert_eq!(&flat[i * 32..i * 32 + 8], k);
            assert_eq!(db.find_record(k), Some(i * 32));
        }
    }

    #[test]
    fn kv_keys_are_unique() {
        let mut rng = StdRng::seed_from_u64(5);
        let db = KvDatabase::random(500, 6, 10, &mut rng);
        let keys: std::collections::HashSet<_> =
            db.records().iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys.len(), 500);
    }

    #[test]
    fn queries_come_from_database() {
        let mut rng = StdRng::seed_from_u64(6);
        let db = KvDatabase::random(50, 4, 4, &mut rng);
        for q in db.sample_queries(20, &mut rng) {
            assert!(db.find_record(&q).is_some());
        }
    }
}
