#![warn(missing_docs)]

//! # cm-aes
//!
//! A from-scratch AES-128/256 block cipher with a CTR stream mode.
//!
//! CIPHERMATCH (§7.2) returns match indices from the SSD to the client
//! over an untrusted channel and protects them with the hardware 256-bit
//! AES engine present in commodity SSDs. This crate is the functional
//! model of that engine (16-byte granularity, as in the paper's synthesis
//! estimate: 12.6 ns per block in 22 nm hardware).
//!
//! This is a research artifact: the implementation is table-based and not
//! constant-time; do not reuse it outside the simulator.
//!
//! ## Example
//!
//! ```
//! use cm_aes::Aes;
//! let key = [0x42u8; 32];
//! let aes = Aes::new_256(&key);
//! let ct = aes.encrypt_block(&[0u8; 16]);
//! assert_eq!(aes.decrypt_block(&ct), [0u8; 16]);
//! ```

mod tables;

use tables::{INV_SBOX, SBOX};

/// Key sizes supported by the cipher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySize {
    /// AES-128 (10 rounds).
    Aes128,
    /// AES-256 (14 rounds).
    Aes256,
}

/// An expanded-key AES cipher.
#[derive(Debug, Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
}

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1B)
}

/// GF(2^8) multiplication.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 == 1 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

impl Aes {
    /// Creates an AES-128 cipher.
    pub fn new_128(key: &[u8; 16]) -> Self {
        Self::expand(key, KeySize::Aes128)
    }

    /// Creates an AES-256 cipher (the paper's SSD engine).
    pub fn new_256(key: &[u8; 32]) -> Self {
        Self::expand(key, KeySize::Aes256)
    }

    fn expand(key: &[u8], size: KeySize) -> Self {
        let (nk, rounds) = match size {
            KeySize::Aes128 => (4usize, 10usize),
            KeySize::Aes256 => (8, 14),
        };
        assert_eq!(key.len(), nk * 4);
        let total_words = 4 * (rounds + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        let mut rcon = 1u8;
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for t in &mut temp {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= rcon;
                rcon = xtime(rcon);
            } else if nk > 6 && i % nk == 4 {
                for t in &mut temp {
                    *t = SBOX[*t as usize];
                }
            }
            let prev = w[i - nk];
            w.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }
        let round_keys = (0..=rounds)
            .map(|r| {
                let mut rk = [0u8; 16];
                for c in 0..4 {
                    rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                }
                rk
            })
            .collect();
        Self { round_keys, rounds }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = SBOX[*s as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = INV_SBOX[*s as usize];
        }
    }

    fn shift_rows(state: &mut [u8; 16]) {
        // state[4c + r] is row r, column c.
        for r in 1..4 {
            let row: Vec<u8> = (0..4).map(|c| state[4 * ((c + r) % 4) + r]).collect();
            for c in 0..4 {
                state[4 * c + r] = row[c];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let row: Vec<u8> = (0..4).map(|c| state[4 * ((c + 4 - r) % 4) + r]).collect();
            for c in 0..4 {
                state[4 * c + r] = row[c];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
            state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
            state[4 * c + 1] =
                gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
            state[4 * c + 2] =
                gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
            state[4 * c + 3] =
                gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
        }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        Self::add_round_key(&mut state, &self.round_keys[0]);
        for r in 1..self.rounds {
            Self::sub_bytes(&mut state);
            Self::shift_rows(&mut state);
            Self::mix_columns(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[r]);
        }
        Self::sub_bytes(&mut state);
        Self::shift_rows(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[self.rounds]);
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        Self::add_round_key(&mut state, &self.round_keys[self.rounds]);
        for r in (1..self.rounds).rev() {
            Self::inv_shift_rows(&mut state);
            Self::inv_sub_bytes(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[r]);
            Self::inv_mix_columns(&mut state);
        }
        Self::inv_shift_rows(&mut state);
        Self::inv_sub_bytes(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[0]);
        state
    }

    /// CTR-mode keystream XOR (encryption == decryption). Used to protect
    /// arbitrary-length index lists at 16-byte engine granularity.
    pub fn ctr_apply(&self, nonce: u64, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(16).enumerate() {
            let mut counter_block = [0u8; 16];
            counter_block[..8].copy_from_slice(&nonce.to_be_bytes());
            counter_block[8..].copy_from_slice(&(i as u64).to_be_bytes());
            let ks = self.encrypt_block(&counter_block);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_aes128_vector() {
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let pt: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes::new_128(&key);
        assert_eq!(
            aes.encrypt_block(&pt).to_vec(),
            hex("69c4e0d86a7b0430d8cdb78070b4c55a")
        );
    }

    #[test]
    fn fips197_aes256_vector() {
        let key: [u8; 32] = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap();
        let pt: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes::new_256(&key);
        assert_eq!(
            aes.encrypt_block(&pt).to_vec(),
            hex("8ea2b7ca516745bfeafc49904b496089")
        );
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let aes = Aes::new_256(&[7u8; 32]);
        for seed in 0..32u8 {
            let block = [seed.wrapping_mul(13); 16];
            assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
        }
        let aes128 = Aes::new_128(&[3u8; 16]);
        let block = [0xA5u8; 16];
        assert_eq!(aes128.decrypt_block(&aes128.encrypt_block(&block)), block);
    }

    #[test]
    fn ctr_mode_roundtrip_and_nonce_sensitivity() {
        let aes = Aes::new_256(&[9u8; 32]);
        let msg = b"match indices: 17, 4242, 99999".to_vec();
        let mut buf = msg.clone();
        aes.ctr_apply(0xDEADBEEF, &mut buf);
        assert_ne!(buf, msg);
        let cipher_a = buf.clone();
        aes.ctr_apply(0xDEADBEEF, &mut buf);
        assert_eq!(buf, msg);
        // Different nonce produces a different ciphertext.
        let mut buf2 = msg.clone();
        aes.ctr_apply(0xDEADBEF0, &mut buf2);
        assert_ne!(buf2, cipher_a);
    }

    #[test]
    fn gf_multiplication_properties() {
        // 2 * 0x80 wraps through the reduction polynomial.
        assert_eq!(gmul(0x80, 2), 0x1B);
        // x * 1 = x
        for x in 0..=255u8 {
            assert_eq!(gmul(x, 1), x);
        }
        // Commutativity spot checks.
        assert_eq!(gmul(0x57, 0x83), gmul(0x83, 0x57));
        assert_eq!(gmul(0x57, 0x83), 0xC1); // FIPS-197 worked example
    }
}
