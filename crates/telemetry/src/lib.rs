//! Lock-free observability for the serving stack: a [`MetricsRegistry`]
//! of named counters, gauges, and fixed-bucket log₂ histograms, plus a
//! per-frame [`Trace`] that separates queue wait from serve time.
//!
//! Design constraints, in order:
//!
//! * **The hot path never locks.** Registering a metric takes a mutex
//!   (once, at setup or first sight of a label value); recording into
//!   one is a relaxed atomic add. Handles ([`Counter`], [`Gauge`],
//!   [`Histogram`]) are cheap clones that can be stashed in every layer.
//! * **Disabled means free.** [`MetricsRegistry::disabled`] hands out
//!   handles backed by nothing; `inc`/`record` compile to a branch on a
//!   `None`. The `telemetry_overhead` bench holds the enabled path to
//!   within 2% of this floor.
//! * **No dependencies.** Only `std`; the crate sits below `cm_core`,
//!   `cm_reactor`, and `cm_server` in the workspace graph.
//!
//! Histograms are log₂ octaves refined by 8 linear sub-buckets
//! (HDR-style): relative bucket width is at most 12.5%, so a midpoint
//! quantile estimate is within ~6.25% of the true value — tight enough
//! that server-side p50/p99 can be cross-checked against client-side
//! stopwatches (the acceptance bound is 10%). Buckets are u64 counts and
//! merge by addition, so per-shard or per-process histograms aggregate
//! exactly ([`HistogramSample::merge`] is associative and commutative;
//! proptested in `tests/histograms.rs`).
//!
//! Every metric name in the workspace lives in [`metric_names`] — the
//! `metric-names` lint rule rejects ad-hoc name literals at
//! registration sites and duplicate values in the table.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

pub mod metric_names;

// ---------------------------------------------------------------------------
// Histogram bucket geometry
// ---------------------------------------------------------------------------

/// Linear sub-buckets per log₂ octave (8 → ≤12.5% relative width).
const SUB_BUCKETS: usize = 8;

/// Total bucket count: indices 0–7 are exact (values 0–7), then 8 per
/// octave for the 61 octaves up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 62 * SUB_BUCKETS;

/// Maps a recorded value to its bucket index. Monotone non-decreasing
/// in `v` (proptested), total over all of `u64`.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (msb - 3)) & 7) as usize;
        (msb - 2) * SUB_BUCKETS + sub
    }
}

/// The smallest value that lands in bucket `index`.
pub fn bucket_lo(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        index as u64
    } else {
        let msb = index / SUB_BUCKETS + 2;
        let sub = (index % SUB_BUCKETS) as u64;
        (1u64 << msb) | (sub << (msb - 3))
    }
}

/// The width of bucket `index`: `bucket_lo(index) + bucket_width(index)`
/// is the exclusive upper bound (saturating at `u64::MAX`).
pub fn bucket_width(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        1
    } else {
        1u64 << (index / SUB_BUCKETS + 2 - 3)
    }
}

// ---------------------------------------------------------------------------
// Recording handles
// ---------------------------------------------------------------------------

/// A monotone counter handle. Cloning shares the underlying cell; the
/// default value is a no-op handle that records nothing.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value (0 for a no-op handle).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(c) => write!(f, "Counter({})", c.load(Ordering::Relaxed)),
            None => f.write_str("Counter(disabled)"),
        }
    }
}

/// A gauge handle: a signed value that can move both ways. The default
/// value is a no-op handle.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Moves the gauge by `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current value (0 for a no-op handle).
    pub fn value(&self) -> i64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(c) => write!(f, "Gauge({})", c.load(Ordering::Relaxed)),
            None => f.write_str("Gauge(disabled)"),
        }
    }
}

/// The shared cells behind one histogram.
struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl HistogramCore {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A fixed-bucket log₂ histogram handle. The default value is a no-op
/// handle.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one observation of `v` (three relaxed atomic adds).
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.0 {
            core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            core.count.fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Records `d` as whole microseconds (the workspace's latency unit).
    pub fn record_micros(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// The number of recorded observations (0 for a no-op handle).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(c) => write!(f, "Histogram(count={})", c.count.load(Ordering::Relaxed)),
            None => f.write_str("Histogram(disabled)"),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// One registered metric's identity: name plus sorted labels.
#[derive(Clone, PartialEq, Eq, Hash)]
struct MetricKey {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
}

enum MetricCell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

struct RegistryState {
    by_key: HashMap<MetricKey, usize>,
    metrics: Vec<(MetricKey, MetricCell)>,
}

/// The process-wide metric registry. Cloning shares the registry;
/// [`MetricsRegistry::disabled`] yields a registry whose handles are
/// all no-ops (for overhead baselines and telemetry-off deployments).
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<Mutex<RegistryState>>>,
}

impl MetricsRegistry {
    /// A live registry.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(RegistryState {
                by_key: HashMap::new(),
                metrics: Vec::new(),
            }))),
        }
    }

    /// A registry that records nothing: every handle it returns is a
    /// no-op and [`MetricsRegistry::snapshot`] is empty.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(state: &Arc<Mutex<RegistryState>>) -> MutexGuard<'_, RegistryState> {
        // A panic while holding the registry lock cannot corrupt the
        // state (all mutations are single push/insert), so poisoning is
        // recoverable.
        state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn key(name: &'static str, labels: &[(&'static str, &str)]) -> MetricKey {
        let mut labels: Vec<(&'static str, String)> =
            labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect();
        labels.sort();
        MetricKey { name, labels }
    }

    /// Registers (or re-fetches) the counter `name` with `labels`.
    /// Registration on one (name, labels) pair is idempotent: every
    /// caller gets a handle to the same cell.
    pub fn register_counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
        let Some(state) = &self.inner else {
            return Counter(None);
        };
        let key = Self::key(name, labels);
        let mut guard = Self::lock(state);
        if let Some(&at) = guard.by_key.get(&key) {
            if let (_, MetricCell::Counter(cell)) = &guard.metrics[at] {
                return Counter(Some(Arc::clone(cell)));
            }
        }
        let cell = Arc::new(AtomicU64::new(0));
        let at = guard.metrics.len();
        guard
            .metrics
            .push((key.clone(), MetricCell::Counter(Arc::clone(&cell))));
        guard.by_key.insert(key, at);
        Counter(Some(cell))
    }

    /// Registers (or re-fetches) the gauge `name` with `labels`.
    pub fn register_gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
        let Some(state) = &self.inner else {
            return Gauge(None);
        };
        let key = Self::key(name, labels);
        let mut guard = Self::lock(state);
        if let Some(&at) = guard.by_key.get(&key) {
            if let (_, MetricCell::Gauge(cell)) = &guard.metrics[at] {
                return Gauge(Some(Arc::clone(cell)));
            }
        }
        let cell = Arc::new(AtomicI64::new(0));
        let at = guard.metrics.len();
        guard
            .metrics
            .push((key.clone(), MetricCell::Gauge(Arc::clone(&cell))));
        guard.by_key.insert(key, at);
        Gauge(Some(cell))
    }

    /// Registers (or re-fetches) the histogram `name` with `labels`.
    pub fn register_histogram(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Histogram {
        let Some(state) = &self.inner else {
            return Histogram(None);
        };
        let key = Self::key(name, labels);
        let mut guard = Self::lock(state);
        if let Some(&at) = guard.by_key.get(&key) {
            if let (_, MetricCell::Histogram(core)) = &guard.metrics[at] {
                return Histogram(Some(Arc::clone(core)));
            }
        }
        let core = Arc::new(HistogramCore::new());
        let at = guard.metrics.len();
        guard
            .metrics
            .push((key.clone(), MetricCell::Histogram(Arc::clone(&core))));
        guard.by_key.insert(key, at);
        Histogram(Some(core))
    }

    /// A point-in-time copy of every registered metric, sorted by
    /// (name, labels) so snapshots are stable across calls.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(state) = &self.inner else {
            return snap;
        };
        let guard = Self::lock(state);
        for (key, cell) in &guard.metrics {
            let labels: Vec<(String, String)> = key
                .labels
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect();
            match cell {
                MetricCell::Counter(c) => snap.counters.push(CounterSample {
                    name: key.name.to_string(),
                    labels,
                    value: c.load(Ordering::Relaxed),
                }),
                MetricCell::Gauge(g) => snap.gauges.push(GaugeSample {
                    name: key.name.to_string(),
                    labels,
                    value: g.load(Ordering::Relaxed),
                }),
                MetricCell::Histogram(h) => {
                    let buckets: Vec<(u32, u64)> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| {
                            let n = b.load(Ordering::Relaxed);
                            (n > 0).then_some((i as u32, n))
                        })
                        .collect();
                    snap.histograms.push(HistogramSample {
                        name: key.name.to_string(),
                        labels,
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        buckets,
                    });
                }
            }
        }
        drop(guard);
        snap.counters
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        snap.gauges
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        snap.histograms
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        snap
    }

    /// Renders the current state as Prometheus-style text exposition
    /// (`name{label="v"} value` lines; histograms expand to cumulative
    /// `_bucket{le="…"}` lines plus `_count` and `_sum`).
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(state) => write!(
                f,
                "MetricsRegistry({} metrics)",
                Self::lock(state).metrics.len()
            ),
            None => f.write_str("MetricsRegistry(disabled)"),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// One counter's point-in-time value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// The registered metric name (a [`metric_names`] constant).
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    /// The counter value.
    pub value: u64,
}

/// One gauge's point-in-time value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSample {
    /// The registered metric name (a [`metric_names`] constant).
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    /// The gauge value.
    pub value: i64,
}

/// One histogram's point-in-time state, with only the occupied buckets
/// (sparse `(bucket_index, count)` pairs, ascending by index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// The registered metric name (a [`metric_names`] constant).
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// `(bucket_index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSample {
    /// Folds `other` into `self` bucket-wise. Addition of sparse bucket
    /// vectors is associative and commutative (proptested), so
    /// per-shard histograms aggregate exactly in any order.
    pub fn merge(&mut self, other: &HistogramSample) {
        self.count += other.count;
        self.sum += other.sum;
        let mut merged: Vec<(u32, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia == ib {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else {
                        merged.push((ib, nb));
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }

    /// The `q`-quantile (0.0 ≤ q ≤ 1.0) as a bucket-midpoint estimate,
    /// within the bucket's half-width (≤ ~6.25%) of the true value.
    /// `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let index = index as usize;
                return Some(bucket_lo(index).saturating_add(bucket_width(index) / 2));
            }
        }
        // count says there are observations the buckets don't show —
        // only possible on a hand-built sample; answer the top bucket.
        self.buckets
            .last()
            .map(|&(i, _)| bucket_lo(i as usize).saturating_add(bucket_width(i as usize) / 2))
    }
}

/// A point-in-time copy of a whole [`MetricsRegistry`] — the payload of
/// the `Request::Metrics` wire round trip.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Every counter, sorted by (name, labels).
    pub counters: Vec<CounterSample>,
    /// Every gauge, sorted by (name, labels).
    pub gauges: Vec<GaugeSample>,
    /// Every histogram, sorted by (name, labels).
    pub histograms: Vec<HistogramSample>,
}

fn labels_match(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    want.iter()
        .all(|(k, v)| have.iter().any(|(hk, hv)| hk == k && hv == v))
}

impl MetricsSnapshot {
    /// The value of the counter `name` whose labels include every pair
    /// in `labels` (summed over matches; `None` if nothing matches).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let mut hit = false;
        let mut total = 0;
        for c in &self.counters {
            if c.name == name && labels_match(&c.labels, labels) {
                hit = true;
                total += c.value;
            }
        }
        hit.then_some(total)
    }

    /// The value of the gauge `name` whose labels include every pair in
    /// `labels` (first match).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && labels_match(&g.labels, labels))
            .map(|g| g.value)
    }

    /// The histogram `name` whose labels include every pair in `labels`
    /// (first match).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSample> {
        self.histograms
            .iter()
            .find(|h| h.name == name && labels_match(&h.labels, labels))
    }

    /// Prometheus-style text exposition of this snapshot.
    pub fn render_text(&self) -> String {
        fn label_block(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
            if labels.is_empty() && extra.is_none() {
                return;
            }
            out.push('{');
            let mut first = true;
            for (k, v) in labels {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(k);
                out.push_str("=\"");
                for ch in v.chars() {
                    match ch {
                        '\\' => out.push_str("\\\\"),
                        '"' => out.push_str("\\\""),
                        '\n' => out.push_str("\\n"),
                        _ => out.push(ch),
                    }
                }
                out.push('"');
            }
            if let Some((k, v)) = extra {
                if !first {
                    out.push(',');
                }
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(v);
                out.push('"');
            }
            out.push('}');
        }

        let mut out = String::new();
        for c in &self.counters {
            out.push_str(&c.name);
            label_block(&mut out, &c.labels, None);
            out.push(' ');
            out.push_str(&c.value.to_string());
            out.push('\n');
        }
        for g in &self.gauges {
            out.push_str(&g.name);
            label_block(&mut out, &g.labels, None);
            out.push(' ');
            out.push_str(&g.value.to_string());
            out.push('\n');
        }
        for h in &self.histograms {
            let mut cumulative = 0u64;
            for &(index, n) in &h.buckets {
                cumulative += n;
                let index = index as usize;
                let le = bucket_lo(index).saturating_add(bucket_width(index) - 1);
                out.push_str(&h.name);
                out.push_str("_bucket");
                label_block(&mut out, &h.labels, Some(("le", &le.to_string())));
                out.push(' ');
                out.push_str(&cumulative.to_string());
                out.push('\n');
            }
            out.push_str(&h.name);
            out.push_str("_bucket");
            label_block(&mut out, &h.labels, Some(("le", "+Inf")));
            out.push(' ');
            out.push_str(&h.count.to_string());
            out.push('\n');
            out.push_str(&h.name);
            out.push_str("_count");
            label_block(&mut out, &h.labels, None);
            out.push(' ');
            out.push_str(&h.count.to_string());
            out.push('\n');
            out.push_str(&h.name);
            out.push_str("_sum");
            label_block(&mut out, &h.labels, None);
            out.push(' ');
            out.push_str(&h.sum.to_string());
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Per-frame tracing
// ---------------------------------------------------------------------------

/// The stages a request frame passes through on the serving path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The reactor front-end admitted the frame (trace birth).
    Admitted,
    /// A pump worker dequeued the frame off its connection queue.
    Dequeued,
    /// The request payload decoded into a typed `Request`.
    Decoded,
    /// Dispatch finished: the matcher (or lifecycle op) has answered.
    Matched,
    /// The reply frame was handed to the reactor for writing.
    Replied,
}

/// Number of [`Stage`] variants.
const STAGES: usize = 5;

impl Stage {
    fn index(self) -> usize {
        match self {
            Stage::Admitted => 0,
            Stage::Dequeued => 1,
            Stage::Decoded => 2,
            Stage::Matched => 3,
            Stage::Replied => 4,
        }
    }

    /// The stage's lowercase wire/log name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Admitted => "admitted",
            Stage::Dequeued => "dequeued",
            Stage::Decoded => "decoded",
            Stage::Matched => "matched",
            Stage::Replied => "replied",
        }
    }
}

/// Process-global trace-id mint.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// A lightweight per-frame trace: a process-unique id plus one
/// monotonic timestamp per [`Stage`], born when the reactor admits a
/// frame and carried through the pump job into dispatch. Queue wait
/// (admitted → dequeued) and serve time (decoded → matched) fall out as
/// differences — no clock reads beyond one `Instant` per stage.
#[derive(Debug, Clone)]
pub struct Trace {
    id: u64,
    start: Instant,
    marks: [Option<Duration>; STAGES],
}

impl Trace {
    /// Mints a new trace with [`Stage::Admitted`] marked now.
    pub fn begin() -> Self {
        let mut marks = [None; STAGES];
        marks[Stage::Admitted.index()] = Some(Duration::ZERO);
        Self {
            id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            start: Instant::now(),
            marks,
        }
    }

    /// The process-unique request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Marks `stage` at the current instant (first mark wins).
    pub fn mark(&mut self, stage: Stage) {
        let slot = &mut self.marks[stage.index()];
        if slot.is_none() {
            *slot = Some(self.start.elapsed());
        }
    }

    /// Elapsed time from `from` to `to`, if both stages were marked.
    pub fn between(&self, from: Stage, to: Stage) -> Option<Duration> {
        let a = self.marks[from.index()]?;
        let b = self.marks[to.index()]?;
        Some(b.saturating_sub(a))
    }

    /// Admitted → dequeued: how long the frame waited for a pump slot.
    pub fn queue_wait(&self) -> Option<Duration> {
        self.between(Stage::Admitted, Stage::Dequeued)
    }

    /// Decoded → matched: pure dispatch/matcher time.
    pub fn serve_time(&self) -> Option<Duration> {
        self.between(Stage::Admitted, Stage::Matched)
            .and(self.between(Stage::Decoded, Stage::Matched))
    }

    /// Admitted → replied: the frame's full server-side latency.
    pub fn total(&self) -> Option<Duration> {
        self.between(Stage::Admitted, Stage::Replied)
    }

    /// `stage=<µs>` pairs for every marked stage, for slow-query lines.
    pub fn stage_summary(&self) -> String {
        let mut out = String::new();
        for stage in [
            Stage::Admitted,
            Stage::Dequeued,
            Stage::Decoded,
            Stage::Matched,
            Stage::Replied,
        ] {
            if let Some(at) = self.marks[stage.index()] {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(stage.name());
                out.push_str("_us=");
                out.push_str(&at.as_micros().to_string());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry_is_consistent() {
        for v in (0u64..4096).chain([u64::MAX, u64::MAX - 1, 1 << 40, (1 << 40) + 12345]) {
            let i = bucket_index(v);
            assert!(i < HISTOGRAM_BUCKETS, "index {i} for {v}");
            let lo = bucket_lo(i);
            let width = bucket_width(i);
            assert!(lo <= v, "lo {lo} > v {v}");
            assert!(
                v - lo < width,
                "v {v} outside bucket {i} = [{lo}, {lo}+{width})"
            );
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn counters_gauges_and_histograms_record() {
        let registry = MetricsRegistry::new();
        let c = registry.register_counter(metric_names::SERVER_REQUESTS, &[("tag", "ping")]);
        c.inc();
        c.add(2);
        let again = registry.register_counter(metric_names::SERVER_REQUESTS, &[("tag", "ping")]);
        again.inc();
        assert_eq!(c.value(), 4, "registration is idempotent, cells shared");

        let g = registry.register_gauge(metric_names::SERVER_INFLIGHT_FRAMES, &[]);
        g.add(3);
        g.add(-1);
        assert_eq!(g.value(), 2);
        g.set(7);

        let h = registry.register_histogram(metric_names::SERVER_SERVE_TIME_US, &[("tag", "m")]);
        for v in [1, 1, 100, 5000] {
            h.record(v);
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter(metric_names::SERVER_REQUESTS, &[("tag", "ping")]),
            Some(4)
        );
        assert_eq!(
            snap.gauge(metric_names::SERVER_INFLIGHT_FRAMES, &[]),
            Some(7)
        );
        let hs = snap
            .histogram(metric_names::SERVER_SERVE_TIME_US, &[("tag", "m")])
            .unwrap();
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 5102);
        assert_eq!(hs.quantile(0.5), Some(1));
        let p100 = hs.quantile(1.0).unwrap();
        assert!((p100 as f64 - 5000.0).abs() / 5000.0 < 0.0625, "{p100}");
    }

    #[test]
    fn disabled_registry_is_a_no_op() {
        let registry = MetricsRegistry::disabled();
        assert!(!registry.is_enabled());
        let c = registry.register_counter(metric_names::SERVER_REQUESTS, &[]);
        c.inc();
        assert_eq!(c.value(), 0);
        let h = registry.register_histogram(metric_names::SERVER_SERVE_TIME_US, &[]);
        h.record(9);
        assert_eq!(h.count(), 0);
        assert_eq!(registry.snapshot(), MetricsSnapshot::default());
        assert!(registry.render_text().is_empty());
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        let registry = MetricsRegistry::new();
        registry
            .register_counter(metric_names::SERVER_REQUESTS, &[("tag", "match")])
            .add(5);
        registry
            .register_gauge(metric_names::REGISTRY_HOT_BYTES, &[])
            .set(4096);
        let h = registry.register_histogram(metric_names::SERVER_QUEUE_WAIT_US, &[]);
        h.record(3);
        h.record(200);
        let text = registry.render_text();
        assert!(
            text.contains("cm_server_requests_total{tag=\"match\"} 5"),
            "{text}"
        );
        assert!(text.contains("cm_registry_hot_bytes 4096"), "{text}");
        assert!(text.contains("cm_server_queue_wait_us_count 2"), "{text}");
        assert!(text.contains("cm_server_queue_wait_us_sum 203"), "{text}");
        assert!(text.contains("_bucket{le=\"+Inf\"} 2"), "{text}");
    }

    #[test]
    fn traces_separate_queue_wait_from_serve_time() {
        let mut t = Trace::begin();
        let mut u = Trace::begin();
        assert_ne!(t.id(), u.id(), "trace ids are process-unique");
        t.mark(Stage::Dequeued);
        std::thread::sleep(Duration::from_millis(2));
        t.mark(Stage::Decoded);
        t.mark(Stage::Matched);
        t.mark(Stage::Replied);
        let total = t.total().unwrap();
        let queue = t.queue_wait().unwrap();
        let serve = t.serve_time().unwrap();
        assert!(queue + serve <= total, "{queue:?} + {serve:?} > {total:?}");
        assert!(t.stage_summary().contains("matched_us="));
        u.mark(Stage::Dequeued);
        assert!(u.total().is_none(), "unreplied traces have no total");
    }

    #[test]
    fn snapshots_merge_histograms_exactly() {
        let registry = MetricsRegistry::new();
        let a = registry.register_histogram(metric_names::EXEC_RUN_TIME_US, &[("pool", "a")]);
        let b = registry.register_histogram(metric_names::EXEC_RUN_TIME_US, &[("pool", "b")]);
        for v in [1, 10, 100] {
            a.record(v);
        }
        for v in [10, 1000] {
            b.record(v);
        }
        let snap = registry.snapshot();
        let mut merged = snap
            .histogram(metric_names::EXEC_RUN_TIME_US, &[("pool", "a")])
            .unwrap()
            .clone();
        merged.merge(
            snap.histogram(metric_names::EXEC_RUN_TIME_US, &[("pool", "b")])
                .unwrap(),
        );
        assert_eq!(merged.count, 5);
        assert_eq!(merged.sum, 1121);
        assert_eq!(
            merged.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
            5,
            "bucket counts add"
        );
    }
}
