//! The metric-name registry: every name a `MetricsRegistry` in this
//! workspace registers, in one table.
//!
//! The `metric-names` lint rule (`cargo run -p cm_analyze`) parses this
//! module and enforces two invariants: no two constants here share a
//! value, and no `register_counter`/`register_gauge`/`register_histogram`
//! call anywhere else in the workspace passes a raw string literal — a
//! metric name that is not in this table does not exist. That keeps the
//! exposition namespace collision-free and makes the full catalog
//! greppable in one place (the README's "Observability" section is
//! generated from reading this file).
//!
//! Naming follows the Prometheus conventions: `cm_<layer>_<what>` with a
//! `_total` suffix on monotone counters, a `_us` suffix on microsecond
//! histograms, and plain nouns for gauges.

/// Time the reactor thread spent blocked in `epoll_wait`, µs per wait.
pub const REACTOR_EPOLL_WAIT_US: &str = "cm_reactor_epoll_wait_us";
/// Complete frames reassembled off connection sockets.
pub const REACTOR_FRAMES_ASSEMBLED: &str = "cm_reactor_frames_assembled_total";
/// Payload bytes read off connection sockets.
pub const REACTOR_BYTES_IN: &str = "cm_reactor_bytes_in_total";
/// Bytes written to connection sockets (including partial writes).
pub const REACTOR_BYTES_OUT: &str = "cm_reactor_bytes_out_total";
/// Bytes currently queued for write across all connections.
pub const REACTOR_WRITE_QUEUE_BYTES: &str = "cm_reactor_write_queue_bytes";
/// Connections accepted and admitted by the event loop.
pub const REACTOR_ACCEPTS: &str = "cm_reactor_accepts_total";
/// Connections rejected at the `max_open_sockets` cap.
pub const REACTOR_REJECTS: &str = "cm_reactor_rejects_total";
/// Connection closes, labeled `reason` with the [`CloseReason`] variant
/// (`peer_closed`, `violation`, `write_overflow`, `io`, `shutdown`,
/// `requested`).
///
/// [`CloseReason`]: https://docs.rs/cm_reactor
pub const REACTOR_CLOSES: &str = "cm_reactor_closes_total";

/// Jobs currently sitting in a worker pool's queue.
pub const EXEC_QUEUE_DEPTH: &str = "cm_exec_queue_depth";
/// Time a job waited in the pool queue before a worker picked it up, µs.
pub const EXEC_QUEUE_WAIT_US: &str = "cm_exec_queue_wait_us";
/// Time a job spent running on a worker, µs.
pub const EXEC_RUN_TIME_US: &str = "cm_exec_run_time_us";
/// Jobs that panicked on a worker (typed as `WorkerPanicked` upstream).
pub const EXEC_WORKER_PANICS: &str = "cm_exec_worker_panics_total";

/// Request frames answered, labeled `tag` with the request kind.
pub const SERVER_REQUESTS: &str = "cm_server_requests_total";
/// End-to-end per-frame latency (admitted → replied), µs, labeled `tag`.
pub const SERVER_REQUEST_LATENCY_US: &str = "cm_server_request_latency_us";
/// Queue wait per frame (admitted → dequeued by a pump worker), µs,
/// labeled `tag`.
pub const SERVER_QUEUE_WAIT_US: &str = "cm_server_queue_wait_us";
/// Serve time per frame (decoded → matched), µs, labeled `tag`.
pub const SERVER_SERVE_TIME_US: &str = "cm_server_serve_time_us";
/// Request frames currently admitted and not yet replied to.
pub const SERVER_INFLIGHT_FRAMES: &str = "cm_server_inflight_frames";
/// Typed `ServerBusy` rejections, labeled `cap` (`sockets` | `frames`).
pub const SERVER_BUSY_REJECTIONS: &str = "cm_server_busy_rejections_total";
/// Database upload payload bytes accepted from `LoadDatabase` chunks.
pub const SERVER_UPLOAD_BYTES: &str = "cm_server_upload_bytes_total";
/// Requests addressed to a tenant (match, stats, lifecycle), labeled
/// `tenant`.
pub const SERVER_TENANT_REQUESTS: &str = "cm_server_tenant_requests_total";
/// `Hom-Add` operations per match request — the CM-SW server's only
/// homomorphic work, so this histogram is its entire compute profile.
pub const SERVER_HOM_ADDS: &str = "cm_server_hom_adds";
/// `Hom-Add` operations executed since startup.
pub const SERVER_HOM_ADDS_TOTAL: &str = "cm_server_hom_adds_total";
/// `Hom-Add` throughput derived at snapshot time: adds since the previous
/// snapshot divided by the interval, with short intervals guarded (a
/// snapshot taken within the guard window keeps the previous value
/// instead of dividing by a near-zero denominator).
pub const SERVER_HOM_ADDS_PER_SEC: &str = "cm_server_hom_adds_per_sec";

/// Hot-tier databases demoted to the cold tier by budget pressure.
pub const REGISTRY_DEMOTIONS: &str = "cm_registry_demotions_total";
/// Cold databases rebuilt into the hot tier on demand.
pub const REGISTRY_REMATERIALIZATIONS: &str = "cm_registry_rematerializations_total";
/// Bytes of hot-tier databases currently charged to the registry.
pub const REGISTRY_HOT_BYTES: &str = "cm_registry_hot_bytes";
/// The configured host memory budget in bytes (-1 = unbounded).
pub const REGISTRY_MEMORY_BUDGET_BYTES: &str = "cm_registry_memory_budget_bytes";
/// Bytes of demoted databases resident as pages in the cold tier's
/// simulated flash (the master copies; no host-RAM duplicate exists).
pub const REGISTRY_COLD_BYTES: &str = "cm_registry_cold_bytes";
/// Flash program/erase cycles consumed by cold-tier lifecycle traffic
/// (demotion writes; re-materialization reads and in-flash searches are
/// wear-free).
pub const REGISTRY_FLASH_WEAR: &str = "cm_registry_flash_wear_total";
/// Match queries answered straight from the cold tier by a flash-native
/// (`ifp`) tenant, with no re-materialization. Monotone despite the
/// missing `_total` suffix — the name is pinned by the tiering design
/// docs.
pub const REGISTRY_COLD_HITS: &str = "cm_registry_cold_hits";
