//! Property tests for the histogram bucket geometry and merge algebra —
//! the CI `telemetry-smoke` job runs these in release mode.

use cm_telemetry::{
    bucket_index, bucket_lo, bucket_width, HistogramSample, MetricsRegistry, HISTOGRAM_BUCKETS,
};
use proptest::prelude::*;

fn sample_from(values: &[u64]) -> HistogramSample {
    let registry = MetricsRegistry::new();
    let h = registry.register_histogram(cm_telemetry::metric_names::EXEC_RUN_TIME_US, &[]);
    for &v in values {
        h.record(v);
    }
    registry
        .snapshot()
        .histogram(cm_telemetry::metric_names::EXEC_RUN_TIME_US, &[])
        .expect("just registered")
        .clone()
}

proptest! {
    #[test]
    fn bucket_index_is_monotone(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    #[test]
    fn every_value_lands_inside_its_bucket(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        let lo = bucket_lo(i);
        prop_assert!(lo <= v);
        prop_assert!(v - lo < bucket_width(i));
    }

    #[test]
    fn bucket_bounds_tile_the_axis(i in 0usize..HISTOGRAM_BUCKETS - 1) {
        // Bucket i's exclusive upper bound is bucket i+1's lower bound:
        // no gaps, no overlaps.
        prop_assert_eq!(bucket_lo(i) + bucket_width(i), bucket_lo(i + 1));
        // And the lower bound maps back to its own bucket.
        prop_assert_eq!(bucket_index(bucket_lo(i)), i);
    }

    #[test]
    fn quantile_estimate_is_within_the_bucket_half_width(
        mut values in prop::collection::vec(1u64..1_000_000_000, 1..64),
        q in 0.0f64..1.0,
    ) {
        let sample = sample_from(&values);
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
        let exact = values[rank];
        let estimate = sample.quantile(q).expect("non-empty") as f64;
        // Log2 octaves with 8 linear sub-buckets: relative bucket width
        // ≤ 12.5%, so the midpoint is within 6.25% of any member.
        prop_assert!(
            (estimate - exact as f64).abs() <= 0.0625 * exact as f64 + 0.5,
            "q={} estimate={} exact={}", q, estimate, exact
        );
    }

    #[test]
    fn merge_is_commutative(
        xs in prop::collection::vec(0u64..1_000_000, 0..32),
        ys in prop::collection::vec(0u64..1_000_000, 0..32),
    ) {
        let (a, b) = (sample_from(&xs), sample_from(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.count, ba.count);
        prop_assert_eq!(ab.sum, ba.sum);
        prop_assert_eq!(ab.buckets, ba.buckets);
    }

    #[test]
    fn merge_is_associative(
        xs in prop::collection::vec(0u64..1_000_000, 0..32),
        ys in prop::collection::vec(0u64..1_000_000, 0..32),
        zs in prop::collection::vec(0u64..1_000_000, 0..32),
    ) {
        let (a, b, c) = (sample_from(&xs), sample_from(&ys), sample_from(&zs));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left.buckets, &right.buckets);
        prop_assert_eq!(left.count, right.count);
        prop_assert_eq!(left.sum, right.sum);
        // And the merge equals recording the concatenation directly.
        let mut all = Vec::new();
        all.extend_from_slice(&xs);
        all.extend_from_slice(&ys);
        all.extend_from_slice(&zs);
        let direct = sample_from(&all);
        prop_assert_eq!(left.buckets, direct.buckets);
        prop_assert_eq!(left.count, direct.count);
        prop_assert_eq!(left.sum, direct.sum);
    }
}
