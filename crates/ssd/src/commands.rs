//! The host interface (paper §4.3.2 "System Interfaces").
//!
//! Conventional I/O reads and writes carry a 1-bit region flag; set, it
//! routes the request through the CIPHERMATCH region's vertical layout
//! (activating the transposition unit). `CM-search` carries the encrypted
//! query and triggers the `bop_add` µ-program.

use crate::ssd::{IfpReport, Ssd};

/// A host command as submitted over NVMe (§4.3.2 item 4).
#[derive(Debug, Clone)]
pub enum HostCommand {
    /// Conventional page read (`cm_flag = false`) or `CM-read` of a
    /// vertical group (`cm_flag = true`).
    Read {
        /// Logical page (conventional) or group index (CM region).
        address: u64,
        /// The 1-bit region flag.
        cm_flag: bool,
    },
    /// Conventional page write or `CM-write` of coefficient data.
    Write {
        /// Logical page (conventional only; CM writes append).
        address: u64,
        /// The 1-bit region flag.
        cm_flag: bool,
        /// Raw bytes (conventional) — ignored for CM writes.
        bytes: Vec<u8>,
        /// Coefficient words (CM region) — ignored for conventional.
        words: Vec<u32>,
    },
    /// `CM-search` with the encrypted query coefficient stream.
    CmSearch {
        /// One period of the encrypted query stream.
        query_words: Vec<u32>,
    },
}

/// A host command's completion.
#[derive(Debug, Clone)]
pub enum HostResponse {
    /// Conventional read data.
    Bytes(Vec<u8>),
    /// CM-read data (horizontal layout after reverse transposition).
    Words(Vec<u32>),
    /// Write acknowledged.
    Ack,
    /// CM-search result: coefficient sums plus the cost report.
    SearchResult {
        /// The Hom-Add output stream.
        sums: Vec<u32>,
        /// Flash-operation cost report.
        report: IfpReport,
    },
}

/// Dispatches a host command to the device.
pub fn submit(ssd: &mut Ssd, cmd: HostCommand) -> HostResponse {
    match cmd {
        HostCommand::Read {
            address,
            cm_flag: false,
        } => HostResponse::Bytes(ssd.read_page(address)),
        HostCommand::Read {
            address,
            cm_flag: true,
        } => HostResponse::Words(ssd.cm_read_group(address as usize)),
        HostCommand::Write {
            address,
            cm_flag: false,
            bytes,
            ..
        } => {
            ssd.write_page(address, &bytes);
            HostResponse::Ack
        }
        HostCommand::Write {
            cm_flag: true,
            words,
            ..
        } => {
            ssd.cm_write_words(&words);
            HostResponse::Ack
        }
        HostCommand::CmSearch { query_words } => {
            let (sums, report) = ssd.cm_search(&query_words);
            HostResponse::SearchResult { sums, report }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transpose::TransposeMode;
    use cm_flash::FlashGeometry;

    fn ssd() -> Ssd {
        Ssd::new(FlashGeometry::tiny_test(), TransposeMode::Software)
    }

    #[test]
    fn flag_routes_to_the_right_region() {
        let mut s = ssd();
        // Conventional write + read.
        let data = vec![7u8; 16];
        submit(
            &mut s,
            HostCommand::Write {
                address: 5,
                cm_flag: false,
                bytes: data.clone(),
                words: vec![],
            },
        );
        match submit(
            &mut s,
            HostCommand::Read {
                address: 5,
                cm_flag: false,
            },
        ) {
            HostResponse::Bytes(b) => assert_eq!(&b[..16], &data[..]),
            other => panic!("unexpected response {other:?}"),
        }
        // CM write + read through the flag.
        let words: Vec<u32> = (0..512u32).collect();
        submit(
            &mut s,
            HostCommand::Write {
                address: 0,
                cm_flag: true,
                bytes: vec![],
                words: words.clone(),
            },
        );
        match submit(
            &mut s,
            HostCommand::Read {
                address: 0,
                cm_flag: true,
            },
        ) {
            HostResponse::Words(w) => assert_eq!(w, words),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn cm_search_through_the_interface() {
        let mut s = ssd();
        let words: Vec<u32> = (0..512u32).map(|i| i * 11).collect();
        submit(
            &mut s,
            HostCommand::Write {
                address: 0,
                cm_flag: true,
                bytes: vec![],
                words: words.clone(),
            },
        );
        match submit(
            &mut s,
            HostCommand::CmSearch {
                query_words: vec![100],
            },
        ) {
            HostResponse::SearchResult { sums, report } => {
                assert_eq!(sums.len(), words.len());
                assert!(sums
                    .iter()
                    .zip(&words)
                    .all(|(&s, &w)| s == w.wrapping_add(100)));
                assert_eq!(report.ledger.wear(), 0);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn page_fault_latency_dominated_by_reads() {
        let mut s = ssd();
        let words: Vec<u32> = (0..512u32).map(|i| i ^ 0xAA).collect();
        s.cm_write_words(&words);
        let (got, latency) = s.handle_page_fault(0);
        assert_eq!(got, words);
        // 32 SLC reads at 22.5 us each.
        let reads = 32.0 * 22.5e-6;
        assert!((latency - reads).abs() / reads < 0.2, "latency {latency}");
    }

    #[test]
    fn dirty_writeback_roundtrip() {
        let mut s = ssd();
        let words: Vec<u32> = (0..512u32).collect();
        s.cm_write_words(&words);
        let modified: Vec<u32> = words.iter().map(|&w| w + 1).collect();
        let latency = s.handle_dirty_writeback(0, &modified);
        assert!(latency > 0.0);
        assert_eq!(s.cm_read_group(0), modified);
    }
}
