//! The end-to-end CM-IFP pipeline (paper Fig. 6).
//!
//! ① the client prepares the encrypted query, ② sends it to the server,
//! ③ the server forwards it to the SSD and triggers the `bop_add`
//! µ-program, ④ the flash array executes the homomorphic additions with
//! array- and bit-level parallelism, ⑤ the controller's index-generation
//! unit locates matches, ⑥ the AES-encrypted index list returns to the
//! client.
//!
//! The pipeline is bit-exact: the in-flash adder output is reassembled
//! into BFV ciphertexts and must decrypt to the same sums CM-SW computes
//! (enforced by the integration tests). This requires the power-of-two
//! modulus parameters ([`cm_bfv::BfvParams::ciphermatch_ifp_1024`]), under
//! which wrapping 32-bit addition *is* `Hom-Add`.

use cm_bfv::{BfvContext, Ciphertext};
use cm_core::{EncryptedDatabase, EncryptedQuery, SearchResult, TrustedIndexGenerator};
use cm_flash::FlashGeometry;
use cm_hemath::Poly;

use crate::ssd::{IfpReport, Ssd};
use crate::transpose::TransposeMode;

/// Serializes ciphertexts into the flat `u32` coefficient stream stored in
/// the CIPHERMATCH region (`c0` coefficients then `c1`, per ciphertext).
fn ct_stream(cts: &[Ciphertext]) -> Vec<u32> {
    let mut words = Vec::new();
    for ct in cts {
        assert_eq!(ct.size(), 2, "only fresh (size-2) ciphertexts are stored");
        for part in ct.parts() {
            words.extend(part.coeffs().iter().map(|&c| {
                debug_assert!(c < (1 << 32), "coefficient exceeds 32 bits");
                c as u32
            }));
        }
    }
    words
}

/// Rebuilds ciphertexts from a flat coefficient stream.
fn stream_to_cts(words: &[u32], n: usize) -> Vec<Ciphertext> {
    assert_eq!(words.len() % (2 * n), 0, "stream is not ciphertext-aligned");
    words
        .chunks(2 * n)
        .map(|chunk| {
            let c0 = Poly::from_coeffs(chunk[..n].iter().map(|&w| w as u64).collect());
            let c1 = Poly::from_coeffs(chunk[n..].iter().map(|&w| w as u64).collect());
            Ciphertext::from_parts(vec![c0, c1])
        })
        .collect()
}

/// The CM-IFP server: an SSD whose CIPHERMATCH region holds the encrypted
/// database.
pub struct CmIfpServer {
    ssd: Ssd,
    ctx: BfvContext,
    total_bits: usize,
    poly_count: usize,
    stream_words: usize,
}

impl std::fmt::Debug for CmIfpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CmIfpServer")
            .field("params", &self.ctx.params().name)
            .field("polys", &self.poly_count)
            .finish()
    }
}

impl CmIfpServer {
    /// Stores an encrypted database in a fresh SSD.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext modulus exceeds 32 bits (the adder width)
    /// or is not `2^32` (wrapping addition must equal `Hom-Add`).
    pub fn new(
        ctx: &BfvContext,
        geometry: FlashGeometry,
        mode: TransposeMode,
        db: &EncryptedDatabase,
    ) -> Self {
        assert_eq!(
            ctx.params().q,
            1 << 32,
            "CM-IFP needs q = 2^32 (use BfvParams::ciphermatch_ifp_1024)"
        );
        let mut ssd = Ssd::new(geometry, mode);
        let mut stream = ct_stream(db.ciphertexts());
        let stream_words = stream.len();
        // Pad the stream to group granularity (zero ciphertext words).
        let bitlines = ssd.geometry().page_bits();
        let padded = stream_words.div_ceil(bitlines) * bitlines;
        stream.resize(padded, 0);
        ssd.cm_write_words(&stream);
        Self {
            ssd,
            ctx: ctx.clone(),
            total_bits: db.total_bits(),
            poly_count: db.poly_count(),
            stream_words,
        }
    }

    /// Access to the underlying SSD (for ledger inspection).
    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    /// Mutable access to the underlying SSD (fault injection, maintenance
    /// paths like page faults and writebacks).
    pub fn ssd_mut(&mut self) -> &mut Ssd {
        &mut self.ssd
    }

    /// Reads the stored database back out of the flash array (`CM-read`
    /// over every group, reverse transposition, stream reassembly) — the
    /// honest export path: the device is the master copy, so serializing
    /// the database means reading flash, not returning a cached host copy.
    /// Reads are wear-free.
    pub fn export_database(&mut self) -> EncryptedDatabase {
        let n = self.ctx.params().n;
        let bitlines = self.ssd.geometry().page_bits();
        let groups = self.stream_words.div_ceil(bitlines);
        let mut words = Vec::with_capacity(groups * bitlines);
        for g in 0..groups {
            words.extend(self.ssd.cm_read_group(g));
        }
        words.truncate(self.stream_words);
        EncryptedDatabase::from_ciphertexts(stream_to_cts(&words, n), self.total_bits)
    }

    /// `u32` coefficients a database occupies in the CIPHERMATCH region
    /// (before group padding): two polynomials of `n` coefficients per
    /// ciphertext.
    pub fn required_words(db: &EncryptedDatabase, n: usize) -> usize {
        db.poly_count() * 2 * n
    }

    /// Runs the in-flash search for every query variant, returning the
    /// reassembled search result and the accumulated cost report.
    pub fn search(&mut self, query: &EncryptedQuery) -> (SearchResult, Vec<IfpReport>) {
        let n = self.ctx.params().n;
        let mut per_variant = Vec::new();
        let mut reports = Vec::new();
        for (r, phase, ct) in query.variant_cts() {
            let qstream = ct_stream(std::slice::from_ref(ct));
            let (sums, report) = self.ssd.cm_search(&qstream);
            let cts = stream_to_cts(&sums[..self.stream_words], n);
            assert_eq!(cts.len(), self.poly_count);
            per_variant.push(((r, phase), cts));
            reports.push(report);
        }
        let result = SearchResult::from_raw(
            per_variant,
            self.total_bits,
            query.k(),
            query.classes().to_vec(),
        );
        (result, reports)
    }

    /// Full `CM-search` command: in-flash additions + controller index
    /// generation (paper trust model), returning matching bit offsets.
    pub fn cm_search_command(
        &mut self,
        query: &EncryptedQuery,
        index_gen: &TrustedIndexGenerator,
    ) -> (Vec<usize>, Vec<IfpReport>) {
        let (result, reports) = self.search(query);
        (index_gen.generate(&result), reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_bfv::{BfvParams, Decryptor, Encryptor, KeyGenerator};
    use cm_core::{BitString, CiphermatchEngine};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stream_roundtrip() {
        let n = 4;
        let c0 = Poly::from_coeffs(vec![1, 2, 3, 4]);
        let c1 = Poly::from_coeffs(vec![5, 6, 7, 8]);
        let ct = Ciphertext::from_parts(vec![c0, c1]);
        let words = ct_stream(std::slice::from_ref(&ct));
        assert_eq!(words, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(stream_to_cts(&words, n), vec![ct]);
    }

    #[test]
    fn ifp_search_equals_software_search() {
        let ctx = BfvContext::new(BfvParams::insecure_test_pow2());
        let mut rng = StdRng::seed_from_u64(2025);
        let (sk, pk) = {
            let kg = KeyGenerator::new(&ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        let enc = Encryptor::new(&ctx, pk);
        let dec = Decryptor::new(&ctx, sk.clone());
        let mut engine = CiphermatchEngine::new(&ctx);

        let data = BitString::from_ascii("in flash processing equals software");
        let db = engine.encrypt_database(&enc, &data, &mut rng);
        let pattern = BitString::from_ascii("flash");
        let query = engine.prepare_query(&enc, &pattern, &mut rng);

        // Software result.
        let sw_result = engine.search(&db, &query);
        let sw_indices = engine.generate_indices(&dec, &sw_result);

        // In-flash result.
        let mut server = CmIfpServer::new(
            &ctx,
            FlashGeometry::tiny_test(),
            TransposeMode::Software,
            &db,
        );
        let (ifp_result, reports) = server.search(&query);
        let ifp_indices = engine.generate_indices(&dec, &ifp_result);

        assert_eq!(ifp_indices, sw_indices);
        assert_eq!(ifp_indices, data.find_all(&pattern));
        assert!(reports.iter().all(|r| r.ledger.wear() == 0));
        // The raw hom-add outputs must be bit-identical, not just
        // decrypt-identical.
        assert_eq!(ifp_result, sw_result);
    }

    #[test]
    fn export_reads_the_database_back_from_flash() {
        let ctx = BfvContext::new(BfvParams::insecure_test_pow2());
        let mut rng = StdRng::seed_from_u64(77);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let pk = kg.public_key(&mut rng);
        let enc = Encryptor::new(&ctx, pk);
        let engine = CiphermatchEngine::new(&ctx);
        let data = BitString::from_ascii("round trip through the array");
        let db = engine.encrypt_database(&enc, &data, &mut rng);

        let mut server = CmIfpServer::new(
            &ctx,
            FlashGeometry::tiny_test(),
            TransposeMode::Software,
            &db,
        );
        let wear_before = server.ssd().ledger().wear();
        let exported = server.export_database();
        assert_eq!(server.ssd().ledger().wear(), wear_before);
        assert_eq!(exported.total_bits(), db.total_bits());
        assert_eq!(exported.poly_count(), db.poly_count());
        let q_bits = 64 - ctx.params().q.leading_zeros();
        assert_eq!(
            exported.encode(q_bits),
            db.encode(q_bits),
            "flash read-back must be bit-identical to the original"
        );
    }
}
