//! The SSD device model: flash array + FTL + controller units.
//!
//! Implements the host-visible commands of §4.3.2: conventional
//! `read`/`write`, the vertical-layout `CM-read`/`CM-write` (which run the
//! transposition unit), and `CM-search` (which drives the `bop_add`
//! µ-program across every allocated group and returns the coefficient-wise
//! sums to the index-generation unit).

use cm_flash::{
    bop_add, FlashArray, FlashEnergy, FlashGeometry, FlashLedger, FlashTimings, PageAddr,
};

use crate::ftl::{Ftl, GroupAddr, GROUP_WORDLINES};
use crate::transpose::{TransposeMode, TranspositionUnit};

/// SSD controller characteristics (Table 3: 5x ARM Cortex-R5 @ 1.5 GHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerModel {
    /// Number of controller cores.
    pub cores: usize,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Index-generation latency per result page (paper §4.3.2: 3.42 µs,
    /// overlappable with flash reads).
    pub index_gen_per_page: f64,
}

impl ControllerModel {
    /// Table 3 values.
    pub fn paper_default() -> Self {
        Self {
            cores: 5,
            clock_hz: 1.5e9,
            index_gen_per_page: 3.42e-6,
        }
    }
}

/// Cost report for one `CM-search` invocation.
#[derive(Debug, Clone, Copy)]
pub struct IfpReport {
    /// Primitive-op deltas incurred by this search.
    pub ledger: FlashLedger,
    /// `bop_add` invocations (group × variant granularity).
    pub bop_adds: u64,
    /// Controller transposition busy time (seconds).
    pub transpose_time: f64,
}

impl IfpReport {
    /// Paper-model execution time (Eq. 9): every `bop_add` costs
    /// `32 × T_bit_add`, with all planes computing in parallel.
    pub fn time_eq9(&self, geometry: &FlashGeometry, timings: &FlashTimings) -> f64 {
        let rounds = (self.bop_adds as f64 / geometry.total_planes() as f64).ceil();
        rounds * GROUP_WORDLINES as f64 * timings.t_bit_add()
    }

    /// Execution time with per-channel DMA serialization: each bit-step
    /// needs 2 page DMAs per plane and the dies on a channel share the bus,
    /// so the per-bit cost is `max(T_bop_add, planes/channel × 2 × T_DMA)`.
    pub fn time_with_channel_contention(
        &self,
        geometry: &FlashGeometry,
        timings: &FlashTimings,
    ) -> f64 {
        let rounds = (self.bop_adds as f64 / geometry.total_planes() as f64).ceil();
        let dma_per_bit = geometry.planes_per_channel() as f64 * 2.0 * timings.t_dma;
        let per_bit = timings.t_bop_add().max(dma_per_bit);
        rounds * GROUP_WORDLINES as f64 * per_bit
    }

    /// Energy from the op ledger (Eq. 11 components).
    pub fn energy(&self, geometry: &FlashGeometry, energy: &FlashEnergy) -> f64 {
        let page_kb = geometry.page_bytes as f64 / 1024.0;
        let idx = self.ledger.dmas as f64 / 2.0 * energy.e_index_gen_per_page;
        self.ledger.energy(energy, page_kb) + idx
    }
}

/// The SSD device.
#[derive(Debug)]
pub struct Ssd {
    flash: FlashArray,
    ftl: Ftl,
    transpose: TranspositionUnit,
    timings: FlashTimings,
    energy: FlashEnergy,
    controller: ControllerModel,
    stored_words: usize,
}

impl Ssd {
    /// Creates an SSD with the given geometry and transposition mode,
    /// reserving the first quarter of each plane's blocks for the
    /// conventional region.
    pub fn new(geometry: FlashGeometry, mode: TransposeMode) -> Self {
        let reserve = (geometry.blocks_per_plane / 4).max(1);
        Self {
            flash: FlashArray::new(geometry.clone()),
            ftl: Ftl::new(geometry, reserve),
            transpose: TranspositionUnit::new(mode),
            timings: FlashTimings::paper_default(),
            energy: FlashEnergy::paper_default(),
            controller: ControllerModel::paper_default(),
            stored_words: 0,
        }
    }

    /// The flash geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        self.ftl.geometry()
    }

    /// The timing constants in effect.
    pub fn timings(&self) -> &FlashTimings {
        &self.timings
    }

    /// The energy constants in effect.
    pub fn energy_model(&self) -> &FlashEnergy {
        &self.energy
    }

    /// The controller model.
    pub fn controller(&self) -> &ControllerModel {
        &self.controller
    }

    /// Lifetime primitive-op ledger of the flash array (reads, programs,
    /// erases, …). `ledger().wear()` is the device's cumulative wear.
    pub fn ledger(&self) -> FlashLedger {
        self.flash.ledger()
    }

    /// Total conventional-region capacity in pages.
    pub fn conventional_capacity(&self) -> usize {
        self.ftl.conventional_capacity()
    }

    /// Conventional pages mapped so far (never reclaimed; fresh logical
    /// pages allocate past this high-water mark).
    pub fn conventional_in_use(&self) -> usize {
        self.ftl.conventional_in_use()
    }

    /// `u32` coefficient capacity of the CIPHERMATCH region for a geometry
    /// under the reservation policy [`Self::new`] applies, without building
    /// a device. Each group stores one coefficient per bitline.
    pub fn cm_capacity_words(geometry: &FlashGeometry) -> usize {
        let reserve = (geometry.blocks_per_plane / 4).max(1);
        let groups_per_plane = (geometry.blocks_per_plane - reserve)
            * (geometry.wordlines_per_block / GROUP_WORDLINES);
        groups_per_plane * geometry.total_planes() * geometry.page_bits()
    }

    /// Conventional write: horizontal layout, page granularity.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the page size.
    pub fn write_page(&mut self, lpn: u64, data: &[u8]) {
        let page_bytes = self.ftl.geometry().page_bytes;
        assert!(data.len() <= page_bytes, "data exceeds page size");
        let addr = self.ftl.map_conventional(lpn);
        let mut bits = vec![false; page_bytes * 8];
        for (i, &byte) in data.iter().enumerate() {
            for b in 0..8 {
                bits[i * 8 + b] = (byte >> (7 - b)) & 1 == 1;
            }
        }
        self.flash
            .program_page(addr, cm_flash::BitBuf::from_bits(&bits));
    }

    /// Conventional read.
    ///
    /// # Panics
    ///
    /// Panics if the logical page was never written.
    pub fn read_page(&mut self, lpn: u64) -> Vec<u8> {
        let addr = self
            .ftl
            .lookup_conventional(lpn)
            .expect("unmapped logical page");
        let buf = self.flash.read_page(addr);
        let mut out = vec![0u8; buf.len() / 8];
        for (i, byte) in out.iter_mut().enumerate() {
            for b in 0..8 {
                if buf.get(i * 8 + b) {
                    *byte |= 1 << (7 - b);
                }
            }
        }
        out
    }

    /// `CM-write`: appends `u32` coefficients to the CIPHERMATCH region in
    /// vertical layout (transpose + program 32 wordlines per group).
    /// Returns the groups written.
    pub fn cm_write_words(&mut self, words: &[u32]) -> Vec<GroupAddr> {
        let bitlines = self.ftl.geometry().page_bits();
        assert_eq!(
            self.stored_words % bitlines,
            0,
            "cm_write_words must append at group granularity; pad the stream"
        );
        let mut groups = Vec::new();
        for chunk in words.chunks(bitlines) {
            let mut padded = chunk.to_vec();
            padded.resize(bitlines, 0);
            let planes = self.transpose.to_vertical(&padded, GROUP_WORDLINES);
            let group = self.ftl.allocate_group();
            for (b, page) in planes.into_iter().enumerate() {
                self.flash.program_page(
                    PageAddr {
                        plane: group.plane,
                        block: group.block,
                        wordline: group.wl_base + b,
                    },
                    page,
                );
            }
            groups.push(group);
        }
        self.stored_words += words.len();
        groups
    }

    /// `CM-read`: reads group `idx` back in horizontal layout (the page
    /// fault path of §4.3.2 — 32 wordline reads + reverse transposition).
    pub fn cm_read_group(&mut self, idx: usize) -> Vec<u32> {
        let group = self.ftl.groups()[idx];
        let planes: Vec<_> = (0..GROUP_WORDLINES)
            .map(|b| {
                self.flash.read_page(PageAddr {
                    plane: group.plane,
                    block: group.block,
                    wordline: group.wl_base + b,
                })
            })
            .collect();
        self.transpose.to_horizontal(&planes)
    }

    /// Number of `u32` coefficients stored in the CIPHERMATCH region.
    pub fn stored_words(&self) -> usize {
        self.stored_words
    }

    /// Page-fault service from the CIPHERMATCH region (§4.3.2 item 2):
    /// the host touched vertical-layout data, so the controller reads all
    /// 32 wordlines of the group and transposes back. Returns the data and
    /// the modeled latency — the reads dominate; software transposition
    /// overlaps with them (the paper's pipelining argument).
    pub fn handle_page_fault(&mut self, group_idx: usize) -> (Vec<u32>, f64) {
        let words = self.cm_read_group(group_idx);
        let read_time = GROUP_WORDLINES as f64 * self.timings.t_read_slc;
        let transpose_time =
            self.transpose.mode().latency_per_4kb() * (words.len() * 4) as f64 / 4096.0;
        // Transposition pipelines behind the flash reads; only the excess
        // (if any — e.g. Z-NAND-class reads) shows up.
        let latency = read_time + (transpose_time - read_time).max(0.0);
        (words, latency)
    }

    /// Dirty-writeback service (§4.3.2 item 3): the host evicted modified
    /// CIPHERMATCH data; the controller transposes it back to the vertical
    /// layout and programs the group asynchronously. Returns the modeled
    /// (asynchronous) latency.
    ///
    /// # Panics
    ///
    /// Panics if the group index is unknown or the data is not exactly one
    /// group wide.
    pub fn handle_dirty_writeback(&mut self, group_idx: usize, words: &[u32]) -> f64 {
        let bitlines = self.ftl.geometry().page_bits();
        assert_eq!(words.len(), bitlines, "writeback must cover one group");
        let group = self.ftl.groups()[group_idx];
        let planes = self.transpose.to_vertical(words, GROUP_WORDLINES);
        for (b, page) in planes.into_iter().enumerate() {
            self.flash.program_page(
                PageAddr {
                    plane: group.plane,
                    block: group.block,
                    wordline: group.wl_base + b,
                },
                page,
            );
        }
        // Asynchronous: the host does not wait; we report the busy time.
        self.transpose.mode().latency_per_4kb() * (words.len() * 4) as f64 / 4096.0
    }

    /// `CM-search`: homomorphically adds the (periodic) query coefficient
    /// stream to every stored coefficient using in-flash bit-serial
    /// addition, returning the sums and a cost report.
    ///
    /// `query_words` is one period of the encrypted query stream (the
    /// paper's replicated query polynomial pair); the stream tiles across
    /// the stored coefficients.
    ///
    /// # Panics
    ///
    /// Panics if the query is empty or nothing is stored.
    pub fn cm_search(&mut self, query_words: &[u32]) -> (Vec<u32>, IfpReport) {
        assert!(!query_words.is_empty(), "empty query stream");
        assert!(self.stored_words > 0, "no CIPHERMATCH data stored");
        let bitlines = self.ftl.geometry().page_bits();
        let ledger_before = self.flash.ledger();
        let transpose_before = self.transpose.busy_time();
        let qlen = query_words.len();

        let groups: Vec<GroupAddr> = self.ftl.groups().to_vec();
        let mut sums = Vec::with_capacity(self.stored_words);
        let mut bop_adds = 0u64;
        for (g, group) in groups.iter().enumerate() {
            // Build the query bit-planes for this group's bitline window.
            let offset = g * bitlines;
            if offset >= self.stored_words {
                break;
            }
            let window: Vec<u32> = (0..bitlines)
                .map(|l| query_words[(offset + l) % qlen])
                .collect();
            let b_planes = self.transpose.to_vertical(&window, GROUP_WORDLINES);
            let sum_planes = bop_add(
                &mut self.flash,
                group.plane,
                group.block,
                group.wl_base,
                &b_planes,
            );
            bop_adds += 1;
            let words = self.transpose.to_horizontal(&sum_planes);
            let take = bitlines.min(self.stored_words - offset);
            sums.extend_from_slice(&words[..take]);
        }

        let ledger_after = self.flash.ledger();
        let report = IfpReport {
            ledger: FlashLedger {
                reads: ledger_after.reads - ledger_before.reads,
                latch_transfers: ledger_after.latch_transfers - ledger_before.latch_transfers,
                and_or_ops: ledger_after.and_or_ops - ledger_before.and_or_ops,
                xor_ops: ledger_after.xor_ops - ledger_before.xor_ops,
                dmas: ledger_after.dmas - ledger_before.dmas,
                programs: ledger_after.programs - ledger_before.programs,
                erases: ledger_after.erases - ledger_before.erases,
            },
            bop_adds,
            transpose_time: self.transpose.busy_time() - transpose_before,
        };
        (sums, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ssd() -> Ssd {
        Ssd::new(FlashGeometry::tiny_test(), TransposeMode::Software)
    }

    #[test]
    fn capacity_accessors_match_the_reservation_policy() {
        let geom = FlashGeometry::tiny_test();
        // tiny_test: 1 reserved block/plane, 3 CM blocks x 2 groups x 8
        // planes x 512 bitlines.
        assert_eq!(Ssd::cm_capacity_words(&geom), 48 * 512);
        let mut s = ssd();
        assert_eq!(s.conventional_capacity(), 64 * 8);
        assert_eq!(s.conventional_in_use(), 0);
        s.write_page(9, &[1, 2, 3]);
        assert_eq!(s.conventional_in_use(), 1);
        assert_eq!(s.ledger().programs, 1);
    }

    #[test]
    fn conventional_write_read_roundtrip() {
        let mut s = ssd();
        let data: Vec<u8> = (0..64u8).collect();
        s.write_page(3, &data);
        assert_eq!(s.read_page(3), data);
    }

    #[test]
    fn cm_write_read_roundtrip() {
        let mut s = ssd();
        let bitlines = 64 * 8;
        let mut rng = StdRng::seed_from_u64(11);
        let words: Vec<u32> = (0..bitlines).map(|_| rng.gen()).collect();
        let groups = s.cm_write_words(&words);
        assert_eq!(groups.len(), 1);
        assert_eq!(s.cm_read_group(0), words);
    }

    #[test]
    fn cm_search_adds_query_to_every_word() {
        let mut s = ssd();
        let bitlines = 64 * 8; // 512 bitlines per page
        let mut rng = StdRng::seed_from_u64(12);
        // Two groups of data, query period 128 words.
        let words: Vec<u32> = (0..2 * bitlines).map(|_| rng.gen()).collect();
        s.cm_write_words(&words);
        let query: Vec<u32> = (0..128).map(|_| rng.gen()).collect();
        let (sums, report) = s.cm_search(&query);
        assert_eq!(sums.len(), words.len());
        for (i, (&sum, &w)) in sums.iter().zip(&words).enumerate() {
            assert_eq!(sum, w.wrapping_add(query[i % 128]), "word {i}");
        }
        assert_eq!(report.bop_adds, 2);
        assert_eq!(report.ledger.wear(), 0, "search must not wear the flash");
        assert!(report.transpose_time > 0.0);
    }

    #[test]
    fn partial_last_group_is_truncated() {
        let mut s = ssd();
        let bitlines = 64 * 8;
        let words: Vec<u32> = (0..bitlines + 100).map(|i| i as u32).collect();
        // Pad the stream to group granularity before appending.
        let mut padded = words.clone();
        padded.resize(2 * bitlines, 0);
        s.cm_write_words(&padded);
        let (sums, _) = s.cm_search(&[5u32]);
        assert_eq!(sums.len(), 2 * bitlines);
        assert_eq!(sums[0], 5);
        assert_eq!(sums[bitlines + 99], words[bitlines + 99].wrapping_add(5));
    }

    #[test]
    fn report_times_are_consistent() {
        let mut s = ssd();
        let bitlines = 64 * 8;
        let words: Vec<u32> = (0..4 * bitlines).map(|i| i as u32 * 3).collect();
        s.cm_write_words(&words);
        let (_, report) = s.cm_search(&[1u32, 2, 3, 4]);
        let geom = FlashGeometry::tiny_test();
        let t = FlashTimings::paper_default();
        let eq9 = report.time_eq9(&geom, &t);
        let contended = report.time_with_channel_contention(&geom, &t);
        assert!(eq9 > 0.0);
        assert!(
            contended >= eq9 * 0.3,
            "contention model should be same order"
        );
        let e = FlashEnergy::paper_default();
        assert!(report.energy(&geom, &e) > 0.0);
    }
}
