//! Secure index transmission (paper §7.2).
//!
//! The SSD encrypts the match-index list with its hardware AES-256 engine
//! before it crosses untrusted channels; the AES key itself was delivered
//! to the client in an offline step (wrapped under public-key encryption
//! in the paper — here the key is provisioned out of band). The synthesis
//! estimate for the 22 nm engine is 12.6 ns per 16-byte block.

use cm_aes::Aes;

/// Latency of the hardware AES engine per 16-byte block (§7.2).
pub const AES_BLOCK_LATENCY: f64 = 12.6e-9;

/// Area of the hardware AES engine in mm² (§7.2).
pub const AES_AREA_MM2: f64 = 0.13;

/// The SSD-side index encryption engine.
#[derive(Debug, Clone)]
pub struct SecureIndexChannel {
    aes: Aes,
}

impl SecureIndexChannel {
    /// Provisions the channel with a 256-bit key.
    pub fn new(key: &[u8; 32]) -> Self {
        Self {
            aes: Aes::new_256(key),
        }
    }

    /// Serializes and encrypts a match-index list. Returns the ciphertext
    /// and the modeled hardware latency.
    pub fn seal(&self, indices: &[usize], nonce: u64) -> (Vec<u8>, f64) {
        let mut bytes = Vec::with_capacity(8 + indices.len() * 8);
        bytes.extend_from_slice(&(indices.len() as u64).to_le_bytes());
        for &i in indices {
            bytes.extend_from_slice(&(i as u64).to_le_bytes());
        }
        self.aes.ctr_apply(nonce, &mut bytes);
        let blocks = bytes.len().div_ceil(16) as f64;
        (bytes, blocks * AES_BLOCK_LATENCY)
    }

    /// Decrypts and deserializes a sealed index list (client side).
    ///
    /// # Panics
    ///
    /// Panics on malformed input.
    pub fn open(&self, sealed: &[u8], nonce: u64) -> Vec<usize> {
        let mut bytes = sealed.to_vec();
        self.aes.ctr_apply(nonce, &mut bytes);
        assert!(bytes.len() >= 8, "sealed index list too short");
        let count = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
        assert!(bytes.len() >= 8 + count * 8, "sealed index list truncated");
        (0..count)
            .map(|i| u64::from_le_bytes(bytes[8 + i * 8..16 + i * 8].try_into().unwrap()) as usize)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        let chan = SecureIndexChannel::new(&[0x5A; 32]);
        let indices = vec![0usize, 17, 65535, 1 << 40];
        let (sealed, latency) = chan.seal(&indices, 42);
        assert!(latency > 0.0);
        assert_eq!(chan.open(&sealed, 42), indices);
    }

    #[test]
    fn ciphertext_hides_indices() {
        let chan = SecureIndexChannel::new(&[1; 32]);
        let (sealed, _) = chan.seal(&[1234], 7);
        // The raw little-endian index must not appear in the ciphertext.
        let needle = 1234u64.to_le_bytes();
        assert!(!sealed.windows(8).any(|w| w == needle));
    }

    #[test]
    fn wrong_nonce_fails_to_recover() {
        let chan = SecureIndexChannel::new(&[2; 32]);
        let indices = vec![5usize, 6, 7];
        let (sealed, _) = chan.seal(&indices, 1);
        let result = std::panic::catch_unwind(|| chan.open(&sealed, 2));
        // Either panics on a garbage length or returns wrong data.
        if let Ok(got) = result {
            assert_ne!(got, indices);
        }
    }

    #[test]
    fn latency_scales_with_blocks() {
        let chan = SecureIndexChannel::new(&[3; 32]);
        let (_, t_small) = chan.seal(&[1], 0);
        let many: Vec<usize> = (0..1000).collect();
        let (_, t_large) = chan.seal(&many, 0);
        assert!(t_large > 100.0 * t_small);
    }
}
