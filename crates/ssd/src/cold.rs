//! The cold tier's master-copy store: serialized databases as pages in
//! the conventional region of a simulated [`Ssd`].
//!
//! A server that demotes a tenant under memory pressure hands the encoded
//! database here and drops its host-RAM copy — after [`ColdStore::put`]
//! the *only* copy is flash pages behind the FTL, which is the paper's
//! placement model (the accelerator owns the data; the host only manages
//! placement). [`ColdStore::get`] reads a blob back page by page for
//! re-materialization; [`ColdStore::remove`] recycles its logical pages
//! for later writes (the FTL never reclaims mappings, but re-programming
//! a mapped page is legal in the flash model and is how the store reuses
//! space).
//!
//! Every operation reports the flash cost it incurred: `put` wears the
//! array by one program per page written, `get` is wear-free (reads do
//! not consume program/erase cycles), and both move exactly the blob's
//! bytes. Callers charge these into the owning tenant's accounting so
//! demotion traffic is visible in the same ledger as search traffic.

use cm_core::MatchError;
use cm_flash::FlashGeometry;

use crate::ssd::Ssd;
use crate::transpose::TransposeMode;

/// Handle to one blob stored in the cold tier. Opaque to callers: it
/// names the logical pages holding the bytes and must be given back to
/// the same [`ColdStore`] that issued it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColdSlot {
    lpns: Vec<u64>,
    len: usize,
}

impl ColdSlot {
    /// Stored blob length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slot holds an empty blob.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of flash pages backing the blob.
    pub fn pages(&self) -> usize {
        self.lpns.len()
    }
}

/// Flash cost of one [`ColdStore::put`].
#[derive(Debug)]
pub struct ColdWrite {
    /// Where the blob now lives.
    pub slot: ColdSlot,
    /// Program/erase cycles consumed (one program per page written).
    pub flash_wear: u64,
    /// Bytes moved host → flash (the blob length).
    pub bytes_moved: u64,
}

/// Result and flash cost of one [`ColdStore::get`].
#[derive(Debug)]
pub struct ColdRead {
    /// The blob, exactly as stored.
    pub bytes: Vec<u8>,
    /// Program/erase cycles consumed (reads are wear-free, so this is 0
    /// unless the flash model changes).
    pub flash_wear: u64,
    /// Bytes moved flash → host (the blob length).
    pub bytes_moved: u64,
}

/// Blob store over the conventional region of an owned [`Ssd`].
#[derive(Debug)]
pub struct ColdStore {
    ssd: Ssd,
    /// Logical pages of removed blobs, available for reuse before fresh
    /// pages are allocated past the high-water mark.
    free: Vec<u64>,
    next_lpn: u64,
    stored_bytes: u64,
}

impl ColdStore {
    /// A store over a fresh device with the given geometry.
    pub fn new(geometry: FlashGeometry, mode: TransposeMode) -> Self {
        Self {
            ssd: Ssd::new(geometry, mode),
            free: Vec::new(),
            next_lpn: 0,
            stored_bytes: 0,
        }
    }

    /// A store over [`Self::default_geometry`].
    pub fn with_default_geometry() -> Self {
        Self::new(Self::default_geometry(), TransposeMode::Software)
    }

    /// A cold-tier geometry with ~16 MiB of conventional capacity
    /// (4 ch × 2 die × 2 plane, 64 blocks/plane with a quarter reserved,
    /// 1 KiB pages) — roomy enough for a registry's worth of demoted test
    /// databases while keeping the page count small.
    pub fn default_geometry() -> FlashGeometry {
        FlashGeometry {
            channels: 4,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 64,
            wordlines_per_block: 64,
            page_bytes: 1024,
        }
    }

    /// Page size of the backing device in bytes.
    pub fn page_bytes(&self) -> usize {
        self.ssd.geometry().page_bytes
    }

    /// Conventional-region capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.ssd.conventional_capacity() * self.page_bytes()) as u64
    }

    /// Total bytes of live blobs.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Cumulative device wear (program + erase cycles) since creation.
    pub fn device_wear(&self) -> u64 {
        self.ssd.ledger().wear()
    }

    /// Writes a blob to flash, page by page, and returns its slot plus the
    /// flash cost. Fails with [`MatchError::QuotaExceeded`] when the
    /// conventional region cannot hold it — the caller keeps its host copy
    /// in that case, so the failure is clean.
    pub fn put(&mut self, bytes: &[u8]) -> Result<ColdWrite, MatchError> {
        let page_bytes = self.page_bytes();
        let pages_needed = bytes.len().div_ceil(page_bytes);
        let fresh_needed = pages_needed.saturating_sub(self.free.len());
        let headroom = self
            .ssd
            .conventional_capacity()
            .saturating_sub(self.next_lpn as usize);
        if fresh_needed > headroom {
            return Err(MatchError::QuotaExceeded {
                budget: self.capacity_bytes(),
                required: bytes.len() as u64,
            });
        }
        let wear_before = self.ssd.ledger().wear();
        let mut lpns = Vec::with_capacity(pages_needed);
        for chunk in bytes.chunks(page_bytes) {
            let lpn = self.free.pop().unwrap_or_else(|| {
                let lpn = self.next_lpn;
                self.next_lpn += 1;
                lpn
            });
            self.ssd.write_page(lpn, chunk);
            lpns.push(lpn);
        }
        self.stored_bytes += bytes.len() as u64;
        Ok(ColdWrite {
            slot: ColdSlot {
                lpns,
                len: bytes.len(),
            },
            flash_wear: self.ssd.ledger().wear() - wear_before,
            bytes_moved: bytes.len() as u64,
        })
    }

    /// Reads a blob back from flash. Non-destructive: the slot stays valid
    /// until [`Self::remove`]d, so a re-materialization that loses an
    /// install race can simply retry.
    pub fn get(&mut self, slot: &ColdSlot) -> Result<ColdRead, MatchError> {
        for &lpn in &slot.lpns {
            if lpn >= self.next_lpn {
                return Err(MatchError::Internal(
                    "cold slot names a page this store never wrote",
                ));
            }
        }
        let wear_before = self.ssd.ledger().wear();
        let mut bytes = Vec::with_capacity(slot.lpns.len() * self.page_bytes());
        for &lpn in &slot.lpns {
            bytes.extend_from_slice(&self.ssd.read_page(lpn));
        }
        bytes.truncate(slot.len);
        Ok(ColdRead {
            bytes,
            flash_wear: self.ssd.ledger().wear() - wear_before,
            bytes_moved: slot.len as u64,
        })
    }

    /// Releases a blob's pages for reuse and returns its byte length.
    pub fn remove(&mut self, slot: ColdSlot) -> u64 {
        self.stored_bytes = self.stored_bytes.saturating_sub(slot.len as u64);
        self.free.extend(slot.lpns);
        slot.len as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ColdStore {
        // tiny_test: 64 B pages, 1 reserved block/plane -> 512 pages, 32 KiB.
        ColdStore::new(FlashGeometry::tiny_test(), TransposeMode::Software)
    }

    #[test]
    fn put_get_roundtrip_charges_wear_and_bytes() {
        let mut s = store();
        let blob: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let write = s.put(&blob).unwrap();
        // 200 B over 64 B pages -> 4 pages, 1 program each.
        assert_eq!(write.slot.pages(), 4);
        assert_eq!(write.flash_wear, 4);
        assert_eq!(write.bytes_moved, 200);
        assert_eq!(s.stored_bytes(), 200);
        assert_eq!(s.device_wear(), 4);
        let read = s.get(&write.slot).unwrap();
        assert_eq!(read.bytes, blob);
        assert_eq!(read.flash_wear, 0, "reads must be wear-free");
        assert_eq!(read.bytes_moved, 200);
        // Non-destructive: a second read still works.
        assert_eq!(s.get(&write.slot).unwrap().bytes, blob);
    }

    #[test]
    fn removed_pages_are_reused_before_fresh_ones() {
        let mut s = store();
        let a = s.put(&[1u8; 100]).unwrap();
        let freed = s.remove(a.slot);
        assert_eq!(freed, 100);
        assert_eq!(s.stored_bytes(), 0);
        let b = s.put(&[2u8; 100]).unwrap();
        // Reuses the two freed lpns: no fresh allocation past lpn 1.
        assert!(b.slot.lpns.iter().all(|&lpn| lpn < 2));
        assert_eq!(s.get(&b.slot).unwrap().bytes, vec![2u8; 100]);
    }

    #[test]
    fn exhaustion_is_a_typed_quota_error() {
        let mut s = store();
        let cap = s.capacity_bytes() as usize;
        s.put(&vec![7u8; cap]).unwrap();
        let err = s.put(&[1u8]).unwrap_err();
        assert!(matches!(err, MatchError::QuotaExceeded { .. }), "{err:?}");
        // The failed put charged nothing and stored nothing.
        assert_eq!(s.stored_bytes(), cap as u64);
    }

    #[test]
    fn empty_blob_occupies_no_pages() {
        let mut s = store();
        let w = s.put(&[]).unwrap();
        assert_eq!(w.slot.pages(), 0);
        assert_eq!(w.flash_wear, 0);
        assert!(w.slot.is_empty());
        assert!(s.get(&w.slot).unwrap().bytes.is_empty());
    }

    #[test]
    fn foreign_slot_is_rejected() {
        let mut s = store();
        let mut other = store();
        let w = other.put(&[3u8; 300]).unwrap();
        let err = s.get(&w.slot).unwrap_err();
        assert!(matches!(err, MatchError::Internal(_)), "{err:?}");
    }

    #[test]
    fn default_geometry_has_promised_capacity() {
        let s = ColdStore::with_default_geometry();
        assert_eq!(s.capacity_bytes(), 16 * 1024 * 1024);
        assert_eq!(s.page_bytes(), 1024);
    }
}
