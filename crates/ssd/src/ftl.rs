//! The flash translation layer with two regions (paper §4.3.2 item 1).
//!
//! The physical address space splits into a **conventional region**
//! (TLC mode, horizontal layout, ordinary logical-page mapping) and a
//! **CIPHERMATCH region** (SLC mode, vertical layout, mapped at the
//! granularity of 32-wordline *groups*). Each region keeps its own
//! logical-to-physical table, so transposition stays transparent to the
//! host.

use std::collections::HashMap;

use cm_flash::{FlashGeometry, PageAddr, PlaneAddr};
use serde::{Deserialize, Serialize};

/// Wordlines per vertical group (one bit of a 32-bit coefficient each).
pub const GROUP_WORDLINES: usize = 32;

/// Physical location of one vertical group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GroupAddr {
    /// The plane (latch set) owning the group.
    pub plane: PlaneAddr,
    /// Block within the plane.
    pub block: usize,
    /// First wordline of the 32-wordline group.
    pub wl_base: usize,
}

/// The two-region FTL.
#[derive(Debug)]
pub struct Ftl {
    geometry: FlashGeometry,
    /// Conventional region: logical page number → physical page.
    conventional: HashMap<u64, PageAddr>,
    next_conventional: usize,
    /// CIPHERMATCH region: group index → physical group, allocated
    /// round-robin across planes to maximize compute parallelism.
    cm_groups: Vec<GroupAddr>,
    /// First block of each plane reserved for the conventional region.
    cm_first_block: usize,
}

impl Ftl {
    /// Creates an FTL over a geometry, reserving blocks
    /// `[0, cm_first_block)` of each plane for the conventional region.
    ///
    /// # Panics
    ///
    /// Panics if the reservation leaves no CIPHERMATCH blocks.
    pub fn new(geometry: FlashGeometry, cm_first_block: usize) -> Self {
        assert!(
            cm_first_block < geometry.blocks_per_plane,
            "no blocks left for the CIPHERMATCH region"
        );
        Self {
            geometry,
            conventional: HashMap::new(),
            next_conventional: 0,
            cm_groups: Vec::new(),
            cm_first_block,
        }
    }

    /// The geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// Groups that fit in one plane's CIPHERMATCH region.
    pub fn groups_per_plane(&self) -> usize {
        let blocks = self.geometry.blocks_per_plane - self.cm_first_block;
        blocks * (self.geometry.wordlines_per_block / GROUP_WORDLINES)
    }

    /// Total CIPHERMATCH-region capacity in groups.
    pub fn group_capacity(&self) -> usize {
        self.groups_per_plane() * self.geometry.total_planes()
    }

    /// Maps (or returns the existing mapping of) a conventional logical
    /// page.
    ///
    /// # Panics
    ///
    /// Panics when the conventional region is exhausted.
    pub fn map_conventional(&mut self, lpn: u64) -> PageAddr {
        if let Some(&addr) = self.conventional.get(&lpn) {
            return addr;
        }
        let planes: Vec<PlaneAddr> = self.geometry.planes().collect();
        let pages_per_plane = self.cm_first_block * self.geometry.wordlines_per_block;
        let idx = self.next_conventional;
        assert!(
            idx < pages_per_plane * planes.len(),
            "conventional region exhausted"
        );
        // Stripe across planes for write parallelism.
        let plane = planes[idx % planes.len()];
        let slot = idx / planes.len();
        let addr = PageAddr {
            plane,
            block: slot / self.geometry.wordlines_per_block,
            wordline: slot % self.geometry.wordlines_per_block,
        };
        self.next_conventional += 1;
        self.conventional.insert(lpn, addr);
        addr
    }

    /// Looks up a conventional mapping without allocating.
    pub fn lookup_conventional(&self, lpn: u64) -> Option<PageAddr> {
        self.conventional.get(&lpn).copied()
    }

    /// Total conventional-region capacity in pages.
    pub fn conventional_capacity(&self) -> usize {
        self.cm_first_block * self.geometry.wordlines_per_block * self.geometry.total_planes()
    }

    /// Conventional pages already mapped (mappings are never reclaimed, so
    /// this is also the high-water mark the next [`Self::map_conventional`]
    /// of a fresh lpn allocates from).
    pub fn conventional_in_use(&self) -> usize {
        self.next_conventional
    }

    /// Allocates the next CIPHERMATCH group (round-robin across planes so
    /// consecutive groups land on different latch sets).
    ///
    /// # Panics
    ///
    /// Panics when the CIPHERMATCH region is exhausted.
    pub fn allocate_group(&mut self) -> GroupAddr {
        let idx = self.cm_groups.len();
        assert!(idx < self.group_capacity(), "CIPHERMATCH region exhausted");
        let planes: Vec<PlaneAddr> = self.geometry.planes().collect();
        let plane = planes[idx % planes.len()];
        let slot = idx / planes.len();
        let groups_per_block = self.geometry.wordlines_per_block / GROUP_WORDLINES;
        let addr = GroupAddr {
            plane,
            block: self.cm_first_block + slot / groups_per_block,
            wl_base: (slot % groups_per_block) * GROUP_WORDLINES,
        };
        self.cm_groups.push(addr);
        addr
    }

    /// All allocated groups in logical order.
    pub fn groups(&self) -> &[GroupAddr] {
        &self.cm_groups
    }

    /// L2P mapping-table DRAM overhead in bytes (~8 B per entry), which the
    /// paper bounds at ~0.1% of capacity (§2.3).
    pub fn mapping_overhead_bytes(&self) -> usize {
        (self.conventional.len() + self.cm_groups.len()) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ftl() -> Ftl {
        Ftl::new(FlashGeometry::tiny_test(), 1)
    }

    #[test]
    fn conventional_mapping_is_stable() {
        let mut f = ftl();
        let a = f.map_conventional(7);
        let b = f.map_conventional(7);
        assert_eq!(a, b);
        assert_eq!(f.lookup_conventional(7), Some(a));
        assert_eq!(f.lookup_conventional(8), None);
        // Conventional pages stay below the CM region.
        assert!(a.block < 1);
    }

    #[test]
    fn conventional_capacity_tracks_reservation_and_use() {
        let mut f = ftl();
        // tiny_test: 1 reserved block/plane x 64 WLs x 8 planes.
        assert_eq!(f.conventional_capacity(), 64 * 8);
        assert_eq!(f.conventional_in_use(), 0);
        f.map_conventional(0);
        f.map_conventional(1);
        f.map_conventional(0); // remap: no new allocation
        assert_eq!(f.conventional_in_use(), 2);
    }

    #[test]
    fn groups_round_robin_across_planes() {
        let mut f = ftl();
        let planes = f.geometry().total_planes();
        let first: Vec<GroupAddr> = (0..planes).map(|_| f.allocate_group()).collect();
        // The first `planes` groups each land on a distinct plane.
        let unique: std::collections::HashSet<_> = first.iter().map(|g| g.plane).collect();
        assert_eq!(unique.len(), planes);
        // The next one reuses plane 0 at the next slot.
        let next = f.allocate_group();
        assert_eq!(next.plane, first[0].plane);
        assert!(next.wl_base == GROUP_WORDLINES || next.block > first[0].block);
    }

    #[test]
    fn group_capacity_accounts_reservation() {
        let f = ftl();
        // tiny_test: 64 WLs/block -> 2 groups/block; 3 CM blocks/plane.
        assert_eq!(f.groups_per_plane(), 3 * 2);
        assert_eq!(f.group_capacity(), 6 * f.geometry().total_planes());
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut f = ftl();
        for _ in 0..=f.group_capacity() {
            let _ = f.allocate_group();
        }
    }

    #[test]
    fn groups_never_collide() {
        let mut f = ftl();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..f.group_capacity() {
            let g = f.allocate_group();
            assert!(seen.insert(g), "duplicate group {g:?}");
            assert!(g.wl_base + GROUP_WORDLINES <= f.geometry().wordlines_per_block);
            assert!(g.block < f.geometry().blocks_per_plane);
        }
    }
}
