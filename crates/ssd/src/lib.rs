#![warn(missing_docs)]

//! # cm-ssd
//!
//! The SSD system model for CM-IFP (paper §4.3.2): a two-region FTL
//! (conventional TLC / vertical-layout SLC CIPHERMATCH region), the
//! software/hardware data transposition unit, the `CM-read` / `CM-write` /
//! `CM-search` host commands, controller-side index generation, and the
//! AES-protected index return channel of §7.2.
//!
//! The headline integration property, enforced by tests: running
//! `CM-search` through the simulated flash latches produces **bit-identical
//! Hom-Add results** to the software CIPHERMATCH engine, while consuming
//! zero program/erase cycles.

mod cold;
mod commands;
mod ftl;
mod pipeline;
mod secure_index;
mod ssd;
mod transpose;

pub use cold::{ColdRead, ColdSlot, ColdStore, ColdWrite};
pub use commands::{submit, HostCommand, HostResponse};
pub use ftl::{Ftl, GroupAddr, GROUP_WORDLINES};
pub use pipeline::CmIfpServer;
pub use secure_index::{SecureIndexChannel, AES_AREA_MM2, AES_BLOCK_LATENCY};
pub use ssd::{ControllerModel, IfpReport, Ssd};
pub use transpose::{TransposeMode, TranspositionUnit};
