//! The data transposition unit (paper §4.3.2 item 2 and §7.1).
//!
//! CPUs produce horizontal (coefficient-contiguous) data; the in-flash
//! adder needs the vertical layout (bit `i` of every coefficient on one
//! wordline). The SSD controller transposes at 4 KiB granularity —
//! 13.6 µs in software on the controller cores (hidden under the 22.5 µs
//! flash read), or 158 ns with the dedicated hardware unit of §7.1.

use cm_flash::{bitplanes_to_words, words_to_bitplanes, BitBuf};

/// Transposition implementation choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransposeMode {
    /// Software on the SSD controller cores: 13.6 µs per 4 KiB.
    Software,
    /// Dedicated 22 nm hardware unit (§7.1): 158 ns per 4 KiB,
    /// 0.24 mm² area.
    Hardware,
}

impl TransposeMode {
    /// Latency to transpose 4 KiB, in seconds.
    pub fn latency_per_4kb(&self) -> f64 {
        match self {
            TransposeMode::Software => 13.6e-6,
            TransposeMode::Hardware => 158e-9,
        }
    }

    /// Area overhead in mm² (hardware mode only).
    pub fn area_mm2(&self) -> f64 {
        match self {
            TransposeMode::Software => 0.0,
            TransposeMode::Hardware => 0.24,
        }
    }
}

/// The functional transposition unit with a latency ledger.
#[derive(Debug)]
pub struct TranspositionUnit {
    mode: TransposeMode,
    busy_time: f64,
    bytes_transposed: u64,
}

impl TranspositionUnit {
    /// Creates a unit in the given mode.
    pub fn new(mode: TransposeMode) -> Self {
        Self {
            mode,
            busy_time: 0.0,
            bytes_transposed: 0,
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> TransposeMode {
        self.mode
    }

    /// Accumulated busy time in seconds.
    pub fn busy_time(&self) -> f64 {
        self.busy_time
    }

    /// Total bytes transposed.
    pub fn bytes_transposed(&self) -> u64 {
        self.bytes_transposed
    }

    fn account(&mut self, bytes: usize) {
        self.bytes_transposed += bytes as u64;
        self.busy_time += self.mode.latency_per_4kb() * (bytes as f64 / 4096.0);
    }

    /// Horizontal → vertical: splits `u32` coefficients into `width`
    /// bit-plane pages.
    pub fn to_vertical(&mut self, words: &[u32], width: usize) -> Vec<BitBuf> {
        self.account(words.len() * 4);
        words_to_bitplanes(words, width)
    }

    /// Vertical → horizontal: reassembles bit-planes into coefficients.
    pub fn to_horizontal(&mut self, planes: &[BitBuf]) -> Vec<u32> {
        let words = bitplanes_to_words(planes);
        self.account(words.len() * 4);
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_words() {
        let mut unit = TranspositionUnit::new(TransposeMode::Software);
        let words: Vec<u32> = (0..1024u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let planes = unit.to_vertical(&words, 32);
        assert_eq!(planes.len(), 32);
        assert_eq!(unit.to_horizontal(&planes), words);
    }

    #[test]
    fn software_timing_matches_paper() {
        let mut unit = TranspositionUnit::new(TransposeMode::Software);
        let words = vec![0u32; 1024]; // exactly 4 KiB
        let _ = unit.to_vertical(&words, 32);
        assert!((unit.busy_time() - 13.6e-6).abs() < 1e-12);
        assert_eq!(unit.bytes_transposed(), 4096);
    }

    #[test]
    fn hardware_unit_is_86x_faster() {
        // §7.1: 13.6 µs vs 158 ns per 4 KiB.
        let speedup =
            TransposeMode::Software.latency_per_4kb() / TransposeMode::Hardware.latency_per_4kb();
        assert!(speedup > 80.0 && speedup < 90.0, "speedup {speedup}");
        assert!(TransposeMode::Hardware.area_mm2() > 0.0);
    }

    #[test]
    fn software_hides_under_flash_read() {
        // §4.3.2: 13.6 µs < 22.5 µs SLC read, so transposition pipelines
        // behind reads.
        assert!(TransposeMode::Software.latency_per_4kb() < 22.5e-6);
    }
}
