//! Latency and energy constants (Table 3) and the derived per-bit costs
//! (Eq. 9–11).
//!
//! The functional chip model logs every primitive op into a
//! [`FlashLedger`]; the analytical models in `cm-sim` use
//! [`FlashTimings::t_bit_add`] / [`FlashTimings::e_bit_add`] directly.

use serde::{Deserialize, Serialize};

/// NAND flash operation latencies (Table 3, CM-IFP row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashTimings {
    /// SLC-mode read (ESP), seconds. Table 3: 22.5 µs.
    pub t_read_slc: f64,
    /// Latch-to-latch AND/OR, seconds. Table 3: 20 ns.
    pub t_and_or: f64,
    /// Latch transfer, seconds. Table 3: 20 ns.
    pub t_latch_transfer: f64,
    /// Inter-D-latch XOR, seconds. Table 3: 30 ns.
    pub t_xor: f64,
    /// One page DMA over the channel, seconds. Table 3: 3.3 µs.
    pub t_dma: f64,
}

impl FlashTimings {
    /// Table 3 values.
    pub fn paper_default() -> Self {
        Self {
            t_read_slc: 22.5e-6,
            t_and_or: 20e-9,
            t_latch_transfer: 20e-9,
            t_xor: 30e-9,
            t_dma: 3.3e-6,
        }
    }

    /// Eq. 10: `T_bop_add = T_read + 2 T_XOR + 5 T_latch + 4 T_AND/OR`.
    pub fn t_bop_add(&self) -> f64 {
        self.t_read_slc + 2.0 * self.t_xor + 5.0 * self.t_latch_transfer + 4.0 * self.t_and_or
    }

    /// Eq. 9: `T_bit_add = T_bop_add + 2 T_DMA` (query bit in, sum bit
    /// out). Table 3 quotes 29.38 µs for the paper constants.
    pub fn t_bit_add(&self) -> f64 {
        self.t_bop_add() + 2.0 * self.t_dma
    }
}

/// NAND flash energy constants (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashEnergy {
    /// SLC read energy per channel, joules. Table 3: 20.5 µJ.
    pub e_read_slc: f64,
    /// AND/OR energy per KiB, joules. Table 3: 10 nJ/KB.
    pub e_and_or_per_kb: f64,
    /// Latch transfer energy per KiB, joules. Table 3: 10 nJ/KB.
    pub e_latch_per_kb: f64,
    /// XOR energy per KiB, joules. Table 3: 20 nJ/KB.
    pub e_xor_per_kb: f64,
    /// DMA energy per channel, joules. Table 3: 7.656 µJ.
    pub e_dma: f64,
    /// Index-generation energy per page on the SSD controller, joules.
    /// Table 3: 0.18 µJ/page.
    pub e_index_gen_per_page: f64,
}

impl FlashEnergy {
    /// Table 3 values.
    pub fn paper_default() -> Self {
        Self {
            e_read_slc: 20.5e-6,
            e_and_or_per_kb: 10e-9,
            e_latch_per_kb: 10e-9,
            e_xor_per_kb: 20e-9,
            e_dma: 7.656e-6,
            e_index_gen_per_page: 0.18e-6,
        }
    }

    /// Eq. 10's energy analogue for one bit-step over `page_kb` KiB of
    /// bitlines: `E_bop_add = E_read + 2 E_XOR + 5 E_latch + 4 E_AND/OR`.
    pub fn e_bop_add(&self, page_kb: f64) -> f64 {
        self.e_read_slc
            + page_kb
                * (2.0 * self.e_xor_per_kb + 5.0 * self.e_latch_per_kb + 4.0 * self.e_and_or_per_kb)
    }

    /// Eq. 11: `E_bit_add = E_bop_add + 2 E_DMA + E_index_gen`.
    /// Table 3 quotes 32.22 µJ/channel for the paper constants.
    pub fn e_bit_add(&self, page_kb: f64) -> f64 {
        self.e_bop_add(page_kb) + 2.0 * self.e_dma + self.e_index_gen_per_page
    }
}

/// Running tally of primitive flash operations with their time and energy.
///
/// Also tracks program/erase cycles to substantiate the paper's
/// reliability claim: CIPHERMATCH computes entirely in the latches, so
/// searches must not consume any P/E cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FlashLedger {
    /// SLC page reads.
    pub reads: u64,
    /// Latch transfers (S<->D).
    pub latch_transfers: u64,
    /// AND/OR latch operations.
    pub and_or_ops: u64,
    /// XOR latch operations.
    pub xor_ops: u64,
    /// Page DMAs over the channel.
    pub dmas: u64,
    /// Page programs (P/E wear).
    pub programs: u64,
    /// Block erases (P/E wear).
    pub erases: u64,
}

impl FlashLedger {
    /// Total busy time implied by the ledger, assuming fully serialized
    /// execution on one plane (parallelism is modelled analytically in
    /// `cm-sim`).
    pub fn serial_time(&self, t: &FlashTimings) -> f64 {
        self.reads as f64 * t.t_read_slc
            + self.latch_transfers as f64 * t.t_latch_transfer
            + self.and_or_ops as f64 * t.t_and_or
            + self.xor_ops as f64 * t.t_xor
            + self.dmas as f64 * t.t_dma
    }

    /// Total energy implied by the ledger for pages of `page_kb` KiB.
    pub fn energy(&self, e: &FlashEnergy, page_kb: f64) -> f64 {
        self.reads as f64 * e.e_read_slc
            + self.latch_transfers as f64 * e.e_latch_per_kb * page_kb
            + self.and_or_ops as f64 * e.e_and_or_per_kb * page_kb
            + self.xor_ops as f64 * e.e_xor_per_kb * page_kb
            + self.dmas as f64 * e.e_dma
    }

    /// P/E-cycle wear incurred (program + erase counts).
    pub fn wear(&self) -> u64 {
        self.programs + self.erases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq10_matches_paper_derivation() {
        let t = FlashTimings::paper_default();
        // 22.5us + 2*30ns + 5*20ns + 4*20ns = 22.74 us
        let bop = t.t_bop_add();
        assert!((bop - 22.74e-6).abs() < 1e-12, "bop = {bop}");
    }

    #[test]
    fn eq9_close_to_table3_quote() {
        let t = FlashTimings::paper_default();
        // Table 3 quotes T_bit_add = 29.38 us; Eq. 9 with Table 3 inputs
        // gives 29.34 us — we assert we are within 0.2 us of the quote.
        let bit = t.t_bit_add();
        assert!((bit - 29.38e-6).abs() < 0.2e-6, "bit = {bit}");
    }

    #[test]
    fn eq11_same_ballpark_as_table3_quote() {
        let e = FlashEnergy::paper_default();
        // Table 3 quotes E_bit_add = 32.22 uJ/channel. Plugging Table 3's
        // own component energies into Eq. 11 yields 36.5 uJ (the 4.3 uJ gap
        // is unexplained in the paper — likely a different DMA accounting).
        // We reproduce the equation and assert the same ballpark; the gap
        // is recorded in EXPERIMENTS.md.
        let bit = e.e_bit_add(4.0);
        assert!((bit - 32.22e-6).abs() < 5e-6, "e_bit = {bit}");
        assert!(
            (bit - 36.51e-6).abs() < 0.1e-6,
            "component-sum value moved: {bit}"
        );
    }

    #[test]
    fn ledger_accumulates_time_and_energy() {
        let t = FlashTimings::paper_default();
        let e = FlashEnergy::paper_default();
        let ledger = FlashLedger {
            reads: 2,
            latch_transfers: 10,
            and_or_ops: 8,
            xor_ops: 4,
            dmas: 4,
            programs: 0,
            erases: 0,
        };
        let expect_t = 2.0 * 22.5e-6 + 10.0 * 20e-9 + 8.0 * 20e-9 + 4.0 * 30e-9 + 4.0 * 3.3e-6;
        assert!((ledger.serial_time(&t) - expect_t).abs() < 1e-12);
        assert!(ledger.energy(&e, 4.0) > 0.0);
        assert_eq!(ledger.wear(), 0);
    }
}
