//! Fixed-width bit buffers.
//!
//! A [`BitBuf`] models one page worth of bitlines: the contents of a
//! sensing latch or data latch, with the bulk-bitwise operations the latch
//! circuitry supports (Fig. 4). Bits are stored in `u64` words,
//! little-endian within the buffer (bit `i` is word `i / 64`, bit
//! `i % 64`).

/// A fixed-width buffer of bits supporting bulk bitwise operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitBuf {
    len: usize,
    words: Vec<u64>,
}

impl BitBuf {
    /// All-zero buffer of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// All-one buffer of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut b = Self::zeros(len);
        for w in &mut b.words {
            *w = !0;
        }
        b.mask_tail();
        b
    }

    /// Builds from a bool slice.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut b = Self::zeros(bits.len());
        for (i, &bit) in bits.iter().enumerate() {
            if bit {
                b.set(i, true);
            }
        }
        b
    }

    /// Zeroes any bits beyond `len` in the last word.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Buffer width in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer has zero width.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index out of range");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index out of range");
        let mask = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// `self &= other`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn and_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "width mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn or_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "width mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self ^= other`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn xor_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "width mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Sets every bit to zero.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Copies from another buffer.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "width mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Iterator over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Raw word access (for fast transposition).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = BitBuf::zeros(130);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        b.set(64, false);
        assert!(!b.get(64));
    }

    #[test]
    fn ones_respects_tail() {
        let b = BitBuf::ones(70);
        assert!(b.iter().all(|x| x));
        assert_eq!(b.words()[1] >> 6, 0, "tail bits must be masked");
    }

    #[test]
    fn bulk_ops_match_per_bit() {
        let x = BitBuf::from_bits(&[true, false, true, false, true, true]);
        let y = BitBuf::from_bits(&[true, true, false, false, true, false]);
        let mut and = x.clone();
        and.and_assign(&y);
        let mut or = x.clone();
        or.or_assign(&y);
        let mut xor = x.clone();
        xor.xor_assign(&y);
        for i in 0..6 {
            assert_eq!(and.get(i), x.get(i) & y.get(i));
            assert_eq!(or.get(i), x.get(i) | y.get(i));
            assert_eq!(xor.get(i), x.get(i) ^ y.get(i));
        }
    }

    #[test]
    fn clear_and_copy() {
        let mut a = BitBuf::ones(100);
        let b = BitBuf::from_bits(&(0..100).map(|i| i % 3 == 0).collect::<Vec<_>>());
        a.copy_from(&b);
        assert_eq!(a, b);
        a.clear();
        assert!(a.iter().all(|x| !x));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_widths_panic() {
        let mut a = BitBuf::zeros(10);
        a.and_assign(&BitBuf::zeros(11));
    }
}
