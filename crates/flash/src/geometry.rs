//! SSD / NAND flash geometry (paper §2.3, Fig. 1, and Table 3).

use serde::{Deserialize, Serialize};

/// Physical organization of the simulated SSD's NAND flash.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashGeometry {
    /// Independent flash channels.
    pub channels: usize,
    /// Dies per channel (share the channel bus, time-interleaved).
    pub dies_per_channel: usize,
    /// Planes per die (independent latch sets).
    pub planes_per_die: usize,
    /// Blocks per plane.
    pub blocks_per_plane: usize,
    /// Wordlines per block (Table 3 states 196 = "4 x 48"; see DESIGN.md).
    pub wordlines_per_block: usize,
    /// Page size in bytes (one wordline in SLC mode).
    pub page_bytes: usize,
}

impl FlashGeometry {
    /// Table 3's configuration: 2 TB SSD, 8 channels, 8 dies/channel,
    /// 2 planes/die, 2048 blocks/plane, 196 WLs/block, 4 KiB pages.
    pub fn paper_default() -> Self {
        Self {
            channels: 8,
            dies_per_channel: 8,
            planes_per_die: 2,
            blocks_per_plane: 2048,
            wordlines_per_block: 196,
            page_bytes: 4096,
        }
    }

    /// A tiny geometry for functional tests (pages of 64 bytes).
    pub fn tiny_test() -> Self {
        Self {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 4,
            wordlines_per_block: 64,
            page_bytes: 64,
        }
    }

    /// Bitlines per plane (= page width in bits).
    pub fn page_bits(&self) -> usize {
        self.page_bytes * 8
    }

    /// Planes across the whole SSD — the unit of compute parallelism for
    /// in-flash processing.
    pub fn total_planes(&self) -> usize {
        self.channels * self.dies_per_channel * self.planes_per_die
    }

    /// Planes per channel (share one channel bus for DMA).
    pub fn planes_per_channel(&self) -> usize {
        self.dies_per_channel * self.planes_per_die
    }

    /// Raw SLC-mode capacity in bytes.
    pub fn slc_capacity_bytes(&self) -> u64 {
        self.total_planes() as u64
            * self.blocks_per_plane as u64
            * self.wordlines_per_block as u64
            * self.page_bytes as u64
    }

    /// Raw TLC-mode capacity in bytes (3 bits per cell).
    pub fn tlc_capacity_bytes(&self) -> u64 {
        3 * self.slc_capacity_bytes()
    }
}

/// Address of a plane (the latch-set granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlaneAddr {
    /// Channel index.
    pub channel: usize,
    /// Die within the channel.
    pub die: usize,
    /// Plane within the die.
    pub plane: usize,
}

/// Address of one SLC page (a wordline within a block within a plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PageAddr {
    /// The plane holding the page.
    pub plane: PlaneAddr,
    /// Block within the plane.
    pub block: usize,
    /// Wordline within the block.
    pub wordline: usize,
}

impl FlashGeometry {
    /// Validates that an address is inside this geometry.
    pub fn check_page(&self, addr: &PageAddr) -> bool {
        addr.plane.channel < self.channels
            && addr.plane.die < self.dies_per_channel
            && addr.plane.plane < self.planes_per_die
            && addr.block < self.blocks_per_plane
            && addr.wordline < self.wordlines_per_block
    }

    /// Enumerates every plane in canonical (channel, die, plane) order.
    pub fn planes(&self) -> impl Iterator<Item = PlaneAddr> + '_ {
        let (c, d, p) = (self.channels, self.dies_per_channel, self.planes_per_die);
        (0..c).flat_map(move |channel| {
            (0..d).flat_map(move |die| {
                (0..p).map(move |plane| PlaneAddr {
                    channel,
                    die,
                    plane,
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_capacity_is_2tb_class() {
        let g = FlashGeometry::paper_default();
        assert_eq!(g.total_planes(), 128);
        // 128 planes x 2048 blocks x 196 WL x 4 KiB ≈ 196 GiB SLC,
        // ≈ 588 GiB TLC raw — the 48-WL-layer slice of a 2 TB drive that
        // Table 3 models (capacity per layer group).
        let slc = g.slc_capacity_bytes();
        assert!(
            slc > 190 * (1 << 30) && slc < 220 * (1 << 30),
            "slc = {slc}"
        );
        assert_eq!(g.tlc_capacity_bytes(), 3 * slc);
    }

    #[test]
    fn page_addressing_bounds() {
        let g = FlashGeometry::tiny_test();
        let ok = PageAddr {
            plane: PlaneAddr {
                channel: 1,
                die: 1,
                plane: 1,
            },
            block: 3,
            wordline: 63,
        };
        assert!(g.check_page(&ok));
        let bad = PageAddr { block: 4, ..ok };
        assert!(!g.check_page(&bad));
    }

    #[test]
    fn plane_enumeration_is_exhaustive() {
        let g = FlashGeometry::tiny_test();
        let planes: Vec<_> = g.planes().collect();
        assert_eq!(planes.len(), g.total_planes());
        assert_eq!(
            planes[0],
            PlaneAddr {
                channel: 0,
                die: 0,
                plane: 0
            }
        );
        assert_eq!(planes.last().unwrap().channel, 1);
    }
}
