//! The `bop_add` µ-program: in-flash bit-serial addition (paper §4.3.1,
//! Fig. 5).
//!
//! Operand `A` is stored in a **vertical layout**: bit `i` of every
//! coefficient on wordline `wl_base + i`, one coefficient per bitline.
//! Operand `B` streams in from the controller one bit-plane page per step.
//! Each step executes the 13-operation latch sequence of Fig. 5 — load,
//! AND/XOR/OR against the carry held in D-latch 2 — and ships the sum
//! bit-plane back out. The carry ripples entirely inside the latches, so
//! a full `width`-bit addition costs `width` flash reads and `2 * width`
//! DMAs but **zero program/erase cycles**.
//!
//! Addition is modulo `2^width`, which equals BFV `Hom-Add` exactly when
//! the ciphertext modulus is `2^width` (see
//! `cm_bfv::BfvParams::ciphermatch_ifp_1024`).

use crate::bitbuf::BitBuf;
use crate::chip::FlashArray;
use crate::geometry::{PageAddr, PlaneAddr};

/// Stores `u32` coefficients vertically: bit `b` of `words[l]` lands on
/// wordline `wl_base + b`, bitline `l`.
///
/// # Panics
///
/// Panics if `words.len()` differs from the page width or the wordline
/// range exceeds the block.
pub fn store_words_vertical(
    fa: &mut FlashArray,
    plane: PlaneAddr,
    block: usize,
    wl_base: usize,
    words: &[u32],
) {
    let bits = fa.geometry().page_bits();
    assert_eq!(words.len(), bits, "one coefficient per bitline required");
    for b in 0..32 {
        let page = BitBuf::from_bits(&words.iter().map(|&w| (w >> b) & 1 == 1).collect::<Vec<_>>());
        fa.program_page(
            PageAddr {
                plane,
                block,
                wordline: wl_base + b,
            },
            page,
        );
    }
}

/// Splits `u32` words into `width` bit-plane pages (bit 0 first) of
/// `words.len()` bitlines.
pub fn words_to_bitplanes(words: &[u32], width: usize) -> Vec<BitBuf> {
    assert!(width <= 32);
    (0..width)
        .map(|b| BitBuf::from_bits(&words.iter().map(|&w| (w >> b) & 1 == 1).collect::<Vec<_>>()))
        .collect()
}

/// Reassembles bit-plane pages (bit 0 first) into `u32` words.
pub fn bitplanes_to_words(planes: &[BitBuf]) -> Vec<u32> {
    assert!(!planes.is_empty() && planes.len() <= 32);
    let n = planes[0].len();
    let mut out = vec![0u32; n];
    for (b, plane) in planes.iter().enumerate() {
        assert_eq!(plane.len(), n, "bit-plane width mismatch");
        for (l, w) in out.iter_mut().enumerate() {
            if plane.get(l) {
                *w |= 1 << b;
            }
        }
    }
    out
}

/// Executes `bop_add`: adds streamed operand `B` (as bit-planes, LSB
/// first) to the vertically stored operand `A` at `wl_base`, returning the
/// sum bit-planes. The final carry remains in D-latch 2 and is discarded
/// (addition modulo `2^width`).
///
/// Step numbering follows Fig. 5 of the paper.
///
/// # Panics
///
/// Panics if more than 32 bit-planes are supplied or any page has the
/// wrong width.
pub fn bop_add(
    fa: &mut FlashArray,
    plane: PlaneAddr,
    block: usize,
    wl_base: usize,
    b_planes: &[BitBuf],
) -> Vec<BitBuf> {
    assert!(
        !b_planes.is_empty() && b_planes.len() <= 32,
        "width must be 1..=32"
    );
    // Carry-in = 0.
    fa.reset_dlatch(plane, 2);
    let mut sums = Vec::with_capacity(b_planes.len());
    for (i, b_i) in b_planes.iter().enumerate() {
        // ① stream B_i from the controller into the S-latch.
        fa.io_load_slatch(plane, b_i);
        // ② copy it to D-latch 1.
        fa.slatch_to_dlatch(plane, 1);
        // ③ AND with the carry (D2): S = B·C.
        fa.and_dlatch_into_slatch(plane, 2);
        // ④ XOR D1 ⊕ D2: D1 = B ⊕ C.
        fa.xor_d1_d2_into_d1(plane);
        // ⑤ park B·C in D-latch 0.
        fa.slatch_to_dlatch(plane, 0);
        // ⑥ read the stored bit A_i from the flash cell.
        fa.read_to_slatch(PageAddr {
            plane,
            block,
            wordline: wl_base + i,
        });
        // ⑦ copy A to D-latch 2 (the carry value is no longer needed).
        fa.slatch_to_dlatch(plane, 2);
        // ⑧ move B ⊕ C to the S-latch and AND with A: S = (B⊕C)·A.
        fa.dlatch_to_slatch(plane, 1);
        fa.and_dlatch_into_slatch(plane, 2);
        // ⑨ XOR D1 ⊕ D2: D1 = B ⊕ C ⊕ A = sum bit.
        fa.xor_d1_d2_into_d1(plane);
        // ⑩ park (B⊕C)·A in D-latch 2.
        fa.slatch_to_dlatch(plane, 2);
        // ⑪ recall B·C into the S-latch.
        fa.dlatch_to_slatch(plane, 0);
        // ⑫ OR into D2: carry-out = (B⊕C)·A + B·C.
        fa.or_slatch_into_dlatch(plane, 2);
        // ⑬ ship the sum bit-plane to the controller.
        sums.push(fa.io_read_dlatch(plane, 1));
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;
    use crate::timing::FlashTimings;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (FlashArray, PlaneAddr) {
        (
            FlashArray::new(FlashGeometry::tiny_test()),
            PlaneAddr {
                channel: 0,
                die: 0,
                plane: 0,
            },
        )
    }

    #[test]
    fn full_adder_truth_table() {
        // One bitline per (a, b, carry-chain) case via 1-bit adds.
        let (mut fa, plane) = setup();
        let bits = fa.geometry().page_bits();
        for a in [0u32, 1] {
            for b in [0u32, 1] {
                let words = vec![a; bits];
                store_words_vertical(&mut fa, plane, 0, 0, &words);
                let b_planes = words_to_bitplanes(&vec![b; bits], 1);
                let sums = bop_add(&mut fa, plane, 0, 0, &b_planes);
                let got = bitplanes_to_words(&sums);
                // 1-bit add modulo 2.
                assert!(got.iter().all(|&x| x == (a + b) % 2), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn thirty_two_bit_addition_matches_wrapping_add() {
        let (mut fa, plane) = setup();
        let bits = fa.geometry().page_bits();
        let mut rng = StdRng::seed_from_u64(99);
        let a: Vec<u32> = (0..bits).map(|_| rng.gen()).collect();
        let b: Vec<u32> = (0..bits).map(|_| rng.gen()).collect();
        store_words_vertical(&mut fa, plane, 1, 0, &a);
        let sums = bop_add(&mut fa, plane, 1, 0, &words_to_bitplanes(&b, 32));
        let got = bitplanes_to_words(&sums);
        let expect: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| x.wrapping_add(y)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn carry_propagates_across_all_bits() {
        // 0xFFFF_FFFF + 1 = 0 (mod 2^32): the carry must ripple through
        // all 32 positions.
        let (mut fa, plane) = setup();
        let bits = fa.geometry().page_bits();
        store_words_vertical(&mut fa, plane, 0, 0, &vec![u32::MAX; bits]);
        let sums = bop_add(
            &mut fa,
            plane,
            0,
            0,
            &words_to_bitplanes(&vec![1u32; bits], 32),
        );
        assert!(bitplanes_to_words(&sums).iter().all(|&x| x == 0));
    }

    #[test]
    fn per_bit_cost_matches_equation_9() {
        let (mut fa, plane) = setup();
        let bits = fa.geometry().page_bits();
        store_words_vertical(&mut fa, plane, 0, 0, &vec![7u32; bits]);
        fa.reset_ledger();
        let width = 32;
        let _ = bop_add(
            &mut fa,
            plane,
            0,
            0,
            &words_to_bitplanes(&vec![9u32; bits], width),
        );
        let ledger = fa.ledger();
        assert_eq!(ledger.reads, width as u64);
        assert_eq!(ledger.dmas, 2 * width as u64);
        assert_eq!(ledger.xor_ops, 2 * width as u64);
        // The paper's Eq. 10 books 5 transfers + 4 AND/OR per bit; our
        // µ-program does 6 transfers + 3 AND/OR (plus one carry reset per
        // call) — same op count and identical time because the two op
        // classes share the 20 ns latch cost.
        let t = FlashTimings::paper_default();
        let per_bit = ledger.serial_time(&t) / width as f64;
        let eq9 = t.t_bit_add();
        assert!(
            (per_bit - eq9).abs() < 0.05e-6,
            "per-bit {per_bit} vs Eq.9 {eq9}"
        );
        assert_eq!(ledger.wear(), 0, "search must not program or erase");
    }

    #[test]
    fn transposition_helpers_roundtrip() {
        let words: Vec<u32> = (0..512u32).map(|i| i.wrapping_mul(0x0101_0107)).collect();
        let planes = words_to_bitplanes(&words, 32);
        assert_eq!(bitplanes_to_words(&planes), words);
        // Narrow widths truncate high bits.
        let low = bitplanes_to_words(&words_to_bitplanes(&words, 8));
        assert!(low.iter().zip(&words).all(|(&l, &w)| l == w & 0xFF));
    }

    #[test]
    fn repeated_adds_accumulate() {
        // (A + B) + B again, reusing the array: store A, add B, write the
        // result back vertically, add B again.
        let (mut fa, plane) = setup();
        let bits = fa.geometry().page_bits();
        let a: Vec<u32> = (0..bits as u32).collect();
        let b: Vec<u32> = (0..bits as u32).map(|i| i * 3 + 1).collect();
        store_words_vertical(&mut fa, plane, 0, 0, &a);
        let s1 = bitplanes_to_words(&bop_add(&mut fa, plane, 0, 0, &words_to_bitplanes(&b, 32)));
        store_words_vertical(&mut fa, plane, 2, 32, &s1);
        let s2 = bitplanes_to_words(&bop_add(&mut fa, plane, 2, 32, &words_to_bitplanes(&b, 32)));
        let expect: Vec<u32> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| x.wrapping_add(y).wrapping_add(y))
            .collect();
        assert_eq!(s2, expect);
    }
}
