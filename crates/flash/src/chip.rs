//! Functional NAND flash model with compute-capable latch peripherals.
//!
//! Models the peripheral circuitry of Fig. 4: per plane, one sensing latch
//! (S-latch) and three data latches (D-latches, available because the die
//! is TLC hardware operated in SLC mode, §4.3.1). The supported primitive
//! operations are exactly those the modified circuit provides:
//!
//! * flash read into the S-latch (ESP SLC sensing),
//! * bi-directional S↔D transfers (the two added transistors of \[141\]),
//! * `AND` of S and a D latch into S,
//! * `OR` of S into a D latch,
//! * `XOR` between D1 and D2 into D1 (the existing randomizer circuit),
//! * page DMA between latches and the channel.
//!
//! Every call logs into the [`FlashLedger`], and computation never touches
//! a program/erase path (the paper's endurance argument).

use std::collections::HashMap;

use crate::bitbuf::BitBuf;
use crate::geometry::{FlashGeometry, PageAddr, PlaneAddr};
use crate::timing::FlashLedger;

/// Number of D-latches per plane (TLC hardware).
pub const D_LATCHES: usize = 3;

/// One plane's latch set.
#[derive(Debug, Clone)]
struct LatchSet {
    s: BitBuf,
    d: [BitBuf; D_LATCHES],
}

impl LatchSet {
    fn new(bits: usize) -> Self {
        Self {
            s: BitBuf::zeros(bits),
            d: [
                BitBuf::zeros(bits),
                BitBuf::zeros(bits),
                BitBuf::zeros(bits),
            ],
        }
    }
}

/// The functional flash array: sparse SLC page store + per-plane latches.
#[derive(Debug)]
pub struct FlashArray {
    geometry: FlashGeometry,
    pages: HashMap<PageAddr, BitBuf>,
    latches: HashMap<PlaneAddr, LatchSet>,
    ledger: FlashLedger,
}

impl FlashArray {
    /// Creates an empty array.
    pub fn new(geometry: FlashGeometry) -> Self {
        Self {
            geometry,
            pages: HashMap::new(),
            latches: HashMap::new(),
            ledger: FlashLedger::default(),
        }
    }

    /// The geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// The accumulated operation ledger.
    pub fn ledger(&self) -> FlashLedger {
        self.ledger
    }

    /// Resets the operation ledger.
    pub fn reset_ledger(&mut self) {
        self.ledger = FlashLedger::default();
    }

    fn latch(&mut self, plane: PlaneAddr) -> &mut LatchSet {
        let bits = self.geometry.page_bits();
        self.latches
            .entry(plane)
            .or_insert_with(|| LatchSet::new(bits))
    }

    fn check(&self, addr: &PageAddr) {
        assert!(
            self.geometry.check_page(addr),
            "page address out of geometry: {addr:?}"
        );
    }

    /// Programs a page (SLC write) — data load path, costs P/E wear.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range or the buffer width is not a
    /// page.
    pub fn program_page(&mut self, addr: PageAddr, data: BitBuf) {
        self.check(&addr);
        assert_eq!(data.len(), self.geometry.page_bits(), "page width mismatch");
        self.ledger.programs += 1;
        self.pages.insert(addr, data);
    }

    /// Erases a block: all its pages revert to the erased (all-zero in our
    /// SLC convention) state. Costs one erase of P/E wear.
    ///
    /// # Panics
    ///
    /// Panics if the block is out of range.
    pub fn erase_block(&mut self, plane: PlaneAddr, block: usize) {
        let probe = PageAddr {
            plane,
            block,
            wordline: 0,
        };
        self.check(&probe);
        self.ledger.erases += 1;
        self.pages
            .retain(|addr, _| !(addr.plane == plane && addr.block == block));
    }

    /// Reads a page into the plane's S-latch (ESP SLC read).
    ///
    /// Unwritten pages read as all-zero (erased cells in SLC convention).
    pub fn read_to_slatch(&mut self, addr: PageAddr) {
        self.check(&addr);
        self.ledger.reads += 1;
        let bits = self.geometry.page_bits();
        let data = self
            .pages
            .get(&addr)
            .cloned()
            .unwrap_or_else(|| BitBuf::zeros(bits));
        self.latch(addr.plane).s.copy_from(&data);
    }

    /// Copies the S-latch into D-latch `d` (Fig. 4 step ②③: reset then
    /// conditional set).
    pub fn slatch_to_dlatch(&mut self, plane: PlaneAddr, d: usize) {
        assert!(d < D_LATCHES);
        self.ledger.latch_transfers += 1;
        let set = self.latch(plane);
        let s = set.s.clone();
        set.d[d].copy_from(&s);
    }

    /// Copies D-latch `d` into the S-latch (reverse path via M7/M8).
    pub fn dlatch_to_slatch(&mut self, plane: PlaneAddr, d: usize) {
        assert!(d < D_LATCHES);
        self.ledger.latch_transfers += 1;
        let set = self.latch(plane);
        let v = set.d[d].clone();
        set.s.copy_from(&v);
    }

    /// Bitwise AND of the S-latch with D-latch `d`, result in the S-latch
    /// (Fig. 4, "Bitwise AND" sequence).
    pub fn and_dlatch_into_slatch(&mut self, plane: PlaneAddr, d: usize) {
        assert!(d < D_LATCHES);
        self.ledger.and_or_ops += 1;
        let set = self.latch(plane);
        let v = set.d[d].clone();
        set.s.and_assign(&v);
    }

    /// Bitwise OR of the S-latch into D-latch `d` (transfer without reset).
    pub fn or_slatch_into_dlatch(&mut self, plane: PlaneAddr, d: usize) {
        assert!(d < D_LATCHES);
        self.ledger.and_or_ops += 1;
        let set = self.latch(plane);
        let s = set.s.clone();
        set.d[d].or_assign(&s);
    }

    /// XOR between D-latch 1 and D-latch 2, result in D-latch 1 (the
    /// on-chip randomizer circuit, §4.3.1 item 4).
    pub fn xor_d1_d2_into_d1(&mut self, plane: PlaneAddr) {
        self.ledger.xor_ops += 1;
        let set = self.latch(plane);
        let d2 = set.d[2].clone();
        set.d[1].xor_assign(&d2);
    }

    /// Resets D-latch `d` to all zeros.
    pub fn reset_dlatch(&mut self, plane: PlaneAddr, d: usize) {
        assert!(d < D_LATCHES);
        self.ledger.latch_transfers += 1;
        self.latch(plane).d[d].clear();
    }

    /// DMA: loads a page from the channel into the S-latch.
    ///
    /// # Panics
    ///
    /// Panics if the buffer width is not a page.
    pub fn io_load_slatch(&mut self, plane: PlaneAddr, data: &BitBuf) {
        assert_eq!(data.len(), self.geometry.page_bits(), "page width mismatch");
        self.ledger.dmas += 1;
        self.latch(plane).s.copy_from(data);
    }

    /// DMA: reads D-latch `d` out to the channel.
    pub fn io_read_dlatch(&mut self, plane: PlaneAddr, d: usize) -> BitBuf {
        assert!(d < D_LATCHES);
        self.ledger.dmas += 1;
        self.latch(plane).d[d].clone()
    }

    /// Multi-wordline sensing within one block (Flash-Cosmos \[60\], used
    /// by §4.3.1): applying the read voltage to several wordlines of the
    /// same NAND string senses the **AND** of their cells — the string
    /// conducts only if every selected cell does — in a *single* read
    /// operation.
    ///
    /// # Panics
    ///
    /// Panics if `wordlines` is empty or any address is out of range.
    pub fn read_and_multi_to_slatch(
        &mut self,
        plane: PlaneAddr,
        block: usize,
        wordlines: &[usize],
    ) {
        assert!(!wordlines.is_empty(), "at least one wordline required");
        self.ledger.reads += 1; // one sensing operation regardless of count
        let bits = self.geometry.page_bits();
        let mut acc = BitBuf::ones(bits);
        for &wl in wordlines {
            let addr = PageAddr {
                plane,
                block,
                wordline: wl,
            };
            self.check(&addr);
            let page = self
                .pages
                .get(&addr)
                .cloned()
                .unwrap_or_else(|| BitBuf::zeros(bits));
            acc.and_assign(&page);
        }
        self.latch(plane).s.copy_from(&acc);
    }

    /// Multi-block sensing across blocks of one plane (Flash-Cosmos):
    /// NAND strings of different blocks share the bitlines in parallel, so
    /// selecting the same wordline position in several blocks senses the
    /// **OR** of their cells in a single read.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty or any address is out of range.
    pub fn read_or_multi_to_slatch(&mut self, plane: PlaneAddr, blocks: &[usize], wordline: usize) {
        assert!(!blocks.is_empty(), "at least one block required");
        self.ledger.reads += 1;
        let bits = self.geometry.page_bits();
        let mut acc = BitBuf::zeros(bits);
        for &block in blocks {
            let addr = PageAddr {
                plane,
                block,
                wordline,
            };
            self.check(&addr);
            if let Some(page) = self.pages.get(&addr) {
                acc.or_assign(page);
            }
        }
        self.latch(plane).s.copy_from(&acc);
    }

    /// Direct page read (conventional I/O path: read + DMA).
    pub fn read_page(&mut self, addr: PageAddr) -> BitBuf {
        self.read_to_slatch(addr);
        self.ledger.dmas += 1;
        self.latches[&addr.plane].s.clone()
    }

    /// Test/debug accessor for the S-latch contents.
    pub fn peek_slatch(&mut self, plane: PlaneAddr) -> BitBuf {
        self.latch(plane).s.clone()
    }

    /// Test/debug accessor for a D-latch's contents.
    pub fn peek_dlatch(&mut self, plane: PlaneAddr, d: usize) -> BitBuf {
        assert!(d < D_LATCHES);
        self.latch(plane).d[d].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (FlashArray, PlaneAddr, PageAddr) {
        let g = FlashGeometry::tiny_test();
        let plane = PlaneAddr {
            channel: 0,
            die: 0,
            plane: 0,
        };
        let addr = PageAddr {
            plane,
            block: 0,
            wordline: 0,
        };
        (FlashArray::new(g), plane, addr)
    }

    fn pattern(bits: usize, f: impl Fn(usize) -> bool) -> BitBuf {
        BitBuf::from_bits(&(0..bits).map(f).collect::<Vec<_>>())
    }

    #[test]
    fn program_read_roundtrip() {
        let (mut fa, plane, addr) = setup();
        let bits = fa.geometry().page_bits();
        let data = pattern(bits, |i| i % 3 == 0);
        fa.program_page(addr, data.clone());
        fa.read_to_slatch(addr);
        assert_eq!(fa.peek_slatch(plane), data);
        assert_eq!(fa.ledger().programs, 1);
        assert_eq!(fa.ledger().reads, 1);
    }

    #[test]
    fn unwritten_pages_read_zero() {
        let (mut fa, plane, addr) = setup();
        fa.read_to_slatch(addr);
        assert!(fa.peek_slatch(plane).iter().all(|b| !b));
    }

    #[test]
    fn latch_transfers_both_directions() {
        let (mut fa, plane, _) = setup();
        let bits = fa.geometry().page_bits();
        let data = pattern(bits, |i| i % 5 == 1);
        fa.io_load_slatch(plane, &data);
        fa.slatch_to_dlatch(plane, 1);
        assert_eq!(fa.peek_dlatch(plane, 1), data);
        // Overwrite S, then restore from D1.
        fa.io_load_slatch(plane, &BitBuf::zeros(bits));
        fa.dlatch_to_slatch(plane, 1);
        assert_eq!(fa.peek_slatch(plane), data);
    }

    #[test]
    fn and_or_xor_semantics() {
        let (mut fa, plane, _) = setup();
        let bits = fa.geometry().page_bits();
        let a = pattern(bits, |i| i % 2 == 0);
        let b = pattern(bits, |i| i % 3 == 0);

        // AND: S & D2 -> S
        fa.io_load_slatch(plane, &a);
        fa.slatch_to_dlatch(plane, 2);
        fa.io_load_slatch(plane, &b);
        fa.and_dlatch_into_slatch(plane, 2);
        let mut expect = b.clone();
        expect.and_assign(&a);
        assert_eq!(fa.peek_slatch(plane), expect);

        // OR: S | D0 -> D0
        fa.reset_dlatch(plane, 0);
        fa.io_load_slatch(plane, &a);
        fa.or_slatch_into_dlatch(plane, 0);
        fa.io_load_slatch(plane, &b);
        fa.or_slatch_into_dlatch(plane, 0);
        let mut expect = a.clone();
        expect.or_assign(&b);
        assert_eq!(fa.peek_dlatch(plane, 0), expect);

        // XOR: D1 ^ D2 -> D1
        fa.io_load_slatch(plane, &a);
        fa.slatch_to_dlatch(plane, 1);
        fa.io_load_slatch(plane, &b);
        fa.slatch_to_dlatch(plane, 2);
        fa.xor_d1_d2_into_d1(plane);
        let mut expect = a.clone();
        expect.xor_assign(&b);
        assert_eq!(fa.peek_dlatch(plane, 1), expect);
        // D2 must be preserved.
        assert_eq!(fa.peek_dlatch(plane, 2), b);
    }

    #[test]
    fn planes_have_independent_latches() {
        let (mut fa, p0, _) = setup();
        let p1 = PlaneAddr {
            channel: 0,
            die: 0,
            plane: 1,
        };
        let bits = fa.geometry().page_bits();
        fa.io_load_slatch(p0, &BitBuf::ones(bits));
        assert!(fa.peek_slatch(p1).iter().all(|b| !b));
    }

    #[test]
    fn compute_ops_incur_no_wear() {
        let (mut fa, plane, addr) = setup();
        let bits = fa.geometry().page_bits();
        fa.program_page(addr, BitBuf::ones(bits));
        fa.reset_ledger();
        fa.read_to_slatch(addr);
        fa.slatch_to_dlatch(plane, 1);
        fa.and_dlatch_into_slatch(plane, 1);
        fa.xor_d1_d2_into_d1(plane);
        assert_eq!(
            fa.ledger().wear(),
            0,
            "latch compute must not wear the array"
        );
    }

    #[test]
    fn erase_clears_block_and_counts_wear() {
        let (mut fa, plane, addr) = setup();
        let bits = fa.geometry().page_bits();
        fa.program_page(addr, BitBuf::ones(bits));
        let other_block = PageAddr {
            plane,
            block: 1,
            wordline: 2,
        };
        fa.program_page(other_block, BitBuf::ones(bits));
        fa.erase_block(plane, 0);
        fa.read_to_slatch(addr);
        assert!(
            fa.peek_slatch(plane).iter().all(|b| !b),
            "erased page must read zero"
        );
        // Other blocks untouched.
        fa.read_to_slatch(other_block);
        assert!(fa.peek_slatch(plane).iter().all(|b| b));
        assert_eq!(fa.ledger().erases, 1);
        assert_eq!(fa.ledger().wear(), 3); // 2 programs + 1 erase
    }

    #[test]
    fn multi_wordline_sensing_computes_and() {
        let (mut fa, plane, _) = setup();
        let bits = fa.geometry().page_bits();
        let a = pattern(bits, |i| i % 2 == 0);
        let b = pattern(bits, |i| i % 3 == 0);
        let c = pattern(bits, |i| i % 5 != 4);
        fa.program_page(
            PageAddr {
                plane,
                block: 1,
                wordline: 0,
            },
            a.clone(),
        );
        fa.program_page(
            PageAddr {
                plane,
                block: 1,
                wordline: 5,
            },
            b.clone(),
        );
        fa.program_page(
            PageAddr {
                plane,
                block: 1,
                wordline: 9,
            },
            c.clone(),
        );
        fa.reset_ledger();
        fa.read_and_multi_to_slatch(plane, 1, &[0, 5, 9]);
        let mut expect = a;
        expect.and_assign(&b);
        expect.and_assign(&c);
        assert_eq!(fa.peek_slatch(plane), expect);
        // One sensing operation for a 3-operand AND: the Flash-Cosmos win.
        assert_eq!(fa.ledger().reads, 1);
    }

    #[test]
    fn multi_block_sensing_computes_or() {
        let (mut fa, plane, _) = setup();
        let bits = fa.geometry().page_bits();
        let a = pattern(bits, |i| i % 7 == 0);
        let b = pattern(bits, |i| i % 11 == 0);
        fa.program_page(
            PageAddr {
                plane,
                block: 0,
                wordline: 3,
            },
            a.clone(),
        );
        fa.program_page(
            PageAddr {
                plane,
                block: 2,
                wordline: 3,
            },
            b.clone(),
        );
        fa.reset_ledger();
        fa.read_or_multi_to_slatch(plane, &[0, 2, 3], 3); // block 3 unwritten
        let mut expect = a;
        expect.or_assign(&b);
        assert_eq!(fa.peek_slatch(plane), expect);
        assert_eq!(fa.ledger().reads, 1);
    }

    #[test]
    #[should_panic(expected = "out of geometry")]
    fn bad_address_rejected() {
        let (mut fa, plane, _) = setup();
        let bad = PageAddr {
            plane,
            block: 99,
            wordline: 0,
        };
        fa.read_to_slatch(bad);
    }
}
