#![warn(missing_docs)]

//! # cm-flash
//!
//! A functional + timing simulator of 3D NAND flash with the
//! compute-capable latch peripherals CIPHERMATCH requires (paper §2.3,
//! §4.3.1): channels/dies/planes/blocks/wordlines, per-plane sensing and
//! data latches with AND/OR/XOR ops, ESP SLC reads, and the `bop_add`
//! bit-serial adder µ-program of Fig. 5.
//!
//! The model is exact at the bit level — `bop_add` provably computes
//! wrapping addition — and every primitive op is logged with the Table 3
//! latencies/energies, so the same run yields both functional results and
//! the inputs to the paper's Eq. 9–11 cost model.
//!
//! ## Example
//!
//! ```
//! use cm_flash::{bop_add, store_words_vertical, words_to_bitplanes,
//!                bitplanes_to_words, FlashArray, FlashGeometry, PlaneAddr};
//!
//! let mut flash = FlashArray::new(FlashGeometry::tiny_test());
//! let plane = PlaneAddr { channel: 0, die: 0, plane: 0 };
//! let width = flash.geometry().page_bits();
//! let a = vec![41u32; width];
//! store_words_vertical(&mut flash, plane, 0, 0, &a); // one-time data load
//! flash.reset_ledger();
//! let sums = bop_add(&mut flash, plane, 0, 0, &words_to_bitplanes(&vec![1u32; width], 32));
//! assert!(bitplanes_to_words(&sums).iter().all(|&s| s == 42));
//! assert_eq!(flash.ledger().wear(), 0); // searching never programs/erases
//! ```

mod adder;
mod bitbuf;
mod chip;
mod geometry;
mod timing;

pub use adder::{bitplanes_to_words, bop_add, store_words_vertical, words_to_bitplanes};
pub use bitbuf::BitBuf;
pub use chip::{FlashArray, D_LATCHES};
pub use geometry::{FlashGeometry, PageAddr, PlaneAddr};
pub use timing::{FlashEnergy, FlashLedger, FlashTimings};
