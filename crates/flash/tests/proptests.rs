//! Property-based tests of the flash substrate: the bit-serial adder
//! against wrapping addition on arbitrary operands and widths, and
//! bit-plane transposition round-trips.

use cm_flash::{
    bitplanes_to_words, bop_add, store_words_vertical, words_to_bitplanes, FlashArray,
    FlashGeometry, PlaneAddr,
};
use proptest::prelude::*;

fn lanes() -> usize {
    FlashGeometry::tiny_test().page_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bop_add_equals_wrapping_add(seed_a in any::<u32>(), seed_b in any::<u32>()) {
        let width = lanes();
        let a: Vec<u32> = (0..width as u32).map(|i| seed_a.wrapping_mul(i.wrapping_add(7))).collect();
        let b: Vec<u32> = (0..width as u32).map(|i| seed_b.rotate_left(i % 31) ^ i).collect();
        let mut fa = FlashArray::new(FlashGeometry::tiny_test());
        let plane = PlaneAddr { channel: 0, die: 0, plane: 0 };
        store_words_vertical(&mut fa, plane, 0, 0, &a);
        let sums = bop_add(&mut fa, plane, 0, 0, &words_to_bitplanes(&b, 32));
        let got = bitplanes_to_words(&sums);
        let expect: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| x.wrapping_add(y)).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn narrow_width_addition_is_modular(width in 1usize..=31, seed in any::<u32>()) {
        // Adding with fewer bit-planes computes addition mod 2^width.
        let n = lanes();
        let a: Vec<u32> = (0..n as u32).map(|i| seed.wrapping_add(i * 3)).collect();
        let b: Vec<u32> = (0..n as u32).map(|i| seed.rotate_right(5) ^ (i * 7)).collect();
        let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
        let a_m: Vec<u32> = a.iter().map(|&x| x & mask).collect();
        let b_m: Vec<u32> = b.iter().map(|&x| x & mask).collect();
        let mut fa = FlashArray::new(FlashGeometry::tiny_test());
        let plane = PlaneAddr { channel: 0, die: 0, plane: 0 };
        // Store only `width` bit-planes of A.
        for (bit, page) in words_to_bitplanes(&a_m, width).into_iter().enumerate() {
            fa.program_page(
                cm_flash::PageAddr { plane, block: 0, wordline: bit },
                page,
            );
        }
        let sums = bop_add(&mut fa, plane, 0, 0, &words_to_bitplanes(&b_m, width));
        let got = bitplanes_to_words(&sums);
        let expect: Vec<u32> =
            a_m.iter().zip(&b_m).map(|(&x, &y)| x.wrapping_add(y) & mask).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn transposition_roundtrip(words in prop::collection::vec(any::<u32>(), 1..300)) {
        let planes = words_to_bitplanes(&words, 32);
        prop_assert_eq!(bitplanes_to_words(&planes), words);
    }

    #[test]
    fn addition_never_wears_flash(seed in any::<u32>()) {
        let n = lanes();
        let a: Vec<u32> = (0..n as u32).map(|i| seed ^ i).collect();
        let mut fa = FlashArray::new(FlashGeometry::tiny_test());
        let plane = PlaneAddr { channel: 0, die: 0, plane: 0 };
        store_words_vertical(&mut fa, plane, 0, 0, &a);
        fa.reset_ledger();
        let _ = bop_add(&mut fa, plane, 0, 0, &words_to_bitplanes(&a, 32));
        prop_assert_eq!(fa.ledger().wear(), 0);
    }
}
