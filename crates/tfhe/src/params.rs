//! TFHE parameter sets.
//!
//! The paper's Boolean baseline (Aziz et al. \[17\], Pradel et al. \[33\])
//! encrypts every database/query bit individually under TFHE and evaluates
//! XNOR/AND gates with per-gate bootstrapping. These parameters mirror the
//! classic TFHE gate-bootstrapping instantiation (LWE dimension 630, ring
//! dimension 1024, base-2^7 three-level gadget), with noise chosen to keep
//! the decryption-failure probability negligible for reproducible tests.

/// Static parameters of a TFHE instantiation.
#[derive(Debug, Clone)]
pub struct TfheParams {
    /// LWE dimension `n` (ciphertext vector length).
    pub lwe_dim: usize,
    /// Standard deviation of fresh LWE noise, as a fraction of the torus.
    pub lwe_noise_std: f64,
    /// Ring dimension `N` (power of two) for RLWE/RGSW.
    pub rlwe_dim: usize,
    /// Standard deviation of RLWE noise, as a fraction of the torus.
    pub rlwe_noise_std: f64,
    /// log2 of the gadget base `Bg` used in the bootstrapping key.
    pub decomp_base_log: u32,
    /// Number of gadget levels `l`.
    pub decomp_levels: usize,
    /// log2 of the key-switching base.
    pub ks_base_log: u32,
    /// Number of key-switching levels `t`.
    pub ks_levels: usize,
    /// Preset name.
    pub name: &'static str,
}

impl TfheParams {
    /// TFHE-lib-class gate bootstrapping parameters (`n = 630`, `N = 1024`,
    /// `Bg = 2^7`, `l = 3`, key switch base `2^2` with 8 levels).
    ///
    /// Noise levels favour correctness margin; see DESIGN.md for the
    /// security caveat.
    pub fn boolean_default() -> Self {
        Self {
            lwe_dim: 630,
            lwe_noise_std: 2f64.powi(-17),
            rlwe_dim: 1024,
            rlwe_noise_std: 2f64.powi(-25),
            decomp_base_log: 7,
            decomp_levels: 3,
            ks_base_log: 2,
            ks_levels: 8,
            name: "boolean_default",
        }
    }

    /// Tiny, fast, **insecure** parameters for unit tests; every gate still
    /// exercises the full bootstrap pipeline.
    pub fn fast_insecure_test() -> Self {
        Self {
            lwe_dim: 8,
            lwe_noise_std: 2f64.powi(-30),
            rlwe_dim: 256,
            rlwe_noise_std: 2f64.powi(-30),
            decomp_base_log: 8,
            decomp_levels: 2,
            ks_base_log: 4,
            ks_levels: 4,
            name: "fast_insecure_test",
        }
    }

    /// Medium parameters: noticeably faster than [`Self::boolean_default`]
    /// while keeping a realistic bootstrap structure; used by integration
    /// tests that run dozens of gates.
    pub fn medium_insecure_test() -> Self {
        Self {
            lwe_dim: 64,
            lwe_noise_std: 2f64.powi(-25),
            rlwe_dim: 512,
            rlwe_noise_std: 2f64.powi(-28),
            decomp_base_log: 7,
            decomp_levels: 3,
            ks_base_log: 3,
            ks_levels: 6,
            name: "medium_insecure_test",
        }
    }

    /// The gadget base `Bg`.
    pub fn decomp_base(&self) -> u32 {
        1 << self.decomp_base_log
    }

    /// Serialized size of one LWE ciphertext in bytes (`(n + 1)` u32 words)
    /// — the per-bit footprint behind the paper's ">200x" Boolean blow-up
    /// observation (§3.1).
    pub fn lwe_ciphertext_bytes(&self) -> usize {
        (self.lwe_dim + 1) * 4
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the gadget would exceed the 32-bit torus or the ring
    /// dimension is not a power of two.
    pub fn validate(&self) {
        assert!(
            self.rlwe_dim.is_power_of_two(),
            "rlwe_dim must be a power of two"
        );
        assert!(
            self.decomp_base_log * self.decomp_levels as u32 <= 32,
            "gadget exceeds torus precision"
        );
        assert!(
            self.ks_base_log * self.ks_levels as u32 <= 32,
            "key-switch gadget exceeds torus precision"
        );
        assert!(self.lwe_dim >= 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        TfheParams::boolean_default().validate();
        TfheParams::fast_insecure_test().validate();
        TfheParams::medium_insecure_test().validate();
    }

    #[test]
    fn boolean_blowup_exceeds_200x() {
        // One plaintext bit becomes an (n+1)-word LWE ciphertext: the
        // Boolean approach's memory blow-up (paper §3.1 reports >200x).
        let p = TfheParams::boolean_default();
        let bits_per_ct = p.lwe_ciphertext_bytes() * 8;
        assert!(bits_per_ct > 200, "blow-up only {bits_per_ct}x");
    }

    #[test]
    fn gadget_fits_torus() {
        let p = TfheParams::boolean_default();
        assert!(p.decomp_base_log * p.decomp_levels as u32 <= 32);
        assert_eq!(p.decomp_base(), 128);
    }
}
