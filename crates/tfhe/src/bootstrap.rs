//! Gate bootstrapping: blind rotation, sample extraction and key switching.
//!
//! `bootstrap_to_sign` maps an input LWE ciphertext with phase `φ` to a
//! fresh LWE encryption of `+1/8` when `φ ∈ (0, 1/2)` and `-1/8` when
//! `φ ∈ (-1/2, 0)`, resetting noise in the process. Every Boolean gate is a
//! small linear combination followed by this sign bootstrap.

use rand::Rng;

use crate::lwe::{LweCiphertext, LweKey};
use crate::params::TfheParams;
use crate::polymul::PolyMulContext;
use crate::rgsw::Rgsw;
use crate::rlwe::{RlweCiphertext, RlweKey};
use crate::torus::{round_to_2n, EIGHTH};

/// Bootstrapping key: one RGSW encryption (under the ring key) of each LWE
/// key bit.
#[derive(Debug, Clone)]
pub struct BootstrapKey {
    rgsw: Vec<Rgsw>,
}

impl BootstrapKey {
    /// Generates the bootstrapping key.
    pub fn generate<R: Rng + ?Sized>(
        lwe_key: &LweKey,
        rlwe_key: &RlweKey,
        params: &TfheParams,
        ctx: &PolyMulContext,
        rng: &mut R,
    ) -> Self {
        let rgsw = lwe_key
            .bits
            .iter()
            .map(|&s| Rgsw::encrypt_bit(s, rlwe_key, params, ctx, rng))
            .collect();
        Self { rgsw }
    }

    /// Number of RGSW entries (the LWE dimension).
    pub fn len(&self) -> usize {
        self.rgsw.len()
    }

    /// True when empty (never for generated keys).
    pub fn is_empty(&self) -> bool {
        self.rgsw.is_empty()
    }
}

/// Key-switching key from the extracted `N`-dimensional LWE key back to the
/// base `n`-dimensional key.
#[derive(Debug, Clone)]
pub struct KeySwitchKey {
    /// `ks[j][m]` encrypts `z_j * 2^(32 - (m+1) * ks_base_log)`.
    ks: Vec<Vec<LweCiphertext>>,
    base_log: u32,
    levels: usize,
}

impl KeySwitchKey {
    /// Generates the key-switching key.
    pub fn generate<R: Rng + ?Sized>(
        from: &LweKey,
        to: &LweKey,
        params: &TfheParams,
        rng: &mut R,
    ) -> Self {
        let ks = from
            .bits
            .iter()
            .map(|&zj| {
                (0..params.ks_levels)
                    .map(|m| {
                        let g = 1u32 << (32 - (m as u32 + 1) * params.ks_base_log);
                        LweCiphertext::encrypt(zj.wrapping_mul(g), to, params.lwe_noise_std, rng)
                    })
                    .collect()
            })
            .collect();
        Self {
            ks,
            base_log: params.ks_base_log,
            levels: params.ks_levels,
        }
    }

    /// Switches an LWE ciphertext from the source key to the target key.
    pub fn switch(&self, ct: &LweCiphertext) -> LweCiphertext {
        let out_dim = self.ks[0][0].dim();
        let mut out = LweCiphertext::trivial(ct.b, out_dim);
        let base = 1u32 << self.base_log;
        let total = self.base_log * self.levels as u32;
        let rounding = if total < 32 {
            1u32 << (32 - total - 1)
        } else {
            0
        };
        for (j, &aj) in ct.a.iter().enumerate() {
            let v = if total < 32 {
                aj.wrapping_add(rounding) >> (32 - total)
            } else {
                aj
            };
            for m in 0..self.levels {
                let shift = (self.levels - 1 - m) as u32 * self.base_log;
                let digit = (v >> shift) & (base - 1);
                if digit == 0 {
                    continue;
                }
                out = out.sub(&self.ks[j][m].scale(digit));
            }
        }
        out
    }
}

/// Blind rotation: returns an RLWE accumulator whose phase is
/// `X^(-φ̃) * test_vector`, where `φ̃` is the input phase rescaled to
/// `Z_{2N}`.
pub fn blind_rotate(
    ct: &LweCiphertext,
    bsk: &BootstrapKey,
    test_vector: &[u32],
    params: &TfheParams,
    ctx: &PolyMulContext,
) -> RlweCiphertext {
    let n2 = 2 * params.rlwe_dim;
    let b_tilde = round_to_2n(ct.b, params.rlwe_dim);
    let mut acc = RlweCiphertext::trivial(test_vector.to_vec()).mul_monomial(n2 - b_tilde);
    for (i, rgsw) in bsk.rgsw.iter().enumerate() {
        let a_tilde = round_to_2n(ct.a[i], params.rlwe_dim);
        if a_tilde == 0 {
            continue;
        }
        // CMux(s_i, acc, X^{a_i} * acc): adds a_i * s_i to the exponent.
        let rotated = acc.mul_monomial(a_tilde);
        acc = rgsw.cmux(&acc, &rotated, params, ctx);
    }
    acc
}

/// The constant test vector `(1/8) * (1 + x + ... + x^(N-1))`, which turns
/// blind rotation into the sign function with output `±1/8`.
pub fn sign_test_vector(n: usize) -> Vec<u32> {
    vec![EIGHTH; n]
}

/// Full gate bootstrap: maps phase sign to a fresh `±1/8` encryption under
/// the base LWE key.
pub fn bootstrap_to_sign(
    ct: &LweCiphertext,
    bsk: &BootstrapKey,
    ksk: &KeySwitchKey,
    params: &TfheParams,
    ctx: &PolyMulContext,
) -> LweCiphertext {
    let tv = sign_test_vector(params.rlwe_dim);
    let acc = blind_rotate(ct, bsk, &tv, params, ctx);
    let extracted = acc.sample_extract();
    ksk.switch(&extracted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::{decode_bit, encode_bit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        params: TfheParams,
        lwe_key: LweKey,
        rlwe_key: RlweKey,
        bsk: BootstrapKey,
        ksk: KeySwitchKey,
        ctx: PolyMulContext,
        rng: StdRng,
    }

    fn fixture() -> Fixture {
        let params = TfheParams::fast_insecure_test();
        let mut rng = StdRng::seed_from_u64(77);
        let ctx = PolyMulContext::new(params.rlwe_dim);
        let lwe_key = LweKey::generate(params.lwe_dim, &mut rng);
        let rlwe_key = RlweKey::generate(params.rlwe_dim, &mut rng);
        let bsk = BootstrapKey::generate(&lwe_key, &rlwe_key, &params, &ctx, &mut rng);
        let ksk = KeySwitchKey::generate(&rlwe_key.as_lwe_key(), &lwe_key, &params, &mut rng);
        Fixture {
            params,
            lwe_key,
            rlwe_key,
            bsk,
            ksk,
            ctx,
            rng,
        }
    }

    #[test]
    fn key_switch_preserves_message() {
        let mut f = fixture();
        let source = f.rlwe_key.as_lwe_key();
        for bit in [true, false] {
            let ct = LweCiphertext::encrypt(
                encode_bit(bit),
                &source,
                f.params.lwe_noise_std,
                &mut f.rng,
            );
            let switched = f.ksk.switch(&ct);
            assert_eq!(switched.dim(), f.params.lwe_dim);
            assert_eq!(decode_bit(switched.phase(&f.lwe_key)), bit);
        }
    }

    #[test]
    fn blind_rotate_reads_sign() {
        let mut f = fixture();
        let tv = sign_test_vector(f.params.rlwe_dim);
        for bit in [true, false] {
            let ct = LweCiphertext::encrypt_with_params(
                encode_bit(bit),
                &f.lwe_key,
                &f.params,
                &mut f.rng,
            );
            let acc = blind_rotate(&ct, &f.bsk, &tv, &f.params, &f.ctx);
            let extracted = acc.sample_extract();
            let got = decode_bit(extracted.phase(&f.rlwe_key.as_lwe_key()));
            assert_eq!(got, bit, "blind rotation lost the sign for {bit}");
        }
    }

    #[test]
    fn full_bootstrap_refreshes_both_signs() {
        let mut f = fixture();
        for bit in [true, false] {
            let ct = LweCiphertext::encrypt_with_params(
                encode_bit(bit),
                &f.lwe_key,
                &f.params,
                &mut f.rng,
            );
            let out = bootstrap_to_sign(&ct, &f.bsk, &f.ksk, &f.params, &f.ctx);
            assert_eq!(decode_bit(out.phase(&f.lwe_key)), bit);
            // Output magnitude is close to 1/8 again.
            let mag = (out.phase(&f.lwe_key) as i32).unsigned_abs();
            let err = (mag as i64 - EIGHTH as i64).abs();
            assert!(err < (1 << 26), "output phase drifted: {err}");
        }
    }

    #[test]
    fn bootstrap_is_repeatable() {
        // Bootstrapping its own output must stay stable (noise is reset).
        let mut f = fixture();
        let mut ct =
            LweCiphertext::encrypt_with_params(encode_bit(true), &f.lwe_key, &f.params, &mut f.rng);
        for _ in 0..3 {
            ct = bootstrap_to_sign(&ct, &f.bsk, &f.ksk, &f.params, &f.ctx);
            assert!(decode_bit(ct.phase(&f.lwe_key)));
        }
    }
}
