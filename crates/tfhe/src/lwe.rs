//! LWE ciphertexts over the discretized torus.
//!
//! Every database/query bit in the Boolean baseline becomes one
//! [`LweCiphertext`] `(a, b)` with `b = <a, s> + m + e`. Gate inputs are
//! combined linearly here and non-linearity comes from bootstrapping
//! (see [`crate::bootstrap`]).

use rand::Rng;

use crate::params::TfheParams;
use crate::torus::gaussian_torus;

/// A binary LWE secret key of dimension `n`.
#[derive(Debug, Clone)]
pub struct LweKey {
    pub(crate) bits: Vec<u32>,
}

impl LweKey {
    /// Samples a fresh binary key.
    pub fn generate<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Self {
        Self {
            bits: (0..dim).map(|_| rng.gen_range(0..=1u32)).collect(),
        }
    }

    /// Wraps existing key bits (used by sample extraction).
    pub(crate) fn from_bits(bits: Vec<u32>) -> Self {
        Self { bits }
    }

    /// Key dimension.
    pub fn dim(&self) -> usize {
        self.bits.len()
    }
}

/// An LWE ciphertext `(a, b)` with `b = <a, s> + m + e` over `Z_{2^32}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LweCiphertext {
    pub(crate) a: Vec<u32>,
    pub(crate) b: u32,
}

impl LweCiphertext {
    /// The trivial (noiseless, keyless) encryption of `mu`; used for gate
    /// bias constants.
    pub fn trivial(mu: u32, dim: usize) -> Self {
        Self {
            a: vec![0; dim],
            b: mu,
        }
    }

    /// Encrypts the torus message `mu` under `key`.
    pub fn encrypt<R: Rng + ?Sized>(mu: u32, key: &LweKey, noise_std: f64, rng: &mut R) -> Self {
        let a: Vec<u32> = (0..key.dim()).map(|_| rng.gen::<u32>()).collect();
        let dot = a.iter().zip(&key.bits).fold(0u32, |acc, (&ai, &si)| {
            acc.wrapping_add(ai.wrapping_mul(si))
        });
        let e = gaussian_torus(noise_std, rng);
        Self {
            b: dot.wrapping_add(mu).wrapping_add(e),
            a,
        }
    }

    /// Convenience constructor reading noise parameters from `params`.
    pub fn encrypt_with_params<R: Rng + ?Sized>(
        mu: u32,
        key: &LweKey,
        params: &TfheParams,
        rng: &mut R,
    ) -> Self {
        Self::encrypt(mu, key, params.lwe_noise_std, rng)
    }

    /// The noisy phase `b - <a, s>` (message plus noise).
    pub fn phase(&self, key: &LweKey) -> u32 {
        let dot = self.a.iter().zip(&key.bits).fold(0u32, |acc, (&ai, &si)| {
            acc.wrapping_add(ai.wrapping_mul(si))
        });
        self.b.wrapping_sub(dot)
    }

    /// Ciphertext dimension.
    pub fn dim(&self) -> usize {
        self.a.len()
    }

    /// Homomorphic addition.
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(self.dim(), other.dim(), "LWE dimension mismatch");
        Self {
            a: self
                .a
                .iter()
                .zip(&other.a)
                .map(|(&x, &y)| x.wrapping_add(y))
                .collect(),
            b: self.b.wrapping_add(other.b),
        }
    }

    /// Homomorphic subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        assert_eq!(self.dim(), other.dim(), "LWE dimension mismatch");
        Self {
            a: self
                .a
                .iter()
                .zip(&other.a)
                .map(|(&x, &y)| x.wrapping_sub(y))
                .collect(),
            b: self.b.wrapping_sub(other.b),
        }
    }

    /// Homomorphic negation.
    pub fn neg(&self) -> Self {
        Self {
            a: self.a.iter().map(|&x| x.wrapping_neg()).collect(),
            b: self.b.wrapping_neg(),
        }
    }

    /// Multiplies the ciphertext by a small integer constant.
    pub fn scale(&self, k: u32) -> Self {
        Self {
            a: self.a.iter().map(|&x| x.wrapping_mul(k)).collect(),
            b: self.b.wrapping_mul(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::{decode_bit, encode_bit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (TfheParams, LweKey, StdRng) {
        let p = crate::params::TfheParams::fast_insecure_test();
        let mut rng = StdRng::seed_from_u64(9);
        let key = LweKey::generate(p.lwe_dim, &mut rng);
        (p, key, rng)
    }

    #[test]
    fn encrypt_phase_roundtrip() {
        let (p, key, mut rng) = setup();
        for bit in [true, false] {
            let ct = LweCiphertext::encrypt_with_params(encode_bit(bit), &key, &p, &mut rng);
            assert_eq!(decode_bit(ct.phase(&key)), bit);
        }
    }

    #[test]
    fn linear_homomorphism() {
        let (p, key, mut rng) = setup();
        let x = LweCiphertext::encrypt(1 << 28, &key, p.lwe_noise_std, &mut rng);
        let y = LweCiphertext::encrypt(1 << 27, &key, p.lwe_noise_std, &mut rng);
        let sum_phase = x.add(&y).phase(&key) as i64;
        let expect = (1i64 << 28) + (1 << 27);
        assert!((sum_phase - expect).abs() < 1 << 16);
        let diff_phase = x.sub(&y).phase(&key) as i64;
        assert!((diff_phase - (1i64 << 27)).abs() < 1 << 16);
    }

    #[test]
    fn negation_flips_bit() {
        let (p, key, mut rng) = setup();
        let ct = LweCiphertext::encrypt_with_params(encode_bit(true), &key, &p, &mut rng);
        assert!(!decode_bit(ct.neg().phase(&key)));
    }

    #[test]
    fn trivial_has_exact_phase() {
        let ct = LweCiphertext::trivial(12345, 8);
        let key = LweKey::from_bits(vec![1; 8]);
        assert_eq!(ct.phase(&key), 12345);
    }

    #[test]
    fn scale_doubles_phase() {
        let (p, key, mut rng) = setup();
        let ct = LweCiphertext::encrypt(1 << 26, &key, p.lwe_noise_std, &mut rng);
        let phase = ct.scale(2).phase(&key) as i64;
        assert!((phase - (1i64 << 27)).abs() < 1 << 16);
    }
}
