//! Exact negacyclic multiplication of torus polynomials.
//!
//! Blind rotation multiplies small signed digit polynomials (|d| ≤ Bg/2)
//! by `u32` torus polynomials. The exact integer convolution is bounded by
//! `N * (Bg/2) * 2^32 < 2^50`, so a single NTT modulo a 62-bit prime
//! computes it exactly; the result is then wrapped back to the `2^32`
//! torus.

use cm_hemath::{find_ntt_prime, Modulus, NttTable};

/// NTT machinery for exact products wrapped to the `u32` torus.
#[derive(Debug)]
pub struct PolyMulContext {
    n: usize,
    p: Modulus,
    ntt: NttTable,
}

impl PolyMulContext {
    /// Builds a context for ring dimension `n`.
    pub fn new(n: usize) -> Self {
        let p = Modulus::new(find_ntt_prime(62, n));
        let ntt = NttTable::new(p, n);
        Self { n, p, ntt }
    }

    /// Ring dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Lifts a `u32` torus polynomial into NTT domain mod `p`.
    pub fn forward_u32(&self, poly: &[u32]) -> Vec<u64> {
        assert_eq!(poly.len(), self.n);
        let mut v: Vec<u64> = poly.iter().map(|&c| c as u64).collect();
        self.ntt.forward(&mut v);
        v
    }

    /// Lifts a signed digit polynomial into NTT domain mod `p`.
    pub fn forward_i32(&self, poly: &[i32]) -> Vec<u64> {
        assert_eq!(poly.len(), self.n);
        let mut v: Vec<u64> = poly.iter().map(|&c| self.p.from_signed(c as i64)).collect();
        self.ntt.forward(&mut v);
        v
    }

    /// Allocates a zeroed NTT-domain accumulator.
    pub fn zero_acc(&self) -> Vec<u64> {
        vec![0u64; self.n]
    }

    /// `acc += x * y` point-wise in NTT domain.
    pub fn mul_acc(&self, x: &[u64], y: &[u64], acc: &mut [u64]) {
        self.ntt.pointwise_acc(x, y, acc);
    }

    /// Inverse-transforms an accumulator and wraps each exact integer
    /// coefficient onto the `u32` torus.
    ///
    /// Correct as long as the true integer magnitudes stay below `p/2`
    /// (guaranteed by the gadget bounds; see module docs).
    pub fn inverse_to_torus(&self, acc: &mut [u64]) -> Vec<u32> {
        self.ntt.inverse(acc);
        acc.iter().map(|&c| self.p.center(c) as u32).collect()
    }

    /// One-shot product of a signed digit polynomial and a torus polynomial.
    pub fn mul_i32_u32(&self, d: &[i32], t: &[u32]) -> Vec<u32> {
        let fd = self.forward_i32(d);
        let ft = self.forward_u32(t);
        let mut acc = self.zero_acc();
        self.mul_acc(&fd, &ft, &mut acc);
        self.inverse_to_torus(&mut acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference schoolbook negacyclic product wrapped to u32.
    fn schoolbook(d: &[i32], t: &[u32]) -> Vec<u32> {
        let n = d.len();
        let mut out = vec![0i64; n];
        for (i, &di) in d.iter().enumerate() {
            for (j, &tj) in t.iter().enumerate() {
                let prod = di as i64 * tj as i64;
                let k = i + j;
                if k < n {
                    out[k] = out[k].wrapping_add(prod);
                } else {
                    out[k - n] = out[k - n].wrapping_sub(prod);
                }
            }
        }
        out.iter().map(|&c| c as u32).collect()
    }

    #[test]
    fn exact_product_matches_schoolbook() {
        let ctx = PolyMulContext::new(64);
        let d: Vec<i32> = (0..64).map(|i| ((i * 13) % 129) - 64).collect();
        let t: Vec<u32> = (0..64u32).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
        assert_eq!(ctx.mul_i32_u32(&d, &t), schoolbook(&d, &t));
    }

    #[test]
    fn identity_digit_polynomial() {
        let ctx = PolyMulContext::new(16);
        let mut d = vec![0i32; 16];
        d[0] = 1;
        let t: Vec<u32> = (0..16u32).map(|i| i.wrapping_mul(0xDEADBEEF)).collect();
        assert_eq!(ctx.mul_i32_u32(&d, &t), t);
    }

    #[test]
    fn negative_digit_negates() {
        let ctx = PolyMulContext::new(16);
        let mut d = vec![0i32; 16];
        d[0] = -1;
        let t: Vec<u32> = (1..17u32).collect();
        let got = ctx.mul_i32_u32(&d, &t);
        let expect: Vec<u32> = t.iter().map(|&x| x.wrapping_neg()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn accumulation_is_linear() {
        let ctx = PolyMulContext::new(32);
        let d1: Vec<i32> = (0..32).map(|i| (i % 7) - 3).collect();
        let d2: Vec<i32> = (0..32).map(|i| (i % 5) - 2).collect();
        let t: Vec<u32> = (0..32u32).map(|i| i.wrapping_mul(77777)).collect();
        // (d1 + d2) * t == d1*t + d2*t on the torus.
        let lhs = {
            let sum: Vec<i32> = d1.iter().zip(&d2).map(|(&x, &y)| x + y).collect();
            ctx.mul_i32_u32(&sum, &t)
        };
        let rhs: Vec<u32> = ctx
            .mul_i32_u32(&d1, &t)
            .iter()
            .zip(ctx.mul_i32_u32(&d2, &t))
            .map(|(&x, y)| x.wrapping_add(y))
            .collect();
        assert_eq!(lhs, rhs);
    }
}
