#![warn(missing_docs)]

//! # cm-tfhe
//!
//! A from-scratch TFHE-style Boolean FHE library: LWE/RLWE/RGSW over the
//! discretized `2^32` torus with per-gate bootstrapping (blind rotation,
//! sample extraction, key switching).
//!
//! This is the substrate for the paper's **Boolean baseline** (§2.2): prior
//! works \[17, 33\] encrypt every database and query bit individually under
//! TFHE and evaluate secure string matching with homomorphic XNOR + AND
//! gates. Its two costs — per-gate bootstrapping latency and a >200x
//! per-bit memory blow-up — are exactly what CIPHERMATCH's packing and
//! addition-only matching eliminate.
//!
//! ## Example
//!
//! ```
//! use cm_tfhe::{ClientKey, ServerKey, TfheParams};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let client = ClientKey::generate(TfheParams::fast_insecure_test(), &mut rng);
//! let server = ServerKey::generate(&client, &mut rng);
//! let a = client.encrypt(true, &mut rng);
//! let b = client.encrypt(false, &mut rng);
//! // XNOR is the encrypted bit-equality test used by Boolean matching.
//! assert!(!client.decrypt(&server.xnor(&a, &b)));
//! ```

mod bootstrap;
mod gates;
mod lwe;
mod params;
mod polymul;
mod rgsw;
mod rlwe;
mod torus;

pub use bootstrap::{
    blind_rotate, bootstrap_to_sign, sign_test_vector, BootstrapKey, KeySwitchKey,
};
pub use gates::{BitCiphertext, ClientKey, ServerKey};
pub use lwe::{LweCiphertext, LweKey};
pub use params::TfheParams;
pub use polymul::PolyMulContext;
pub use rgsw::Rgsw;
pub use rlwe::{RlweCiphertext, RlweKey};
pub use torus::{decode_bit, encode_bit};
