//! RLWE ("TLWE") ciphertexts over torus polynomials.
//!
//! The blind-rotation accumulator is an RLWE ciphertext `(a, b)` with
//! `b = a * z + m + e` over `T_N[x] = T[x]/(x^N + 1)`. Sample extraction
//! turns coefficient 0 of an RLWE phase into an `N`-dimensional LWE
//! ciphertext under the ring key's coefficient vector.

use rand::Rng;

use crate::lwe::{LweCiphertext, LweKey};
use crate::polymul::PolyMulContext;
use crate::torus::{gaussian_torus, mul_monomial, poly_add, poly_sub};

/// A binary RLWE secret key (polynomial with 0/1 coefficients).
#[derive(Debug, Clone)]
pub struct RlweKey {
    pub(crate) coeffs: Vec<u32>,
}

impl RlweKey {
    /// Samples a fresh binary ring key of dimension `n`.
    pub fn generate<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        Self {
            coeffs: (0..n).map(|_| rng.gen_range(0..=1u32)).collect(),
        }
    }

    /// Ring dimension.
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// Reinterprets the ring key as an `N`-dimensional LWE key (the key
    /// under which sample-extracted ciphertexts live).
    pub fn as_lwe_key(&self) -> LweKey {
        LweKey::from_bits(self.coeffs.clone())
    }
}

/// An RLWE ciphertext `(a, b)`, `b = a z + m + e`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RlweCiphertext {
    pub(crate) a: Vec<u32>,
    pub(crate) b: Vec<u32>,
}

impl RlweCiphertext {
    /// The trivial encryption of a message polynomial (zero mask, no noise).
    pub fn trivial(m: Vec<u32>) -> Self {
        let n = m.len();
        Self {
            a: vec![0; n],
            b: m,
        }
    }

    /// Encrypts a torus message polynomial under `key`.
    pub fn encrypt<R: Rng + ?Sized>(
        m: &[u32],
        key: &RlweKey,
        noise_std: f64,
        ctx: &PolyMulContext,
        rng: &mut R,
    ) -> Self {
        let n = key.dim();
        assert_eq!(m.len(), n);
        let a: Vec<u32> = (0..n).map(|_| rng.gen::<u32>()).collect();
        let az = ring_mul_u32(ctx, &a, &key.coeffs);
        let b: Vec<u32> = az
            .iter()
            .zip(m)
            .map(|(&azi, &mi)| {
                azi.wrapping_add(mi)
                    .wrapping_add(gaussian_torus(noise_std, rng))
            })
            .collect();
        Self { a, b }
    }

    /// The noisy phase polynomial `b - a z`.
    pub fn phase(&self, key: &RlweKey, ctx: &PolyMulContext) -> Vec<u32> {
        let az = ring_mul_u32(ctx, &self.a, &key.coeffs);
        poly_sub(&self.b, &az)
    }

    /// Ring dimension.
    pub fn dim(&self) -> usize {
        self.a.len()
    }

    /// Component-wise addition.
    pub fn add(&self, other: &Self) -> Self {
        Self {
            a: poly_add(&self.a, &other.a),
            b: poly_add(&self.b, &other.b),
        }
    }

    /// Component-wise subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        Self {
            a: poly_sub(&self.a, &other.a),
            b: poly_sub(&self.b, &other.b),
        }
    }

    /// Multiplies both components by the monomial `x^e` (`e` in `[0, 2N)`).
    pub fn mul_monomial(&self, e: usize) -> Self {
        Self {
            a: mul_monomial(&self.a, e),
            b: mul_monomial(&self.b, e),
        }
    }

    /// Extracts coefficient 0 of the phase as an `N`-dimensional LWE
    /// ciphertext under [`RlweKey::as_lwe_key`].
    pub fn sample_extract(&self) -> LweCiphertext {
        let n = self.dim();
        let mut a = vec![0u32; n];
        a[0] = self.a[0];
        for (j, slot) in a.iter_mut().enumerate().skip(1) {
            *slot = self.a[n - j].wrapping_neg();
        }
        LweCiphertext { a, b: self.b[0] }
    }
}

/// Negacyclic product of a `u32` polynomial with a binary key polynomial
/// (binary fits the signed-digit fast path: values 0/1).
pub(crate) fn ring_mul_u32(ctx: &PolyMulContext, a: &[u32], key_bits: &[u32]) -> Vec<u32> {
    let d: Vec<i32> = key_bits.iter().map(|&b| b as i32).collect();
    ctx.mul_i32_u32(&d, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::{decode_bit, encode_bit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 64;

    fn setup() -> (RlweKey, PolyMulContext, StdRng) {
        let mut rng = StdRng::seed_from_u64(21);
        let ctx = PolyMulContext::new(N);
        let key = RlweKey::generate(N, &mut rng);
        (key, ctx, rng)
    }

    #[test]
    fn encrypt_phase_roundtrip() {
        let (key, ctx, mut rng) = setup();
        let m: Vec<u32> = (0..N).map(|i| encode_bit(i % 3 == 0)).collect();
        let ct = RlweCiphertext::encrypt(&m, &key, 2f64.powi(-30), &ctx, &mut rng);
        let phase = ct.phase(&key, &ctx);
        for (i, (&p, &mi)) in phase.iter().zip(&m).enumerate() {
            let err = (p.wrapping_sub(mi) as i32).unsigned_abs();
            assert!(err < 1 << 16, "coefficient {i} error {err}");
        }
    }

    #[test]
    fn trivial_phase_is_message() {
        let (key, ctx, _) = setup();
        let m: Vec<u32> = (0..N as u32).map(|i| i * 1000).collect();
        let ct = RlweCiphertext::trivial(m.clone());
        assert_eq!(ct.phase(&key, &ctx), m);
    }

    #[test]
    fn add_sub_are_homomorphic() {
        let (key, ctx, mut rng) = setup();
        let m1: Vec<u32> = vec![1 << 28; N];
        let m2: Vec<u32> = vec![1 << 27; N];
        let c1 = RlweCiphertext::encrypt(&m1, &key, 2f64.powi(-30), &ctx, &mut rng);
        let c2 = RlweCiphertext::encrypt(&m2, &key, 2f64.powi(-30), &ctx, &mut rng);
        let sum_phase = c1.add(&c2).phase(&key, &ctx);
        for &p in &sum_phase {
            let err = (p.wrapping_sub((1 << 28) + (1 << 27)) as i32).unsigned_abs();
            assert!(err < 1 << 16);
        }
        let diff_phase = c1.sub(&c2).phase(&key, &ctx);
        for &p in &diff_phase {
            let err = (p.wrapping_sub(1 << 27) as i32).unsigned_abs();
            assert!(err < 1 << 16);
        }
    }

    #[test]
    fn monomial_rotation_commutes_with_phase() {
        let (key, ctx, mut rng) = setup();
        let m: Vec<u32> = (0..N as u32).map(|i| i << 20).collect();
        let ct = RlweCiphertext::encrypt(&m, &key, 0.0, &ctx, &mut rng);
        let e = 5usize;
        let rotated_phase = ct.mul_monomial(e).phase(&key, &ctx);
        let phase_rotated = mul_monomial(&ct.phase(&key, &ctx), e);
        assert_eq!(rotated_phase, phase_rotated);
    }

    #[test]
    fn sample_extract_reads_coefficient_zero() {
        let (key, ctx, mut rng) = setup();
        let mut m = vec![0u32; N];
        m[0] = encode_bit(true);
        m[3] = encode_bit(false);
        let ct = RlweCiphertext::encrypt(&m, &key, 2f64.powi(-30), &ctx, &mut rng);
        let lwe = ct.sample_extract();
        let lwe_key = key.as_lwe_key();
        assert!(decode_bit(lwe.phase(&lwe_key)));
        // Rotating x^{-3} brings coefficient 3 (false) into position 0.
        let lwe3 = ct.mul_monomial(2 * N - 3).sample_extract();
        assert!(!decode_bit(lwe3.phase(&lwe_key)));
    }
}
