//! The discretized torus `T = Z_{2^32}` and negacyclic `u32` polynomials.
//!
//! TFHE represents torus elements as `u32` values (the real torus `[0,1)`
//! scaled by `2^32`), so all linear arithmetic is exact wrapping `u32`
//! arithmetic. Polynomials over the torus live in `T[x]/(x^N + 1)`.

use rand::Rng;

/// The canonical `1/8` torus constant used to encode `true`.
pub const EIGHTH: u32 = 1 << 29;

/// Encodes a bit as `±1/8` on the torus.
#[inline]
pub fn encode_bit(b: bool) -> u32 {
    if b {
        EIGHTH
    } else {
        EIGHTH.wrapping_neg()
    }
}

/// Decodes a torus phase to a bit by its sign (positive half -> `true`).
#[inline]
pub fn decode_bit(phase: u32) -> bool {
    (phase as i32) > 0
}

/// Samples a rounded-Gaussian torus element with standard deviation
/// `std` (given as a fraction of the torus).
pub fn gaussian_torus<R: Rng + ?Sized>(std: f64, rng: &mut R) -> u32 {
    if std == 0.0 {
        return 0;
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let scaled = z * std * 4294967296.0;
    (scaled.round() as i64) as u32
}

/// Multiplies a negacyclic `u32` polynomial by the monomial `x^e`
/// (`e` in `[0, 2N)`; exponents in `[N, 2N)` flip signs).
pub fn mul_monomial(p: &[u32], e: usize) -> Vec<u32> {
    let n = p.len();
    let e = e % (2 * n);
    let mut out = vec![0u32; n];
    for (i, &c) in p.iter().enumerate() {
        let j = i + e;
        let wrapped = (j / n) % 2 == 1;
        let idx = j % n;
        out[idx] = if wrapped { c.wrapping_neg() } else { c };
    }
    out
}

/// Element-wise wrapping addition of `u32` polynomials.
pub fn poly_add(a: &[u32], b: &[u32]) -> Vec<u32> {
    a.iter().zip(b).map(|(&x, &y)| x.wrapping_add(y)).collect()
}

/// Element-wise wrapping subtraction of `u32` polynomials.
pub fn poly_sub(a: &[u32], b: &[u32]) -> Vec<u32> {
    a.iter().zip(b).map(|(&x, &y)| x.wrapping_sub(y)).collect()
}

/// Rounds a torus element to a multiple of `1/(2N)`, returning the index in
/// `[0, 2N)` — the rescaling step of blind rotation.
#[inline]
pub fn round_to_2n(x: u32, n: usize) -> usize {
    let two_n = 2 * n as u64;
    (((x as u64 * two_n + (1 << 31)) >> 32) % two_n) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bit_encoding_roundtrip() {
        assert!(decode_bit(encode_bit(true)));
        assert!(!decode_bit(encode_bit(false)));
    }

    #[test]
    fn decode_tolerates_noise() {
        let noise = 1 << 20; // far below 1/8 = 2^29
        assert!(decode_bit(encode_bit(true).wrapping_add(noise)));
        assert!(decode_bit(encode_bit(true).wrapping_sub(noise)));
        assert!(!decode_bit(encode_bit(false).wrapping_add(noise)));
    }

    #[test]
    fn monomial_rotation_signs() {
        let p = vec![1u32, 2, 3, 4];
        // x^1: coefficients shift up, top wraps negated.
        assert_eq!(mul_monomial(&p, 1), vec![4u32.wrapping_neg(), 1, 2, 3]);
        // x^N = -1.
        assert_eq!(
            mul_monomial(&p, 4),
            vec![
                1u32.wrapping_neg(),
                2u32.wrapping_neg(),
                3u32.wrapping_neg(),
                4u32.wrapping_neg()
            ]
        );
        // x^2N = identity.
        assert_eq!(mul_monomial(&p, 8), p);
    }

    #[test]
    fn monomial_rotation_composes() {
        let p = vec![5u32, 0, 7, 9];
        let once = mul_monomial(&mul_monomial(&p, 3), 6);
        assert_eq!(once, mul_monomial(&p, 9 % 8));
    }

    #[test]
    fn round_to_2n_boundaries() {
        let n = 512;
        assert_eq!(round_to_2n(0, n), 0);
        // 1/2 of the torus -> N.
        assert_eq!(round_to_2n(1 << 31, n), n);
        // Just below a rounding boundary stays put.
        let step = (1u64 << 32) / (2 * n as u64);
        assert_eq!(round_to_2n((step as u32) / 2 - 1, n), 0);
        assert_eq!(round_to_2n(step as u32, n), 1);
    }

    #[test]
    fn gaussian_zero_std_is_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(gaussian_torus(0.0, &mut rng), 0);
    }

    #[test]
    fn gaussian_std_scales() {
        let mut rng = StdRng::seed_from_u64(6);
        let std = 2f64.powi(-20);
        let samples: Vec<i32> = (0..20_000)
            .map(|_| gaussian_torus(std, &mut rng) as i32)
            .collect();
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / samples.len() as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / samples.len() as f64;
        let expect = std * 4294967296.0;
        assert!((var.sqrt() - expect).abs() / expect < 0.1);
    }
}
