//! Client/server API and bootstrapped Boolean gates.
//!
//! Mirrors the TFHE-rs-style split the paper's Boolean baseline uses: the
//! client encrypts individual bits, the server evaluates gates using only
//! public key material. Every two-input gate costs exactly one bootstrap
//! (XOR/XNOR use the scaled-sum trick); `NOT` is free.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;

use crate::bootstrap::{bootstrap_to_sign, BootstrapKey, KeySwitchKey};
use crate::lwe::{LweCiphertext, LweKey};
use crate::params::TfheParams;
use crate::polymul::PolyMulContext;
use crate::rlwe::RlweKey;
use crate::torus::{decode_bit, encode_bit, EIGHTH};

/// An encrypted Boolean value.
pub type BitCiphertext = LweCiphertext;

/// Client-side key material: encrypts and decrypts single bits.
#[derive(Debug, Clone)]
pub struct ClientKey {
    params: TfheParams,
    lwe_key: LweKey,
    rlwe_key: RlweKey,
}

impl ClientKey {
    /// Generates fresh client key material.
    pub fn generate<R: Rng + ?Sized>(params: TfheParams, rng: &mut R) -> Self {
        params.validate();
        let lwe_key = LweKey::generate(params.lwe_dim, rng);
        let rlwe_key = RlweKey::generate(params.rlwe_dim, rng);
        Self {
            params,
            lwe_key,
            rlwe_key,
        }
    }

    /// The parameter set.
    pub fn params(&self) -> &TfheParams {
        &self.params
    }

    /// Encrypts one bit.
    pub fn encrypt<R: Rng + ?Sized>(&self, bit: bool, rng: &mut R) -> BitCiphertext {
        LweCiphertext::encrypt_with_params(encode_bit(bit), &self.lwe_key, &self.params, rng)
    }

    /// Encrypts a slice of bits.
    pub fn encrypt_bits<R: Rng + ?Sized>(&self, bits: &[bool], rng: &mut R) -> Vec<BitCiphertext> {
        bits.iter().map(|&b| self.encrypt(b, rng)).collect()
    }

    /// Decrypts one bit.
    pub fn decrypt(&self, ct: &BitCiphertext) -> bool {
        decode_bit(ct.phase(&self.lwe_key))
    }

    /// Decrypts a slice of bits.
    pub fn decrypt_bits(&self, cts: &[BitCiphertext]) -> Vec<bool> {
        cts.iter().map(|ct| self.decrypt(ct)).collect()
    }
}

/// Server-side evaluation key: bootstrapping + key-switching keys.
///
/// Tracks the number of bootstraps executed so benchmarks can report
/// per-gate costs.
#[derive(Debug)]
pub struct ServerKey {
    params: TfheParams,
    bsk: BootstrapKey,
    ksk: KeySwitchKey,
    ctx: PolyMulContext,
    bootstraps: AtomicU64,
}

impl ServerKey {
    /// Derives the server key from client key material.
    pub fn generate<R: Rng + ?Sized>(client: &ClientKey, rng: &mut R) -> Self {
        let ctx = PolyMulContext::new(client.params.rlwe_dim);
        let bsk =
            BootstrapKey::generate(&client.lwe_key, &client.rlwe_key, &client.params, &ctx, rng);
        let ksk = KeySwitchKey::generate(
            &client.rlwe_key.as_lwe_key(),
            &client.lwe_key,
            &client.params,
            rng,
        );
        Self {
            params: client.params.clone(),
            bsk,
            ksk,
            ctx,
            bootstraps: AtomicU64::new(0),
        }
    }

    /// Number of bootstraps performed so far.
    pub fn bootstrap_count(&self) -> u64 {
        self.bootstraps.load(Ordering::Relaxed)
    }

    /// The parameter set.
    pub fn params(&self) -> &TfheParams {
        &self.params
    }

    fn bootstrap(&self, ct: &LweCiphertext) -> LweCiphertext {
        self.bootstraps.fetch_add(1, Ordering::Relaxed);
        bootstrap_to_sign(ct, &self.bsk, &self.ksk, &self.params, &self.ctx)
    }

    fn bias(&self, mu: u32) -> LweCiphertext {
        LweCiphertext::trivial(mu, self.params.lwe_dim)
    }

    /// Trivial encryption of a constant bit (no key material involved).
    pub fn constant(&self, bit: bool) -> BitCiphertext {
        self.bias(encode_bit(bit))
    }

    /// Logical NOT — free (ciphertext negation, no bootstrap).
    pub fn not(&self, x: &BitCiphertext) -> BitCiphertext {
        x.neg()
    }

    /// Logical AND — one bootstrap.
    pub fn and(&self, x: &BitCiphertext, y: &BitCiphertext) -> BitCiphertext {
        self.bootstrap(&self.bias(EIGHTH.wrapping_neg()).add(x).add(y))
    }

    /// Logical OR — one bootstrap.
    pub fn or(&self, x: &BitCiphertext, y: &BitCiphertext) -> BitCiphertext {
        self.bootstrap(&self.bias(EIGHTH).add(x).add(y))
    }

    /// Logical NAND — one bootstrap.
    pub fn nand(&self, x: &BitCiphertext, y: &BitCiphertext) -> BitCiphertext {
        self.bootstrap(&self.bias(EIGHTH).sub(x).sub(y))
    }

    /// Logical NOR — one bootstrap.
    pub fn nor(&self, x: &BitCiphertext, y: &BitCiphertext) -> BitCiphertext {
        self.bootstrap(&self.bias(EIGHTH.wrapping_neg()).sub(x).sub(y))
    }

    /// Logical XOR — one bootstrap (scaled-sum trick).
    pub fn xor(&self, x: &BitCiphertext, y: &BitCiphertext) -> BitCiphertext {
        self.bootstrap(&self.bias(1 << 30).add(&x.add(y).scale(2)))
    }

    /// Logical XNOR — one bootstrap. This is the bitwise-equality gate the
    /// Boolean string-matching baseline runs for every (query bit,
    /// database bit) pair (§2.2).
    pub fn xnor(&self, x: &BitCiphertext, y: &BitCiphertext) -> BitCiphertext {
        self.bootstrap(
            &self
                .bias((1u32 << 30).wrapping_neg())
                .add(&x.add(y).scale(2)),
        )
    }

    /// Multiplexer `c ? x : y` — three bootstraps (composite).
    pub fn mux(&self, c: &BitCiphertext, x: &BitCiphertext, y: &BitCiphertext) -> BitCiphertext {
        let cx = self.and(c, x);
        let ncy = self.and(&self.not(c), y);
        self.or(&cx, &ncy)
    }

    /// AND-reduction of a slice (balanced tree); `n - 1` bootstraps.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn and_reduce(&self, bits: &[BitCiphertext]) -> BitCiphertext {
        assert!(!bits.is_empty(), "and_reduce needs at least one input");
        let mut layer: Vec<BitCiphertext> = bits.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.and(&pair[0], &pair[1]));
                } else {
                    next.push(pair[0].clone());
                }
            }
            layer = next;
        }
        layer.pop().expect("non-empty by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> (ClientKey, ServerKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(123);
        let ck = ClientKey::generate(TfheParams::fast_insecure_test(), &mut rng);
        let sk = ServerKey::generate(&ck, &mut rng);
        (ck, sk, rng)
    }

    #[test]
    fn all_two_input_gates_match_truth_tables() {
        let (ck, sk, mut rng) = keys();
        for a in [false, true] {
            for b in [false, true] {
                let ea = ck.encrypt(a, &mut rng);
                let eb = ck.encrypt(b, &mut rng);
                assert_eq!(ck.decrypt(&sk.and(&ea, &eb)), a & b, "AND {a} {b}");
                assert_eq!(ck.decrypt(&sk.or(&ea, &eb)), a | b, "OR {a} {b}");
                assert_eq!(ck.decrypt(&sk.nand(&ea, &eb)), !(a & b), "NAND {a} {b}");
                assert_eq!(ck.decrypt(&sk.nor(&ea, &eb)), !(a | b), "NOR {a} {b}");
                assert_eq!(ck.decrypt(&sk.xor(&ea, &eb)), a ^ b, "XOR {a} {b}");
                assert_eq!(ck.decrypt(&sk.xnor(&ea, &eb)), !(a ^ b), "XNOR {a} {b}");
            }
        }
    }

    #[test]
    fn not_is_free_and_correct() {
        let (ck, sk, mut rng) = keys();
        let before = sk.bootstrap_count();
        for b in [false, true] {
            let e = ck.encrypt(b, &mut rng);
            assert_eq!(ck.decrypt(&sk.not(&e)), !b);
        }
        assert_eq!(sk.bootstrap_count(), before, "NOT must not bootstrap");
    }

    #[test]
    fn mux_selects() {
        let (ck, sk, mut rng) = keys();
        for c in [false, true] {
            let ec = ck.encrypt(c, &mut rng);
            let ex = ck.encrypt(true, &mut rng);
            let ey = ck.encrypt(false, &mut rng);
            assert_eq!(ck.decrypt(&sk.mux(&ec, &ex, &ey)), c);
        }
    }

    #[test]
    fn and_reduce_tree() {
        let (ck, sk, mut rng) = keys();
        let bits = [true, true, true, true, true];
        let cts = ck.encrypt_bits(&bits, &mut rng);
        assert!(ck.decrypt(&sk.and_reduce(&cts)));
        let mut bits2 = bits;
        bits2[3] = false;
        let cts2 = ck.encrypt_bits(&bits2, &mut rng);
        assert!(!ck.decrypt(&sk.and_reduce(&cts2)));
        // n - 1 ANDs per reduction: 4 + 4 bootstraps total for the two calls.
        assert_eq!(sk.bootstrap_count(), 8);
    }

    #[test]
    fn constants_decrypt_via_any_key() {
        let (ck, sk, _) = keys();
        assert!(ck.decrypt(&sk.constant(true)));
        assert!(!ck.decrypt(&sk.constant(false)));
    }

    #[test]
    fn chained_gates_stay_correct() {
        // A deeper circuit: parity of 8 encrypted bits via XOR chain.
        let (ck, sk, mut rng) = keys();
        let bits = [true, false, true, true, false, false, true, false];
        let cts = ck.encrypt_bits(&bits, &mut rng);
        let mut acc = cts[0].clone();
        for ct in &cts[1..] {
            acc = sk.xor(&acc, ct);
        }
        let expect = bits.iter().fold(false, |a, &b| a ^ b);
        assert_eq!(ck.decrypt(&acc), expect);
    }
}
