//! RGSW ciphertexts, gadget decomposition, external products and CMux.
//!
//! The bootstrapping key encrypts each LWE key bit as an RGSW ciphertext.
//! The external product `RGSW(s) ⊡ RLWE(m)` yields `RLWE(s * m)`, and
//! `CMux` selects between two accumulators under an encrypted bit — the
//! core step of blind rotation.

use rand::Rng;

use crate::params::TfheParams;
use crate::polymul::PolyMulContext;
use crate::rlwe::{RlweCiphertext, RlweKey};

/// Signed gadget decomposition of a torus polynomial.
///
/// Returns `levels` digit polynomials with entries in `[-Bg/2, Bg/2]` such
/// that `sum_j d_j * 2^(32 - (j+1) * base_log) ≈ p` coefficient-wise (error
/// at most `2^(32 - levels*base_log - 1)`).
pub(crate) fn decompose_poly(p: &[u32], base_log: u32, levels: usize) -> Vec<Vec<i32>> {
    let n = p.len();
    let bg = 1u64 << base_log;
    let half = bg / 2;
    let total = base_log * levels as u32;
    debug_assert!(total <= 32);
    let rounding = if total < 32 {
        1u32 << (32 - total - 1)
    } else {
        0
    };
    let mut out = vec![vec![0i32; n]; levels];
    for (idx, &c) in p.iter().enumerate() {
        let mut v = if total < 32 {
            (c.wrapping_add(rounding) >> (32 - total)) as u64
        } else {
            c as u64
        };
        for j in (0..levels).rev() {
            let mut d = (v & (bg - 1)) as i64;
            v >>= base_log;
            if d >= half as i64 {
                d -= bg as i64;
                v += 1;
            }
            out[j][idx] = d as i32;
        }
        // Any leftover carry contributes a multiple of 2^32 == 0 on the torus.
    }
    out
}

/// Recombines digit polynomials (test helper / reference).
#[cfg(test)]
pub(crate) fn recompose_poly(digits: &[Vec<i32>], base_log: u32) -> Vec<u32> {
    let n = digits[0].len();
    let mut out = vec![0u32; n];
    for (j, d) in digits.iter().enumerate() {
        let shift = 32 - (j as u32 + 1) * base_log;
        for (o, &di) in out.iter_mut().zip(d) {
            *o = o.wrapping_add((di as u32).wrapping_shl(shift));
        }
    }
    out
}

/// An RGSW ciphertext stored in NTT domain for fast external products.
///
/// Layout: `rows_a[j]` is `RLWE(0) + (s * g_j, 0)` and `rows_b[j]` is
/// `RLWE(0) + (0, s * g_j)` where `g_j = 2^(32 - (j+1) base_log)` and `s`
/// is the encrypted bit.
#[derive(Debug, Clone)]
pub struct Rgsw {
    rows_a: Vec<NttRow>,
    rows_b: Vec<NttRow>,
}

#[derive(Debug, Clone)]
struct NttRow {
    a: Vec<u64>,
    b: Vec<u64>,
}

impl Rgsw {
    /// Encrypts the bit `s` as an RGSW ciphertext under the ring key.
    pub fn encrypt_bit<R: Rng + ?Sized>(
        s: u32,
        key: &RlweKey,
        params: &TfheParams,
        ctx: &PolyMulContext,
        rng: &mut R,
    ) -> Self {
        assert!(s <= 1, "RGSW bootstrap encryption expects a bit");
        let n = key.dim();
        let zero = vec![0u32; n];
        let make_row = |target_a: bool, j: usize, rng: &mut R| -> NttRow {
            let mut ct = RlweCiphertext::encrypt(&zero, key, params.rlwe_noise_std, ctx, rng);
            let g = 1u32 << (32 - (j as u32 + 1) * params.decomp_base_log);
            let add = s.wrapping_mul(g);
            if target_a {
                ct.a[0] = ct.a[0].wrapping_add(add);
            } else {
                ct.b[0] = ct.b[0].wrapping_add(add);
            }
            NttRow {
                a: ctx.forward_u32(&ct.a),
                b: ctx.forward_u32(&ct.b),
            }
        };
        let rows_a = (0..params.decomp_levels)
            .map(|j| make_row(true, j, rng))
            .collect();
        let rows_b = (0..params.decomp_levels)
            .map(|j| make_row(false, j, rng))
            .collect();
        Self { rows_a, rows_b }
    }

    /// External product `self ⊡ c`: if `self` encrypts bit `s`, the result
    /// is an RLWE encryption of `s * phase(c)` (plus managed noise).
    pub fn external_product(
        &self,
        c: &RlweCiphertext,
        params: &TfheParams,
        ctx: &PolyMulContext,
    ) -> RlweCiphertext {
        let da = decompose_poly(&c.a, params.decomp_base_log, params.decomp_levels);
        let db = decompose_poly(&c.b, params.decomp_base_log, params.decomp_levels);
        let mut acc_a = ctx.zero_acc();
        let mut acc_b = ctx.zero_acc();
        for (d, row) in da
            .iter()
            .zip(&self.rows_a)
            .chain(db.iter().zip(&self.rows_b))
        {
            let d_ntt = ctx.forward_i32(d);
            ctx.mul_acc(&d_ntt, &row.a, &mut acc_a);
            ctx.mul_acc(&d_ntt, &row.b, &mut acc_b);
        }
        RlweCiphertext {
            a: ctx.inverse_to_torus(&mut acc_a),
            b: ctx.inverse_to_torus(&mut acc_b),
        }
    }

    /// `CMux`: returns (an encryption of) `d1` if the RGSW bit is 1, else
    /// `d0`: `d0 + s ⊡ (d1 - d0)`.
    pub fn cmux(
        &self,
        d0: &RlweCiphertext,
        d1: &RlweCiphertext,
        params: &TfheParams,
        ctx: &PolyMulContext,
    ) -> RlweCiphertext {
        let diff = d1.sub(d0);
        d0.add(&self.external_product(&diff, params, ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> TfheParams {
        let mut p = TfheParams::fast_insecure_test();
        p.rlwe_dim = 64;
        p
    }

    fn setup() -> (TfheParams, RlweKey, PolyMulContext, StdRng) {
        let p = params();
        let mut rng = StdRng::seed_from_u64(31);
        let ctx = PolyMulContext::new(p.rlwe_dim);
        let key = RlweKey::generate(p.rlwe_dim, &mut rng);
        (p, key, ctx, rng)
    }

    #[test]
    fn decomposition_approximates_input() {
        let p: Vec<u32> = (0..16u32).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
        for (bl, l) in [(8u32, 2usize), (7, 3), (4, 8)] {
            let digits = decompose_poly(&p, bl, l);
            assert!(digits.iter().all(|d| d
                .iter()
                .all(|&x| x >= -(1 << (bl - 1)) && x <= 1 << (bl - 1))));
            let rec = recompose_poly(&digits, bl);
            let max_err = 1u32 << (32 - bl * l as u32);
            for (&r, &orig) in rec.iter().zip(&p) {
                let err = (r.wrapping_sub(orig) as i32).unsigned_abs();
                assert!(err <= max_err, "err {err} > {max_err} (bl={bl}, l={l})");
            }
        }
    }

    #[test]
    fn external_product_by_one_preserves_phase() {
        let (p, key, ctx, mut rng) = setup();
        let rgsw = Rgsw::encrypt_bit(1, &key, &p, &ctx, &mut rng);
        let m: Vec<u32> = (0..64)
            .map(|i| if i % 2 == 0 { 1u32 << 29 } else { 0 })
            .collect();
        let c = RlweCiphertext::encrypt(&m, &key, p.rlwe_noise_std, &ctx, &mut rng);
        let out = rgsw.external_product(&c, &p, &ctx);
        let phase = out.phase(&key, &ctx);
        for (i, (&ph, &mi)) in phase.iter().zip(&m).enumerate() {
            let err = (ph.wrapping_sub(mi) as i32).unsigned_abs();
            assert!(err < 1 << 24, "coeff {i}: err {err}");
        }
    }

    #[test]
    fn external_product_by_zero_kills_message() {
        let (p, key, ctx, mut rng) = setup();
        let rgsw = Rgsw::encrypt_bit(0, &key, &p, &ctx, &mut rng);
        let m: Vec<u32> = vec![1 << 29; 64];
        let c = RlweCiphertext::encrypt(&m, &key, p.rlwe_noise_std, &ctx, &mut rng);
        let out = rgsw.external_product(&c, &p, &ctx);
        let phase = out.phase(&key, &ctx);
        for (i, &ph) in phase.iter().enumerate() {
            let err = (ph as i32).unsigned_abs();
            assert!(err < 1 << 24, "coeff {i}: |phase| {err} should be ~0");
        }
    }

    #[test]
    fn cmux_selects_by_bit() {
        let (p, key, ctx, mut rng) = setup();
        let m0: Vec<u32> = vec![0; 64];
        let m1: Vec<u32> = vec![1 << 29; 64];
        let d0 = RlweCiphertext::encrypt(&m0, &key, p.rlwe_noise_std, &ctx, &mut rng);
        let d1 = RlweCiphertext::encrypt(&m1, &key, p.rlwe_noise_std, &ctx, &mut rng);
        for bit in [0u32, 1] {
            let rgsw = Rgsw::encrypt_bit(bit, &key, &p, &ctx, &mut rng);
            let out = rgsw.cmux(&d0, &d1, &p, &ctx);
            let phase = out.phase(&key, &ctx);
            let expect = if bit == 1 { 1u32 << 29 } else { 0 };
            for &ph in &phase {
                let err = (ph.wrapping_sub(expect) as i32).unsigned_abs();
                assert!(err < 1 << 25, "bit={bit}: err {err}");
            }
        }
    }
}
