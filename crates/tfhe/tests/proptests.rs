//! Property-based tests of the TFHE substrate: LWE linear homomorphism,
//! gate correctness over random circuits, and bootstrap idempotence.

use cm_tfhe::{decode_bit, encode_bit, ClientKey, LweCiphertext, LweKey, ServerKey, TfheParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lwe_linear_combinations_track_phases(
        seed in 0u64..500,
        m1 in any::<u32>(),
        m2 in any::<u32>(),
    ) {
        let p = TfheParams::fast_insecure_test();
        let mut rng = StdRng::seed_from_u64(seed);
        let key = LweKey::generate(p.lwe_dim, &mut rng);
        let c1 = LweCiphertext::encrypt(m1, &key, p.lwe_noise_std, &mut rng);
        let c2 = LweCiphertext::encrypt(m2, &key, p.lwe_noise_std, &mut rng);
        let tol = 1i64 << 14;
        let check = |ct: &LweCiphertext, expect: u32| {
            let err = (ct.phase(&key).wrapping_sub(expect) as i32 as i64).abs();
            err < tol
        };
        prop_assert!(check(&c1.add(&c2), m1.wrapping_add(m2)));
        prop_assert!(check(&c1.sub(&c2), m1.wrapping_sub(m2)));
        prop_assert!(check(&c1.neg(), m1.wrapping_neg()));
        prop_assert!(check(&c1.scale(3), m1.wrapping_mul(3)));
    }

    #[test]
    fn random_two_level_circuits_are_correct(
        bits in prop::collection::vec(any::<bool>(), 4),
        ops in prop::collection::vec(0u8..6, 3),
    ) {
        // Evaluate a random 2-level circuit homomorphically and in clear.
        let mut rng = StdRng::seed_from_u64(777);
        let ck = ClientKey::generate(TfheParams::fast_insecure_test(), &mut rng);
        let sk = ServerKey::generate(&ck, &mut rng);
        let cts = ck.encrypt_bits(&bits, &mut rng);
        let apply = |op: u8, a: bool, b: bool| match op {
            0 => a & b,
            1 => a | b,
            2 => a ^ b,
            3 => !(a & b),
            4 => !(a | b),
            _ => !(a ^ b),
        };
        let apply_ct = |op: u8, a: &cm_tfhe::BitCiphertext, b: &cm_tfhe::BitCiphertext| match op {
            0 => sk.and(a, b),
            1 => sk.or(a, b),
            2 => sk.xor(a, b),
            3 => sk.nand(a, b),
            4 => sk.nor(a, b),
            _ => sk.xnor(a, b),
        };
        let l1a = apply(ops[0], bits[0], bits[1]);
        let l1b = apply(ops[1], bits[2], bits[3]);
        let out = apply(ops[2], l1a, l1b);
        let e1a = apply_ct(ops[0], &cts[0], &cts[1]);
        let e1b = apply_ct(ops[1], &cts[2], &cts[3]);
        let eout = apply_ct(ops[2], &e1a, &e1b);
        prop_assert_eq!(ck.decrypt(&eout), out);
    }
}

#[test]
fn encoding_is_sign_symmetric() {
    assert_eq!(encode_bit(true).wrapping_neg(), encode_bit(false));
    assert!(decode_bit(encode_bit(true)));
    assert!(!decode_bit(encode_bit(false)));
}

#[test]
fn long_gate_chain_survives_noise() {
    // 20 chained gates: bootstrapping must keep the noise bounded
    // regardless of depth (the Boolean approach's "arbitrary number of
    // computations" property, §2.2).
    let mut rng = StdRng::seed_from_u64(4242);
    let ck = ClientKey::generate(TfheParams::fast_insecure_test(), &mut rng);
    let sk = ServerKey::generate(&ck, &mut rng);
    let mut acc = ck.encrypt(true, &mut rng);
    let mut expect = true;
    for i in 0..20 {
        let b = i % 3 == 0;
        let eb = ck.encrypt(b, &mut rng);
        if i % 2 == 0 {
            acc = sk.xnor(&acc, &eb);
            expect = !(expect ^ b);
        } else {
            acc = sk.and(&acc, &eb);
            expect &= b;
        }
        assert_eq!(ck.decrypt(&acc), expect, "diverged at gate {i}");
    }
    assert_eq!(sk.bootstrap_count(), 20);
}
