//! Gate correctness under the realistic `boolean_default` parameter set
//! (n = 630, N = 1024). These run the full-size bootstrap, so they are
//! compiled-for-speed integration tests rather than unit tests; run with
//! `cargo test --release -p cm-tfhe` for realistic timings.

use cm_tfhe::{ClientKey, ServerKey, TfheParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn default_params_gates_are_correct() {
    let mut rng = StdRng::seed_from_u64(2024);
    let client = ClientKey::generate(TfheParams::boolean_default(), &mut rng);
    let server = ServerKey::generate(&client, &mut rng);
    for a in [false, true] {
        for b in [false, true] {
            let ea = client.encrypt(a, &mut rng);
            let eb = client.encrypt(b, &mut rng);
            assert_eq!(
                client.decrypt(&server.xnor(&ea, &eb)),
                !(a ^ b),
                "XNOR {a} {b}"
            );
            assert_eq!(client.decrypt(&server.and(&ea, &eb)), a & b, "AND {a} {b}");
        }
    }
    assert_eq!(server.bootstrap_count(), 8);
}
