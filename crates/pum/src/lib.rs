#![warn(missing_docs)]

//! # cm-pum
//!
//! A SIMDRAM-style processing-using-memory model (paper §5.2): bulk
//! bitwise operations over DRAM rows implement bit-serial addition for the
//! CM-PuM (external DDR4) and CM-PuM-SSD (SSD-internal LPDDR4)
//! configurations, with the Table 3 costs (`T_bbop` = 49 ns,
//! `E_bbop` = 0.864 nJ).
//!
//! The functional model mirrors the flash adder: vertical layout, one
//! bit-plane row per operand bit, AND/OR/XOR bulk operations; a 32-bit
//! addition costs a fixed number of bbops per bit. The analytical methods
//! feed `cm-sim`'s Figures 10–12.

use serde::{Deserialize, Serialize};

/// DRAM organization for a PuM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PumConfig {
    /// Independent channels.
    pub channels: usize,
    /// Banks per channel.
    pub banks: usize,
    /// Row buffer size in bytes (the bbop width per bank).
    pub row_bytes: usize,
    /// Latency of one bulk bitwise operation, seconds (Table 3: 49 ns).
    pub t_bbop: f64,
    /// Energy of one bulk bitwise operation, joules (Table 3: 0.864 nJ).
    pub e_bbop: f64,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Peak external bandwidth in bytes/second.
    pub peak_bw: f64,
}

impl PumConfig {
    /// CM-PuM: 32 GB DDR4-2400, 4 channels, 16 banks, 8 KiB rows,
    /// 19.2 GB/s peak (Table 3).
    pub fn external_ddr4() -> Self {
        Self {
            channels: 4,
            banks: 16,
            row_bytes: 8192,
            t_bbop: 49e-9,
            e_bbop: 0.864e-9,
            capacity_bytes: 32 * (1u64 << 30),
            peak_bw: 19.2e9,
        }
    }

    /// CM-PuM-SSD: the SSD's 2 GB LPDDR4-1866, 1 channel, 8 banks, 4 KiB
    /// effective rows (Table 3).
    pub fn internal_lpddr4() -> Self {
        Self {
            channels: 1,
            banks: 8,
            row_bytes: 4096,
            t_bbop: 49e-9,
            e_bbop: 0.864e-9,
            capacity_bytes: 2 * (1u64 << 30),
            peak_bw: 14.9e9,
        }
    }

    /// Bits processed by one bbop across all banks and channels.
    pub fn bbop_width_bits(&self) -> usize {
        self.row_bytes * 8 * self.banks * self.channels
    }

    /// Bulk ops needed per bit of a bit-serial addition. Derived from the
    /// same full-adder sequence as the flash µ-program (Fig. 5):
    /// 2 XOR + 3 AND/OR + 6 copies per bit (intermediate-row management in
    /// SIMDRAM's MAJ/NOT substrate is folded into copies).
    pub fn bbops_per_bit() -> usize {
        11
    }

    /// Time to add `elements` coefficient pairs of `width_bits` bits in
    /// the vertical layout (compute only, no data movement).
    pub fn add_time(&self, elements: u64, width_bits: u32) -> f64 {
        let lanes = self.bbop_width_bits() as u64;
        let rounds = elements.div_ceil(lanes);
        rounds as f64 * width_bits as f64 * Self::bbops_per_bit() as f64 * self.t_bbop
    }

    /// Energy for the same addition. `E_bbop` is per bank-row bbop, so
    /// scale by the active (channel × bank) pairs.
    pub fn add_energy(&self, elements: u64, width_bits: u32) -> f64 {
        let lanes = self.bbop_width_bits() as u64;
        let rounds = elements.div_ceil(lanes);
        let bbops = rounds * width_bits as u64 * Self::bbops_per_bit() as u64;
        bbops as f64 * self.e_bbop * (self.banks * self.channels) as f64
    }

    /// Effective compute throughput for 32-bit hom-add coefficients,
    /// bytes/second.
    pub fn add_throughput(&self) -> f64 {
        let lanes = self.bbop_width_bits() as f64; // coefficients per round
        let round_time = 32.0 * Self::bbops_per_bit() as f64 * self.t_bbop;
        lanes * 4.0 / round_time
    }
}

/// Functional vertical-layout bit-serial adder over row-width lanes.
///
/// Validates that the bbop sequence computes wrapping addition; the lane
/// count is arbitrary for tests.
#[derive(Debug, Default)]
pub struct PumArray {
    /// Bulk-op counter.
    pub bbops: u64,
}

impl PumArray {
    /// Creates an array model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds two vectors of `u32` lanes bit-serially using only bulk
    /// bitwise row operations, counting bbops.
    pub fn add_u32_lanes(&mut self, a: &[u32], b: &[u32]) -> Vec<u32> {
        assert_eq!(a.len(), b.len());
        let lanes = a.len();
        let mut carry = vec![false; lanes];
        let mut out = vec![0u32; lanes];
        for bit in 0..32 {
            let ra: Vec<bool> = (0..lanes).map(|l| (a[l] >> bit) & 1 == 1).collect();
            let rb: Vec<bool> = (0..lanes).map(|l| (b[l] >> bit) & 1 == 1).collect();
            // sum = a ^ b ^ c; carry = (a^b)&c | a&b — 2 XOR, 2 AND, 1 OR,
            // plus copies, matching PumConfig::bbops_per_bit().
            let axb: Vec<bool> = ra.iter().zip(&rb).map(|(&x, &y)| x ^ y).collect();
            let sum: Vec<bool> = axb.iter().zip(&carry).map(|(&x, &c)| x ^ c).collect();
            let axb_c: Vec<bool> = axb.iter().zip(&carry).map(|(&x, &c)| x & c).collect();
            let ab: Vec<bool> = ra.iter().zip(&rb).map(|(&x, &y)| x & y).collect();
            carry = axb_c.iter().zip(&ab).map(|(&x, &y)| x | y).collect();
            self.bbops += PumConfig::bbops_per_bit() as u64;
            for (l, &s) in sum.iter().enumerate() {
                if s {
                    out[l] |= 1 << bit;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_adder_matches_wrapping_add() {
        let mut arr = PumArray::new();
        let a: Vec<u32> = (0..257u32).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
        let b: Vec<u32> = (0..257u32)
            .map(|i| i.wrapping_mul(0x85EBCA6B) ^ 0xFFFF)
            .collect();
        let got = arr.add_u32_lanes(&a, &b);
        let expect: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| x.wrapping_add(y)).collect();
        assert_eq!(got, expect);
        assert_eq!(arr.bbops, 32 * PumConfig::bbops_per_bit() as u64);
    }

    #[test]
    fn external_config_matches_table3() {
        let c = PumConfig::external_ddr4();
        assert_eq!(c.channels, 4);
        assert_eq!(c.banks, 16);
        assert!((c.t_bbop - 49e-9).abs() < 1e-15);
        assert!((c.e_bbop - 0.864e-9).abs() < 1e-15);
        assert_eq!(c.capacity_bytes, 32 << 30);
        assert!((c.peak_bw - 19.2e9).abs() < 1.0);
    }

    #[test]
    fn internal_dram_is_much_narrower() {
        let ext = PumConfig::external_ddr4();
        let int = PumConfig::internal_lpddr4();
        // The paper attributes CM-PuM-SSD's lower compute throughput to the
        // smaller internal DRAM; our widths give a 16x gap.
        let ratio = ext.bbop_width_bits() as f64 / int.bbop_width_bits() as f64;
        assert!(ratio > 8.0 && ratio < 32.0, "ratio {ratio}");
        assert!(ext.add_throughput() > 4.0 * int.add_throughput());
    }

    #[test]
    fn add_time_scales_with_elements() {
        let c = PumConfig::external_ddr4();
        let lanes = c.bbop_width_bits() as u64;
        let one_round = c.add_time(lanes, 32);
        assert!((c.add_time(2 * lanes, 32) - 2.0 * one_round).abs() < 1e-12);
        // Partial rounds round up.
        assert!((c.add_time(1, 32) - one_round).abs() < 1e-15);
    }

    #[test]
    fn capacity_drives_the_fig12_crossover() {
        // The 32 GB external DRAM bound is what makes CM-PuM fall off a
        // cliff beyond 32 GB encrypted databases (Fig. 12).
        let ext = PumConfig::external_ddr4();
        assert!(ext.capacity_bytes == 32 << 30);
        let int = PumConfig::internal_lpddr4();
        assert!(int.capacity_bytes < ext.capacity_bytes);
    }
}
