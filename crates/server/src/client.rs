//! The blocking wire-protocol client.
//!
//! [`MatchClient`] speaks the framed binary protocol over one TCP
//! connection. Queries go out either as plaintext bits (hosted-key
//! tenants) or as pre-encrypted CIPHERMATCH wire bytes produced by a
//! [`crate::QueryKit`] (client-key tenants); sealed index lists come back
//! and are opened with the tenant's AES channel key
//! ([`TenantAccess`]) — the client never sees another tenant's results in
//! the clear.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use cm_core::{BitString, MatchError, MatchStats};
use cm_ssd::SecureIndexChannel;

use crate::wire::{
    auth_tag, content_digest, read_frame, upload_tag, write_frame, DatabaseInfoReply, EvictAuth,
    QueryPayload, Request, Response, TenantInfo, TenantSpec, UploadAuth, UploadPhase, OP_EVICT,
};

/// A tenant's client-side credentials: the id plus the AES-256 channel
/// key delivered offline (paper §7.2). The key both opens sealed index
/// lists and proves ownership for the lifecycle operations
/// ([`MatchClient::upload_database`], [`MatchClient::evict_database`]).
pub struct TenantAccess {
    id: String,
    key: [u8; 32],
    channel: SecureIndexChannel,
}

impl std::fmt::Debug for TenantAccess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantAccess")
            .field("id", &self.id)
            .finish()
    }
}

impl TenantAccess {
    /// Binds a tenant id to its AES channel key.
    pub fn new(id: &str, channel_key: &[u8; 32]) -> Self {
        Self {
            id: id.to_string(),
            key: *channel_key,
            channel: SecureIndexChannel::new(channel_key),
        }
    }

    /// The tenant id.
    pub fn id(&self) -> &str {
        &self.id
    }
}

/// One opened match result.
#[derive(Debug, Clone)]
pub struct MatchReply {
    /// Matching global bit offsets, ascending.
    pub indices: Vec<usize>,
    /// Statistics the query added on the server.
    pub stats: MatchStats,
    /// Per-shard breakdown of `stats` (one entry for unsharded tenants).
    pub shard_stats: Vec<MatchStats>,
    /// Modeled hardware latency of the AES sealing step.
    pub seal_latency: Duration,
}

/// A blocking client over one connection.
#[derive(Debug)]
pub struct MatchClient {
    stream: TcpStream,
}

impl MatchClient {
    /// Default per-operation socket timeout: generous enough for a
    /// paper-parameter homomorphic sweep, bounded enough that a stalled
    /// server fails the call instead of hanging the process.
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(120);

    /// Connects to a serving process with [`Self::DEFAULT_TIMEOUT`] on
    /// reads and writes (tune with [`Self::set_timeout`]).
    ///
    /// # Errors
    ///
    /// [`MatchError::Transport`] if the connection fails.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, MatchError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| MatchError::Transport(format!("connect: {e}")))?;
        let client = Self { stream };
        client.set_timeout(Some(Self::DEFAULT_TIMEOUT))?;
        Ok(client)
    }

    /// Sets the read/write timeout for every subsequent operation
    /// (`None` blocks indefinitely).
    ///
    /// # Errors
    ///
    /// [`MatchError::Transport`] if the socket rejects the option.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> Result<(), MatchError> {
        self.stream
            .set_read_timeout(timeout)
            .and_then(|()| self.stream.set_write_timeout(timeout))
            .map_err(|e| MatchError::Transport(format!("set timeout: {e}")))
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, MatchError> {
        // The server may reject the connection outright (e.g. a typed
        // `ServerBusy` past its connection cap) by sending one error frame
        // and closing before ever reading a request — which can break this
        // write. Always try to read the pending frame: a typed rejection
        // beats a bare broken-pipe transport error.
        let wrote = write_frame(&mut self.stream, &request.encode());
        match read_frame(&mut self.stream) {
            Ok(Some(payload)) => Response::decode(&payload),
            // The server hung up instead of answering — whether our write
            // got through (clean hangup) or broke mid-frame (half-written
            // request, e.g. a connection dropped mid-upload). Either way
            // the caller gets the typed [`MatchError::ConnectionClosed`],
            // never a raw io-error string it would have to parse.
            Ok(None) => Err(MatchError::ConnectionClosed),
            Err(MatchError::Transport(_)) if wrote.is_err() => Err(MatchError::ConnectionClosed),
            Err(read_err) => {
                wrote?;
                Err(read_err)
            }
        }
    }

    /// Pings the server, returning the backends it can serve (the
    /// [`cm_core::Backend::WIRE`] names, `ifp` included).
    ///
    /// # Errors
    ///
    /// Transport/framing errors, or the server's reported [`MatchError`].
    pub fn backends(&mut self) -> Result<Vec<String>, MatchError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong { backends } => Ok(backends),
            Response::Error(e) => Err(e),
            _ => Err(MatchError::Frame("unexpected response kind")),
        }
    }

    /// Liveness probe: one `Ping`/`Pong` round trip, discarding the
    /// backend listing. An idle connection answering this proves it is
    /// still admitted and live — under the reactor front-end, without
    /// ever having held a worker slot while idle.
    ///
    /// # Errors
    ///
    /// Transport/framing errors, or the server's reported [`MatchError`].
    pub fn ping(&mut self) -> Result<(), MatchError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong { .. } => Ok(()),
            Response::Error(e) => Err(e),
            _ => Err(MatchError::Frame("unexpected response kind")),
        }
    }

    /// Lists the registered tenants.
    ///
    /// # Errors
    ///
    /// Transport/framing errors, or the server's reported [`MatchError`].
    pub fn tenants(&mut self) -> Result<Vec<TenantInfo>, MatchError> {
        match self.roundtrip(&Request::ListTenants)? {
            Response::Tenants(tenants) => Ok(tenants),
            Response::Error(e) => Err(e),
            _ => Err(MatchError::Frame("unexpected response kind")),
        }
    }

    /// Reads a tenant's lifetime statistics and query count.
    ///
    /// # Errors
    ///
    /// Transport/framing errors, or the server's reported [`MatchError`].
    pub fn tenant_stats(&mut self, tenant: &str) -> Result<(MatchStats, u64), MatchError> {
        let request = Request::TenantStats {
            tenant: tenant.to_string(),
        };
        match self.roundtrip(&request)? {
            Response::TenantStats { stats, queries } => Ok((stats, queries)),
            Response::Error(e) => Err(e),
            _ => Err(MatchError::Frame("unexpected response kind")),
        }
    }

    /// Chunk size [`Self::upload_database`] splits a serialized database
    /// into (1 MiB — far below the frame cap, so progress acks flow
    /// regularly during a large upload).
    pub const UPLOAD_CHUNK_BYTES: usize = 1 << 20;

    /// Uploads a serialized encrypted database
    /// ([`cm_core::ErasedMatcher::export_database`]) for `access.id`,
    /// chunked, and registers the tenant on the server with the matcher
    /// described by `spec`. `nonce` must strictly exceed every nonce this
    /// tenant id has used before (replays are rejected). Returns the
    /// server's accounting charge and any tenants the admission demoted.
    ///
    /// The first upload for an id binds it to `access`'s channel key;
    /// later uploads and evictions must present the same key.
    ///
    /// # Errors
    ///
    /// Transport/framing errors, [`MatchError::ConnectionClosed`] if the
    /// server hangs up mid-upload, or the server's reported
    /// [`MatchError`] ([`MatchError::Unauthorized`],
    /// [`MatchError::QuotaExceeded`], [`MatchError::UploadIncomplete`],
    /// decode failures, …).
    pub fn upload_database(
        &mut self,
        access: &TenantAccess,
        spec: &TenantSpec,
        database: &[u8],
        nonce: u64,
    ) -> Result<(u64, Vec<String>), MatchError> {
        let total_bytes = database.len() as u64;
        let chunks: Vec<&[u8]> = if database.is_empty() {
            vec![&[]]
        } else {
            database.chunks(Self::UPLOAD_CHUNK_BYTES).collect()
        };
        // The tag binds the tenant, nonce, declared size, the full spec,
        // and a digest of the payload bytes — the server rejects a
        // commit whose received bytes do not hash to `content`.
        let content = content_digest(&access.key, database);
        let begin = Request::LoadDatabase {
            tenant: access.id.clone(),
            phase: UploadPhase::Begin {
                auth: UploadAuth {
                    nonce,
                    channel_key: access.key,
                    content,
                    tag: upload_tag(&access.key, &access.id, nonce, total_bytes, spec, &content),
                },
                spec: spec.clone(),
                total_bytes,
                chunk_count: chunks.len() as u32,
            },
        };
        self.expect_progress(&begin)?;
        for (index, chunk) in chunks.iter().enumerate() {
            let request = Request::LoadDatabase {
                tenant: access.id.clone(),
                phase: UploadPhase::Chunk {
                    index: index as u32,
                    data: chunk.to_vec(),
                },
            };
            self.expect_progress(&request)?;
        }
        let commit = Request::LoadDatabase {
            tenant: access.id.clone(),
            phase: UploadPhase::Commit,
        };
        match self.roundtrip(&commit)? {
            Response::DatabaseLoaded { bytes, demoted } => Ok((bytes, demoted)),
            Response::Error(e) => Err(e),
            _ => Err(MatchError::Frame("unexpected response kind")),
        }
    }

    fn expect_progress(&mut self, request: &Request) -> Result<(), MatchError> {
        match self.roundtrip(request)? {
            Response::UploadProgress { .. } => Ok(()),
            Response::Error(e) => Err(e),
            _ => Err(MatchError::Frame("unexpected response kind")),
        }
    }

    /// Evicts `access.id`'s database from the serving host entirely,
    /// proving ownership with a channel-key MAC (the key itself never
    /// travels). Returns the hot-tier bytes the server released.
    ///
    /// # Errors
    ///
    /// Transport/framing errors, or the server's reported [`MatchError`]
    /// ([`MatchError::Unauthorized`], [`MatchError::UnknownTenant`]).
    pub fn evict_database(&mut self, access: &TenantAccess, nonce: u64) -> Result<u64, MatchError> {
        let request = Request::EvictDatabase {
            tenant: access.id.clone(),
            auth: EvictAuth {
                nonce,
                tag: auth_tag(&access.key, OP_EVICT, &access.id, 0, nonce, &[]),
            },
        };
        match self.roundtrip(&request)? {
            Response::Evicted { freed_bytes } => Ok(freed_bytes),
            Response::Error(e) => Err(e),
            _ => Err(MatchError::Frame("unexpected response kind")),
        }
    }

    /// Reads the server's full telemetry snapshot — every counter,
    /// gauge, and histogram from the reactor event loop down to the
    /// shard executor (see `cm_telemetry::metric_names` for the
    /// catalog). Render it with
    /// [`cm_telemetry::MetricsSnapshot::render_text`] or query single
    /// series with its `counter`/`gauge`/`histogram` accessors.
    ///
    /// # Errors
    ///
    /// Transport/framing errors, or the server's reported [`MatchError`].
    pub fn metrics(&mut self) -> Result<cm_telemetry::MetricsSnapshot, MatchError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics(snapshot) => Ok(snapshot),
            Response::Error(e) => Err(e),
            _ => Err(MatchError::Frame("unexpected response kind")),
        }
    }

    /// Reads a tenant database's lifecycle state (tier, accounting
    /// charge, pinning, lifetime query count).
    ///
    /// # Errors
    ///
    /// Transport/framing errors, or the server's reported [`MatchError`].
    pub fn database_info(&mut self, tenant: &str) -> Result<DatabaseInfoReply, MatchError> {
        let request = Request::DatabaseInfo {
            tenant: tenant.to_string(),
        };
        match self.roundtrip(&request)? {
            Response::DatabaseInfo(info) => Ok(info),
            Response::Error(e) => Err(e),
            _ => Err(MatchError::Frame("unexpected response kind")),
        }
    }

    /// Runs a plaintext-bits query against a hosted-key tenant.
    ///
    /// # Errors
    ///
    /// Transport/framing errors, or the server's reported [`MatchError`].
    pub fn search_bits(
        &mut self,
        access: &TenantAccess,
        query: &BitString,
    ) -> Result<MatchReply, MatchError> {
        self.search(access, QueryPayload::Bits(query.clone()))
    }

    /// Runs a pre-encrypted CIPHERMATCH wire query (built with a
    /// [`crate::QueryKit`]) against a client-key tenant.
    ///
    /// # Errors
    ///
    /// Transport/framing errors, or the server's reported [`MatchError`].
    pub fn search_encoded(
        &mut self,
        access: &TenantAccess,
        encoded_query: &[u8],
    ) -> Result<MatchReply, MatchError> {
        self.search(access, QueryPayload::CmWire(encoded_query.to_vec()))
    }

    fn search(
        &mut self,
        access: &TenantAccess,
        query: QueryPayload,
    ) -> Result<MatchReply, MatchError> {
        if access.id.is_empty() || access.id.len() > crate::wire::MAX_TENANT_ID {
            // Fail fast with a clear error: `put_str`'s u16 length prefix
            // cannot carry an over-long id.
            return Err(MatchError::Frame("tenant id length out of range"));
        }
        let request = Request::Match {
            tenant: access.id.clone(),
            query,
        };
        match self.roundtrip(&request)? {
            Response::Matched {
                nonce,
                sealed_indices,
                stats,
                shard_stats,
                seal_latency,
            } => {
                // The seal nonce is server-assigned (unique per tenant, so
                // AES-CTR keystreams never repeat under one channel key)
                // and travels with the reply. `open` asserts on malformed
                // input; a hostile or buggy peer must surface as a typed
                // error, not a panic.
                let indices = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    access.channel.open(&sealed_indices, nonce)
                }))
                .map_err(|_| MatchError::Frame("sealed index list is malformed"))?;
                Ok(MatchReply {
                    indices,
                    stats,
                    shard_stats,
                    seal_latency,
                })
            }
            Response::Error(e) => Err(e),
            _ => Err(MatchError::Frame("unexpected response kind")),
        }
    }
}
