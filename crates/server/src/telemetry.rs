//! Server-side telemetry: one [`MetricsRegistry`] shared by the reactor
//! event loop, the frame pool, the tenant registry, and the dispatch
//! path, plus the per-request-tag handles the pump records into.
//!
//! Every handle is pre-registered at construction, so the request hot
//! path touches only lock-free atomics — the single exception is the
//! per-tenant counter cache, which takes one short mutex'd hash lookup
//! per match query to map a tenant id to its labeled counter.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cm_telemetry::{
    metric_names, Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, Trace,
};

use crate::wire::Request;

/// `tag` label values, one per request kind plus `invalid` for frames
/// that fail [`Request::decode`]. Order matches [`tag_index`].
pub(crate) const REQUEST_TAGS: [&str; 9] = [
    "ping",
    "list_tenants",
    "match",
    "tenant_stats",
    "load_database",
    "evict_database",
    "database_info",
    "metrics",
    "invalid",
];

/// Index into [`REQUEST_TAGS`] for frames that failed to decode.
pub(crate) const TAG_INVALID: usize = REQUEST_TAGS.len() - 1;

/// The `tag` label index for a decoded request.
pub(crate) fn tag_index(request: &Request) -> usize {
    match request {
        Request::Ping => 0,
        Request::ListTenants => 1,
        Request::Match { .. } => 2,
        Request::TenantStats { .. } => 3,
        Request::LoadDatabase { .. } => 4,
        Request::EvictDatabase { .. } => 5,
        Request::DatabaseInfo { .. } => 6,
        Request::Metrics => 7,
    }
}

/// Shortest interval the derived `Hom-Add` throughput gauge will divide
/// by. A snapshot taken sooner keeps the previous value: a near-zero
/// denominator turns a handful of adds into a nonsense spike, and the
/// very first snapshot would divide the whole startup total by
/// microseconds.
const MIN_RATE_INTERVAL: Duration = Duration::from_millis(10);

/// Where the last throughput computation left off: the `hom_adds_total`
/// reading and the instant it was taken, so the next snapshot derives a
/// rate over the *interval* instead of the whole uptime (which turns
/// long-idle servers' gauges into stale averages).
struct RateWindow {
    at: Instant,
    total: u64,
}

/// The four per-request-tag series.
struct PerTag {
    requests: Counter,
    latency: Histogram,
    queue_wait: Histogram,
    serve_time: Histogram,
}

/// One serving process's telemetry: the registry every layer registers
/// into, and the serving-path handles recorded by the front-end and
/// pump.
pub(crate) struct ServerTelemetry {
    registry: MetricsRegistry,
    per_tag: Vec<PerTag>,
    inflight: Gauge,
    busy_sockets: Counter,
    busy_frames: Counter,
    upload_bytes: Counter,
    /// Per-request `Hom-Add` volume — CM-SW's whole compute profile.
    hom_adds: Histogram,
    hom_adds_total: Counter,
    /// Derived at snapshot time: adds since the previous snapshot over
    /// the interval, guarded by [`MIN_RATE_INTERVAL`].
    hom_adds_per_sec: Gauge,
    rate_window: Mutex<RateWindow>,
    /// Per-tenant match counters, created on first query for the tenant.
    tenant_requests: Mutex<HashMap<String, Counter>>,
    slow_query_micros: Option<u64>,
}

impl std::fmt::Debug for ServerTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerTelemetry")
            .field("enabled", &self.registry.is_enabled())
            .finish()
    }
}

impl ServerTelemetry {
    /// Builds the telemetry for one server. With `enabled` false every
    /// handle is a no-op and snapshots are empty — the configuration
    /// for measuring the instrumentation's own overhead.
    pub(crate) fn new(enabled: bool, slow_query_micros: Option<u64>) -> Self {
        let registry = if enabled {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        };
        let per_tag = REQUEST_TAGS
            .iter()
            .map(|tag| PerTag {
                requests: registry.register_counter(metric_names::SERVER_REQUESTS, &[("tag", tag)]),
                latency: registry
                    .register_histogram(metric_names::SERVER_REQUEST_LATENCY_US, &[("tag", tag)]),
                queue_wait: registry
                    .register_histogram(metric_names::SERVER_QUEUE_WAIT_US, &[("tag", tag)]),
                serve_time: registry
                    .register_histogram(metric_names::SERVER_SERVE_TIME_US, &[("tag", tag)]),
            })
            .collect();
        Self {
            per_tag,
            inflight: registry.register_gauge(metric_names::SERVER_INFLIGHT_FRAMES, &[]),
            busy_sockets: registry
                .register_counter(metric_names::SERVER_BUSY_REJECTIONS, &[("cap", "sockets")]),
            busy_frames: registry
                .register_counter(metric_names::SERVER_BUSY_REJECTIONS, &[("cap", "frames")]),
            upload_bytes: registry.register_counter(metric_names::SERVER_UPLOAD_BYTES, &[]),
            hom_adds: registry.register_histogram(metric_names::SERVER_HOM_ADDS, &[]),
            hom_adds_total: registry.register_counter(metric_names::SERVER_HOM_ADDS_TOTAL, &[]),
            hom_adds_per_sec: registry.register_gauge(metric_names::SERVER_HOM_ADDS_PER_SEC, &[]),
            rate_window: Mutex::new(RateWindow {
                at: Instant::now(),
                total: 0,
            }),
            tenant_requests: Mutex::new(HashMap::new()),
            slow_query_micros,
            registry,
        }
    }

    /// The registry the reactor, pools, and tenant registry share.
    pub(crate) fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Counts a typed `ServerBusy` rejection at the socket cap.
    pub(crate) fn count_socket_rejection(&self) {
        self.busy_sockets.inc();
    }

    /// Counts a typed `ServerBusy` rejection at the in-flight-frame cap.
    pub(crate) fn count_frame_rejection(&self) {
        self.busy_frames.inc();
    }

    /// Tracks the admitted-but-unanswered frame gauge alongside the
    /// front-end's own atomic count.
    pub(crate) fn inflight_add(&self, delta: i64) {
        self.inflight.add(delta);
    }

    /// Counts accepted upload chunk payload bytes.
    pub(crate) fn count_upload_bytes(&self, bytes: u64) {
        self.upload_bytes.add(bytes);
    }

    /// Records one match query's `Hom-Add` volume: the per-request
    /// histogram and the monotone total the throughput gauge derives
    /// from.
    pub(crate) fn record_hom_adds(&self, adds: u64) {
        self.hom_adds.record(adds);
        self.hom_adds_total.add(adds);
    }

    /// A point-in-time copy of every registered series, with the derived
    /// `Hom-Add` throughput gauge refreshed first so readers see adds/sec
    /// over the interval since the previous snapshot — not a whole-uptime
    /// average that a long idle gap dilutes toward zero, and never a
    /// near-zero denominator (the first snapshot used to divide the
    /// startup total by microseconds of uptime).
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        self.refresh_rate();
        self.registry.snapshot()
    }

    /// Recomputes `cm_server_hom_adds_per_sec` from the window since the
    /// last refresh. Within [`MIN_RATE_INTERVAL`] the gauge keeps its
    /// previous value and the window stays open, so rapid-fire snapshots
    /// neither spike the rate nor starve it.
    fn refresh_rate(&self) {
        let mut window = self
            .rate_window
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let now = Instant::now();
        let elapsed = now.duration_since(window.at);
        if elapsed < MIN_RATE_INTERVAL {
            return;
        }
        let total = self.hom_adds_total.value();
        let delta = total.saturating_sub(window.total);
        let rate = delta as f64 / elapsed.as_secs_f64();
        self.hom_adds_per_sec.set(rate as i64);
        window.at = now;
        window.total = total;
    }

    /// Records one answered frame: the per-tag request count and
    /// latency/queue-wait/serve-time histograms, the per-tenant counter
    /// for match queries, and — when configured — the slow-query stderr
    /// line. Call with every stage already marked on `trace`.
    pub(crate) fn record_frame(&self, tag: usize, trace: &Trace, tenant: Option<&str>) {
        let Some(per) = self.per_tag.get(tag) else {
            return;
        };
        per.requests.inc();
        if let Some(total) = trace.total() {
            per.latency.record_micros(total);
        }
        if let Some(wait) = trace.queue_wait() {
            per.queue_wait.record_micros(wait);
        }
        if let Some(serve) = trace.serve_time() {
            per.serve_time.record_micros(serve);
        }
        if let Some(tenant) = tenant {
            self.tenant_counter(tenant).inc();
        }
        if let Some(limit) = self.slow_query_micros {
            let total_us = trace.total().map_or(0, |t| t.as_micros() as u64);
            if total_us >= limit {
                // Structured, greppable, one line per slow request.
                eprintln!(
                    "slow_query id={} tag={} tenant={} total_us={} {}",
                    trace.id(),
                    REQUEST_TAGS.get(tag).unwrap_or(&"invalid"),
                    tenant.unwrap_or("-"),
                    total_us,
                    trace.stage_summary(),
                );
            }
        }
    }

    fn tenant_counter(&self, tenant: &str) -> Counter {
        let mut cache = self
            .tenant_requests
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(counter) = cache.get(tenant) {
            return counter.clone();
        }
        let counter = self
            .registry
            .register_counter(metric_names::SERVER_TENANT_REQUESTS, &[("tenant", tenant)]);
        cache.insert(tenant.to_string(), counter.clone());
        counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_snapshot_within_the_guard_window_is_not_a_spike() {
        let telemetry = ServerTelemetry::new(true, None);
        // A burst lands immediately after startup; the old
        // total-over-uptime derivation divided it by microseconds.
        telemetry.record_hom_adds(1_000_000);
        telemetry.snapshot();
        assert_eq!(
            telemetry.hom_adds_per_sec.value(),
            0,
            "a snapshot inside the guard window must keep the seed value"
        );
    }

    #[test]
    fn rate_is_windowed_and_idle_gaps_decay_to_zero() {
        let telemetry = ServerTelemetry::new(true, None);
        telemetry.record_hom_adds(50_000);
        std::thread::sleep(MIN_RATE_INTERVAL * 2);
        telemetry.snapshot();
        let busy = telemetry.hom_adds_per_sec.value();
        assert!(busy > 0, "a real interval with adds must show a rate");
        // An immediate re-snapshot sits inside the guard window: the
        // gauge holds, rather than dividing ~0 adds by ~0 seconds.
        telemetry.snapshot();
        assert_eq!(telemetry.hom_adds_per_sec.value(), busy);
        // After an idle window the rate is the *current* throughput
        // (zero), not a whole-uptime average that merely shrinks.
        std::thread::sleep(MIN_RATE_INTERVAL * 2);
        telemetry.snapshot();
        assert_eq!(telemetry.hom_adds_per_sec.value(), 0);
    }
}
