//! The TCP serving front-end: accept loop, bounded connection pool,
//! request dispatch.
//!
//! One process serves every registered tenant. Accepted connections are
//! handled as jobs on a [`WorkerPool`] of `max_connections` long-lived
//! workers (the same `cm_core::exec` runtime the sessions, tenant pools,
//! and shard executors run on) — never one freshly spawned thread per
//! accept. A connection arriving while all `max_connections` slots are
//! busy is *rejected* with a typed [`MatchError::ServerBusy`] wire error
//! instead of growing the process without bound. Request handling errors
//! travel back as [`Response::Error`] frames, transport/framing errors
//! end the connection. The listener can be driven directly
//! ([`MatchServer::serve`]) or on a background thread with a shutdown
//! handle ([`MatchServer::spawn`]) — shutdown stops accepting, closes the
//! active sockets, and drains the connection pool before returning.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use cm_core::{Backend, MatchError, WorkerPool};

use crate::tenant::TenantRegistry;
use crate::wire::{read_frame, write_frame, Request, Response};

/// Front-end knobs for a serving process.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Hard cap on concurrently served connections (and the size of the
    /// connection worker pool). Connections beyond the cap receive a
    /// [`MatchError::ServerBusy`] frame and are closed.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
        }
    }
}

/// A serving process: a tenant registry behind a TCP front-end.
#[derive(Debug)]
pub struct MatchServer {
    registry: Arc<TenantRegistry>,
    config: ServerConfig,
}

impl MatchServer {
    /// Wraps a fully provisioned registry with the default
    /// [`ServerConfig`].
    pub fn new(registry: TenantRegistry) -> Self {
        Self {
            registry: Arc::new(registry),
            config: ServerConfig::default(),
        }
    }

    /// Wraps a registry with explicit front-end knobs.
    ///
    /// # Errors
    ///
    /// [`MatchError::InvalidConfig`] for a zero connection cap.
    pub fn with_config(registry: TenantRegistry, config: ServerConfig) -> Result<Self, MatchError> {
        if config.max_connections == 0 {
            return Err(MatchError::InvalidConfig(
                "max_connections must be positive",
            ));
        }
        Ok(Self {
            registry: Arc::new(registry),
            config,
        })
    }

    /// The registry this server dispatches to.
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// Binds `addr` and serves on a background thread, returning the
    /// running server's address and shutdown handle. Bind to port 0 for
    /// an ephemeral port.
    ///
    /// # Errors
    ///
    /// [`MatchError::Transport`] if the bind fails.
    pub fn spawn<A: ToSocketAddrs>(self, addr: A) -> Result<RunningServer, MatchError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| MatchError::Transport(format!("bind: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| MatchError::Transport(format!("local_addr: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Connections::new(self.config.max_connections));
        let registry = Arc::clone(&self.registry);
        let stop_flag = Arc::clone(&stop);
        let conns_flag = Arc::clone(&conns);
        let handle = std::thread::spawn(move || {
            accept_loop(&listener, &registry, &stop_flag, &conns_flag);
        });
        Ok(RunningServer {
            addr: local_addr,
            stop,
            conns,
            handle: Some(handle),
        })
    }

    /// Serves `listener` on the calling thread until the process exits
    /// (the production entry point; tests use [`Self::spawn`]).
    pub fn serve(self, listener: &TcpListener) {
        accept_loop(
            listener,
            &self.registry,
            &AtomicBool::new(false),
            &Arc::new(Connections::new(self.config.max_connections)),
        );
    }
}

/// The admission table: which sockets are in flight, bounded by the
/// connection cap. Tracked handles (`try_clone`s) let shutdown force the
/// in-flight request loops off their blocking reads.
#[derive(Debug)]
struct Connections {
    active: Mutex<AdmissionState>,
    limit: usize,
}

#[derive(Debug, Default)]
struct AdmissionState {
    streams: HashMap<u64, TcpStream>,
    /// Set by [`Connections::close_all`] under the same lock admissions
    /// take, so a socket accepted concurrently with shutdown is either in
    /// the table when `close_all` sweeps it or refused admission — never
    /// admitted-but-unclosed (which would stall the drain on its read
    /// timeout).
    draining: bool,
}

impl Connections {
    fn new(limit: usize) -> Self {
        Self {
            active: Mutex::new(AdmissionState::default()),
            limit,
        }
    }

    /// Admits `stream` if a slot is free (and the table is not draining),
    /// returning its release token.
    fn try_admit(&self, stream: &TcpStream) -> Option<u64> {
        let mut state = self.active.lock().ok()?;
        if state.draining || state.streams.len() >= self.limit {
            return None;
        }
        // Without a trackable handle the connection could not be closed
        // on drain; treat a failed clone like a full table.
        let tracked = stream.try_clone().ok()?;
        let token = next_token();
        state.streams.insert(token, tracked);
        Some(token)
    }

    fn release(&self, token: u64) {
        if let Ok(mut state) = self.active.lock() {
            state.streams.remove(&token);
        }
    }

    /// Forces every in-flight connection off its socket and refuses
    /// further admissions (drain).
    fn close_all(&self) {
        if let Ok(mut state) = self.active.lock() {
            state.draining = true;
            for stream in state.streams.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }
}

/// Releases a connection slot on drop, so a panic anywhere in the request
/// loop cannot leak the slot (the pool's worker survives job panics — an
/// unreleased token would otherwise count against `max_connections`
/// forever).
struct SlotGuard {
    conns: Arc<Connections>,
    token: u64,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.conns.release(self.token);
    }
}

/// Process-wide token source so release can never race a re-used key.
fn next_token() -> u64 {
    use std::sync::atomic::AtomicU64;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Accepts connections until the stop flag flips, handling each as a job
/// on a bounded worker pool; the pool drains (remaining requests finish
/// against their closed sockets) when the loop exits.
fn accept_loop(
    listener: &TcpListener,
    registry: &Arc<TenantRegistry>,
    stop: &AtomicBool,
    conns: &Arc<Connections>,
) {
    let Ok(pool) = WorkerPool::new(conns.limit) else {
        return; // zero cap is rejected in with_config; defensive only
    };
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = match stream {
            Ok(stream) => stream,
            Err(_) => {
                // Persistent accept errors (e.g. fd exhaustion) would
                // otherwise spin this loop at full speed; back off briefly
                // before retrying.
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        let Some(token) = conns.try_admit(&stream) else {
            // Over the cap: a typed rejection, not an unbounded spawn.
            let busy = Response::Error(MatchError::ServerBusy {
                max_connections: conns.limit,
            });
            let _ = write_frame(&mut stream, &busy.encode());
            continue;
        };
        let registry = Arc::clone(registry);
        let slot = SlotGuard {
            conns: Arc::clone(conns),
            token,
        };
        let _detached = pool.submit(move || {
            let _slot = slot; // released on drop, panic included
            handle_connection(stream, &registry);
        });
    }
    // `pool` drops here: graceful drain, then join, of every admitted
    // connection job. Shutdown closed the active sockets first, so the
    // request loops exit as soon as their current request finishes.
}

/// How long a connection may sit idle (or dribble a frame) before its
/// worker is reclaimed — pooled connection slots must not leak to silent
/// peers.
const CONNECTION_READ_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(300);

/// Runs one connection's request loop until the peer closes or the
/// transport fails.
fn handle_connection(mut stream: TcpStream, registry: &TenantRegistry) {
    if stream
        .set_read_timeout(Some(CONNECTION_READ_TIMEOUT))
        .is_err()
    {
        return;
    }
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            // Clean EOF, a torn frame, or a dead socket: nothing sensible
            // left to answer on this connection.
            Ok(None) | Err(MatchError::Transport(_)) => return,
            Err(e) => {
                // Framing violation: report it once, then hang up (the
                // stream is no longer at a frame boundary).
                let _ = write_frame(&mut stream, &Response::Error(e).encode());
                return;
            }
        };
        let response = match Request::decode(&payload) {
            Ok(request) => dispatch(&request, registry),
            Err(e) => Response::Error(e),
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// Maps one request to its response; never panics on hostile input.
fn dispatch(request: &Request, registry: &TenantRegistry) -> Response {
    match request {
        Request::Ping => Response::Pong {
            backends: Backend::WIRE.iter().map(|b| b.name().to_string()).collect(),
        },
        Request::ListTenants => Response::Tenants(registry.list()),
        Request::Match { tenant, query } => match registry.get(tenant).and_then(|t| t.run(query)) {
            Ok(reply) => Response::Matched {
                nonce: reply.nonce,
                sealed_indices: reply.sealed_indices,
                stats: reply.stats,
                shard_stats: reply.shard_stats,
                seal_latency: reply.seal_latency,
            },
            Err(e) => Response::Error(e),
        },
        Request::TenantStats { tenant } => match registry.get(tenant) {
            Ok(t) => {
                let (stats, queries) = t.totals();
                Response::TenantStats { stats, queries }
            }
            Err(e) => Response::Error(e),
        },
    }
}

/// Handle to a server running on a background thread.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Connections>,
    handle: Option<JoinHandle<()>>,
}

impl RunningServer {
    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes the active connections, and drains the
    /// connection pool (in-flight requests finish) before returning.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Force in-flight request loops off their blocking reads so the
        // drain below cannot wait on an idle peer.
        self.conns.close_all();
        // Unblock the accept call with a throwaway connection. A wildcard
        // bind address (0.0.0.0 / ::) is not connectable everywhere, so
        // aim the poke at loopback in that case.
        let mut poke = self.addr;
        if poke.ip().is_unspecified() {
            poke.set_ip(match poke {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(poke);
        // Joining the accept thread also drains and joins the connection
        // pool, which is dropped when the loop exits.
        let _ = handle.join();
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}
