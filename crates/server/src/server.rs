//! The TCP serving front-end: a readiness-driven reactor that admits
//! frames, not connections.
//!
//! One [`cm_reactor::Reactor`] thread owns every socket: it accepts
//! connections, reassembles length-prefixed frames incrementally
//! ([`crate::wire::FrameBuffer`]), and submits each *complete request
//! frame* as a job on a [`WorkerPool`] of `max_inflight_frames` workers
//! (the same `cm_core::exec` runtime the sessions, tenant pools, and
//! shard executors run on). Reply frames travel back over the reactor's
//! command queue + wakeup pipe ([`cm_reactor::ReactorHandle::send`]),
//! with per-connection write backpressure.
//!
//! Admission is split in two, because sockets and work cost differently:
//!
//! * [`ServerConfig::max_open_sockets`] caps *connections* — thousands
//!   are fine, since an idle socket costs one fd and a decode buffer,
//!   no thread, no pool slot. Arrivals past the cap get a typed
//!   [`MatchError::ServerBusy`] frame and are closed.
//! * [`ServerConfig::max_inflight_frames`] caps *work* — request frames
//!   admitted to the pool but not yet answered. A frame past the cap
//!   gets the same typed rejection without occupying a worker.
//!
//! Frames from one connection are processed strictly in order (a
//! per-connection pump job drains its queue serially), which preserves
//! upload-session affinity: a chunked database upload lives and dies
//! with its connection. Request handling errors travel back as
//! [`Response::Error`] frames; framing violations get one typed
//! farewell frame before the connection closes. Shutdown
//! ([`RunningServer::shutdown`]) stops the reactor (force-closing every
//! tracked socket), then drains and joins the frame pool.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use cm_core::{Backend, MatchError, PoolMetrics, WorkerPool};
use cm_reactor::{
    ConnId, Events, Reactor, ReactorConfig, ReactorHandle, ReactorMetrics, ReactorThread,
};
use cm_telemetry::{MetricsRegistry, Stage, Trace};

use crate::telemetry::{tag_index, ServerTelemetry, TAG_INVALID};
use crate::tenant::TenantRegistry;
use crate::wire::{
    frame_bytes, FrameBuffer, Request, Response, TenantSpec, UploadAuth, UploadPhase,
    MAX_FRAME_BYTES,
};

/// Front-end knobs for a serving process.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Hard cap on concurrently open sockets. Idle connections are
    /// cheap (one fd, no thread), so this defaults high; arrivals past
    /// the cap receive a [`MatchError::ServerBusy`] frame and are
    /// closed without being admitted.
    pub max_open_sockets: usize,
    /// Hard cap on request frames in flight (admitted to the frame
    /// pool but not yet answered) — and the size of that worker pool.
    /// A frame past the cap is answered with a typed
    /// [`MatchError::ServerBusy`] instead of queueing unboundedly.
    pub max_inflight_frames: usize,
    /// Host memory budget in bytes for hot tenant databases (`None` =
    /// unbounded). Admissions past the budget demote least-recently-used
    /// unpinned remote tenants to the cold tier; see
    /// [`TenantRegistry::set_memory_budget`].
    pub memory_budget: Option<u64>,
    /// Emit a structured `slow_query` line on stderr for every request
    /// whose end-to-end latency (admitted → replied) reaches this many
    /// microseconds (`None` = never). The line carries the request id,
    /// tag, tenant, and per-stage timings, so queue wait and serve time
    /// are separable at a glance.
    pub slow_query_micros: Option<u64>,
    /// Whether the server records telemetry (the default). With `false`
    /// every metric handle is a no-op, [`Request::Metrics`] answers with
    /// an empty snapshot, and the serving path pays only dead atomics —
    /// the configuration the `telemetry_overhead` bench compares
    /// against.
    pub telemetry: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_open_sockets: 4096,
            max_inflight_frames: 64,
            memory_budget: None,
            slow_query_micros: None,
            telemetry: true,
        }
    }
}

impl ServerConfig {
    /// The reactor knobs this config implies: the socket cap plus a
    /// write buffer large enough for one maximum reply frame (header
    /// included) with room to spare — a peer that stops reading while
    /// more than that queues is closed as overloaded. Event-loop
    /// metrics register into the server's shared `metrics` registry.
    fn reactor(&self, metrics: &MetricsRegistry) -> ReactorConfig {
        ReactorConfig {
            max_open_sockets: self.max_open_sockets,
            max_buffered_write: MAX_FRAME_BYTES + (64 << 10),
            metrics: ReactorMetrics::register(metrics),
        }
    }
}

/// A serving process: a tenant registry behind a TCP front-end.
#[derive(Debug)]
pub struct MatchServer {
    registry: Arc<TenantRegistry>,
    config: ServerConfig,
    telemetry: Arc<ServerTelemetry>,
}

impl MatchServer {
    /// Wraps a fully provisioned registry with the default
    /// [`ServerConfig`].
    pub fn new(registry: TenantRegistry) -> Self {
        Self::assemble(registry, ServerConfig::default())
    }

    /// Wraps a registry with explicit front-end knobs.
    ///
    /// # Errors
    ///
    /// [`MatchError::InvalidConfig`] for a zero socket or frame cap.
    pub fn with_config(registry: TenantRegistry, config: ServerConfig) -> Result<Self, MatchError> {
        if config.max_open_sockets == 0 {
            return Err(MatchError::InvalidConfig(
                "max_open_sockets must be positive",
            ));
        }
        if config.max_inflight_frames == 0 {
            return Err(MatchError::InvalidConfig(
                "max_inflight_frames must be positive",
            ));
        }
        if let Some(budget) = config.memory_budget {
            registry.set_memory_budget(Some(budget));
        }
        Ok(Self::assemble(registry, config))
    }

    fn assemble(registry: TenantRegistry, config: ServerConfig) -> Self {
        let telemetry = Arc::new(ServerTelemetry::new(
            config.telemetry,
            config.slow_query_micros,
        ));
        // The registry's lifecycle metrics (demotions,
        // re-materializations, hot-tier occupancy) join the same
        // exposition as the front-end's.
        registry.install_telemetry(telemetry.registry());
        Self {
            registry: Arc::new(registry),
            config,
            telemetry,
        }
    }

    /// The registry this server dispatches to.
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// Binds `addr` and serves in the background, returning the running
    /// server's address and shutdown handle. Bind to port 0 for an
    /// ephemeral port. The reactor thread owns every socket; request
    /// frames run as jobs on the shared `cm_core::exec` runtime.
    ///
    /// # Errors
    ///
    /// [`MatchError::Transport`] if the bind or reactor setup fails.
    pub fn spawn<A: ToSocketAddrs>(self, addr: A) -> Result<RunningServer, MatchError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| MatchError::Transport(format!("bind: {e}")))?;
        let reactor =
            Reactor::from_listener(listener, self.config.reactor(self.telemetry.registry()))
                .map_err(|e| MatchError::Transport(format!("reactor: {e}")))?;
        let addr = reactor.local_addr();
        let pool = Arc::new(self.frame_pool()?);
        let telemetry = Arc::clone(&self.telemetry);
        let front = FrontEnd::new(&self, reactor.handle(), Arc::clone(&pool));
        let reactor = reactor
            .spawn(front)
            .map_err(|e| MatchError::Transport(format!("reactor thread: {e}")))?;
        Ok(RunningServer {
            addr,
            reactor: Some(reactor),
            pool: Some(pool),
            telemetry,
        })
    }

    /// Serves `listener` on the calling thread until the process exits
    /// (the production entry point; tests use [`Self::spawn`]).
    pub fn serve(self, listener: &TcpListener) {
        let Ok(listener) = listener.try_clone() else {
            return;
        };
        let Ok(reactor) =
            Reactor::from_listener(listener, self.config.reactor(self.telemetry.registry()))
        else {
            return;
        };
        let Ok(pool) = self.frame_pool().map(Arc::new) else {
            return; // zero cap is rejected in with_config; defensive only
        };
        let front = FrontEnd::new(&self, reactor.handle(), Arc::clone(&pool));
        reactor.run(front);
    }

    /// Builds the frame pool with its queue-depth/wait/run-time metrics
    /// installed before any handle is shared.
    fn frame_pool(&self) -> Result<WorkerPool, MatchError> {
        let mut pool = WorkerPool::new(self.config.max_inflight_frames)?;
        pool.set_metrics(PoolMetrics::register(self.telemetry.registry(), "frames"));
        Ok(pool)
    }
}

/// Encodes the typed over-capacity rejection, reporting whichever cap
/// (`max_open_sockets` or `max_inflight_frames`) turned the work away.
fn busy_frame(cap: usize) -> Option<Vec<u8>> {
    frame_bytes(
        &Response::Error(MatchError::ServerBusy {
            max_open_sockets: cap,
        })
        .encode(),
    )
    .ok()
}

/// Per-connection serving state, owned by the front-end table.
#[derive(Default)]
struct ConnState {
    /// Whether a pump job for this connection is live on the pool.
    busy: bool,
    /// Admitted request frames awaiting the pump, oldest first, each
    /// with the [`Trace`] minted at admission. Each counts against the
    /// in-flight cap until answered.
    queued: VecDeque<(Vec<u8>, Trace)>,
    /// The connection's chunked-upload session, if one is in progress.
    /// Parked here between pump runs — upload affinity is to the
    /// *connection*, and its frames are processed serially.
    upload: Option<UploadSession>,
}

/// Locks the connection table. Named (rather than inlined `.lock()`)
/// so each use-site documents the rule the serving path lives by:
/// the guard is scoped tightly and NEVER held across a pool submit or
/// a reactor send.
fn lock_table(
    table: &Mutex<HashMap<ConnId, ConnState>>,
) -> MutexGuard<'_, HashMap<ConnId, ConnState>> {
    table
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Everything a pump job needs — deliberately *not* the pool itself, so
/// a worker can never drop the last pool handle and join itself.
struct PumpCtx {
    registry: Arc<TenantRegistry>,
    staging: Arc<Staging>,
    handle: ReactorHandle,
    table: Arc<Mutex<HashMap<ConnId, ConnState>>>,
    inflight: Arc<AtomicUsize>,
    telemetry: Arc<ServerTelemetry>,
}

/// The reactor-facing application: admission, frame queues, dispatch.
/// Lives on the reactor thread; every callback must return quickly, so
/// real work is handed to the frame pool.
struct FrontEnd {
    registry: Arc<TenantRegistry>,
    staging: Arc<Staging>,
    pool: Arc<WorkerPool>,
    handle: ReactorHandle,
    table: Arc<Mutex<HashMap<ConnId, ConnState>>>,
    /// Admitted-but-unanswered request frames, server-wide.
    inflight: Arc<AtomicUsize>,
    max_inflight: usize,
    max_open_sockets: usize,
    telemetry: Arc<ServerTelemetry>,
}

impl FrontEnd {
    fn new(server: &MatchServer, handle: ReactorHandle, pool: Arc<WorkerPool>) -> Self {
        Self {
            registry: Arc::clone(&server.registry),
            // One staging account for the whole server: concurrent
            // uploads from every connection share (and are bounded by)
            // it.
            staging: Arc::new(Staging::new(server.registry.memory_budget())),
            pool,
            handle,
            table: Arc::new(Mutex::new(HashMap::new())),
            inflight: Arc::new(AtomicUsize::new(0)),
            max_inflight: server.config.max_inflight_frames,
            max_open_sockets: server.config.max_open_sockets,
            telemetry: Arc::clone(&server.telemetry),
        }
    }

    /// Submits the pump job that serially drains `conn`'s frame queue.
    /// The notify path covers the one failure the pump cannot handle
    /// itself — a panic escaping dispatch — by releasing the frame's
    /// in-flight slot and closing the connection.
    fn spawn_pump(&self, conn: ConnId) {
        let ctx = PumpCtx {
            registry: Arc::clone(&self.registry),
            staging: Arc::clone(&self.staging),
            handle: self.handle.clone(),
            table: Arc::clone(&self.table),
            inflight: Arc::clone(&self.inflight),
            telemetry: Arc::clone(&self.telemetry),
        };
        let inflight = Arc::clone(&self.inflight);
        let handle = self.handle.clone();
        let telemetry = Arc::clone(&self.telemetry);
        self.pool.submit_notify(
            move || run_pump(&ctx, conn),
            move |result| {
                if result.is_err() {
                    inflight.fetch_sub(1, Ordering::SeqCst);
                    telemetry.inflight_add(-1);
                    handle.close(conn);
                }
            },
        );
    }
}

impl Events for FrontEnd {
    type Decoder = FrameBuffer;

    fn decoder(&mut self) -> FrameBuffer {
        FrameBuffer::new()
    }

    fn on_open(&mut self, conn: ConnId) {
        lock_table(&self.table).insert(conn, ConnState::default());
    }

    fn on_frame(&mut self, conn: ConnId, frame: Vec<u8>) {
        // The trace starts the moment the reactor hands the frame over:
        // everything from here to the reply is on the server's clock.
        let trace = Trace::begin();
        // Admission against the in-flight cap, before any queueing: the
        // pool must never owe more answers than it has room to compute.
        let admitted = self
            .inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.max_inflight).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            self.telemetry.count_frame_rejection();
            if let Some(bytes) = busy_frame(self.max_inflight) {
                self.handle.send(conn, bytes);
            }
            return;
        }
        self.telemetry.inflight_add(1);
        let start_pump = {
            let mut table = lock_table(&self.table);
            match table.get_mut(&conn) {
                Some(entry) => {
                    entry.queued.push_back((frame, trace));
                    !std::mem::replace(&mut entry.busy, true)
                }
                None => {
                    // The connection closed in this same event batch;
                    // give the slot back.
                    self.inflight.fetch_sub(1, Ordering::SeqCst);
                    self.telemetry.inflight_add(-1);
                    return;
                }
            }
        };
        if start_pump {
            self.spawn_pump(conn);
        }
    }

    fn on_reject(&mut self) -> Option<Vec<u8>> {
        self.telemetry.count_socket_rejection();
        busy_frame(self.max_open_sockets)
    }

    fn on_violation(&mut self, _conn: ConnId, reason: &'static str) -> Option<Vec<u8>> {
        // Framing violation: report it once, typed, then the reactor
        // hangs up (the stream is no longer at a frame boundary).
        frame_bytes(&Response::Error(MatchError::Frame(reason)).encode()).ok()
    }

    fn on_close(&mut self, conn: ConnId, _reason: cm_reactor::CloseReason) {
        // Frames still queued were admitted but will never be answered:
        // release their in-flight slots. The upload session (and its
        // staging lease) drops with the entry.
        let queued = lock_table(&self.table)
            .remove(&conn)
            .map_or(0, |entry| entry.queued.len());
        if queued > 0 {
            self.inflight.fetch_sub(queued, Ordering::SeqCst);
            self.telemetry.inflight_add(-(queued as i64));
        }
    }
}

/// One pump run: drains `conn`'s queued frames strictly in order,
/// dispatching each and handing the reply frame back to the reactor.
/// Exactly one pump is live per connection (the `busy` flag), so upload
/// state needs no lock of its own — it rides in the pump.
fn run_pump(ctx: &PumpCtx, conn: ConnId) {
    // Take the upload session out for the run; it is parked back when
    // the queue drains, and dropped (staged bytes discarded, staging
    // lease released) if the connection goes away mid-run.
    let mut upload = {
        let mut table = lock_table(&ctx.table);
        match table.get_mut(&conn) {
            Some(entry) => entry.upload.take(),
            None => return,
        }
    };
    loop {
        let (frame, mut trace) = {
            let mut table = lock_table(&ctx.table);
            let Some(entry) = table.get_mut(&conn) else {
                return; // connection closed; queued slots were released
            };
            match entry.queued.pop_front() {
                Some(queued) => queued,
                None => {
                    entry.busy = false;
                    entry.upload = upload.take();
                    return;
                }
            }
        };
        trace.mark(Stage::Dequeued);
        let decoded = Request::decode(&frame);
        trace.mark(Stage::Decoded);
        let (tag, tenant) = match &decoded {
            Ok(request) => (tag_index(request), request_tenant(request)),
            Err(_) => (TAG_INVALID, None),
        };
        let tenant = tenant.map(str::to_string);
        let response = match decoded {
            Ok(request) => dispatch(
                &request,
                &ctx.registry,
                &ctx.staging,
                &mut upload,
                &ctx.telemetry,
            ),
            Err(e) => Response::Error(e),
        };
        trace.mark(Stage::Matched);
        let bytes = match frame_bytes(&response.encode()) {
            Ok(bytes) => bytes,
            // A reply too large to frame degrades to a typed error
            // frame rather than silence (or a panic).
            Err(e) => frame_bytes(&Response::Error(e).encode()).unwrap_or_default(),
        };
        // The reply is fully assembled: stamp it and record the frame's
        // series *before* the slot release and hand-off, so a client
        // that has its answer can never observe a snapshot that missed
        // this request.
        trace.mark(Stage::Replied);
        ctx.telemetry.record_frame(tag, &trace, tenant.as_deref());
        // The answer exists: release the in-flight slot before the
        // hand-off so admission sees pool capacity, not send latency.
        ctx.inflight.fetch_sub(1, Ordering::SeqCst);
        ctx.telemetry.inflight_add(-1);
        ctx.handle.send(conn, bytes);
    }
}

/// The tenant a request targets, for the per-tenant counter and the
/// slow-query line (`None` for tenant-less requests).
fn request_tenant(request: &Request) -> Option<&str> {
    match request {
        Request::Match { tenant, .. }
        | Request::TenantStats { tenant }
        | Request::LoadDatabase { tenant, .. }
        | Request::EvictDatabase { tenant, .. }
        | Request::DatabaseInfo { tenant } => Some(tenant),
        Request::Ping | Request::ListTenants | Request::Metrics => None,
    }
}

/// The server-wide staged-upload accounting: the sum of every in-flight
/// upload's *declared* size, bounded so that concurrent hostile uploads
/// cannot stage unbounded bytes in RAM before ever committing (the
/// registry's budget only governs *admitted* databases).
struct Staging {
    used: std::sync::atomic::AtomicU64,
    /// The registry's memory budget when one is set, otherwise
    /// [`crate::wire::MAX_DATABASE_BYTES`] — staged bytes get the same
    /// allowance as the hot tier, never more.
    cap: u64,
}

impl Staging {
    fn new(memory_budget: Option<u64>) -> Self {
        Self {
            used: std::sync::atomic::AtomicU64::new(0),
            cap: memory_budget.unwrap_or(crate::wire::MAX_DATABASE_BYTES),
        }
    }

    /// Reserves `bytes` of staging room, or fails typed when the
    /// server-wide cap is reached.
    fn reserve(self: &Arc<Self>, bytes: u64) -> Result<StagingLease, MatchError> {
        let mut current = self.used.load(Ordering::SeqCst);
        loop {
            let proposed = current.saturating_add(bytes);
            if proposed > self.cap {
                return Err(MatchError::QuotaExceeded {
                    budget: self.cap,
                    required: bytes,
                });
            }
            match self
                .used
                .compare_exchange(current, proposed, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    return Ok(StagingLease {
                        staging: Arc::clone(self),
                        bytes,
                    })
                }
                Err(observed) => current = observed,
            }
        }
    }
}

/// RAII staging reservation: released when the upload session ends —
/// commit, abort, replacement by a fresh `Begin`, or connection drop.
struct StagingLease {
    staging: Arc<Staging>,
    bytes: u64,
}

impl Drop for StagingLease {
    fn drop(&mut self) {
        self.staging.used.fetch_sub(self.bytes, Ordering::SeqCst);
    }
}

/// How long one upload may take from `Begin` to `Commit` before its
/// session (and staging reservation) is reclaimed: a peer must not be
/// able to hold a large reservation open indefinitely by dribbling
/// bytes.
const UPLOAD_DEADLINE: std::time::Duration = std::time::Duration::from_secs(600);

/// One in-flight chunked database upload, staged entirely in connection
/// state — the registry is only touched at `Commit`, so an aborted or
/// abandoned upload leaves it untouched. The session is dropped (and
/// its staging reservation released) on commit, abort, a fresh `Begin`,
/// any non-upload request on the connection, the [`UPLOAD_DEADLINE`],
/// or connection close.
struct UploadSession {
    tenant: String,
    spec: TenantSpec,
    auth: UploadAuth,
    started: std::time::Instant,
    expected_bytes: u64,
    chunk_count: u32,
    next_chunk: u32,
    data: Vec<u8>,
    /// Holds the staging reservation for `expected_bytes`.
    _lease: StagingLease,
}

/// Handles one [`Request::LoadDatabase`] step against the connection's
/// upload session. Any violation of the declared shape aborts the
/// session (the next upload must start over at `Begin`) and returns a
/// typed error.
fn dispatch_upload(
    tenant: &str,
    phase: &UploadPhase,
    registry: &TenantRegistry,
    staging: &Arc<Staging>,
    upload: &mut Option<UploadSession>,
    telemetry: &ServerTelemetry,
) -> Response {
    match phase {
        UploadPhase::Begin {
            auth,
            spec,
            total_bytes,
            chunk_count,
        } => {
            // A fresh Begin abandons any upload already in progress on
            // this connection (releasing its staging reservation).
            *upload = None;
            if let Err(e) = registry.authorize_upload(tenant, auth, *total_bytes, spec) {
                return Response::Error(e);
            }
            if let Some(budget) = registry.memory_budget() {
                if *total_bytes > budget {
                    // Reject before any chunk buffer exists: a declared
                    // size past the whole budget can never be admitted.
                    return Response::Error(MatchError::QuotaExceeded {
                        budget,
                        required: *total_bytes,
                    });
                }
            }
            // Reserve the declared size against the *server-wide*
            // staging cap: many connections declaring large uploads are
            // bounded collectively, not just per upload.
            let lease = match staging.reserve(*total_bytes) {
                Ok(lease) => lease,
                Err(e) => return Response::Error(e),
            };
            *upload = Some(UploadSession {
                tenant: tenant.to_string(),
                spec: spec.clone(),
                auth: auth.clone(),
                started: std::time::Instant::now(),
                expected_bytes: *total_bytes,
                chunk_count: *chunk_count,
                next_chunk: 0,
                // Sized by *received* data, never by the declared total:
                // a lying header cannot balloon memory ahead of bytes
                // actually sent.
                data: Vec::new(),
                _lease: lease,
            });
            Response::UploadProgress {
                received: 0,
                expected: *total_bytes,
            }
        }
        UploadPhase::Chunk { index, data } => {
            let Some(session) = upload.as_mut() else {
                return Response::Error(MatchError::UploadIncomplete(
                    "chunk without an upload in progress",
                ));
            };
            if session.started.elapsed() > UPLOAD_DEADLINE {
                *upload = None;
                return Response::Error(MatchError::UploadIncomplete("upload deadline exceeded"));
            }
            if session.tenant != tenant {
                *upload = None;
                return Response::Error(MatchError::UploadIncomplete(
                    "chunk for a different tenant than the upload in progress",
                ));
            }
            if *index != session.next_chunk {
                *upload = None;
                return Response::Error(MatchError::UploadIncomplete(
                    "out-of-order or duplicate chunk",
                ));
            }
            if session.next_chunk >= session.chunk_count {
                *upload = None;
                return Response::Error(MatchError::UploadIncomplete(
                    "more chunks than the upload declared",
                ));
            }
            if session.data.len() as u64 + data.len() as u64 > session.expected_bytes {
                *upload = None;
                return Response::Error(MatchError::UploadIncomplete(
                    "chunk data overruns the declared size",
                ));
            }
            session.data.extend_from_slice(data);
            session.next_chunk += 1;
            telemetry.count_upload_bytes(data.len() as u64);
            Response::UploadProgress {
                received: session.data.len() as u64,
                expected: session.expected_bytes,
            }
        }
        UploadPhase::Commit => {
            let Some(session) = upload.take() else {
                return Response::Error(MatchError::UploadIncomplete(
                    "commit without an upload in progress",
                ));
            };
            if session.started.elapsed() > UPLOAD_DEADLINE {
                return Response::Error(MatchError::UploadIncomplete("upload deadline exceeded"));
            }
            if session.tenant != tenant {
                return Response::Error(MatchError::UploadIncomplete(
                    "commit for a different tenant than the upload in progress",
                ));
            }
            if session.next_chunk != session.chunk_count
                || session.data.len() as u64 != session.expected_bytes
            {
                return Response::Error(MatchError::UploadIncomplete(
                    "upload is missing declared chunks or bytes",
                ));
            }
            match registry.register_remote(tenant, &session.spec, session.data, &session.auth) {
                Ok(load) => Response::DatabaseLoaded {
                    bytes: load.bytes,
                    demoted: load.demoted,
                },
                Err(e) => Response::Error(e),
            }
        }
    }
}

/// Maps one request to its response; never panics on hostile input.
fn dispatch(
    request: &Request,
    registry: &TenantRegistry,
    staging: &Arc<Staging>,
    upload: &mut Option<UploadSession>,
    telemetry: &ServerTelemetry,
) -> Response {
    // Any non-upload request abandons the connection's upload session
    // (releasing its staging reservation): an upload is a tight
    // Begin→Chunk*→Commit sequence, so interleaved traffic means the
    // client moved on — and a reservation cannot be kept alive by
    // pinging around it.
    if !matches!(request, Request::LoadDatabase { .. }) {
        *upload = None;
    }
    match request {
        Request::Ping => Response::Pong {
            backends: Backend::WIRE.iter().map(|b| b.name().to_string()).collect(),
        },
        Request::ListTenants => Response::Tenants(registry.list()),
        // Tier-aware routing: a cold flash-native (`ifp`) tenant answers
        // straight from its parked device, everything else via the hot
        // pool (re-materializing first if needed).
        Request::Match { tenant, query } => match registry.run_query(tenant, query) {
            Ok(reply) => {
                telemetry.record_hom_adds(reply.stats.hom_adds);
                Response::Matched {
                    nonce: reply.nonce,
                    sealed_indices: reply.sealed_indices,
                    stats: reply.stats,
                    shard_stats: reply.shard_stats,
                    seal_latency: reply.seal_latency,
                }
            }
            Err(e) => Response::Error(e),
        },
        // Stats reads must not re-materialize a cold tenant: the totals
        // live in the registry entry.
        Request::TenantStats { tenant } => match registry.totals_of(tenant) {
            Ok((stats, queries)) => Response::TenantStats { stats, queries },
            Err(e) => Response::Error(e),
        },
        Request::LoadDatabase { tenant, phase } => {
            dispatch_upload(tenant, phase, registry, staging, upload, telemetry)
        }
        Request::EvictDatabase { tenant, auth } => match registry.evict(tenant, auth) {
            Ok(freed_bytes) => Response::Evicted { freed_bytes },
            Err(e) => Response::Error(e),
        },
        Request::DatabaseInfo { tenant } => match registry.info(tenant) {
            Ok(info) => Response::DatabaseInfo(info),
            Err(e) => Response::Error(e),
        },
        // A point-in-time copy of every registered series (empty when
        // the server runs with telemetry off); refreshes the derived
        // Hom-Add throughput gauge first.
        Request::Metrics => Response::Metrics(telemetry.snapshot()),
    }
}

/// Handle to a server running in the background: the reactor thread
/// owns the sockets, the frame pool runs the work.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    reactor: Option<ReactorThread>,
    /// The frame pool. The reactor's front-end holds the other `Arc`;
    /// after the reactor joins, this is the last one, so dropping it
    /// drains then joins the workers on the caller's thread.
    pool: Option<Arc<WorkerPool>>,
    telemetry: Arc<ServerTelemetry>,
}

impl RunningServer {
    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry — the same series
    /// [`Request::Metrics`] snapshots over the wire, for in-process
    /// scraping (e.g. rendering
    /// [`cm_telemetry::MetricsRegistry::render_text`] from an operator
    /// thread).
    pub fn telemetry(&self) -> &MetricsRegistry {
        self.telemetry.registry()
    }

    /// Stops the reactor (force-closing every tracked socket), then
    /// drains and joins the frame pool before returning.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(reactor) = self.reactor.take() {
            // Joins the reactor thread; the front-end (and its pool
            // handle) is dropped with it.
            reactor.shutdown();
        }
        // Last pool handle: drop = drain queued pump jobs, then join
        // the workers (the same drain-then-join contract the blocking
        // front-end had). Pumps whose connection died find no table
        // entry and return immediately.
        self.pool.take();
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop();
    }
}
