//! The TCP serving front-end: accept loop, bounded connection pool,
//! request dispatch.
//!
//! One process serves every registered tenant. Accepted connections are
//! handled as jobs on a [`WorkerPool`] of `max_connections` long-lived
//! workers (the same `cm_core::exec` runtime the sessions, tenant pools,
//! and shard executors run on) — never one freshly spawned thread per
//! accept. A connection arriving while all `max_connections` slots are
//! busy is *rejected* with a typed [`MatchError::ServerBusy`] wire error
//! instead of growing the process without bound. Request handling errors
//! travel back as [`Response::Error`] frames, transport/framing errors
//! end the connection. The listener can be driven directly
//! ([`MatchServer::serve`]) or in the background with a shutdown handle
//! ([`MatchServer::spawn`], whose accept loop is itself a job on a
//! single-worker exec pool) — shutdown stops accepting, closes the
//! active sockets, and drains the connection pool before returning.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use cm_core::{Backend, CompletionHandle, MatchError, WorkerPool};

use crate::tenant::TenantRegistry;
use crate::wire::{
    read_frame, write_frame, Request, Response, TenantSpec, UploadAuth, UploadPhase,
};

/// Front-end knobs for a serving process.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Hard cap on concurrently served connections (and the size of the
    /// connection worker pool). Connections beyond the cap receive a
    /// [`MatchError::ServerBusy`] frame and are closed.
    pub max_connections: usize,
    /// Host memory budget in bytes for hot tenant databases (`None` =
    /// unbounded). Admissions past the budget demote least-recently-used
    /// unpinned remote tenants to the cold tier; see
    /// [`TenantRegistry::set_memory_budget`].
    pub memory_budget: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            memory_budget: None,
        }
    }
}

/// A serving process: a tenant registry behind a TCP front-end.
#[derive(Debug)]
pub struct MatchServer {
    registry: Arc<TenantRegistry>,
    config: ServerConfig,
}

impl MatchServer {
    /// Wraps a fully provisioned registry with the default
    /// [`ServerConfig`].
    pub fn new(registry: TenantRegistry) -> Self {
        Self {
            registry: Arc::new(registry),
            config: ServerConfig::default(),
        }
    }

    /// Wraps a registry with explicit front-end knobs.
    ///
    /// # Errors
    ///
    /// [`MatchError::InvalidConfig`] for a zero connection cap.
    pub fn with_config(registry: TenantRegistry, config: ServerConfig) -> Result<Self, MatchError> {
        if config.max_connections == 0 {
            return Err(MatchError::InvalidConfig(
                "max_connections must be positive",
            ));
        }
        if let Some(budget) = config.memory_budget {
            registry.set_memory_budget(Some(budget));
        }
        Ok(Self {
            registry: Arc::new(registry),
            config,
        })
    }

    /// The registry this server dispatches to.
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// Binds `addr` and serves in the background, returning the running
    /// server's address and shutdown handle. Bind to port 0 for an
    /// ephemeral port. The accept loop runs as a job on a dedicated
    /// single-worker [`WorkerPool`] (the shared `cm_core::exec` runtime),
    /// not on an ad-hoc spawned thread.
    ///
    /// # Errors
    ///
    /// [`MatchError::Transport`] if the bind fails.
    pub fn spawn<A: ToSocketAddrs>(self, addr: A) -> Result<RunningServer, MatchError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| MatchError::Transport(format!("bind: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| MatchError::Transport(format!("local_addr: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Connections::new(self.config.max_connections));
        let registry = Arc::clone(&self.registry);
        let stop_flag = Arc::clone(&stop);
        let conns_flag = Arc::clone(&conns);
        let pool = WorkerPool::new(1)?;
        let done = pool.submit(move || {
            accept_loop(&listener, &registry, &stop_flag, &conns_flag);
        });
        Ok(RunningServer {
            addr: local_addr,
            stop,
            conns,
            accept: Some((pool, done)),
        })
    }

    /// Serves `listener` on the calling thread until the process exits
    /// (the production entry point; tests use [`Self::spawn`]).
    pub fn serve(self, listener: &TcpListener) {
        accept_loop(
            listener,
            &self.registry,
            &AtomicBool::new(false),
            &Arc::new(Connections::new(self.config.max_connections)),
        );
    }
}

/// The admission table: which sockets are in flight, bounded by the
/// connection cap. Tracked handles (`try_clone`s) let shutdown force the
/// in-flight request loops off their blocking reads.
#[derive(Debug)]
struct Connections {
    active: Mutex<AdmissionState>,
    limit: usize,
}

#[derive(Debug, Default)]
struct AdmissionState {
    streams: HashMap<u64, TcpStream>,
    /// Set by [`Connections::close_all`] under the same lock admissions
    /// take, so a socket accepted concurrently with shutdown is either in
    /// the table when `close_all` sweeps it or refused admission — never
    /// admitted-but-unclosed (which would stall the drain on its read
    /// timeout).
    draining: bool,
}

impl Connections {
    fn new(limit: usize) -> Self {
        Self {
            active: Mutex::new(AdmissionState::default()),
            limit,
        }
    }

    /// Admits `stream` if a slot is free (and the table is not draining),
    /// returning its release token.
    fn try_admit(&self, stream: &TcpStream) -> Option<u64> {
        let mut state = self.active.lock().ok()?;
        if state.draining || state.streams.len() >= self.limit {
            return None;
        }
        // Without a trackable handle the connection could not be closed
        // on drain; treat a failed clone like a full table.
        let tracked = stream.try_clone().ok()?;
        let token = next_token();
        state.streams.insert(token, tracked);
        Some(token)
    }

    fn release(&self, token: u64) {
        if let Ok(mut state) = self.active.lock() {
            state.streams.remove(&token);
        }
    }

    /// Forces every in-flight connection off its socket and refuses
    /// further admissions (drain).
    fn close_all(&self) {
        if let Ok(mut state) = self.active.lock() {
            state.draining = true;
            for stream in state.streams.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }
}

/// Releases a connection slot on drop, so a panic anywhere in the request
/// loop cannot leak the slot (the pool's worker survives job panics — an
/// unreleased token would otherwise count against `max_connections`
/// forever).
struct SlotGuard {
    conns: Arc<Connections>,
    token: u64,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.conns.release(self.token);
    }
}

/// Process-wide token source so release can never race a re-used key.
fn next_token() -> u64 {
    use std::sync::atomic::AtomicU64;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Accepts connections until the stop flag flips, handling each as a job
/// on a bounded worker pool; the pool drains (remaining requests finish
/// against their closed sockets) when the loop exits.
fn accept_loop(
    listener: &TcpListener,
    registry: &Arc<TenantRegistry>,
    stop: &AtomicBool,
    conns: &Arc<Connections>,
) {
    let Ok(pool) = WorkerPool::new(conns.limit) else {
        return; // zero cap is rejected in with_config; defensive only
    };
    // One staging account for the whole server: concurrent uploads from
    // every connection share (and are bounded by) it.
    let staging = Arc::new(Staging::new(registry.memory_budget()));
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = match stream {
            Ok(stream) => stream,
            Err(_) => {
                // Persistent accept errors (e.g. fd exhaustion) would
                // otherwise spin this loop at full speed; back off briefly
                // before retrying.
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        let Some(token) = conns.try_admit(&stream) else {
            // Over the cap: a typed rejection, not an unbounded spawn.
            let busy = Response::Error(MatchError::ServerBusy {
                max_connections: conns.limit,
            });
            let _ = write_frame(&mut stream, &busy.encode());
            continue;
        };
        let registry = Arc::clone(registry);
        let staging = Arc::clone(&staging);
        let slot = SlotGuard {
            conns: Arc::clone(conns),
            token,
        };
        let _detached = pool.submit(move || {
            let _slot = slot; // released on drop, panic included
            handle_connection(stream, &registry, &staging);
        });
    }
    // `pool` drops here: graceful drain, then join, of every admitted
    // connection job. Shutdown closed the active sockets first, so the
    // request loops exit as soon as their current request finishes.
}

/// How long a connection may sit idle (or dribble a frame) before its
/// worker is reclaimed — pooled connection slots must not leak to silent
/// peers.
const CONNECTION_READ_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(300);

/// Runs one connection's request loop until the peer closes or the
/// transport fails. Upload state is connection-scoped: a chunked
/// database upload lives and dies with its connection, so a dropped
/// connection discards the staged bytes without touching the registry
/// (and releases its staging reservation on drop).
fn handle_connection(mut stream: TcpStream, registry: &TenantRegistry, staging: &Arc<Staging>) {
    if stream
        .set_read_timeout(Some(CONNECTION_READ_TIMEOUT))
        .is_err()
    {
        return;
    }
    let mut upload: Option<UploadSession> = None;
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            // Clean EOF, a torn frame, or a dead socket: nothing sensible
            // left to answer on this connection.
            Ok(None) | Err(MatchError::Transport(_)) => return,
            Err(e) => {
                // Framing violation: report it once, then hang up (the
                // stream is no longer at a frame boundary).
                let _ = write_frame(&mut stream, &Response::Error(e).encode());
                return;
            }
        };
        let response = match Request::decode(&payload) {
            Ok(request) => dispatch(&request, registry, staging, &mut upload),
            Err(e) => Response::Error(e),
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// The server-wide staged-upload accounting: the sum of every in-flight
/// upload's *declared* size, bounded so that concurrent hostile uploads
/// cannot stage unbounded bytes in RAM before ever committing (the
/// registry's budget only governs *admitted* databases).
struct Staging {
    used: std::sync::atomic::AtomicU64,
    /// The registry's memory budget when one is set, otherwise
    /// [`crate::wire::MAX_DATABASE_BYTES`] — staged bytes get the same
    /// allowance as the hot tier, never more.
    cap: u64,
}

impl Staging {
    fn new(memory_budget: Option<u64>) -> Self {
        Self {
            used: std::sync::atomic::AtomicU64::new(0),
            cap: memory_budget.unwrap_or(crate::wire::MAX_DATABASE_BYTES),
        }
    }

    /// Reserves `bytes` of staging room, or fails typed when the
    /// server-wide cap is reached.
    fn reserve(self: &Arc<Self>, bytes: u64) -> Result<StagingLease, MatchError> {
        let mut current = self.used.load(Ordering::SeqCst);
        loop {
            let proposed = current.saturating_add(bytes);
            if proposed > self.cap {
                return Err(MatchError::QuotaExceeded {
                    budget: self.cap,
                    required: bytes,
                });
            }
            match self
                .used
                .compare_exchange(current, proposed, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    return Ok(StagingLease {
                        staging: Arc::clone(self),
                        bytes,
                    })
                }
                Err(observed) => current = observed,
            }
        }
    }
}

/// RAII staging reservation: released when the upload session ends —
/// commit, abort, replacement by a fresh `Begin`, or connection drop.
struct StagingLease {
    staging: Arc<Staging>,
    bytes: u64,
}

impl Drop for StagingLease {
    fn drop(&mut self) {
        self.staging.used.fetch_sub(self.bytes, Ordering::SeqCst);
    }
}

/// How long one upload may take from `Begin` to `Commit` before its
/// session (and staging reservation) is reclaimed: a peer must not be
/// able to hold a large reservation open indefinitely by dribbling
/// bytes.
const UPLOAD_DEADLINE: std::time::Duration = std::time::Duration::from_secs(600);

/// One in-flight chunked database upload, staged entirely in connection
/// state — the registry is only touched at `Commit`, so an aborted or
/// abandoned upload leaves it untouched. The session is dropped (and
/// its staging reservation released) on commit, abort, a fresh `Begin`,
/// any non-upload request on the connection, the [`UPLOAD_DEADLINE`],
/// or connection close.
struct UploadSession {
    tenant: String,
    spec: TenantSpec,
    auth: UploadAuth,
    started: std::time::Instant,
    expected_bytes: u64,
    chunk_count: u32,
    next_chunk: u32,
    data: Vec<u8>,
    /// Holds the staging reservation for `expected_bytes`.
    _lease: StagingLease,
}

/// Handles one [`Request::LoadDatabase`] step against the connection's
/// upload session. Any violation of the declared shape aborts the
/// session (the next upload must start over at `Begin`) and returns a
/// typed error.
fn dispatch_upload(
    tenant: &str,
    phase: &UploadPhase,
    registry: &TenantRegistry,
    staging: &Arc<Staging>,
    upload: &mut Option<UploadSession>,
) -> Response {
    match phase {
        UploadPhase::Begin {
            auth,
            spec,
            total_bytes,
            chunk_count,
        } => {
            // A fresh Begin abandons any upload already in progress on
            // this connection (releasing its staging reservation).
            *upload = None;
            if let Err(e) = registry.authorize_upload(tenant, auth, *total_bytes, spec) {
                return Response::Error(e);
            }
            if let Some(budget) = registry.memory_budget() {
                if *total_bytes > budget {
                    // Reject before any chunk buffer exists: a declared
                    // size past the whole budget can never be admitted.
                    return Response::Error(MatchError::QuotaExceeded {
                        budget,
                        required: *total_bytes,
                    });
                }
            }
            // Reserve the declared size against the *server-wide*
            // staging cap: many connections declaring large uploads are
            // bounded collectively, not just per upload.
            let lease = match staging.reserve(*total_bytes) {
                Ok(lease) => lease,
                Err(e) => return Response::Error(e),
            };
            *upload = Some(UploadSession {
                tenant: tenant.to_string(),
                spec: spec.clone(),
                auth: auth.clone(),
                started: std::time::Instant::now(),
                expected_bytes: *total_bytes,
                chunk_count: *chunk_count,
                next_chunk: 0,
                // Sized by *received* data, never by the declared total:
                // a lying header cannot balloon memory ahead of bytes
                // actually sent.
                data: Vec::new(),
                _lease: lease,
            });
            Response::UploadProgress {
                received: 0,
                expected: *total_bytes,
            }
        }
        UploadPhase::Chunk { index, data } => {
            let Some(session) = upload.as_mut() else {
                return Response::Error(MatchError::UploadIncomplete(
                    "chunk without an upload in progress",
                ));
            };
            if session.started.elapsed() > UPLOAD_DEADLINE {
                *upload = None;
                return Response::Error(MatchError::UploadIncomplete("upload deadline exceeded"));
            }
            if session.tenant != tenant {
                *upload = None;
                return Response::Error(MatchError::UploadIncomplete(
                    "chunk for a different tenant than the upload in progress",
                ));
            }
            if *index != session.next_chunk {
                *upload = None;
                return Response::Error(MatchError::UploadIncomplete(
                    "out-of-order or duplicate chunk",
                ));
            }
            if session.next_chunk >= session.chunk_count {
                *upload = None;
                return Response::Error(MatchError::UploadIncomplete(
                    "more chunks than the upload declared",
                ));
            }
            if session.data.len() as u64 + data.len() as u64 > session.expected_bytes {
                *upload = None;
                return Response::Error(MatchError::UploadIncomplete(
                    "chunk data overruns the declared size",
                ));
            }
            session.data.extend_from_slice(data);
            session.next_chunk += 1;
            Response::UploadProgress {
                received: session.data.len() as u64,
                expected: session.expected_bytes,
            }
        }
        UploadPhase::Commit => {
            let Some(session) = upload.take() else {
                return Response::Error(MatchError::UploadIncomplete(
                    "commit without an upload in progress",
                ));
            };
            if session.started.elapsed() > UPLOAD_DEADLINE {
                return Response::Error(MatchError::UploadIncomplete("upload deadline exceeded"));
            }
            if session.tenant != tenant {
                return Response::Error(MatchError::UploadIncomplete(
                    "commit for a different tenant than the upload in progress",
                ));
            }
            if session.next_chunk != session.chunk_count
                || session.data.len() as u64 != session.expected_bytes
            {
                return Response::Error(MatchError::UploadIncomplete(
                    "upload is missing declared chunks or bytes",
                ));
            }
            match registry.register_remote(tenant, &session.spec, session.data, &session.auth) {
                Ok(load) => Response::DatabaseLoaded {
                    bytes: load.bytes,
                    demoted: load.demoted,
                },
                Err(e) => Response::Error(e),
            }
        }
    }
}

/// Maps one request to its response; never panics on hostile input.
fn dispatch(
    request: &Request,
    registry: &TenantRegistry,
    staging: &Arc<Staging>,
    upload: &mut Option<UploadSession>,
) -> Response {
    // Any non-upload request abandons the connection's upload session
    // (releasing its staging reservation): an upload is a tight
    // Begin→Chunk*→Commit sequence, so interleaved traffic means the
    // client moved on — and a reservation cannot be kept alive by
    // pinging around it.
    if !matches!(request, Request::LoadDatabase { .. }) {
        *upload = None;
    }
    match request {
        Request::Ping => Response::Pong {
            backends: Backend::WIRE.iter().map(|b| b.name().to_string()).collect(),
        },
        Request::ListTenants => Response::Tenants(registry.list()),
        Request::Match { tenant, query } => match registry.get(tenant).and_then(|t| t.run(query)) {
            Ok(reply) => Response::Matched {
                nonce: reply.nonce,
                sealed_indices: reply.sealed_indices,
                stats: reply.stats,
                shard_stats: reply.shard_stats,
                seal_latency: reply.seal_latency,
            },
            Err(e) => Response::Error(e),
        },
        // Stats reads must not re-materialize a cold tenant: the totals
        // live in the registry entry.
        Request::TenantStats { tenant } => match registry.totals_of(tenant) {
            Ok((stats, queries)) => Response::TenantStats { stats, queries },
            Err(e) => Response::Error(e),
        },
        Request::LoadDatabase { tenant, phase } => {
            dispatch_upload(tenant, phase, registry, staging, upload)
        }
        Request::EvictDatabase { tenant, auth } => match registry.evict(tenant, auth) {
            Ok(freed_bytes) => Response::Evicted { freed_bytes },
            Err(e) => Response::Error(e),
        },
        Request::DatabaseInfo { tenant } => match registry.info(tenant) {
            Ok(info) => Response::DatabaseInfo(info),
            Err(e) => Response::Error(e),
        },
    }
}

/// Handle to a server running in the background (the accept loop is a
/// job on its own single-worker `cm_core::exec` pool).
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Connections>,
    /// The accept loop's pool and its completion handle; taken (and the
    /// pool drained) on shutdown.
    accept: Option<(WorkerPool, CompletionHandle<()>)>,
}

impl RunningServer {
    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes the active connections, and drains the
    /// connection pool (in-flight requests finish) before returning.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        let Some((pool, done)) = self.accept.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Force in-flight request loops off their blocking reads so the
        // drain below cannot wait on an idle peer.
        self.conns.close_all();
        // Unblock the accept call with a throwaway connection. A wildcard
        // bind address (0.0.0.0 / ::) is not connectable everywhere, so
        // aim the poke at loopback in that case.
        let mut poke = self.addr;
        if poke.ip().is_unspecified() {
            poke.set_ip(match poke {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(poke);
        // Waiting on the accept job also drains and joins the connection
        // pool, which is dropped when the loop exits; dropping the
        // single-worker pool afterwards joins the accept worker itself
        // (drain-then-join, same as the old dedicated thread).
        let _ = done.wait();
        drop(pool);
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}
