//! The TCP serving front-end: accept loop, connection threads, request
//! dispatch.
//!
//! One process serves every registered tenant. Each accepted connection
//! gets its own thread running a read-frame → dispatch → write-frame
//! loop; request handling errors travel back as [`Response::Error`]
//! frames, transport/framing errors end the connection. The listener can
//! be driven directly ([`MatchServer::serve`]) or on a background thread
//! with a shutdown handle ([`MatchServer::spawn`]) — the form the CI
//! smoke test and the examples use.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use cm_core::{Backend, MatchError};

use crate::tenant::TenantRegistry;
use crate::wire::{read_frame, write_frame, Request, Response};

/// A serving process: a tenant registry behind a TCP front-end.
#[derive(Debug)]
pub struct MatchServer {
    registry: Arc<TenantRegistry>,
}

impl MatchServer {
    /// Wraps a fully provisioned registry.
    pub fn new(registry: TenantRegistry) -> Self {
        Self {
            registry: Arc::new(registry),
        }
    }

    /// The registry this server dispatches to.
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// Binds `addr` and serves on a background thread, returning the
    /// running server's address and shutdown handle. Bind to port 0 for
    /// an ephemeral port.
    ///
    /// # Errors
    ///
    /// [`MatchError::Transport`] if the bind fails.
    pub fn spawn<A: ToSocketAddrs>(self, addr: A) -> Result<RunningServer, MatchError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| MatchError::Transport(format!("bind: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| MatchError::Transport(format!("local_addr: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::clone(&self.registry);
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            accept_loop(&listener, &registry, &stop_flag);
        });
        Ok(RunningServer {
            addr: local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// Serves `listener` on the calling thread until the process exits
    /// (the production entry point; tests use [`Self::spawn`]).
    pub fn serve(self, listener: &TcpListener) {
        accept_loop(listener, &self.registry, &AtomicBool::new(false));
    }
}

/// Accepts connections until the stop flag flips.
fn accept_loop(listener: &TcpListener, registry: &Arc<TenantRegistry>, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => {
                // Persistent accept errors (e.g. fd exhaustion) would
                // otherwise spin this loop at full speed; back off briefly
                // before retrying.
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        let registry = Arc::clone(registry);
        std::thread::spawn(move || handle_connection(stream, &registry));
    }
}

/// How long a connection may sit idle (or dribble a frame) before its
/// thread is reclaimed — thread-per-connection must not leak threads to
/// silent peers.
const CONNECTION_READ_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(300);

/// Runs one connection's request loop until the peer closes or the
/// transport fails.
fn handle_connection(mut stream: TcpStream, registry: &TenantRegistry) {
    if stream
        .set_read_timeout(Some(CONNECTION_READ_TIMEOUT))
        .is_err()
    {
        return;
    }
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            // Clean EOF, a torn frame, or a dead socket: nothing sensible
            // left to answer on this connection.
            Ok(None) | Err(MatchError::Transport(_)) => return,
            Err(e) => {
                // Framing violation: report it once, then hang up (the
                // stream is no longer at a frame boundary).
                let _ = write_frame(&mut stream, &Response::Error(e).encode());
                return;
            }
        };
        let response = match Request::decode(&payload) {
            Ok(request) => dispatch(&request, registry),
            Err(e) => Response::Error(e),
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// Maps one request to its response; never panics on hostile input.
fn dispatch(request: &Request, registry: &TenantRegistry) -> Response {
    match request {
        Request::Ping => Response::Pong {
            backends: Backend::WIRE.iter().map(|b| b.name().to_string()).collect(),
        },
        Request::ListTenants => Response::Tenants(registry.list()),
        Request::Match { tenant, query } => match registry.get(tenant).and_then(|t| t.run(query)) {
            Ok(reply) => Response::Matched {
                nonce: reply.nonce,
                sealed_indices: reply.sealed_indices,
                stats: reply.stats,
                shard_stats: reply.shard_stats,
                seal_latency: reply.seal_latency,
            },
            Err(e) => Response::Error(e),
        },
        Request::TenantStats { tenant } => match registry.get(tenant).and_then(|t| t.totals()) {
            Ok((stats, queries)) => Response::TenantStats { stats, queries },
            Err(e) => Response::Error(e),
        },
    }
}

/// Handle to a server running on a background thread.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl RunningServer {
    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread. Already
    /// accepted connections drain on their own threads.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection. A wildcard
        // bind address (0.0.0.0 / ::) is not connectable everywhere, so
        // aim the poke at loopback in that case.
        let mut poke = self.addr;
        if poke.ip().is_unspecified() {
            poke.set_ip(match poke {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(poke);
        let _ = handle.join();
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}
