//! Database sharding: splitting one encrypted database into per-worker
//! shards with a shard→global index remap.
//!
//! The unit of sharding is the ciphertext polynomial: CIPHERMATCH's
//! `Hom-Add` sweep is independent per (variant, polynomial) pair, so a
//! contiguous polynomial range is a self-contained sub-database. Because a
//! match window may straddle a polynomial boundary, every shard *holds* a
//! small overlap tail beyond the polynomials it *owns*: with an overlap of
//! `v` polynomials, any query of at most `v * bits_per_poly` bits that
//! starts in a shard's owned range ends inside the polynomials that shard
//! holds, so the union of per-shard results (after remapping and
//! de-duplication) equals the unsharded result — the invariant the module
//! tests pin down.
//!
//! Shards are reference-counted ([`Arc`]): executors, sessions, and
//! clones all share one ciphertext allocation per shard instead of the
//! whole-database deep copy the ROADMAP flagged.

use std::ops::Range;
use std::sync::Arc;

use cm_core::{EncryptedDatabase, MatchError};

/// The geometry of one shard within the global database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRange {
    /// Polynomials this shard *owns*: match windows starting here are this
    /// shard's responsibility.
    pub owned: Range<usize>,
    /// Polynomials this shard *holds*: the owned range plus the overlap
    /// tail that lets boundary-straddling windows complete.
    pub held: Range<usize>,
    /// Global bit offset of the shard's first held polynomial — the remap
    /// term added to every shard-local match offset.
    pub start_bit: usize,
}

/// How a database of `poly_count` polynomials is split into shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    bits_per_poly: usize,
    total_bits: usize,
    overlap_polys: usize,
    ranges: Vec<ShardRange>,
}

impl ShardPlan {
    /// Plans `shards` near-equal contiguous polynomial ranges over a
    /// database of `poly_count` polynomials and `total_bits` bits, each
    /// shard holding `overlap_polys` extra polynomials past its owned
    /// range (clipped at the database end). The shard count is capped at
    /// `poly_count` — a polynomial is never split.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::InvalidConfig`] when any knob is zero or the
    /// database is empty.
    pub fn new(
        poly_count: usize,
        total_bits: usize,
        bits_per_poly: usize,
        shards: usize,
        overlap_polys: usize,
    ) -> Result<Self, MatchError> {
        if shards == 0 {
            return Err(MatchError::InvalidConfig("shard count must be positive"));
        }
        if overlap_polys == 0 {
            return Err(MatchError::InvalidConfig("shard overlap must be positive"));
        }
        if poly_count == 0 || total_bits == 0 || bits_per_poly == 0 {
            return Err(MatchError::InvalidConfig("cannot shard an empty database"));
        }
        let shards = shards.min(poly_count);
        let base = poly_count / shards;
        let rem = poly_count % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0usize;
        for s in 0..shards {
            let len = base + usize::from(s < rem);
            let owned = start..start + len;
            let held = start..(owned.end + overlap_polys).min(poly_count);
            ranges.push(ShardRange {
                start_bit: start * bits_per_poly,
                owned,
                held,
            });
            start += len;
        }
        Ok(Self {
            bits_per_poly,
            total_bits,
            overlap_polys,
            ranges,
        })
    }

    /// Number of shards actually planned (≤ the requested count).
    pub fn shard_count(&self) -> usize {
        self.ranges.len()
    }

    /// The per-shard geometry.
    pub fn ranges(&self) -> &[ShardRange] {
        &self.ranges
    }

    /// Bits per polynomial the plan was computed for.
    pub fn bits_per_poly(&self) -> usize {
        self.bits_per_poly
    }

    /// Bit length of the global database.
    pub fn total_bits(&self) -> usize {
        self.total_bits
    }

    /// The longest query (in bits) sharded execution supports: a window
    /// starting in a shard's owned range must end inside the polynomials
    /// it holds. A single-shard plan holds everything, so it has no limit
    /// beyond the database itself.
    pub fn max_query_bits(&self) -> usize {
        if self.ranges.len() == 1 {
            self.total_bits
        } else {
            self.overlap_polys * self.bits_per_poly
        }
    }
}

/// An encrypted database split into [`Arc`]-shared shards plus the plan
/// that maps shard-local results back to global bit offsets.
#[derive(Debug, Clone)]
pub struct ShardedDatabase {
    plan: ShardPlan,
    shards: Vec<Arc<EncryptedDatabase>>,
}

impl ShardedDatabase {
    /// Splits `db` into at most `shards` shards of whole polynomials with
    /// `overlap_polys` polynomials of overlap (see [`ShardPlan::new`]).
    /// The split clones each ciphertext once (plus the overlap tails);
    /// from then on every consumer shares the shard allocations.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::InvalidConfig`] for a zero shard count /
    /// overlap or an empty database.
    pub fn split(
        db: &EncryptedDatabase,
        bits_per_poly: usize,
        shards: usize,
        overlap_polys: usize,
    ) -> Result<Self, MatchError> {
        let plan = ShardPlan::new(
            db.poly_count(),
            db.total_bits(),
            bits_per_poly,
            shards,
            overlap_polys,
        )?;
        let shards = plan
            .ranges()
            .iter()
            .map(|r| Arc::new(db.subrange(r.held.clone(), bits_per_poly)))
            .collect();
        Ok(Self { plan, shards })
    }

    /// The plan behind this split.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The shard databases, [`Arc`]-shared with every executor worker.
    pub fn shards(&self) -> &[Arc<EncryptedDatabase>] {
        &self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Remaps per-shard local match offsets to global bit offsets and
    /// merges them into one ascending, de-duplicated list. `per_shard[i]`
    /// must be shard `i`'s local result; overlap regions report a match in
    /// up to two shards, which the dedup collapses.
    ///
    /// # Panics
    ///
    /// Panics if `per_shard` does not have one entry per shard.
    pub fn merge_indices(&self, per_shard: &[Vec<usize>]) -> Vec<usize> {
        assert_eq!(
            per_shard.len(),
            self.shards.len(),
            "one result list per shard required"
        );
        let mut all: Vec<usize> = per_shard
            .iter()
            .zip(self.plan.ranges())
            .flat_map(|(hits, range)| hits.iter().map(move |&h| h + range.start_bit))
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_bfv::{BfvContext, BfvParams, Encryptor, KeyGenerator};
    use cm_core::{BitString, CiphermatchEngine};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plan_partitions_owned_polys_exactly_once() {
        for (polys, shards, overlap) in [(7usize, 3usize, 1usize), (4, 4, 2), (9, 2, 1), (3, 8, 1)]
        {
            let plan = ShardPlan::new(polys, polys * 64, 64, shards, overlap).unwrap();
            assert!(plan.shard_count() <= shards.min(polys));
            let mut covered = 0;
            for (i, r) in plan.ranges().iter().enumerate() {
                assert_eq!(
                    r.owned.start, covered,
                    "shard {i} owned range is contiguous"
                );
                assert!(r.held.start == r.owned.start && r.held.end >= r.owned.end);
                assert!(r.held.end <= polys);
                covered = r.owned.end;
            }
            assert_eq!(covered, polys, "every polynomial is owned exactly once");
        }
    }

    #[test]
    fn degenerate_plans_are_rejected() {
        assert!(ShardPlan::new(4, 256, 64, 0, 1).is_err());
        assert!(ShardPlan::new(4, 256, 64, 2, 0).is_err());
        assert!(ShardPlan::new(0, 0, 64, 2, 1).is_err());
    }

    #[test]
    fn sharded_search_equals_unsharded_search() {
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let mut rng = StdRng::seed_from_u64(31337);
        let (sk, pk) = {
            let kg = KeyGenerator::new(&ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        let enc = Encryptor::new(&ctx, pk);
        let dec = cm_bfv::Decryptor::new(&ctx, sk);
        let mut engine = CiphermatchEngine::new(&ctx);
        let bpp = engine.packing().bits_per_poly();

        // Four-and-a-bit polynomials of pseudo-random data.
        let bytes: Vec<u8> = (0..(bpp / 8) * 4 + 57)
            .map(|i| (i * 131 % 251) as u8)
            .collect();
        let data = BitString::from_bytes(&bytes);
        let db = engine.encrypt_database(&enc, &data, &mut rng);

        // Patterns that land inside shards and straddle shard boundaries.
        let patterns = [
            data.slice(10, 24),
            data.slice(bpp - 11, 30), // straddles the poly-0/1 boundary
            data.slice(2 * bpp - 3, 16),
            data.slice(data.len() - 40, 33),
        ];
        for shards in [1usize, 2, 3, 5] {
            let sharded = ShardedDatabase::split(&db, bpp, shards, 1).unwrap();
            for pattern in &patterns {
                let query = engine.prepare_query(&enc, pattern, &mut rng);
                let per_shard: Vec<Vec<usize>> = sharded
                    .shards()
                    .iter()
                    .map(|shard| {
                        let result = engine.search(shard, &query);
                        engine.generate_indices(&dec, &result)
                    })
                    .collect();
                let merged = sharded.merge_indices(&per_shard);
                assert_eq!(
                    merged,
                    data.find_all(pattern),
                    "shards = {shards}, pattern of {} bits",
                    pattern.len()
                );
            }
        }
    }

    #[test]
    fn shards_share_allocations_not_copies() {
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let mut rng = StdRng::seed_from_u64(99);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let pk = kg.public_key(&mut rng);
        let enc = Encryptor::new(&ctx, pk);
        let engine = CiphermatchEngine::new(&ctx);
        let bpp = engine.packing().bits_per_poly();
        let data = BitString::from_bytes(&vec![0xA5u8; (bpp / 8) * 3]);
        let db = engine.encrypt_database(&enc, &data, &mut rng);

        let sharded = ShardedDatabase::split(&db, bpp, 3, 1).unwrap();
        let clone = sharded.clone();
        for (a, b) in sharded.shards().iter().zip(clone.shards()) {
            assert!(Arc::ptr_eq(a, b), "cloning a ShardedDatabase shares shards");
        }
    }
}
