//! CM-SW with sharded execution behind the erased matcher interface.
//!
//! [`ShardedCmMatcher`] is the serving-grade version of
//! [`cm_core::CiphermatchMatcher`]: loading a database splits it into
//! [`Arc`]-shared polynomial shards ([`crate::ShardedDatabase`]) and
//! builds a [`crate::ShardExecutor`] — a [`cm_core::exec::WorkerPool`]
//! with one long-lived worker per shard, shared by every clone of this
//! matcher. A search submits one job per shard and merges the remapped
//! per-shard index lists, so one query's `Hom-Add` sweep runs on all
//! shards in parallel and per-shard [`MatchStats`] stay separately
//! attributable (their field-wise sum is the matcher total).

use std::sync::Arc;

use cm_bfv::{BfvContext, BfvParams, Encryptor, KeyGenerator, PublicKey, SecretKey};
use cm_core::{
    Backend, BitString, CiphermatchEngine, EncryptedQuery, ErasedMatcher, MatchError, MatchStats,
    TrustedIndexGenerator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::executor::ShardExecutor;
use crate::kit::QueryKit;
use crate::shard::ShardedDatabase;

/// A loaded database: the shard split, its executor, and bookkeeping.
/// The executor is reference-counted so [`ErasedMatcher::boxed_clone`]
/// shares one worker pool (and its threads) across every clone — a
/// tenant's matcher pool of K clones costs K key copies, not K×shards
/// threads.
struct Loaded {
    db: ShardedDatabase,
    executor: Arc<ShardExecutor>,
    bytes: u64,
}

/// CM-SW with a sharded, thread-per-shard execution engine, implementing
/// [`ErasedMatcher`] directly so it drops into any registry or
/// [`cm_core::MatchSession`].
pub struct ShardedCmMatcher {
    ctx: BfvContext,
    sk: SecretKey,
    pk: PublicKey,
    q_bits: u32,
    engine: CiphermatchEngine,
    shards: usize,
    overlap_polys: usize,
    rng: StdRng,
    loaded: Option<Loaded>,
    per_shard: Vec<MatchStats>,
}

impl std::fmt::Debug for ShardedCmMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCmMatcher")
            .field("params", &self.ctx.params().name)
            .field("shards", &self.shards)
            .finish()
    }
}

impl ShardedCmMatcher {
    /// Generates keys and configures the shard layout: at most `shards`
    /// workers, each holding one polynomial of overlap (supporting queries
    /// up to one polynomial's worth of bits; widen with
    /// [`Self::with_overlap`]).
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::InvalidConfig`] for a zero shard count or a
    /// parameter set dense packing cannot use (non-power-of-two `t`).
    pub fn new(params: BfvParams, shards: usize, seed: u64) -> Result<Self, MatchError> {
        if shards == 0 {
            return Err(MatchError::InvalidConfig("shard count must be positive"));
        }
        if !params.t.is_power_of_two() {
            return Err(MatchError::InvalidConfig(
                "dense packing requires a power-of-two plaintext modulus",
            ));
        }
        let ctx = BfvContext::new(params);
        let mut rng = StdRng::seed_from_u64(seed);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let pk = kg.public_key(&mut rng);
        let q_bits = 64 - ctx.params().q.leading_zeros();
        Ok(Self {
            engine: CiphermatchEngine::new(&ctx),
            ctx,
            sk,
            pk,
            q_bits,
            shards,
            overlap_polys: 1,
            rng,
            loaded: None,
            per_shard: Vec::new(),
        })
    }

    /// Widens the shard overlap to `polys` polynomials, raising the
    /// longest supported query to `polys * bits_per_poly` bits. Takes
    /// effect at the next [`ErasedMatcher::load_database`].
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::InvalidConfig`] for a zero overlap.
    pub fn with_overlap(mut self, polys: usize) -> Result<Self, MatchError> {
        if polys == 0 {
            return Err(MatchError::InvalidConfig("shard overlap must be positive"));
        }
        self.overlap_polys = polys;
        Ok(self)
    }

    /// The public query-encryption material a remote client needs to ship
    /// wire queries to this matcher.
    pub fn query_kit(&self) -> QueryKit {
        QueryKit::new(self.ctx.clone(), self.pk.clone())
    }

    /// The shard plan of the loaded database, if one is loaded.
    pub fn shard_count(&self) -> Option<usize> {
        self.loaded.as_ref().map(|l| l.db.shard_count())
    }

    /// Runs one already-encrypted query through the shard executor.
    fn run(&mut self, query: EncryptedQuery) -> Result<Vec<usize>, MatchError> {
        let loaded = self.loaded.as_ref().ok_or(MatchError::NoDatabase)?;
        let max = loaded.db.plan().max_query_bits();
        if query.k() > max {
            return Err(MatchError::QueryTooLong {
                max,
                got: query.k(),
            });
        }
        let query_bytes = query.byte_size(self.q_bits) as u64;
        let outcomes = loaded.executor.submit(Arc::new(query)).wait()?;
        for outcome in &outcomes {
            self.per_shard[outcome.shard].merge(&outcome.stats);
            // The query is broadcast: every shard receives its own copy of
            // the encrypted variants.
            self.per_shard[outcome.shard].bytes_moved += query_bytes;
        }
        // Outcomes are shard-local (and sorted by shard); the planner's
        // remap restores global offsets and collapses overlap duplicates.
        let per_shard: Vec<Vec<usize>> = outcomes.into_iter().map(|o| o.indices).collect();
        let loaded = self.loaded.as_ref().ok_or(MatchError::NoDatabase)?;
        Ok(loaded.db.merge_indices(&per_shard))
    }
}

impl ErasedMatcher for ShardedCmMatcher {
    fn backend(&self) -> Backend {
        Backend::Ciphermatch
    }

    fn load_database(&mut self, data: &BitString) -> Result<(), MatchError> {
        if data.is_empty() {
            return Err(MatchError::InvalidConfig("cannot serve an empty database"));
        }
        let enc = Encryptor::new(&self.ctx, self.pk.clone());
        let db = self.engine.encrypt_database(&enc, data, &mut self.rng);
        let bytes = db.byte_size(self.q_bits) as u64;
        let sharded = ShardedDatabase::split(
            &db,
            self.engine.packing().bits_per_poly(),
            self.shards,
            self.overlap_polys,
        )?;
        let index_gen = TrustedIndexGenerator::from_secret(&self.ctx, self.sk.clone());
        let executor = Arc::new(ShardExecutor::new(&self.ctx, &sharded, &index_gen)?);
        self.per_shard = vec![MatchStats::default(); sharded.shard_count()];
        self.loaded = Some(Loaded {
            db: sharded,
            executor,
            bytes,
        });
        Ok(())
    }

    fn has_database(&self) -> bool {
        self.loaded.is_some()
    }

    fn database_bytes(&self) -> Option<u64> {
        self.loaded.as_ref().map(|l| l.bytes)
    }

    fn find_all(&mut self, query: &BitString) -> Result<Vec<usize>, MatchError> {
        if self.loaded.is_none() {
            return Err(MatchError::NoDatabase);
        }
        if query.is_empty() {
            return Err(MatchError::EmptyQuery);
        }
        let enc = Encryptor::new(&self.ctx, self.pk.clone());
        let encrypted = self.engine.prepare_query(&enc, query, &mut self.rng);
        self.run(encrypted)
    }

    fn find_all_wire(&mut self, encoded_query: &[u8]) -> Result<Vec<usize>, MatchError> {
        let query = EncryptedQuery::decode_validated(
            encoded_query,
            self.ctx.params().n,
            self.engine.packing().seg_bits(),
            self.ctx.params().q,
        )?;
        self.run(query)
    }

    fn stats(&self) -> MatchStats {
        let mut total = MatchStats::default();
        for s in &self.per_shard {
            total.merge(s);
        }
        total
    }

    fn shard_stats(&self) -> Vec<MatchStats> {
        if self.per_shard.is_empty() {
            vec![MatchStats::default()]
        } else {
            self.per_shard.clone()
        }
    }

    fn database_fingerprint(&self) -> Option<usize> {
        self.loaded
            .as_ref()
            .map(|l| Arc::as_ptr(&l.db.shards()[0]) as usize)
    }

    fn reset_stats(&mut self) {
        for s in &mut self.per_shard {
            *s = MatchStats::default();
        }
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    fn boxed_clone(&self) -> Box<dyn ErasedMatcher> {
        // Clones share the Arc'd shards *and* the executor's worker pool:
        // concurrent searches from many clones interleave their per-shard
        // jobs on one set of long-lived shard workers.
        let loaded = self.loaded.as_ref().map(|l| Loaded {
            db: l.db.clone(),
            executor: Arc::clone(&l.executor),
            bytes: l.bytes,
        });
        Box::new(Self {
            ctx: self.ctx.clone(),
            sk: self.sk.clone(),
            pk: self.pk.clone(),
            q_bits: self.q_bits,
            engine: self.engine.clone(),
            shards: self.shards,
            overlap_polys: self.overlap_polys,
            rng: self.rng.clone(),
            loaded,
            per_shard: self.per_shard.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matcher(shards: usize) -> ShardedCmMatcher {
        ShardedCmMatcher::new(BfvParams::insecure_test_add(), shards, 7).unwrap()
    }

    fn long_data() -> BitString {
        let bytes: Vec<u8> = (0..1100usize).map(|i| (i * 37 % 251) as u8).collect();
        BitString::from_bytes(&bytes)
    }

    #[test]
    fn sharded_matcher_agrees_with_ground_truth() {
        let data = long_data();
        for shards in [1usize, 2, 4] {
            let mut m = matcher(shards);
            m.load_database(&data).unwrap();
            for (start, len) in [(0usize, 16usize), (2040, 24), (4099, 40), (8000, 13)] {
                let q = data.slice(start, len);
                assert_eq!(
                    m.find_all(&q).unwrap(),
                    data.find_all(&q),
                    "shards={shards} slice=({start},{len})"
                );
            }
        }
    }

    #[test]
    fn per_shard_stats_sum_to_the_total() {
        let data = long_data();
        let mut m = matcher(3);
        m.load_database(&data).unwrap();
        assert_eq!(m.shard_count(), Some(3));
        m.find_all(&data.slice(100, 32)).unwrap();
        m.find_all(&data.slice(5000, 18)).unwrap();
        let shard_stats = m.shard_stats();
        assert_eq!(shard_stats.len(), 3);
        assert!(shard_stats.iter().all(|s| s.hom_adds > 0));
        let mut sum = MatchStats::default();
        for s in &shard_stats {
            sum.merge(s);
        }
        assert_eq!(sum, m.stats());
    }

    #[test]
    fn wire_queries_round_trip_through_the_kit() {
        let data = long_data();
        let mut m = matcher(2);
        m.load_database(&data).unwrap();
        let kit = m.query_kit();
        let mut rng = StdRng::seed_from_u64(123);
        let pattern = data.slice(2040, 24);
        let encoded = kit.encode_query(&pattern, &mut rng).unwrap();
        assert_eq!(m.find_all_wire(&encoded).unwrap(), data.find_all(&pattern));
        // Truncated wire bytes are a typed decode error.
        assert!(matches!(
            m.find_all_wire(&encoded[..encoded.len() / 2]).unwrap_err(),
            MatchError::Decode(_)
        ));
    }

    #[test]
    fn oversized_queries_are_rejected_not_wrong() {
        let data = long_data();
        let mut m = matcher(4);
        m.load_database(&data).unwrap();
        let bpp = CiphermatchEngine::new(&BfvContext::new(BfvParams::insecure_test_add()))
            .packing()
            .bits_per_poly();
        let too_long = data.slice(0, bpp + 8);
        assert!(matches!(
            m.find_all(&too_long).unwrap_err(),
            MatchError::QueryTooLong { .. }
        ));
        // A single-shard matcher has no such limit.
        let mut single = matcher(1);
        single.load_database(&data).unwrap();
        assert_eq!(
            single.find_all(&too_long).unwrap(),
            data.find_all(&too_long)
        );
    }

    #[test]
    fn empty_inputs_are_typed_errors() {
        let mut m = matcher(2);
        assert_eq!(
            m.find_all(&BitString::from_ascii("x")).err(),
            Some(MatchError::NoDatabase)
        );
        assert!(m.load_database(&BitString::new()).is_err());
        m.load_database(&BitString::from_ascii("loaded")).unwrap();
        assert_eq!(
            m.find_all(&BitString::new()).err(),
            Some(MatchError::EmptyQuery)
        );
    }

    #[test]
    fn clones_share_shard_allocations() {
        let data = long_data();
        let mut m = matcher(3);
        m.load_database(&data).unwrap();
        let clone = m.boxed_clone();
        assert_eq!(m.database_fingerprint(), clone.database_fingerprint());
        assert!(m.database_fingerprint().is_some());
    }
}
