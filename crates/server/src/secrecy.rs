//! Constant-time comparison of secret material — the *only* compare
//! path for channel keys and AES-CBC-MAC tags.
//!
//! A branchy `==` on a secret leaks the length of the matching prefix
//! through timing: an attacker iterating guesses can grow a forged tag
//! or key byte by byte. Every comparison of secret-named values
//! (`channel_key`, `auth_tag`, `upload_tag`, `content_digest` outputs)
//! must go through [`keys_match`] / [`tags_match`], which XOR-fold the
//! full width before testing — the time to reject a mismatch is
//! independent of where it mismatches.
//!
//! The workspace lint (`cargo run -p cm_analyze`, rule `ct-secrecy`)
//! whitelists exactly this module: an `==`/`!=` on secret-marked values
//! anywhere else fails the build.

/// Constant-time 16-byte tag comparison: the timing of a mismatch never
/// reveals how many leading bytes agreed.
///
/// Use for [`crate::wire::auth_tag`] / [`crate::wire::upload_tag`] MACs
/// and [`crate::wire::content_digest`] values.
pub fn tags_match(a: &[u8; 16], b: &[u8; 16]) -> bool {
    a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

/// Constant-time 32-byte channel-key comparison (the wide sibling of
/// [`tags_match`]): a key mismatch must not leak the matching prefix
/// length of a provisioned key through timing.
pub fn keys_match(a: &[u8; 32], b: &[u8; 32]) -> bool {
    a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_match_agrees_with_equality() {
        let a = [7u8; 16];
        assert!(tags_match(&a, &a));
        for i in 0..16 {
            let mut b = a;
            b[i] ^= 1;
            assert!(!tags_match(&a, &b), "flipped byte {i} must mismatch");
        }
    }

    #[test]
    fn keys_match_agrees_with_equality() {
        let a = [0xA5u8; 32];
        assert!(keys_match(&a, &a));
        for i in 0..32 {
            let mut b = a;
            b[i] ^= 0x80;
            assert!(!keys_match(&a, &b), "flipped byte {i} must mismatch");
        }
    }
}
