//! The client-side query kit: the public material a key owner needs to
//! encrypt queries for a remote CIPHERMATCH-family tenant.
//!
//! Provisioning mirrors the paper's offline step: the tenant's owner keeps
//! the secret key, hands the server a delegated index-generation
//! capability and an AES channel key, and keeps (or distributes) this kit
//! so query encryption can happen *away* from the serving process. The
//! kit holds only public material — context parameters and the public
//! key.

use cm_bfv::{BfvContext, Encryptor, PublicKey};
use cm_core::{BitString, CiphermatchEngine, MatchError};
use rand::Rng;

/// Public query-encryption material for one tenant.
#[derive(Clone)]
pub struct QueryKit {
    ctx: BfvContext,
    pk: PublicKey,
    q_bits: u32,
}

impl std::fmt::Debug for QueryKit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryKit")
            .field("params", &self.ctx.params().name)
            .finish()
    }
}

impl QueryKit {
    pub(crate) fn new(ctx: BfvContext, pk: PublicKey) -> Self {
        let q_bits = 64 - ctx.params().q.leading_zeros();
        Self { ctx, pk, q_bits }
    }

    /// Encrypts `query` and serializes it into the CIPHERMATCH wire format
    /// ([`cm_core::EncryptedQuery::encode`]) ready for
    /// [`crate::MatchClient::search_encoded`].
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::EmptyQuery`] for the empty pattern.
    pub fn encode_query<R: Rng + ?Sized>(
        &self,
        query: &BitString,
        rng: &mut R,
    ) -> Result<Vec<u8>, MatchError> {
        if query.is_empty() {
            return Err(MatchError::EmptyQuery);
        }
        let enc = Encryptor::new(&self.ctx, self.pk.clone());
        let encrypted = CiphermatchEngine::new(&self.ctx).prepare_query(&enc, query, rng);
        Ok(encrypted.encode(self.q_bits))
    }
}
