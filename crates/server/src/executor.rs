//! The shard executor: a thin sharding adapter over the shared
//! [`cm_core::exec`] work-pool runtime.
//!
//! One [`WorkerPool`] with as many long-lived workers as the loaded
//! database has shards serves *every* search (and, because clones of a
//! [`crate::ShardedCmMatcher`] share their executor, every pool member of
//! a tenant). A search submits one job per shard; each job builds a
//! CM-SW engine over its [`std::sync::Arc`]-shared shard (no ciphertext
//! copy), runs the `Hom-Add` sweep over *that shard only*, generates
//! indices with the shared trusted index-generation capability, and
//! reports them — together with the job's exact [`MatchStats`] — through
//! its [`cm_core::CompletionHandle`]. The bespoke thread/queue/handle
//! machinery this module used to carry lives in `cm_core::exec` now,
//! where sessions, tenants, and the TCP front-end share it.

use std::sync::Arc;

use cm_bfv::BfvContext;
use cm_core::exec::{CompletionHandle, WorkerPool};
use cm_core::{
    CiphermatchEngine, EncryptedDatabase, EncryptedQuery, MatchError, MatchStats,
    TrustedIndexGenerator,
};

use crate::shard::ShardedDatabase;

/// One shard's contribution to a search.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Which shard produced this outcome.
    pub shard: usize,
    /// Matching bit offsets, *local to the shard* — remap them to global
    /// offsets with [`crate::ShardedDatabase::merge_indices`].
    pub indices: Vec<usize>,
    /// The statistics this job accumulated on the shard.
    pub stats: MatchStats,
}

/// Collects the per-shard outcomes of one submitted search.
#[must_use = "wait() gathers the shard results"]
pub struct SearchHandle {
    handles: Vec<CompletionHandle<ShardOutcome>>,
}

impl SearchHandle {
    /// Blocks until every shard has reported, returning the outcomes
    /// sorted by shard index.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::WorkerPanicked`] if any shard job panicked.
    pub fn wait(self) -> Result<Vec<ShardOutcome>, MatchError> {
        let mut outcomes = cm_core::wait_all(self.handles)?;
        outcomes.sort_by_key(|o| o.shard);
        Ok(outcomes)
    }
}

/// The shard fan-out for one loaded database: `Arc`-shared shards plus a
/// [`WorkerPool`] sized to the shard count.
pub struct ShardExecutor {
    ctx: BfvContext,
    shards: Vec<Arc<EncryptedDatabase>>,
    index_gen: Arc<TrustedIndexGenerator>,
    pool: WorkerPool,
}

impl std::fmt::Debug for ShardExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardExecutor")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl ShardExecutor {
    /// Builds an executor over `db`'s shards: one pool worker per shard,
    /// so a single search can saturate every shard at once. Jobs share
    /// the shards and the index-generation capability by reference
    /// count — nothing is copied per search.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::InvalidConfig`] for a database with no
    /// shards (unreachable through [`ShardedDatabase::split`]).
    pub fn new(
        ctx: &BfvContext,
        db: &ShardedDatabase,
        index_gen: &TrustedIndexGenerator,
    ) -> Result<Self, MatchError> {
        Ok(Self {
            ctx: ctx.clone(),
            shards: db.shards().to_vec(),
            index_gen: Arc::new(index_gen.clone()),
            pool: WorkerPool::new(db.shard_count())?,
        })
    }

    /// Number of shards (and pool workers).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Submits one job per shard for `query`, returning a handle that
    /// gathers the per-shard outcomes. The query is reference-counted, so
    /// the fan-out ships pointers, not ciphertext copies.
    pub fn submit(&self, query: Arc<EncryptedQuery>) -> SearchHandle {
        let handles = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let shard = Arc::clone(shard);
                let query = Arc::clone(&query);
                let ctx = self.ctx.clone();
                let index_gen = Arc::clone(&self.index_gen);
                self.pool.submit(move || {
                    // A fresh engine per job: its counters start at zero,
                    // so `stats()` is this job's exact delta.
                    let mut engine = CiphermatchEngine::new(&ctx);
                    let result = engine.search(&shard, &query);
                    ShardOutcome {
                        shard: i,
                        indices: index_gen.generate(&result),
                        stats: engine.stats(),
                    }
                })
            })
            .collect();
        SearchHandle { handles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_bfv::{BfvParams, Encryptor, KeyGenerator};
    use cm_core::BitString;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn executor_searches_all_shards_and_reports_stats() {
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let mut rng = StdRng::seed_from_u64(2024);
        let (sk, pk) = {
            let kg = KeyGenerator::new(&ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        let enc = Encryptor::new(&ctx, pk);
        let engine = CiphermatchEngine::new(&ctx);
        let bpp = engine.packing().bits_per_poly();
        let bytes: Vec<u8> = (0..(bpp / 8) * 3 + 17)
            .map(|i| (i * 29 % 250) as u8)
            .collect();
        let data = BitString::from_bytes(&bytes);
        let db = engine.encrypt_database(&enc, &data, &mut rng);
        let sharded = ShardedDatabase::split(&db, bpp, 3, 1).unwrap();
        let index_gen = TrustedIndexGenerator::from_secret(&ctx, sk);
        let executor = ShardExecutor::new(&ctx, &sharded, &index_gen).unwrap();
        assert_eq!(executor.shard_count(), 3);

        let pattern = data.slice(bpp - 9, 20); // straddles shards 0 and 1
        let query = Arc::new(engine.prepare_query(&enc, &pattern, &mut rng));

        // Two searches in flight at once: handles gather independently.
        let h1 = executor.submit(Arc::clone(&query));
        let h2 = executor.submit(Arc::clone(&query));
        for handle in [h1, h2] {
            let outcomes = handle.wait().unwrap();
            assert_eq!(outcomes.len(), 3);
            // Outcomes are shard-local; the planner's remap restores
            // global offsets (and collapses overlap duplicates).
            let per_shard: Vec<Vec<usize>> = outcomes.iter().map(|o| o.indices.clone()).collect();
            let merged = sharded.merge_indices(&per_shard);
            assert_eq!(merged, data.find_all(&pattern));
            // Every shard ran its own Hom-Add sweep.
            assert!(outcomes.iter().all(|o| o.stats.hom_adds > 0));
        }
    }
}
