//! The thread-per-shard executor: long-lived workers, an mpsc job queue
//! per shard, and completion handles that gather per-shard results.
//!
//! One OS thread is pinned to each shard for the lifetime of the loaded
//! database. A search broadcasts the (reference-counted) encrypted query
//! to every shard queue; each worker runs the `Hom-Add` sweep over *its
//! shard only*, generates indices with its own copy of the trusted
//! index-generation capability, remaps them to global bit offsets, and
//! reports them — together with the shard's [`MatchStats`] delta — through
//! the job's completion channel.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use cm_bfv::BfvContext;
use cm_core::{CiphermatchEngine, EncryptedQuery, MatchError, MatchStats, TrustedIndexGenerator};

use crate::shard::ShardedDatabase;

/// One shard's contribution to a search.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Which shard produced this outcome.
    pub shard: usize,
    /// Matching bit offsets, *local to the shard* — remap them to global
    /// offsets with [`crate::ShardedDatabase::merge_indices`].
    pub indices: Vec<usize>,
    /// The statistics this job added to the shard's counters.
    pub stats: MatchStats,
}

/// A job broadcast to one shard worker.
struct ShardJob {
    query: Arc<EncryptedQuery>,
    reply: mpsc::Sender<ShardOutcome>,
}

/// Collects the per-shard outcomes of one submitted search.
#[must_use = "wait() gathers the shard results"]
pub struct CompletionHandle {
    rx: mpsc::Receiver<ShardOutcome>,
    pending: usize,
    failed: bool,
}

impl CompletionHandle {
    /// Blocks until every shard has reported, returning the outcomes
    /// sorted by shard index.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::WorkerPanicked`] if any shard worker died
    /// before reporting.
    pub fn wait(self) -> Result<Vec<ShardOutcome>, MatchError> {
        if self.failed {
            return Err(MatchError::WorkerPanicked);
        }
        let mut outcomes = Vec::with_capacity(self.pending);
        for _ in 0..self.pending {
            outcomes.push(self.rx.recv().map_err(|_| MatchError::WorkerPanicked)?);
        }
        outcomes.sort_by_key(|o| o.shard);
        Ok(outcomes)
    }
}

/// The pool of shard workers for one loaded database.
pub struct ShardExecutor {
    senders: Vec<mpsc::Sender<ShardJob>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardExecutor")
            .field("shards", &self.senders.len())
            .finish()
    }
}

impl ShardExecutor {
    /// Spawns one worker thread per shard of `db`. Each worker owns an
    /// [`Arc`] to its shard (no ciphertext copy), a CM-SW engine, and a
    /// clone of the index-generation capability.
    pub fn spawn(
        ctx: &BfvContext,
        db: &ShardedDatabase,
        index_gen: &TrustedIndexGenerator,
    ) -> Self {
        let mut senders = Vec::with_capacity(db.shard_count());
        let mut handles = Vec::with_capacity(db.shard_count());
        for (i, shard) in db.shards().iter().enumerate() {
            let (tx, rx) = mpsc::channel::<ShardJob>();
            let shard = Arc::clone(shard);
            let mut engine = CiphermatchEngine::new(ctx);
            let index_gen = index_gen.clone();
            handles.push(std::thread::spawn(move || {
                // The worker lives until the executor drops its sender.
                while let Ok(job) = rx.recv() {
                    engine.reset_stats();
                    let result = engine.search(&shard, &job.query);
                    // A receiver dropped mid-search just means the caller
                    // gave up on this job; keep serving the queue.
                    let _ = job.reply.send(ShardOutcome {
                        shard: i,
                        indices: index_gen.generate(&result),
                        stats: engine.stats(),
                    });
                }
            }));
            senders.push(tx);
        }
        Self { senders, handles }
    }

    /// Number of shard workers.
    pub fn shard_count(&self) -> usize {
        self.senders.len()
    }

    /// Broadcasts `query` to every shard queue, returning a handle that
    /// gathers the per-shard outcomes. The query is reference-counted, so
    /// the broadcast ships pointers, not ciphertext copies.
    pub fn submit(&self, query: Arc<EncryptedQuery>) -> CompletionHandle {
        let (tx, rx) = mpsc::channel();
        let mut failed = false;
        for sender in &self.senders {
            let job = ShardJob {
                query: Arc::clone(&query),
                reply: tx.clone(),
            };
            // A send can only fail if the worker thread died (panicked).
            failed |= sender.send(job).is_err();
        }
        CompletionHandle {
            rx,
            pending: self.senders.len(),
            failed,
        }
    }
}

impl Drop for ShardExecutor {
    fn drop(&mut self) {
        // Closing the queues ends the worker loops; join to avoid leaking
        // threads past the executor's lifetime.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_bfv::{BfvParams, Encryptor, KeyGenerator};
    use cm_core::BitString;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn executor_searches_all_shards_and_reports_stats() {
        let ctx = BfvContext::new(BfvParams::insecure_test_add());
        let mut rng = StdRng::seed_from_u64(2024);
        let (sk, pk) = {
            let kg = KeyGenerator::new(&ctx, &mut rng);
            (kg.secret_key(), kg.public_key(&mut rng))
        };
        let enc = Encryptor::new(&ctx, pk);
        let engine = CiphermatchEngine::new(&ctx);
        let bpp = engine.packing().bits_per_poly();
        let bytes: Vec<u8> = (0..(bpp / 8) * 3 + 17)
            .map(|i| (i * 29 % 250) as u8)
            .collect();
        let data = BitString::from_bytes(&bytes);
        let db = engine.encrypt_database(&enc, &data, &mut rng);
        let sharded = ShardedDatabase::split(&db, bpp, 3, 1).unwrap();
        let index_gen = TrustedIndexGenerator::from_secret(&ctx, sk);
        let executor = ShardExecutor::spawn(&ctx, &sharded, &index_gen);
        assert_eq!(executor.shard_count(), 3);

        let pattern = data.slice(bpp - 9, 20); // straddles shards 0 and 1
        let query = Arc::new(engine.prepare_query(&enc, &pattern, &mut rng));

        // Two searches in flight at once: handles gather independently.
        let h1 = executor.submit(Arc::clone(&query));
        let h2 = executor.submit(Arc::clone(&query));
        for handle in [h1, h2] {
            let outcomes = handle.wait().unwrap();
            assert_eq!(outcomes.len(), 3);
            // Outcomes are shard-local; the planner's remap restores
            // global offsets (and collapses overlap duplicates).
            let per_shard: Vec<Vec<usize>> = outcomes.iter().map(|o| o.indices.clone()).collect();
            let merged = sharded.merge_indices(&per_shard);
            assert_eq!(merged, data.find_all(&pattern));
            // Every shard ran its own Hom-Add sweep.
            assert!(outcomes.iter().all(|o| o.stats.hom_adds > 0));
        }
    }
}
