//! Multi-tenant state: one key domain per tenant, many tenants per
//! process.
//!
//! Each [`Tenant`] bundles an erased matcher (which owns the tenant's HE
//! key material and loaded database) with the tenant's AES index channel
//! ([`cm_ssd::SecureIndexChannel`]) and lifetime statistics. The
//! [`TenantRegistry`] maps tenant ids to tenants and is shared immutably
//! by every connection thread; per-tenant mutable state sits behind its
//! own locks, so queries for *different* tenants never contend. Queries
//! for the *same* tenant serialize on its matcher lock (parallelism
//! within one query comes from the shard executor); a per-tenant worker
//! pool over `boxed_clone` is the ROADMAP-noted next step.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cm_core::{Backend, BitString, ErasedMatcher, MatchError, MatchStats};
use cm_ssd::SecureIndexChannel;

use crate::wire::{QueryPayload, TenantInfo};

/// The result of one tenant query, ready to serialize.
#[derive(Debug, Clone)]
pub struct MatchedReply {
    /// The server-assigned AES-CTR nonce the index list was sealed with.
    pub nonce: u64,
    /// AES-sealed index list.
    pub sealed_indices: Vec<u8>,
    /// Statistics this query added.
    pub stats: MatchStats,
    /// Per-shard breakdown of `stats`.
    pub shard_stats: Vec<MatchStats>,
    /// Modeled hardware latency of the sealing step.
    pub seal_latency: Duration,
}

/// One registered key owner.
pub struct Tenant {
    id: String,
    backend: Backend,
    matcher: Mutex<Box<dyn ErasedMatcher>>,
    channel: SecureIndexChannel,
    // AES-CTR keystreams must never repeat under one channel key: the
    // nonce is a tenant-wide monotonic counter, never client input. Its
    // high 32 bits are a registration-time fresh prefix so that a process
    // restart (or re-registration) under a long-lived key does not replay
    // the counter from 1.
    next_nonce: AtomicU64,
    totals: Mutex<(MatchStats, u64)>,
}

/// A fresh per-registration nonce prefix: the counter occupies the low 32
/// bits, this fills the high 32 with registration-time entropy (wall
/// clock), so two registrations under one channel key do not share
/// keystreams.
fn nonce_prefix() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9E37_79B9_7F4A_7C15);
    // Mix so that close-together timestamps still differ in the kept bits.
    let mixed = nanos.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ nanos.rotate_left(31);
    mixed << 32
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("id", &self.id)
            .field("backend", &self.backend)
            .finish()
    }
}

impl Tenant {
    /// The tenant id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The backend serving this tenant.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Runs one query and seals the resulting index list under a fresh
    /// server-assigned nonce (returned in the reply).
    ///
    /// # Errors
    ///
    /// Propagates the matcher's [`MatchError`] (bad query, wrong wire
    /// format, …); a poisoned matcher lock reports
    /// [`MatchError::WorkerPanicked`].
    pub fn run(&self, query: &QueryPayload) -> Result<MatchedReply, MatchError> {
        let (indices, stats, shard_stats) = {
            let mut matcher = self
                .matcher
                .lock()
                .map_err(|_| MatchError::WorkerPanicked)?;
            matcher.reset_stats();
            let indices = match query {
                QueryPayload::Bits(bits) => matcher.find_all(bits)?,
                QueryPayload::CmWire(bytes) => matcher.find_all_wire(bytes)?,
            };
            (indices, matcher.stats(), matcher.shard_stats())
        };
        let nonce = self.next_nonce.fetch_add(1, Ordering::Relaxed);
        let (sealed_indices, latency) = self.channel.seal(&indices, nonce);
        {
            let mut totals = self.totals.lock().map_err(|_| MatchError::WorkerPanicked)?;
            totals.0.merge(&stats);
            totals.1 += 1;
        }
        Ok(MatchedReply {
            nonce,
            sealed_indices,
            stats,
            shard_stats,
            seal_latency: Duration::from_secs_f64(latency),
        })
    }

    /// Lifetime statistics: field-wise totals and the query count.
    pub fn totals(&self) -> Result<(MatchStats, u64), MatchError> {
        self.totals
            .lock()
            .map(|t| *t)
            .map_err(|_| MatchError::WorkerPanicked)
    }
}

/// The tenant id → tenant map a serving process is built around.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    tenants: HashMap<String, Arc<Tenant>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tenant: loads `database` into `matcher` (encrypting it
    /// under the matcher's keys) and provisions the AES-256 index channel
    /// with `channel_key` — the key the paper delivers to the client in
    /// its offline step.
    ///
    /// # Errors
    ///
    /// [`MatchError::InvalidConfig`] for a duplicate or over-long id, and
    /// whatever the matcher's `load_database` reports.
    pub fn register(
        &mut self,
        id: &str,
        mut matcher: Box<dyn ErasedMatcher>,
        channel_key: &[u8; 32],
        database: &BitString,
    ) -> Result<(), MatchError> {
        if id.is_empty() || id.len() > crate::wire::MAX_TENANT_ID {
            return Err(MatchError::InvalidConfig("tenant id length out of range"));
        }
        if self.tenants.contains_key(id) {
            return Err(MatchError::InvalidConfig("duplicate tenant id"));
        }
        matcher.load_database(database)?;
        let tenant = Tenant {
            id: id.to_string(),
            backend: matcher.backend(),
            matcher: Mutex::new(matcher),
            channel: SecureIndexChannel::new(channel_key),
            next_nonce: AtomicU64::new(nonce_prefix() | 1),
            totals: Mutex::new((MatchStats::default(), 0)),
        };
        self.tenants.insert(id.to_string(), Arc::new(tenant));
        Ok(())
    }

    /// Looks a tenant up by id.
    ///
    /// # Errors
    ///
    /// [`MatchError::UnknownTenant`] if no such tenant is registered.
    pub fn get(&self, id: &str) -> Result<Arc<Tenant>, MatchError> {
        self.tenants
            .get(id)
            .cloned()
            .ok_or_else(|| MatchError::UnknownTenant(id.to_string()))
    }

    /// Lists the registered tenants, sorted by id.
    pub fn list(&self) -> Vec<TenantInfo> {
        let mut infos: Vec<TenantInfo> = self
            .tenants
            .values()
            .map(|t| TenantInfo {
                id: t.id().to_string(),
                backend: t.backend().name().to_string(),
            })
            .collect();
        infos.sort_by(|a, b| a.id.cmp(&b.id));
        infos
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::{Backend, MatcherConfig};
    use cm_ssd::SecureIndexChannel;

    fn plain_matcher() -> Box<dyn ErasedMatcher> {
        MatcherConfig::new(Backend::Plain).build().unwrap()
    }

    #[test]
    fn registry_round_trips_queries_through_the_sealed_channel() {
        let mut registry = TenantRegistry::new();
        let data = BitString::from_ascii("tenant data with a needle inside");
        let key = [0x42u8; 32];
        registry
            .register("alice", plain_matcher(), &key, &data)
            .unwrap();
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.list()[0].id, "alice");

        let tenant = registry.get("alice").unwrap();
        let query = QueryPayload::Bits(BitString::from_ascii("needle"));
        let reply = tenant.run(&query).unwrap();
        let opened = SecureIndexChannel::new(&key).open(&reply.sealed_indices, reply.nonce);
        assert_eq!(opened, data.find_all(&BitString::from_ascii("needle")));
        assert_eq!(tenant.totals().unwrap().1, 1);
        // Nonces are tenant-assigned and never repeat: two identical
        // queries must not share an AES-CTR keystream.
        let again = tenant.run(&query).unwrap();
        assert_ne!(again.nonce, reply.nonce);
        assert_ne!(again.sealed_indices, reply.sealed_indices);
        // Per-shard stats always sum to the reply stats.
        let mut sum = MatchStats::default();
        for s in &reply.shard_stats {
            sum.merge(s);
        }
        assert_eq!(sum, reply.stats);
    }

    #[test]
    fn unknown_and_duplicate_tenants_are_typed_errors() {
        let mut registry = TenantRegistry::new();
        assert_eq!(
            registry.get("ghost").err(),
            Some(MatchError::UnknownTenant("ghost".to_string()))
        );
        let data = BitString::from_ascii("x");
        registry
            .register("dup", plain_matcher(), &[0; 32], &data)
            .unwrap();
        assert!(matches!(
            registry.register("dup", plain_matcher(), &[0; 32], &data),
            Err(MatchError::InvalidConfig(_))
        ));
        assert!(matches!(
            registry.register("", plain_matcher(), &[0; 32], &data),
            Err(MatchError::InvalidConfig(_))
        ));
    }

    #[test]
    fn wire_queries_to_hosted_tenants_fail_typed() {
        let mut registry = TenantRegistry::new();
        registry
            .register(
                "plain",
                plain_matcher(),
                &[1; 32],
                &BitString::from_ascii("data"),
            )
            .unwrap();
        let tenant = registry.get("plain").unwrap();
        assert_eq!(
            tenant.run(&QueryPayload::CmWire(vec![1, 2, 3])).err(),
            Some(MatchError::WireQueryUnsupported(Backend::Plain))
        );
    }
}
