//! Multi-tenant state: one key domain per tenant, many tenants per
//! process.
//!
//! Each [`Tenant`] bundles a [`MatcherPool`] of K `boxed_clone`'d erased
//! matchers (which share the tenant's encrypted database by `Arc` and own
//! its HE key material) with the tenant's AES index channel
//! ([`cm_ssd::SecureIndexChannel`]) and lock-free lifetime statistics
//! ([`cm_core::StatsAccumulator`]). The [`TenantRegistry`] maps tenant
//! ids to tenants and is shared immutably by every connection worker.
//! Queries for *different* tenants never contend, and up to K queries for
//! the *same* tenant run concurrently — each one checks a matcher out of
//! the pool for its exclusive use, so per-query [`MatchStats`] come from
//! the job's [`cm_core::ExecOutcome`] instead of a racy reset/read delta
//! on one shared matcher behind a mutex.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cm_core::{
    Backend, BitString, ErasedMatcher, MatchError, MatchStats, MatcherPool, StatsAccumulator,
};
use cm_ssd::SecureIndexChannel;

use crate::wire::{QueryPayload, TenantInfo};

/// Matcher-pool size [`TenantRegistry::register`] provisions when the
/// caller does not choose one ([`TenantRegistry::register_with_workers`]
/// does): up to this many queries per tenant run concurrently.
pub const DEFAULT_TENANT_WORKERS: usize = 4;

/// The result of one tenant query, ready to serialize.
#[derive(Debug, Clone)]
pub struct MatchedReply {
    /// The server-assigned AES-CTR nonce the index list was sealed with.
    pub nonce: u64,
    /// AES-sealed index list.
    pub sealed_indices: Vec<u8>,
    /// Statistics this query added.
    pub stats: MatchStats,
    /// Per-shard breakdown of `stats`.
    pub shard_stats: Vec<MatchStats>,
    /// Wall-clock time the query spent on its checked-out matcher.
    pub elapsed: Duration,
    /// Modeled hardware latency of the sealing step.
    pub seal_latency: Duration,
}

/// One registered key owner.
pub struct Tenant {
    id: String,
    backend: Backend,
    pool: MatcherPool,
    channel: SecureIndexChannel,
    // AES-CTR keystreams must never repeat under one channel key: the
    // nonce is a tenant-wide monotonic counter, never client input. Its
    // high 32 bits are a registration-time fresh prefix so that a process
    // restart (or re-registration) under a long-lived key does not replay
    // the counter from 1.
    next_nonce: AtomicU64,
    totals: StatsAccumulator,
}

/// A fresh per-registration nonce prefix: the counter occupies the low 32
/// bits, this fills the high 32 with registration-time entropy (wall
/// clock), so two registrations under one channel key do not share
/// keystreams.
fn nonce_prefix() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9E37_79B9_7F4A_7C15);
    // Mix so that close-together timestamps still differ in the kept bits.
    let mixed = nanos.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ nanos.rotate_left(31);
    mixed << 32
}

/// A deterministic per-tenant seed so pool members get distinct
/// randomness streams that differ between tenants too.
fn tenant_seed(id: &str) -> u64 {
    // FNV-1a over the id bytes.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in id.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("id", &self.id)
            .field("backend", &self.backend)
            .field("workers", &self.pool.size())
            .finish()
    }
}

impl Tenant {
    /// The tenant id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The backend serving this tenant.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The matcher-pool size K: how many of this tenant's queries can run
    /// concurrently.
    pub fn workers(&self) -> usize {
        self.pool.size()
    }

    /// Runs one query on a matcher checked out of the tenant's pool
    /// (blocking while all K are busy) and seals the resulting index list
    /// under a fresh server-assigned nonce (returned in the reply).
    ///
    /// # Errors
    ///
    /// Propagates the matcher's [`MatchError`] (bad query, wrong wire
    /// format, …).
    pub fn run(&self, query: &QueryPayload) -> Result<MatchedReply, MatchError> {
        let outcome = self.pool.run(|matcher| {
            let indices = match query {
                QueryPayload::Bits(bits) => matcher.find_all(bits),
                QueryPayload::CmWire(bytes) => matcher.find_all_wire(bytes),
            };
            let shard_stats = matcher.shard_stats();
            (indices, shard_stats)
        });
        let (indices, shard_stats) = outcome.result;
        let indices = indices?;
        let nonce = self.next_nonce.fetch_add(1, Ordering::Relaxed);
        let (sealed_indices, latency) = self.channel.seal(&indices, nonce);
        self.totals.record(&outcome.stats);
        Ok(MatchedReply {
            nonce,
            sealed_indices,
            stats: outcome.stats,
            shard_stats,
            elapsed: outcome.elapsed,
            seal_latency: Duration::from_secs_f64(latency),
        })
    }

    /// Lifetime statistics: field-wise totals and the query count,
    /// accumulated atomically from per-query outcomes.
    pub fn totals(&self) -> (MatchStats, u64) {
        self.totals.snapshot()
    }
}

/// The tenant id → tenant map a serving process is built around.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    tenants: HashMap<String, Arc<Tenant>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tenant with [`DEFAULT_TENANT_WORKERS`] pool members:
    /// loads `database` into `matcher` (encrypting it under the matcher's
    /// keys) and provisions the AES-256 index channel with `channel_key` —
    /// the key the paper delivers to the client in its offline step.
    ///
    /// # Errors
    ///
    /// [`MatchError::InvalidConfig`] for a duplicate or over-long id, and
    /// whatever the matcher's `load_database` reports.
    pub fn register(
        &mut self,
        id: &str,
        matcher: Box<dyn ErasedMatcher>,
        channel_key: &[u8; 32],
        database: &BitString,
    ) -> Result<(), MatchError> {
        self.register_with_workers(id, matcher, DEFAULT_TENANT_WORKERS, channel_key, database)
    }

    /// Registers a tenant whose matcher pool holds `workers` members, so
    /// up to `workers` of its queries run concurrently. The database is
    /// encrypted once; the pool members share it by `Arc`.
    ///
    /// # Errors
    ///
    /// [`MatchError::InvalidConfig`] for a duplicate/over-long id or a
    /// zero worker count, and whatever the matcher's `load_database`
    /// reports.
    pub fn register_with_workers(
        &mut self,
        id: &str,
        mut matcher: Box<dyn ErasedMatcher>,
        workers: usize,
        channel_key: &[u8; 32],
        database: &BitString,
    ) -> Result<(), MatchError> {
        if id.is_empty() || id.len() > crate::wire::MAX_TENANT_ID {
            return Err(MatchError::InvalidConfig("tenant id length out of range"));
        }
        if self.tenants.contains_key(id) {
            return Err(MatchError::InvalidConfig("duplicate tenant id"));
        }
        matcher.load_database(database)?;
        let backend = matcher.backend();
        let tenant = Tenant {
            id: id.to_string(),
            backend,
            pool: MatcherPool::new(matcher, workers, tenant_seed(id))?,
            channel: SecureIndexChannel::new(channel_key),
            next_nonce: AtomicU64::new(nonce_prefix() | 1),
            totals: StatsAccumulator::new(),
        };
        self.tenants.insert(id.to_string(), Arc::new(tenant));
        Ok(())
    }

    /// Looks a tenant up by id.
    ///
    /// # Errors
    ///
    /// [`MatchError::UnknownTenant`] if no such tenant is registered.
    pub fn get(&self, id: &str) -> Result<Arc<Tenant>, MatchError> {
        self.tenants
            .get(id)
            .cloned()
            .ok_or_else(|| MatchError::UnknownTenant(id.to_string()))
    }

    /// Lists the registered tenants, sorted by id.
    pub fn list(&self) -> Vec<TenantInfo> {
        let mut infos: Vec<TenantInfo> = self
            .tenants
            .values()
            .map(|t| TenantInfo {
                id: t.id().to_string(),
                backend: t.backend().name().to_string(),
            })
            .collect();
        infos.sort_by(|a, b| a.id.cmp(&b.id));
        infos
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::{Backend, MatcherConfig};
    use cm_ssd::SecureIndexChannel;

    fn plain_matcher() -> Box<dyn ErasedMatcher> {
        MatcherConfig::new(Backend::Plain).build().unwrap()
    }

    #[test]
    fn registry_round_trips_queries_through_the_sealed_channel() {
        let mut registry = TenantRegistry::new();
        let data = BitString::from_ascii("tenant data with a needle inside");
        let key = [0x42u8; 32];
        registry
            .register("alice", plain_matcher(), &key, &data)
            .unwrap();
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.list()[0].id, "alice");

        let tenant = registry.get("alice").unwrap();
        assert_eq!(tenant.workers(), DEFAULT_TENANT_WORKERS);
        let query = QueryPayload::Bits(BitString::from_ascii("needle"));
        let reply = tenant.run(&query).unwrap();
        let opened = SecureIndexChannel::new(&key).open(&reply.sealed_indices, reply.nonce);
        assert_eq!(opened, data.find_all(&BitString::from_ascii("needle")));
        assert_eq!(tenant.totals().1, 1);
        // Nonces are tenant-assigned and never repeat: two identical
        // queries must not share an AES-CTR keystream.
        let again = tenant.run(&query).unwrap();
        assert_ne!(again.nonce, reply.nonce);
        assert_ne!(again.sealed_indices, reply.sealed_indices);
        // Per-shard stats always sum to the reply stats.
        let mut sum = MatchStats::default();
        for s in &reply.shard_stats {
            sum.merge(s);
        }
        assert_eq!(sum, reply.stats);
    }

    #[test]
    fn unknown_and_duplicate_tenants_are_typed_errors() {
        let mut registry = TenantRegistry::new();
        assert_eq!(
            registry.get("ghost").err(),
            Some(MatchError::UnknownTenant("ghost".to_string()))
        );
        let data = BitString::from_ascii("x");
        registry
            .register("dup", plain_matcher(), &[0; 32], &data)
            .unwrap();
        assert!(matches!(
            registry.register("dup", plain_matcher(), &[0; 32], &data),
            Err(MatchError::InvalidConfig(_))
        ));
        assert!(matches!(
            registry.register("", plain_matcher(), &[0; 32], &data),
            Err(MatchError::InvalidConfig(_))
        ));
        assert!(matches!(
            registry.register_with_workers("zero", plain_matcher(), 0, &[0; 32], &data),
            Err(MatchError::InvalidConfig(_))
        ));
    }

    #[test]
    fn wire_queries_to_hosted_tenants_fail_typed() {
        let mut registry = TenantRegistry::new();
        registry
            .register(
                "plain",
                plain_matcher(),
                &[1; 32],
                &BitString::from_ascii("data"),
            )
            .unwrap();
        let tenant = registry.get("plain").unwrap();
        assert_eq!(
            tenant.run(&QueryPayload::CmWire(vec![1, 2, 3])).err(),
            Some(MatchError::WireQueryUnsupported(Backend::Plain))
        );
    }

    /// The regression test for the old tenant stats race: totals used to
    /// come from a reset/read delta on *one* shared matcher, so two
    /// queries interleaving their resets corrupted the lifetime counters.
    /// With per-query stats taken from exclusively checked-out pool
    /// members and accumulated atomically, the totals must equal the sum
    /// of the per-query replies exactly — under real contention.
    #[test]
    fn totals_equal_the_sum_of_per_query_stats_under_contention() {
        const THREADS: usize = 8;
        const QUERIES_PER_THREAD: usize = 3;

        let mut registry = TenantRegistry::new();
        let data = BitString::from_ascii("hammer one tenant from eight threads at once");
        let matcher = MatcherConfig::new(Backend::Ciphermatch)
            .insecure_test()
            .seed(77)
            .build()
            .unwrap();
        registry
            .register_with_workers("hammered", matcher, 4, &[0x77; 32], &data)
            .unwrap();
        let tenant = registry.get("hammered").unwrap();

        let per_query_sum = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let tenant = Arc::clone(&tenant);
                    let data = &data;
                    scope.spawn(move || {
                        let mut sum = MatchStats::default();
                        for q in 0..QUERIES_PER_THREAD {
                            let needle = if (t + q) % 2 == 0 {
                                "tenant"
                            } else {
                                "at once"
                            };
                            let query = QueryPayload::Bits(BitString::from_ascii(needle));
                            let reply = tenant.run(&query).unwrap();
                            assert_eq!(
                                SecureIndexChannel::new(&[0x77; 32])
                                    .open(&reply.sealed_indices, reply.nonce),
                                data.find_all(&BitString::from_ascii(needle))
                            );
                            assert!(reply.stats.hom_adds > 0);
                            sum.merge(&reply.stats);
                        }
                        sum
                    })
                })
                .collect();
            let mut total = MatchStats::default();
            for h in handles {
                total.merge(&h.join().expect("query thread panicked"));
            }
            total
        });

        let (totals, queries) = tenant.totals();
        assert_eq!(queries, (THREADS * QUERIES_PER_THREAD) as u64);
        assert_eq!(
            totals, per_query_sum,
            "lifetime totals must equal the sum of per-query stats"
        );
    }
}
