//! Multi-tenant state: one key domain per tenant, many tenants per
//! process — with a full remote database lifecycle.
//!
//! Each [`Tenant`] bundles a [`MatcherPool`] of K `boxed_clone`'d erased
//! matchers (which share the tenant's encrypted database by `Arc` and own
//! its HE key material) with the tenant's AES index channel
//! ([`cm_ssd::SecureIndexChannel`]) and lock-free lifetime statistics
//! ([`cm_core::StatsAccumulator`]). The [`TenantRegistry`] maps tenant
//! ids to tenants and is shared by every connection worker. Queries for
//! *different* tenants never contend, and up to K queries for the *same*
//! tenant run concurrently — each one checks a matcher out of the pool
//! for its exclusive use, so per-query [`MatchStats`] come from the job's
//! [`cm_core::ExecOutcome`] instead of a racy reset/read delta on one
//! shared matcher behind a mutex.
//!
//! ## The two tiers and the memory budget
//!
//! The registry accounts every tenant database against a configurable
//! **host memory budget** (`ServerConfig::memory_budget`). A tenant is
//! either **hot** — a live [`MatcherPool`] holds its working state in
//! host memory, alongside the serialized upload bytes — or **cold** —
//! the serialized form has been written, page by page, into the
//! registry's [`cm_ssd::ColdStore`] (a simulated SSD's conventional
//! region) and the host-RAM copy dropped: after demotion the *only*
//! copy of the database is flash pages behind the FTL, which is the
//! paper's division of labor (the accelerator owns the data; the host
//! manages placement). Demotion charges `flash_wear` (one program per
//! page) and `bytes_moved` into the tenant's lifetime stats; promotion
//! reads the pages back (wear-free) with the same `bytes_moved` charge.
//!
//! Admitting a database past the budget demotes the least-recently-used
//! unpinned *remote* tenant (one registered from a serialized upload;
//! in-process tenants carry live key material that cannot be rebuilt
//! from bytes and are never demoted). A query for a cold tenant
//! transparently **re-materializes** its matcher pool through the shared
//! [`cm_core::exec`] runtime; in-flight queries on a demoted tenant
//! finish on their own `Arc` clone unharmed. Each re-materialization
//! seals replies under a fresh nonce prefix, so demotion cycles never
//! reuse an AES-CTR keystream.
//!
//! [`Backend::Ifp`] tenants are **flash-native**: their database already
//! lives in a simulated SSD's CIPHERMATCH region, so demotion *parks*
//! the matcher pool (small key material plus the device handle) instead
//! of destroying it, and [`TenantRegistry::run_query`] answers Match
//! queries for a cold `ifp` tenant straight from the parked device —
//! no re-materialization, no host-memory rebuild, no promotion. Cold is
//! IFP's native tier, not a penalty; the parked tenant's monotone nonce
//! counter keeps sealing safe across the demotion.
//!
//! ## Authorization
//!
//! The first *committed* upload for a tenant id **binds** the id to the
//! presented channel key (the wire stand-in for the paper's offline
//! provisioning step) — an unauthenticated `Begin` alone binds nothing
//! and creates no server state, so ids cannot be squatted for free. The
//! binding outlives eviction, so an id cannot be hijacked by
//! re-registering it. Every later upload must present the same key,
//! every upload tag binds the declared size, the full [`TenantSpec`],
//! and a digest of the payload bytes ([`crate::wire::upload_tag`]),
//! every evict must prove possession with an [`crate::wire::auth_tag`]
//! MAC (the key itself never travels in an evict frame), and per-tenant
//! nonces must strictly increase — replays are rejected with
//! [`MatchError::Unauthorized`] and leave the registry untouched.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use cm_core::{
    Backend, BitString, ErasedMatcher, MatchError, MatchStats, MatcherPool, StatsAccumulator,
    WorkerPool,
};
use cm_ssd::{ColdSlot, ColdStore, SecureIndexChannel};
use cm_telemetry::{metric_names, Counter, Gauge, MetricsRegistry};

use crate::ifp::IfpMatcher;
use crate::wire::{
    auth_tag, content_digest, keys_match, tags_match, upload_tag, DatabaseInfoReply, EvictAuth,
    QueryPayload, TenantInfo, TenantSpec, UploadAuth, OP_EVICT,
};

/// Matcher-pool size [`TenantRegistry::register`] provisions when the
/// caller does not choose one ([`TenantRegistry::register_with_workers`]
/// does): up to this many queries per tenant run concurrently.
pub const DEFAULT_TENANT_WORKERS: usize = 4;

/// Workers on the registry's build pool: how many cold tenants can
/// re-materialize (or remote uploads finish registering) concurrently.
const BUILD_WORKERS: usize = 2;

/// The result of one tenant query, ready to serialize.
#[derive(Debug, Clone)]
pub struct MatchedReply {
    /// The server-assigned AES-CTR nonce the index list was sealed with.
    pub nonce: u64,
    /// AES-sealed index list.
    pub sealed_indices: Vec<u8>,
    /// Statistics this query added.
    pub stats: MatchStats,
    /// Per-shard breakdown of `stats`.
    pub shard_stats: Vec<MatchStats>,
    /// Wall-clock time the query spent on its checked-out matcher.
    pub elapsed: Duration,
    /// Modeled hardware latency of the sealing step.
    pub seal_latency: Duration,
}

/// The outcome of admitting a remote database
/// ([`TenantRegistry::register_remote`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteLoad {
    /// The registry's accounting charge for the database in bytes (the
    /// serialized length).
    pub bytes: u64,
    /// Tenants the admission demoted to the cold tier, LRU-first.
    pub demoted: Vec<String>,
}

/// One registered key owner.
pub struct Tenant {
    id: String,
    backend: Backend,
    pool: MatcherPool,
    channel: SecureIndexChannel,
    // AES-CTR keystreams must never repeat under one channel key: the
    // nonce is a tenant-wide monotonic counter, never client input. Its
    // high 32 bits are a registration-time fresh prefix so that a process
    // restart, re-registration, or cold-tier re-materialization under a
    // long-lived key does not replay the counter from 1.
    next_nonce: AtomicU64,
    totals: Arc<StatsAccumulator>,
}

/// A fresh per-registration nonce prefix: the counter occupies the low 32
/// bits, this fills the high 32 with registration-time entropy (wall
/// clock), so two registrations under one channel key do not share
/// keystreams.
fn nonce_prefix() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9E37_79B9_7F4A_7C15);
    // Mix so that close-together timestamps still differ in the kept bits.
    let mixed = nanos.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ nanos.rotate_left(31);
    mixed << 32
}

/// A deterministic per-tenant seed so pool members get distinct
/// randomness streams that differ between tenants too.
fn tenant_seed(id: &str) -> u64 {
    // FNV-1a over the id bytes.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in id.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("id", &self.id)
            .field("backend", &self.backend)
            .field("workers", &self.pool.size())
            .finish()
    }
}

impl Tenant {
    fn assemble(
        id: &str,
        backend: Backend,
        pool: MatcherPool,
        channel_key: &[u8; 32],
        totals: Arc<StatsAccumulator>,
    ) -> Self {
        Self {
            id: id.to_string(),
            backend,
            pool,
            channel: SecureIndexChannel::new(channel_key),
            next_nonce: AtomicU64::new(nonce_prefix() | 1),
            totals,
        }
    }

    /// The tenant id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The backend serving this tenant.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The matcher-pool size K: how many of this tenant's queries can run
    /// concurrently.
    pub fn workers(&self) -> usize {
        self.pool.size()
    }

    /// Runs one query on a matcher checked out of the tenant's pool
    /// (blocking while all K are busy) and seals the resulting index list
    /// under a fresh server-assigned nonce (returned in the reply).
    ///
    /// # Errors
    ///
    /// Propagates the matcher's [`MatchError`] (bad query, wrong wire
    /// format, …); a matcher that panics mid-query surfaces as
    /// [`MatchError::WorkerPanicked`] instead of unwinding the serving
    /// thread.
    pub fn run(&self, query: &QueryPayload) -> Result<MatchedReply, MatchError> {
        let outcome = self.pool.try_run(|matcher| {
            let indices = match query {
                QueryPayload::Bits(bits) => matcher.find_all(bits),
                QueryPayload::CmWire(bytes) => matcher.find_all_wire(bytes),
            };
            let shard_stats = matcher.shard_stats();
            (indices, shard_stats)
        })?;
        let (indices, shard_stats) = outcome.result;
        let indices = indices?;
        let nonce = self.next_nonce.fetch_add(1, Ordering::Relaxed);
        let (sealed_indices, latency) = self.channel.seal(&indices, nonce);
        self.totals.record(&outcome.stats);
        Ok(MatchedReply {
            nonce,
            sealed_indices,
            stats: outcome.stats,
            shard_stats,
            elapsed: outcome.elapsed,
            seal_latency: Duration::from_secs_f64(latency),
        })
    }

    /// Lifetime statistics: field-wise totals and the query count,
    /// accumulated atomically from per-query outcomes. Survives cold-tier
    /// demotion and re-materialization (the accumulator is shared with
    /// the registry entry).
    pub fn totals(&self) -> (MatchStats, u64) {
        self.totals.snapshot()
    }
}

/// The id → channel-key binding plus the nonce high-water mark; outlives
/// eviction so an id cannot be hijacked and old nonces cannot be
/// replayed after a re-upload.
struct AuthRecord {
    channel_key: [u8; 32],
    last_nonce: u64,
}

/// One registered tenant's registry-side state.
struct TenantEntry {
    backend: Backend,
    channel_key: [u8; 32],
    workers: usize,
    pinned: bool,
    /// Bumped every time the entry is (re-)inserted, so an off-lock
    /// re-materialization can detect that the tenant it rebuilt was
    /// replaced in the meantime and must not be installed.
    generation: u64,
    /// LRU stamp: bumped on every lookup.
    last_used: u64,
    /// The accounting charge while hot, in bytes.
    charge: u64,
    /// Lifetime stats, shared with the hot [`Tenant`] (survives
    /// demotion).
    totals: Arc<StatsAccumulator>,
    /// For remote tenants: how to rebuild the matcher. `None` marks an
    /// in-process tenant, which can never be demoted.
    spec: Option<TenantSpec>,
    /// For remote tenants while **hot**: the serialized upload bytes
    /// (kept so demotion can write the master copy to flash without an
    /// export pass). `None` while cold — demotion moves the bytes into
    /// the cold store and drops this host-RAM copy.
    encoded: Option<Arc<Vec<u8>>>,
    /// While **cold**: where in the registry's flash-backed cold store
    /// the serialized master copy lives.
    cold: Option<ColdSlot>,
    /// The live tenant while hot; `None` while demoted to the cold tier.
    hot: Option<Arc<Tenant>>,
    /// For demoted [`Backend::Ifp`] tenants: the parked pool (keys plus
    /// the shared SSD device) that serves Match queries straight from
    /// flash while cold. `None` for every other state.
    parked: Option<Arc<Tenant>>,
}

/// Telemetry handles for the registry's hot/cold lifecycle. Defaults to
/// disabled no-ops; [`TenantRegistry::install_telemetry`] swaps in live
/// handles.
#[derive(Debug, Default)]
struct RegistryMetrics {
    /// Budget-driven demotions to the cold tier.
    demotions: Counter,
    /// Cold-tier rebuilds installed by [`TenantRegistry::get`].
    rematerializations: Counter,
    /// Mirror of [`Inner::hot_bytes`].
    hot_bytes: Gauge,
    /// Mirror of [`Inner::budget`] (`-1` when unbounded).
    budget: Gauge,
    /// Mirror of [`Inner::cold_bytes`].
    cold_bytes: Gauge,
    /// Flash program/erase cycles spent on cold-tier lifecycle traffic.
    flash_wear: Counter,
    /// Match queries served from the cold tier by a parked `ifp` tenant.
    cold_hits: Counter,
}

/// The budget gauge's encoding of "unbounded" (a `u64::MAX` budget
/// would otherwise wrap the i64 gauge negative anyway).
fn budget_gauge_value(budget: u64) -> i64 {
    if budget == u64::MAX {
        -1
    } else {
        budget as i64
    }
}

struct Inner {
    tenants: HashMap<String, TenantEntry>,
    auth: HashMap<String, AuthRecord>,
    /// Sum of the charges of every hot tenant.
    hot_bytes: u64,
    /// Sum of the byte lengths of every demoted database's flash-resident
    /// master copy.
    cold_bytes: u64,
    /// Host memory budget in bytes; `u64::MAX` means unbounded.
    budget: u64,
    /// Monotonic LRU clock.
    clock: u64,
    /// Lifecycle telemetry (no-ops until installed). Lives inside
    /// `Inner` so every `hot_bytes` mutation site — including the
    /// static [`TenantRegistry::ensure_capacity`] — can keep the gauge
    /// in lock-step under the same lock.
    metrics: RegistryMetrics,
}

impl Inner {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Mirrors `hot_bytes` into its gauge; call after every mutation.
    fn sync_hot_bytes(&self) {
        self.metrics.hot_bytes.set(self.hot_bytes as i64);
    }

    /// Mirrors `cold_bytes` into its gauge; call after every mutation.
    fn sync_cold_bytes(&self) {
        self.metrics.cold_bytes.set(self.cold_bytes as i64);
    }
}

/// The tenant id → tenant map a serving process is built around, with
/// registry-level memory accounting and the hot/cold lifecycle (see the
/// module docs).
pub struct TenantRegistry {
    inner: Mutex<Inner>,
    /// The flash-backed cold tier: demoted databases live here as pages
    /// in a simulated SSD's conventional region, and nowhere else. Lock
    /// order is `inner` → `cold` (never the reverse), and neither lock
    /// is ever held across a build-pool submit.
    cold: Mutex<ColdStore>,
    /// Remote matcher builds (uploads and cold-tier re-materializations)
    /// run as jobs on this shared-runtime pool, never on ad-hoc threads.
    builders: WorkerPool,
}

impl std::fmt::Debug for TenantRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("TenantRegistry")
            .field("tenants", &inner.tenants.len())
            .field("hot_bytes", &inner.hot_bytes)
            .field(
                "budget",
                &(inner.budget != u64::MAX).then_some(inner.budget),
            )
            .finish()
    }
}

impl Default for TenantRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl TenantRegistry {
    /// An empty registry with an unbounded memory budget.
    pub fn new() -> Self {
        #[allow(clippy::expect_used)] // infallible: BUILD_WORKERS is a non-zero constant
        let builders = WorkerPool::new(BUILD_WORKERS)
            // cm_analyze::allow(no-panic): BUILD_WORKERS is a non-zero constant
            .expect("non-zero build pool");
        Self {
            inner: Mutex::new(Inner {
                tenants: HashMap::new(),
                auth: HashMap::new(),
                hot_bytes: 0,
                cold_bytes: 0,
                budget: u64::MAX,
                clock: 0,
                metrics: RegistryMetrics::default(),
            }),
            cold: Mutex::new(ColdStore::with_default_geometry()),
            builders,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_cold(&self) -> MutexGuard<'_, ColdStore> {
        self.cold
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Sets the host memory budget in bytes (`None` = unbounded). Hot
    /// tenants above a newly lowered budget are demoted lazily, at the
    /// next admission.
    pub fn set_memory_budget(&self, budget: Option<u64>) {
        let mut inner = self.lock();
        inner.budget = budget.unwrap_or(u64::MAX);
        inner.metrics.budget.set(budget_gauge_value(inner.budget));
    }

    /// Registers the registry's lifecycle metrics
    /// (`cm_registry_demotions_total`, `cm_registry_hot_bytes`, …) with
    /// `metrics` and seeds the gauges from the current state.
    /// [`crate::MatchServer`] installs its server-wide registry here at
    /// spawn; standalone registries can install their own.
    pub fn install_telemetry(&self, metrics: &MetricsRegistry) {
        let mut inner = self.lock();
        inner.metrics = RegistryMetrics {
            demotions: metrics.register_counter(metric_names::REGISTRY_DEMOTIONS, &[]),
            rematerializations: metrics
                .register_counter(metric_names::REGISTRY_REMATERIALIZATIONS, &[]),
            hot_bytes: metrics.register_gauge(metric_names::REGISTRY_HOT_BYTES, &[]),
            budget: metrics.register_gauge(metric_names::REGISTRY_MEMORY_BUDGET_BYTES, &[]),
            cold_bytes: metrics.register_gauge(metric_names::REGISTRY_COLD_BYTES, &[]),
            flash_wear: metrics.register_counter(metric_names::REGISTRY_FLASH_WEAR, &[]),
            cold_hits: metrics.register_counter(metric_names::REGISTRY_COLD_HITS, &[]),
        };
        inner.metrics.budget.set(budget_gauge_value(inner.budget));
        inner.sync_hot_bytes();
        inner.sync_cold_bytes();
    }

    /// The configured host memory budget (`None` = unbounded).
    pub fn memory_budget(&self) -> Option<u64> {
        let budget = self.lock().budget;
        (budget != u64::MAX).then_some(budget)
    }

    /// Total accounting charge of the hot tier in bytes.
    pub fn hot_bytes(&self) -> u64 {
        self.lock().hot_bytes
    }

    /// Bytes of demoted databases resident in the cold tier's flash.
    pub fn cold_bytes(&self) -> u64 {
        self.lock().cold_bytes
    }

    /// Cumulative program/erase cycles of the cold store's device — the
    /// ground truth the per-tenant `flash_wear` charges must reconcile
    /// against (demotions program pages; reads and searches are free).
    pub fn cold_store_wear(&self) -> u64 {
        self.lock_cold().device_wear()
    }

    /// Bytes of the tenant's serialized database currently held in host
    /// RAM (0 while demoted — the flash pages are then the only copy).
    /// Introspection for tests pinning the tiering invariant; in-process
    /// tenants report 0 because they never stage serialized bytes.
    ///
    /// # Errors
    ///
    /// [`MatchError::UnknownTenant`] if no such tenant is registered.
    pub fn host_copy_bytes(&self, id: &str) -> Result<u64, MatchError> {
        let inner = self.lock();
        inner
            .tenants
            .get(id)
            .map(|e| e.encoded.as_ref().map_or(0, |enc| enc.len() as u64))
            .ok_or_else(|| MatchError::UnknownTenant(id.to_string()))
    }

    /// Registers a tenant with [`DEFAULT_TENANT_WORKERS`] pool members:
    /// loads `database` into `matcher` (encrypting it under the matcher's
    /// keys) and provisions the AES-256 index channel with `channel_key` —
    /// the key the paper delivers to the client in its offline step.
    ///
    /// # Errors
    ///
    /// [`MatchError::InvalidConfig`] for a duplicate or over-long id,
    /// [`MatchError::QuotaExceeded`] when the database cannot fit the
    /// memory budget, and whatever the matcher's `load_database` reports.
    pub fn register(
        &mut self,
        id: &str,
        matcher: Box<dyn ErasedMatcher>,
        channel_key: &[u8; 32],
        database: &BitString,
    ) -> Result<(), MatchError> {
        self.register_with_workers(id, matcher, DEFAULT_TENANT_WORKERS, channel_key, database)
    }

    /// Registers a tenant whose matcher pool holds `workers` members, so
    /// up to `workers` of its queries run concurrently. The database is
    /// encrypted once; the pool members share it by `Arc`.
    ///
    /// In-process tenants hold live key material that cannot be rebuilt
    /// from serialized bytes, so they are never demoted to the cold tier
    /// (only counted against the budget). Remote key owners use
    /// [`Self::register_remote`] / `Request::LoadDatabase` instead.
    ///
    /// # Errors
    ///
    /// [`MatchError::InvalidConfig`] for a duplicate/over-long id or a
    /// zero worker count, [`MatchError::QuotaExceeded`] when the database
    /// cannot fit the memory budget, and whatever the matcher's
    /// `load_database` reports.
    pub fn register_with_workers(
        &mut self,
        id: &str,
        mut matcher: Box<dyn ErasedMatcher>,
        workers: usize,
        channel_key: &[u8; 32],
        database: &BitString,
    ) -> Result<(), MatchError> {
        if id.is_empty() || id.len() > crate::wire::MAX_TENANT_ID {
            return Err(MatchError::InvalidConfig("tenant id length out of range"));
        }
        if self.lock().tenants.contains_key(id) {
            return Err(MatchError::InvalidConfig("duplicate tenant id"));
        }
        matcher.load_database(database)?;
        let backend = matcher.backend();
        let charge = matcher.database_bytes().unwrap_or(0);
        let pool = MatcherPool::new(matcher, workers, tenant_seed(id))?;
        let totals = Arc::new(StatsAccumulator::new());
        let tenant = Arc::new(Tenant::assemble(
            id,
            backend,
            pool,
            channel_key,
            Arc::clone(&totals),
        ));
        let mut inner = self.lock();
        if inner.tenants.contains_key(id) {
            return Err(MatchError::InvalidConfig("duplicate tenant id"));
        }
        Self::ensure_capacity(&mut inner, &self.cold, charge, id)?;
        let clock = inner.tick();
        inner.tenants.insert(
            id.to_string(),
            TenantEntry {
                backend,
                channel_key: *channel_key,
                workers,
                pinned: true,
                generation: clock,
                last_used: clock,
                charge,
                totals,
                spec: None,
                encoded: None,
                cold: None,
                hot: Some(tenant),
                parked: None,
            },
        );
        inner.hot_bytes += charge;
        inner.sync_hot_bytes();
        // The operator binds (or re-binds) the id to this channel key.
        // The nonce high-water mark is preserved: re-provisioning an id
        // must never resurrect previously captured upload/evict tags.
        inner
            .auth
            .entry(id.to_string())
            .and_modify(|record| record.channel_key = *channel_key)
            .or_insert_with(|| AuthRecord {
                channel_key: *channel_key,
                last_nonce: 0,
            });
        Ok(())
    }

    /// Checks a `Request::LoadDatabase` `Begin` frame's authorization:
    /// the tag must verify under the presented key (binding the nonce,
    /// declared size, spec, and payload digest), and for an id with an
    /// existing binding the key must match and the nonce must strictly
    /// exceed the tenant's high-water mark.
    ///
    /// This check mutates **nothing** — in particular it creates no
    /// binding for an unknown id (an unauthenticated `Begin` must not be
    /// able to squat ids or grow server state). The nonce is consumed,
    /// and a first-contact id is bound to its key, only when the upload
    /// *commits* ([`Self::register_remote`]).
    ///
    /// # Errors
    ///
    /// [`MatchError::Unauthorized`].
    pub fn authorize_upload(
        &self,
        id: &str,
        auth: &UploadAuth,
        total_bytes: u64,
        spec: &TenantSpec,
    ) -> Result<(), MatchError> {
        let expected = upload_tag(
            &auth.channel_key,
            id,
            auth.nonce,
            total_bytes,
            spec,
            &auth.content,
        );
        if !tags_match(&expected, &auth.tag) {
            return Err(MatchError::Unauthorized("upload tag does not verify"));
        }
        let inner = self.lock();
        Self::check_binding(&inner, id, &auth.channel_key, auth.nonce)
    }

    /// The id→key binding rule, shared by the `Begin` gate and the
    /// commit boundary: if the id is bound, the presented key must match
    /// (constant-time — a mismatch must not leak the provisioned key's
    /// matching prefix length) and the nonce must strictly exceed the
    /// high-water mark. An unbound id passes.
    fn check_binding(
        inner: &Inner,
        id: &str,
        channel_key: &[u8; 32],
        nonce: u64,
    ) -> Result<(), MatchError> {
        if let Some(record) = inner.auth.get(id) {
            if !keys_match(&record.channel_key, channel_key) {
                return Err(MatchError::Unauthorized(
                    "channel key does not match the tenant's provisioned key",
                ));
            }
            if nonce <= record.last_nonce {
                return Err(MatchError::Unauthorized("replayed upload nonce"));
            }
        }
        Ok(())
    }

    /// Admits a fully uploaded remote database: verifies the upload
    /// authorization end to end (tag, key binding, nonce freshness, and
    /// that the bytes hash to the authorized [`content_digest`]),
    /// rebuilds the matcher from `spec` on the registry's build pool,
    /// loads the serialized database, accounts `encoded.len()` bytes
    /// against the budget (demoting LRU unpinned remote tenants as
    /// needed), and registers the tenant hot. Re-uploading over an
    /// existing id (same channel key) replaces the database and keeps
    /// the lifetime statistics (and any operator-set pin). The nonce is
    /// consumed — and a first-contact id bound to its key — only on
    /// success; a wire admission never *creates* a pin (pinning is
    /// operator-only, [`Self::set_pinned`]).
    ///
    /// # Errors
    ///
    /// [`MatchError::Unauthorized`] on a bad tag, key mismatch, replayed
    /// nonce, or content-digest mismatch; [`MatchError::QuotaExceeded`]
    /// when the database cannot fit even after demotions;
    /// [`MatchError::InvalidConfig`] / [`MatchError::UnknownBackend`]
    /// for a bad spec; decode errors for malformed database bytes. All
    /// failures leave the registry untouched.
    pub fn register_remote(
        &self,
        id: &str,
        spec: &TenantSpec,
        encoded: Vec<u8>,
        auth: &UploadAuth,
    ) -> Result<RemoteLoad, MatchError> {
        if id.is_empty() || id.len() > crate::wire::MAX_TENANT_ID {
            return Err(MatchError::InvalidConfig("tenant id length out of range"));
        }
        if spec.workers == 0 || spec.workers > crate::wire::MAX_TENANT_WORKERS {
            return Err(MatchError::InvalidConfig(
                "tenant worker count out of range",
            ));
        }
        // Full authorization at the commit boundary: the tag must bind
        // exactly these bytes' length, this spec, and this payload
        // digest — and the digest must match what actually arrived.
        self.authorize_upload(id, auth, encoded.len() as u64, spec)?;
        if !tags_match(&content_digest(&auth.channel_key, &encoded), &auth.content) {
            return Err(MatchError::Unauthorized(
                "database bytes do not match the authorized digest",
            ));
        }
        let channel_key = &auth.channel_key;
        let encoded = Arc::new(encoded);
        let charge = encoded.len() as u64;
        let matcher = self.build_remote(spec, Arc::clone(&encoded))?;
        let backend = matcher.backend();
        let pool = MatcherPool::new(matcher, spec.workers as usize, tenant_seed(id))?;

        let mut inner = self.lock();
        // Re-check under the final lock (the build ran unlocked): the
        // binding may have appeared or advanced concurrently.
        Self::check_binding(&inner, id, channel_key, auth.nonce)?;
        // Replacing an existing hot database frees its charge first, so
        // a re-upload is not double-counted while both copies exist.
        let replaced_hot_charge = inner
            .tenants
            .get(id)
            .filter(|e| e.hot.is_some())
            .map_or(0, |e| e.charge);
        inner.hot_bytes -= replaced_hot_charge;
        let demoted = match Self::ensure_capacity(&mut inner, &self.cold, charge, id) {
            Ok(demoted) => demoted,
            Err(e) => {
                inner.hot_bytes += replaced_hot_charge;
                inner.sync_hot_bytes();
                return Err(e);
            }
        };
        // Success is now certain: consume the nonce and (on first
        // contact) bind the id to the key.
        inner
            .auth
            .entry(id.to_string())
            .and_modify(|record| record.last_nonce = auth.nonce)
            .or_insert_with(|| AuthRecord {
                channel_key: *channel_key,
                last_nonce: auth.nonce,
            });
        let mut replaced = inner.tenants.remove(id);
        // A replaced *cold* database frees its flash pages: the re-upload
        // supersedes the old master copy.
        if let Some(slot) = replaced.as_mut().and_then(|old| old.cold.take()) {
            inner.cold_bytes -= self.lock_cold().remove(slot);
            inner.sync_cold_bytes();
        }
        // An operator-set pin survives the owner's re-upload; wire
        // admissions themselves never create one.
        let pinned = replaced.as_ref().is_some_and(|old| old.pinned);
        let totals = replaced
            .map(|old| old.totals)
            .unwrap_or_else(|| Arc::new(StatsAccumulator::new()));
        let tenant = Arc::new(Tenant::assemble(
            id,
            backend,
            pool,
            channel_key,
            Arc::clone(&totals),
        ));
        let clock = inner.tick();
        inner.tenants.insert(
            id.to_string(),
            TenantEntry {
                backend,
                channel_key: *channel_key,
                workers: spec.workers as usize,
                pinned,
                generation: clock,
                last_used: clock,
                charge,
                totals,
                spec: Some(spec.clone()),
                encoded: Some(encoded),
                cold: None,
                hot: Some(tenant),
                parked: None,
            },
        );
        inner.hot_bytes += charge;
        inner.sync_hot_bytes();
        Ok(RemoteLoad {
            bytes: charge,
            demoted,
        })
    }

    /// Retires a tenant entirely — hot tier, cold tier, and accounting —
    /// after verifying possession of the channel key. The id's key
    /// binding and nonce high-water mark survive, so the id cannot be
    /// hijacked and old upload nonces stay dead.
    ///
    /// Returns the hot-tier bytes released (0 if the database was cold).
    ///
    /// # Errors
    ///
    /// [`MatchError::UnknownTenant`] if no such tenant exists;
    /// [`MatchError::Unauthorized`] for a bad tag or replayed nonce —
    /// both leave the registry untouched.
    pub fn evict(&self, id: &str, auth: &EvictAuth) -> Result<u64, MatchError> {
        let mut inner = self.lock();
        if !inner.tenants.contains_key(id) {
            return Err(MatchError::UnknownTenant(id.to_string()));
        }
        let Some(record) = inner.auth.get_mut(id) else {
            return Err(MatchError::Internal(
                "registered tenant lost its auth record",
            ));
        };
        let expected = auth_tag(&record.channel_key, OP_EVICT, id, 0, auth.nonce, &[]);
        if !tags_match(&expected, &auth.tag) {
            return Err(MatchError::Unauthorized("evict tag does not verify"));
        }
        if auth.nonce <= record.last_nonce {
            return Err(MatchError::Unauthorized("replayed evict nonce"));
        }
        record.last_nonce = auth.nonce;
        let Some(mut entry) = inner.tenants.remove(id) else {
            return Err(MatchError::Internal("tenant entry vanished under the lock"));
        };
        let freed = if entry.hot.is_some() { entry.charge } else { 0 };
        inner.hot_bytes -= freed;
        inner.sync_hot_bytes();
        // A cold database's flash pages are released too: eviction must
        // return both tiers' accounting to zero.
        if let Some(slot) = entry.cold.take() {
            inner.cold_bytes -= self.lock_cold().remove(slot);
            inner.sync_cold_bytes();
        }
        Ok(freed)
    }

    /// Pins or unpins a tenant: pinned tenants are exempt from
    /// budget-driven demotion to the cold tier.
    ///
    /// # Errors
    ///
    /// [`MatchError::UnknownTenant`] if no such tenant is registered.
    pub fn set_pinned(&self, id: &str, pinned: bool) -> Result<(), MatchError> {
        let mut inner = self.lock();
        let entry = inner
            .tenants
            .get_mut(id)
            .ok_or_else(|| MatchError::UnknownTenant(id.to_string()))?;
        entry.pinned = pinned;
        Ok(())
    }

    /// Whether the tenant's database is hot (a live matcher pool holds
    /// it) rather than demoted to the cold tier.
    ///
    /// # Errors
    ///
    /// [`MatchError::UnknownTenant`] if no such tenant is registered.
    pub fn is_resident(&self, id: &str) -> Result<bool, MatchError> {
        let inner = self.lock();
        inner
            .tenants
            .get(id)
            .map(|e| e.hot.is_some())
            .ok_or_else(|| MatchError::UnknownTenant(id.to_string()))
    }

    /// A tenant database's lifecycle state (tier, accounting charge,
    /// pinning, lifetime query count) without re-materializing it.
    ///
    /// # Errors
    ///
    /// [`MatchError::UnknownTenant`] if no such tenant is registered.
    pub fn info(&self, id: &str) -> Result<DatabaseInfoReply, MatchError> {
        let inner = self.lock();
        let entry = inner
            .tenants
            .get(id)
            .ok_or_else(|| MatchError::UnknownTenant(id.to_string()))?;
        // Where the serving copy physically lives: `ifp` databases are in
        // a simulated SSD's CIPHERMATCH region whether hot or parked, and
        // any demoted database is pages in the cold store — only a hot
        // non-ifp database is actually DRAM-resident.
        let tier = if entry.backend == Backend::Ifp || entry.hot.is_none() {
            "flash"
        } else {
            "dram"
        };
        Ok(DatabaseInfoReply {
            backend: entry.backend.name().to_string(),
            resident: entry.hot.is_some(),
            pinned: entry.pinned,
            tier: tier.to_string(),
            bytes: entry.charge,
            workers: entry.workers as u32,
            queries: entry.totals.snapshot().1,
        })
    }

    /// A tenant's lifetime statistics and query count without
    /// re-materializing it.
    ///
    /// # Errors
    ///
    /// [`MatchError::UnknownTenant`] if no such tenant is registered.
    pub fn totals_of(&self, id: &str) -> Result<(MatchStats, u64), MatchError> {
        let inner = self.lock();
        inner
            .tenants
            .get(id)
            .map(|e| e.totals.snapshot())
            .ok_or_else(|| MatchError::UnknownTenant(id.to_string()))
    }

    /// Looks a tenant up by id, transparently re-materializing a
    /// cold-tier tenant: the serialized master copy is read back out of
    /// the flash-backed cold store (wear-free), the matcher pool rebuilt
    /// from it on the registry's build pool (flash-native `ifp` tenants
    /// skip the rebuild and unpark their pool), other tenants demoted if
    /// the budget requires it, and the read's `bytes_moved` charged to
    /// the tenant at install time. Bumps the tenant's LRU stamp.
    ///
    /// # Errors
    ///
    /// [`MatchError::UnknownTenant`] if no such tenant is registered;
    /// [`MatchError::QuotaExceeded`] when a cold tenant cannot be brought
    /// back within the budget.
    pub fn get(&self, id: &str) -> Result<Arc<Tenant>, MatchError> {
        loop {
            let (spec, slot, parked, workers, channel_key, totals, charge, backend, generation) = {
                let mut inner = self.lock();
                let clock = inner.tick();
                let entry = inner
                    .tenants
                    .get_mut(id)
                    .ok_or_else(|| MatchError::UnknownTenant(id.to_string()))?;
                entry.last_used = clock;
                if let Some(tenant) = &entry.hot {
                    return Ok(Arc::clone(tenant));
                }
                // Feasibility before the expensive rebuild: if the
                // budget minus the undemotable (pinned or in-process)
                // hot bytes cannot hold this database, fail now instead
                // of building a matcher pool only to discard it — a
                // repeated query for an unplaceable cold tenant must not
                // clog the build pool.
                let charge = entry.charge;
                let undemotable: u64 = inner
                    .tenants
                    .iter()
                    .filter(|(tid, e)| {
                        e.hot.is_some()
                            && (e.pinned || e.spec.is_none() || e.encoded.is_none())
                            && tid.as_str() != id
                    })
                    .map(|(_, e)| e.charge)
                    .sum();
                if charge.saturating_add(undemotable) > inner.budget {
                    return Err(MatchError::QuotaExceeded {
                        budget: inner.budget,
                        required: charge,
                    });
                }
                let Some(entry) = inner.tenants.get_mut(id) else {
                    return Err(MatchError::Internal("tenant entry vanished under the lock"));
                };
                let Some(spec) = entry.spec.clone() else {
                    return Err(MatchError::Internal(
                        "cold entry is missing its rebuild spec",
                    ));
                };
                let Some(slot) = entry.cold.clone() else {
                    return Err(MatchError::Internal("cold entry is missing its flash slot"));
                };
                (
                    spec,
                    slot,
                    entry.parked.clone(),
                    entry.workers,
                    entry.channel_key,
                    Arc::clone(&entry.totals),
                    entry.charge,
                    entry.backend,
                    entry.generation,
                )
            };
            // Read the master copy back out of flash, off the registry
            // lock. Non-destructive: the slot stays live until the
            // install commits, so a lost race just retries.
            let read = self.lock_cold().get(&slot)?;
            let (read_wear, read_moved) = (read.flash_wear, read.bytes_moved);
            let bytes = Arc::new(read.bytes);
            let tenant = if let Some(parked) = parked {
                // Flash-native: the parked pool already holds the device;
                // promotion is pure accounting, no host-memory rebuild.
                // Reusing the tenant keeps its nonce counter monotone.
                parked
            } else {
                // Re-materialize off the registry lock, on the shared
                // runtime.
                let matcher = self.build_remote(&spec, Arc::clone(&bytes))?;
                let pool = MatcherPool::new(matcher, workers, tenant_seed(id))?;
                Arc::new(Tenant::assemble(id, backend, pool, &channel_key, totals))
            };

            let mut inner = self.lock();
            match inner.tenants.get(id) {
                None => return Err(MatchError::UnknownTenant(id.to_string())),
                Some(entry) => {
                    // Another thread re-materialized while we built; use
                    // the established copy.
                    if let Some(hot) = &entry.hot {
                        return Ok(Arc::clone(hot));
                    }
                    // A concurrent re-upload replaced the entry (different
                    // database, different charge): the tenant we built is
                    // stale — throw it away and rebuild from current state.
                    if entry.generation != generation {
                        continue;
                    }
                }
            }
            Self::ensure_capacity(&mut inner, &self.cold, charge, id)?;
            let clock = inner.tick();
            let slot_taken;
            {
                let Some(entry) = inner.tenants.get_mut(id) else {
                    return Err(MatchError::Internal("tenant entry vanished under the lock"));
                };
                entry.hot = Some(Arc::clone(&tenant));
                entry.parked = None;
                entry.encoded = Some(bytes);
                slot_taken = entry.cold.take();
                entry.last_used = clock;
                // The promotion's flash cost lands exactly once, at
                // install — a retried race charges nothing.
                entry.totals.charge(&MatchStats {
                    flash_wear: read_wear,
                    bytes_moved: read_moved,
                    ..MatchStats::default()
                });
            }
            inner.hot_bytes += charge;
            inner.metrics.flash_wear.add(read_wear);
            inner.metrics.rematerializations.inc();
            inner.sync_hot_bytes();
            if let Some(slot) = slot_taken {
                inner.cold_bytes -= self.lock_cold().remove(slot);
                inner.sync_cold_bytes();
            }
            return Ok(tenant);
        }
    }

    /// Runs one Match query with tier-aware routing: a hot tenant serves
    /// from its pool; a cold flash-native (`ifp`) tenant serves straight
    /// from its parked device — no re-materialization, no promotion, no
    /// host-memory rebuild (cold is IFP's native tier); any other cold
    /// tenant re-materializes first via [`Self::get`].
    ///
    /// # Errors
    ///
    /// [`MatchError::UnknownTenant`] if no such tenant is registered,
    /// plus whatever [`Tenant::run`] or the re-materialization reports.
    pub fn run_query(&self, id: &str, query: &QueryPayload) -> Result<MatchedReply, MatchError> {
        let servant = {
            let mut inner = self.lock();
            let clock = inner.tick();
            let entry = inner
                .tenants
                .get_mut(id)
                .ok_or_else(|| MatchError::UnknownTenant(id.to_string()))?;
            entry.last_used = clock;
            if let Some(hot) = &entry.hot {
                Some(Arc::clone(hot))
            } else if let Some(parked) = &entry.parked {
                let parked = Arc::clone(parked);
                inner.metrics.cold_hits.inc();
                Some(parked)
            } else {
                None
            }
        };
        match servant {
            Some(tenant) => tenant.run(query),
            None => self.get(id)?.run(query),
        }
    }

    /// Lists the registered tenants (hot and cold), sorted by id.
    pub fn list(&self) -> Vec<TenantInfo> {
        let inner = self.lock();
        let mut infos: Vec<TenantInfo> = inner
            .tenants
            .iter()
            .map(|(id, e)| TenantInfo {
                id: id.clone(),
                backend: e.backend.name().to_string(),
            })
            .collect();
        infos.sort_by(|a, b| a.id.cmp(&b.id));
        infos
    }

    /// Number of registered tenants (hot and cold).
    pub fn len(&self) -> usize {
        self.lock().tenants.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().tenants.is_empty()
    }

    /// Rebuilds a remote tenant's matcher from its spec and serialized
    /// database, as a job on the registry's build pool (the shared
    /// `cm_core::exec` runtime). `ifp` specs build through
    /// [`IfpMatcher::for_spec`] (the backend `MatcherConfig` cannot
    /// construct — it needs an SSD device), which re-creates the flash
    /// array and writes the database into its CIPHERMATCH region.
    fn build_remote(
        &self,
        spec: &TenantSpec,
        encoded: Arc<Vec<u8>>,
    ) -> Result<Box<dyn ErasedMatcher>, MatchError> {
        if Backend::parse(&spec.backend)? == Backend::Ifp {
            let (seed, insecure) = (spec.seed, spec.insecure);
            return self
                .builders
                .submit(move || {
                    let mut matcher = cm_core::erase(IfpMatcher::for_spec(seed, insecure)?, seed);
                    matcher.load_database_wire(&encoded)?;
                    Ok::<_, MatchError>(matcher)
                })
                .wait()?;
        }
        let config = spec.to_config()?;
        self.builders
            .submit(move || {
                let mut matcher = config.build()?;
                matcher.load_database_wire(&encoded)?;
                Ok::<_, MatchError>(matcher)
            })
            .wait()?
    }

    /// Demotes least-recently-used unpinned remote tenants until `needed`
    /// more bytes fit the budget. `admitting` is the id being admitted
    /// (never chosen as a victim).
    ///
    /// Demotion writes each victim's serialized database into the
    /// flash-backed cold store (the new master copy) and *then* drops the
    /// host-RAM copy — the `flash_wear`/`bytes_moved` cost of the write
    /// lands in the victim's own [`StatsAccumulator`]. A flash-native
    /// (`ifp`) victim parks its live pool instead of dropping it, so cold
    /// Match queries keep serving straight from the device.
    ///
    /// # Errors
    ///
    /// [`MatchError::QuotaExceeded`] when the bytes cannot fit even with
    /// every demotable tenant cold, or when the cold store itself is full
    /// (the victim's host copy is restored first). Demotions performed
    /// before the failure stay demoted (they re-materialize on demand).
    fn ensure_capacity(
        inner: &mut Inner,
        cold: &Mutex<ColdStore>,
        needed: u64,
        admitting: &str,
    ) -> Result<Vec<String>, MatchError> {
        let budget = inner.budget;
        if needed > budget {
            return Err(MatchError::QuotaExceeded {
                budget,
                required: needed,
            });
        }
        let mut demoted = Vec::new();
        while inner.hot_bytes.saturating_add(needed) > budget {
            let victim = inner
                .tenants
                .iter()
                .filter(|(id, e)| {
                    e.hot.is_some()
                        && !e.pinned
                        && e.spec.is_some()
                        && e.encoded.is_some()
                        && id.as_str() != admitting
                })
                .min_by_key(|(_, e)| e.last_used)
                .map(|(id, _)| id.clone());
            let Some(victim) = victim else {
                return Err(MatchError::QuotaExceeded {
                    budget,
                    required: needed,
                });
            };
            let victim_charge;
            let write_wear;
            {
                let Some(entry) = inner.tenants.get_mut(&victim) else {
                    return Err(MatchError::Internal(
                        "demotion victim vanished under the lock",
                    ));
                };
                let Some(encoded) = entry.encoded.take() else {
                    return Err(MatchError::Internal(
                        "demotion victim lost its staged bytes under the lock",
                    ));
                };
                // The master copy moves to flash BEFORE the host copy is
                // released; a full cold store fails the admission with the
                // victim left intact. Lock order: `inner` (held by the
                // caller) → `cold`, never the reverse.
                let write = {
                    let mut store = cold
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    match store.put(&encoded) {
                        Ok(write) => write,
                        Err(err) => {
                            entry.encoded = Some(encoded);
                            return Err(err);
                        }
                    }
                };
                // From here the flash pages are the only copy of the
                // serialized database: dropping `encoded` releases the
                // last host-RAM bytes.
                drop(encoded);
                entry.cold = Some(write.slot);
                if entry.backend == Backend::Ifp {
                    // Flash-native: park the live pool so cold Match
                    // queries serve from the device with no rebuild.
                    entry.parked = entry.hot.take();
                } else {
                    // In-flight queries holding the Arc finish on their
                    // clone; the registry just stops handing it out.
                    entry.hot = None;
                }
                entry.totals.charge(&MatchStats {
                    flash_wear: write.flash_wear,
                    bytes_moved: write.bytes_moved,
                    ..MatchStats::default()
                });
                victim_charge = entry.charge;
                write_wear = write.flash_wear;
            }
            inner.hot_bytes -= victim_charge;
            inner.cold_bytes += victim_charge;
            inner.metrics.flash_wear.add(write_wear);
            inner.metrics.demotions.inc();
            inner.sync_hot_bytes();
            inner.sync_cold_bytes();
            demoted.push(victim);
        }
        Ok(demoted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::{Backend, MatcherConfig};
    use cm_ssd::SecureIndexChannel;

    fn plain_matcher() -> Box<dyn ErasedMatcher> {
        MatcherConfig::new(Backend::Plain).build().unwrap()
    }

    #[test]
    fn registry_round_trips_queries_through_the_sealed_channel() {
        let mut registry = TenantRegistry::new();
        let data = BitString::from_ascii("tenant data with a needle inside");
        let key = [0x42u8; 32];
        registry
            .register("alice", plain_matcher(), &key, &data)
            .unwrap();
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.list()[0].id, "alice");

        let tenant = registry.get("alice").unwrap();
        assert_eq!(tenant.workers(), DEFAULT_TENANT_WORKERS);
        let query = QueryPayload::Bits(BitString::from_ascii("needle"));
        let reply = tenant.run(&query).unwrap();
        let opened = SecureIndexChannel::new(&key).open(&reply.sealed_indices, reply.nonce);
        assert_eq!(opened, data.find_all(&BitString::from_ascii("needle")));
        assert_eq!(tenant.totals().1, 1);
        // Nonces are tenant-assigned and never repeat: two identical
        // queries must not share an AES-CTR keystream.
        let again = tenant.run(&query).unwrap();
        assert_ne!(again.nonce, reply.nonce);
        assert_ne!(again.sealed_indices, reply.sealed_indices);
        // Per-shard stats always sum to the reply stats.
        let mut sum = MatchStats::default();
        for s in &reply.shard_stats {
            sum.merge(s);
        }
        assert_eq!(sum, reply.stats);
    }

    #[test]
    fn unknown_and_duplicate_tenants_are_typed_errors() {
        let mut registry = TenantRegistry::new();
        assert_eq!(
            registry.get("ghost").err(),
            Some(MatchError::UnknownTenant("ghost".to_string()))
        );
        let data = BitString::from_ascii("x");
        registry
            .register("dup", plain_matcher(), &[0; 32], &data)
            .unwrap();
        assert!(matches!(
            registry.register("dup", plain_matcher(), &[0; 32], &data),
            Err(MatchError::InvalidConfig(_))
        ));
        assert!(matches!(
            registry.register("", plain_matcher(), &[0; 32], &data),
            Err(MatchError::InvalidConfig(_))
        ));
        assert!(matches!(
            registry.register_with_workers("zero", plain_matcher(), 0, &[0; 32], &data),
            Err(MatchError::InvalidConfig(_))
        ));
    }

    #[test]
    fn wire_queries_to_hosted_tenants_fail_typed() {
        let mut registry = TenantRegistry::new();
        registry
            .register(
                "plain",
                plain_matcher(),
                &[1; 32],
                &BitString::from_ascii("data"),
            )
            .unwrap();
        let tenant = registry.get("plain").unwrap();
        assert_eq!(
            tenant.run(&QueryPayload::CmWire(vec![1, 2, 3])).err(),
            Some(MatchError::WireQueryUnsupported(Backend::Plain))
        );
    }

    /// The regression test for the old tenant stats race: totals used to
    /// come from a reset/read delta on *one* shared matcher, so two
    /// queries interleaving their resets corrupted the lifetime counters.
    /// With per-query stats taken from exclusively checked-out pool
    /// members and accumulated atomically, the totals must equal the sum
    /// of the per-query replies exactly — under real contention.
    #[test]
    fn totals_equal_the_sum_of_per_query_stats_under_contention() {
        const THREADS: usize = 8;
        const QUERIES_PER_THREAD: usize = 3;

        let mut registry = TenantRegistry::new();
        let data = BitString::from_ascii("hammer one tenant from eight threads at once");
        let matcher = MatcherConfig::new(Backend::Ciphermatch)
            .insecure_test()
            .seed(77)
            .build()
            .unwrap();
        registry
            .register_with_workers("hammered", matcher, 4, &[0x77; 32], &data)
            .unwrap();
        let tenant = registry.get("hammered").unwrap();

        let per_query_sum = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let tenant = Arc::clone(&tenant);
                    let data = &data;
                    scope.spawn(move || {
                        let mut sum = MatchStats::default();
                        for q in 0..QUERIES_PER_THREAD {
                            let needle = if (t + q) % 2 == 0 {
                                "tenant"
                            } else {
                                "at once"
                            };
                            let query = QueryPayload::Bits(BitString::from_ascii(needle));
                            let reply = tenant.run(&query).unwrap();
                            assert_eq!(
                                SecureIndexChannel::new(&[0x77; 32])
                                    .open(&reply.sealed_indices, reply.nonce),
                                data.find_all(&BitString::from_ascii(needle))
                            );
                            assert!(reply.stats.hom_adds > 0);
                            sum.merge(&reply.stats);
                        }
                        sum
                    })
                })
                .collect();
            let mut total = MatchStats::default();
            for h in handles {
                total.merge(&h.join().expect("query thread panicked"));
            }
            total
        });

        let (totals, queries) = tenant.totals();
        assert_eq!(queries, (THREADS * QUERIES_PER_THREAD) as u64);
        assert_eq!(
            totals, per_query_sum,
            "lifetime totals must equal the sum of per-query stats"
        );
    }
}
