//! CM-IFP behind the unified matcher API: the paper's in-flash engine as
//! a first-class backend.
//!
//! [`IfpMatcher`] wraps [`cm_ssd::CmIfpServer`] in a [`SecureMatcher`], so
//! the in-flash pipeline is selectable wherever the other five backends
//! are — erased registries, sessions, and the `cm_server` wire protocol.
//! Registering it from this crate (rather than `cm_core`) keeps the
//! dependency arrow pointing the right way: the algorithm crate knows the
//! [`Backend::Ifp`] *name*, the serving crate owns the SSD device.
//!
//! The matcher's [`MatchStats`] gain meaning here: `hom_adds` counts the
//! additions executed *inside the flash array* (one per variant ×
//! polynomial, exactly like CM-SW), and `flash_wear` counts program/erase
//! cycles — which the latch-only `bop_add` µ-program keeps at **zero**,
//! the property the paper's endurance argument rests on.

use std::sync::{Arc, Mutex};

use cm_bfv::{BfvContext, BfvParams, Decryptor, Encryptor, KeyGenerator, PublicKey, SecretKey};
use cm_core::{
    Backend, BitString, CiphermatchEngine, EncryptedDatabase, EncryptedQuery, MatchError,
    MatchStats, SecureMatcher,
};
use cm_flash::FlashGeometry;
use cm_ssd::{CmIfpServer, Ssd, TransposeMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::kit::QueryKit;

/// An encrypted database resident in a simulated SSD's CIPHERMATCH
/// region. Clones share the device (the flash array holds one copy of the
/// ciphertexts; `bop_add` is read-only latch compute).
#[derive(Clone)]
pub struct IfpDatabase {
    server: Arc<Mutex<CmIfpServer>>,
    total_bits: usize,
    poly_count: usize,
    bytes: u64,
}

impl std::fmt::Debug for IfpDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IfpDatabase")
            .field("total_bits", &self.total_bits)
            .field("polys", &self.poly_count)
            .finish()
    }
}

/// The in-flash engine as a [`SecureMatcher`].
#[derive(Clone)]
pub struct IfpMatcher {
    ctx: BfvContext,
    sk: SecretKey,
    pk: PublicKey,
    q_bits: u32,
    geometry: FlashGeometry,
    mode: TransposeMode,
    stats: MatchStats,
}

impl std::fmt::Debug for IfpMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IfpMatcher")
            .field("params", &self.ctx.params().name)
            .field("mode", &self.mode)
            .finish()
    }
}

impl IfpMatcher {
    /// Generates keys for an in-flash matcher over `geometry`.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::InvalidConfig`] unless `params` uses the
    /// power-of-two modulus `q = 2^32` (wrapping 32-bit addition must
    /// *be* `Hom-Add` for the in-flash adder; use
    /// [`BfvParams::ciphermatch_ifp_1024`] or
    /// [`BfvParams::insecure_test_pow2`]) and a power-of-two `t`.
    pub fn new<R: Rng + ?Sized>(
        params: BfvParams,
        geometry: FlashGeometry,
        mode: TransposeMode,
        rng: &mut R,
    ) -> Result<Self, MatchError> {
        if params.q != 1 << 32 {
            return Err(MatchError::InvalidConfig(
                "CM-IFP needs q = 2^32 (BfvParams::ciphermatch_ifp_1024)",
            ));
        }
        if !params.t.is_power_of_two() {
            return Err(MatchError::InvalidConfig(
                "dense packing requires a power-of-two plaintext modulus",
            ));
        }
        let ctx = BfvContext::new(params);
        let kg = KeyGenerator::new(&ctx, rng);
        let sk = kg.secret_key();
        let pk = kg.public_key(rng);
        let q_bits = 64 - ctx.params().q.leading_zeros();
        Ok(Self {
            ctx,
            sk,
            pk,
            q_bits,
            geometry,
            mode,
            stats: MatchStats::default(),
        })
    }

    /// The matcher a remote `TenantSpec` with backend `"ifp"` describes:
    /// deterministic keys from the spec's seed, the test or paper
    /// parameter set by the `insecure` flag, software transposition.
    /// Client and server derive identical matchers from identical specs,
    /// which is what makes uploaded IFP databases decryptable.
    pub fn for_spec(seed: u64, insecure: bool) -> Result<Self, MatchError> {
        let (params, geometry) = if insecure {
            (BfvParams::insecure_test_pow2(), FlashGeometry::tiny_test())
        } else {
            (
                BfvParams::ciphermatch_ifp_1024(),
                FlashGeometry::paper_default(),
            )
        };
        let mut rng = StdRng::seed_from_u64(seed);
        Self::new(params, geometry, TransposeMode::Software, &mut rng)
    }

    /// The public query-encryption material a remote client needs to ship
    /// wire queries to this matcher.
    pub fn query_kit(&self) -> QueryKit {
        QueryKit::new(self.ctx.clone(), self.pk.clone())
    }

    fn engine(&self) -> CiphermatchEngine {
        CiphermatchEngine::new(&self.ctx)
    }
}

impl SecureMatcher for IfpMatcher {
    type Database = IfpDatabase;
    type Query = EncryptedQuery;
    type Stats = MatchStats;

    fn backend(&self) -> Backend {
        Backend::Ifp
    }

    fn encrypt_database<R: Rng + ?Sized>(
        &mut self,
        data: &BitString,
        rng: &mut R,
    ) -> Result<Self::Database, MatchError> {
        if data.is_empty() {
            return Err(MatchError::InvalidConfig("cannot serve an empty database"));
        }
        let enc = Encryptor::new(&self.ctx, self.pk.clone());
        let db = self.engine().encrypt_database(&enc, data, rng);
        let bytes = db.byte_size(self.q_bits) as u64;
        let server = CmIfpServer::new(&self.ctx, self.geometry.clone(), self.mode, &db);
        Ok(IfpDatabase {
            server: Arc::new(Mutex::new(server)),
            total_bits: db.total_bits(),
            poly_count: db.poly_count(),
            bytes,
        })
    }

    fn prepare_query<R: Rng + ?Sized>(
        &mut self,
        query: &BitString,
        rng: &mut R,
    ) -> Result<Self::Query, MatchError> {
        if query.is_empty() {
            return Err(MatchError::EmptyQuery);
        }
        let enc = Encryptor::new(&self.ctx, self.pk.clone());
        Ok(self.engine().prepare_query(&enc, query, rng))
    }

    fn decode_query(&self, encoded: &[u8]) -> Result<Self::Query, MatchError> {
        Ok(EncryptedQuery::decode_validated(
            encoded,
            self.ctx.params().n,
            self.engine().packing().seg_bits(),
            self.ctx.params().q,
        )?)
    }

    fn find_all<R: Rng + ?Sized>(
        &mut self,
        db: &Self::Database,
        query: &Self::Query,
        _rng: &mut R,
    ) -> Result<Vec<usize>, MatchError> {
        self.stats.bytes_moved += query.byte_size(self.q_bits) as u64;
        let (result, reports) = {
            let mut server = db.server.lock().map_err(|_| MatchError::WorkerPanicked)?;
            server.search(query)
        };
        // In-flash additions are Hom-Adds: one per variant × polynomial,
        // the same count CM-SW's software sweep reports.
        self.stats.hom_adds += (reports.len() * db.poly_count) as u64;
        self.stats.flash_wear += reports.iter().map(|r| r.ledger.wear()).sum::<u64>();
        let dec = Decryptor::new(&self.ctx, self.sk.clone());
        Ok(self.engine().generate_indices(&dec, &result))
    }

    fn encode_database(&self, db: &Self::Database) -> Result<Vec<u8>, MatchError> {
        // The device is the master copy: export reads every group back out
        // of the flash array (wear-free) rather than returning a host-side
        // cache that does not exist.
        let mut server = db.server.lock().map_err(|_| MatchError::WorkerPanicked)?;
        Ok(server.export_database().encode(self.q_bits))
    }

    fn decode_database(&self, encoded: &[u8]) -> Result<Self::Database, MatchError> {
        let db = EncryptedDatabase::decode(encoded)?;
        db.validate(
            self.ctx.params().n,
            self.ctx.params().q,
            self.engine().packing().bits_per_poly(),
        )?;
        if db.total_bits() == 0 {
            return Err(MatchError::InvalidConfig("cannot serve an empty database"));
        }
        let needed = CmIfpServer::required_words(&db, self.ctx.params().n);
        if needed > Ssd::cm_capacity_words(&self.geometry) {
            return Err(MatchError::InvalidConfig(
                "database exceeds the SSD's CIPHERMATCH region",
            ));
        }
        let bytes = db.byte_size(self.q_bits) as u64;
        let server = CmIfpServer::new(&self.ctx, self.geometry.clone(), self.mode, &db);
        Ok(IfpDatabase {
            server: Arc::new(Mutex::new(server)),
            total_bits: db.total_bits(),
            poly_count: db.poly_count(),
            bytes,
        })
    }

    fn database_bytes(&self, db: &Self::Database) -> u64 {
        db.bytes
    }

    fn stats(&self) -> MatchStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = MatchStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_core::erase;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn new_matcher(seed: u64) -> IfpMatcher {
        let mut rng = StdRng::seed_from_u64(seed);
        IfpMatcher::new(
            BfvParams::insecure_test_pow2(),
            FlashGeometry::tiny_test(),
            TransposeMode::Software,
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn non_pow2_modulus_is_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            IfpMatcher::new(
                BfvParams::insecure_test_add(),
                FlashGeometry::tiny_test(),
                TransposeMode::Software,
                &mut rng,
            ),
            Err(MatchError::InvalidConfig(_))
        ));
    }

    #[test]
    fn ifp_matcher_searches_with_zero_wear_behind_the_erased_api() {
        let mut erased = erase(new_matcher(5), 5);
        assert_eq!(erased.backend(), Backend::Ifp);
        let data = BitString::from_ascii("the flash array adds without wearing out");
        erased.load_database(&data).unwrap();
        let pattern = BitString::from_ascii("without");
        assert_eq!(erased.find_all(&pattern).unwrap(), data.find_all(&pattern));
        let stats = erased.stats();
        assert!(stats.hom_adds > 0, "in-flash additions are counted");
        assert_eq!(stats.flash_wear, 0, "bop_add must not program or erase");
        assert_eq!(stats.hom_muls + stats.rotations + stats.bootstraps, 0);
    }

    #[test]
    fn ifp_accepts_wire_queries_from_its_kit() {
        let matcher = new_matcher(6);
        let kit = matcher.query_kit();
        let mut erased = erase(matcher, 6);
        let data = BitString::from_ascii("wire query into the flash pipeline");
        erased.load_database(&data).unwrap();
        let mut rng = StdRng::seed_from_u64(60);
        let pattern = BitString::from_ascii("flash");
        let encoded = kit.encode_query(&pattern, &mut rng).unwrap();
        assert_eq!(
            erased.find_all_wire(&encoded).unwrap(),
            data.find_all(&pattern)
        );
        assert!(matches!(
            erased.find_all_wire(&encoded[..7]).unwrap_err(),
            MatchError::Decode(_)
        ));
    }

    #[test]
    fn database_survives_the_wire_roundtrip_through_flash() {
        // export_database reads flash, decode_database programs a fresh
        // device — an upload from a client-side matcher with the same spec
        // must land searchable on the server side.
        let mut client = erase(IfpMatcher::for_spec(42, true).unwrap(), 42);
        let data = BitString::from_ascii("the master copy lives in the array");
        client.load_database(&data).unwrap();
        let encoded = client.export_database().unwrap();

        let mut server = erase(IfpMatcher::for_spec(42, true).unwrap(), 43);
        server.load_database_wire(&encoded).unwrap();
        let pattern = BitString::from_ascii("master");
        assert_eq!(server.find_all(&pattern).unwrap(), data.find_all(&pattern));
        // Re-export is bit-identical: the read-back path is lossless.
        assert_eq!(server.export_database().unwrap(), encoded);
    }

    #[test]
    fn decode_rejects_garbage_and_oversized_databases() {
        let matcher = IfpMatcher::for_spec(9, true).unwrap();
        assert!(matcher.decode_database(&[0u8; 7]).is_err());
        // A database larger than tiny_test's CIPHERMATCH region must be
        // refused before the device model panics: replicate a legitimate
        // ciphertext until the stream no longer fits.
        let n = matcher.ctx.params().n;
        let capacity = Ssd::cm_capacity_words(&FlashGeometry::tiny_test());
        let polys = capacity / (2 * n) + 1;
        let mut seeded = erase(IfpMatcher::for_spec(9, true).unwrap(), 9);
        seeded
            .load_database(&BitString::from_ascii("seed"))
            .unwrap();
        let small = EncryptedDatabase::decode(&seeded.export_database().unwrap()).unwrap();
        let cts = vec![small.ciphertexts()[0].clone(); polys];
        let bits_per_poly = matcher.engine().packing().bits_per_poly();
        let big = EncryptedDatabase::from_ciphertexts(cts, polys * bits_per_poly);
        let encoded = big.encode(matcher.q_bits);
        assert!(matches!(
            matcher.decode_database(&encoded).unwrap_err(),
            MatchError::InvalidConfig(_)
        ));
    }

    #[test]
    fn erased_clones_share_the_ssd_device() {
        let mut erased = erase(new_matcher(7), 7);
        erased
            .load_database(&BitString::from_ascii("one drive, many workers"))
            .unwrap();
        let clone = erased.boxed_clone();
        assert_eq!(erased.database_fingerprint(), clone.database_fingerprint());
        assert!(erased.database_fingerprint().is_some());
    }
}
