//! The length-prefixed binary wire protocol.
//!
//! Framing: every message travels as `magic("CMS1") | len:u32-le |
//! payload`, with `len` capped at [`MAX_FRAME_BYTES`] so a lying header
//! can never drive an allocation. Payloads are tag-discriminated
//! [`Request`]/[`Response`] messages encoded with fixed-width
//! little-endian integers; encrypted queries ride in the `cm-bfv`-backed
//! [`cm_core::EncryptedQuery::encode`] format and match results return as
//! AES-sealed index lists ([`cm_ssd::SecureIndexChannel`]), so neither
//! queries nor results cross the socket in the clear for
//! CIPHERMATCH-family tenants.
//!
//! Every decode path returns a typed [`MatchError`] — truncated,
//! oversized, or garbage bytes must never panic the peer (extending the
//! `EncryptedDatabase::decode` hardening to the whole wire surface; the
//! crate's proptests fuzz exactly this contract).

use std::io::{Read, Write};
use std::time::Duration;

use cm_core::{Backend, BitString, MatchError, MatchStats};
use cm_telemetry::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};

/// Frame magic: "CMS1".
const FRAME_MAGIC: [u8; 4] = *b"CMS1";

/// Hard cap on one frame's payload (64 MiB) — large enough for an
/// encrypted query at paper parameters, small enough that a hostile
/// length prefix cannot balloon memory.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Longest tenant id the protocol accepts.
pub const MAX_TENANT_ID: usize = 255;

/// Hard cap on one uploaded database's declared size (1 GiB). A `Begin`
/// frame declaring more is rejected at decode time — before any buffer
/// for the upload exists.
pub const MAX_DATABASE_BYTES: u64 = 1 << 30;

/// Hard cap on the number of chunks one upload may declare.
pub const MAX_UPLOAD_CHUNKS: u32 = 1 << 16;

/// Widest matcher pool a remote tenant may request.
pub const MAX_TENANT_WORKERS: u32 = 64;

/// A client→server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness + capability probe; answered by [`Response::Pong`] with
    /// the full [`Backend::WIRE`] listing.
    Ping,
    /// Lists the registered tenants; answered by [`Response::Tenants`].
    ListTenants,
    /// Runs one match query for `tenant`; answered by
    /// [`Response::Matched`]. The AES-CTR nonce sealing the index list is
    /// *server-assigned* (monotonic per tenant) and returned in the
    /// response — client-chosen nonces would let two connections reuse
    /// one keystream.
    Match {
        /// Target tenant id.
        tenant: String,
        /// The query itself.
        query: QueryPayload,
    },
    /// Reads a tenant's lifetime statistics; answered by
    /// [`Response::TenantStats`].
    TenantStats {
        /// Target tenant id.
        tenant: String,
    },
    /// One step of a chunked encrypted-database upload (the remote
    /// lifecycle's placement path). The three phases travel on one
    /// connection: `Begin` (authorization + declared shape), `Chunk`
    /// (payload, strictly in order), `Commit` (registers the tenant).
    /// `Begin`/`Chunk` are answered by [`Response::UploadProgress`],
    /// `Commit` by [`Response::DatabaseLoaded`].
    LoadDatabase {
        /// Target tenant id.
        tenant: String,
        /// Which upload step this frame carries.
        phase: UploadPhase,
    },
    /// Retires a tenant's database from the serving host entirely (hot
    /// tier, cold tier, and accounting); answered by
    /// [`Response::Evicted`]. Authorized by proof-of-possession of the
    /// tenant's channel key — a non-owner cannot evict.
    EvictDatabase {
        /// Target tenant id.
        tenant: String,
        /// The owner's proof of possession.
        auth: EvictAuth,
    },
    /// Reads a tenant database's lifecycle state (tier, accounting
    /// charge, pinning); answered by [`Response::DatabaseInfo`].
    DatabaseInfo {
        /// Target tenant id.
        tenant: String,
    },
    /// Reads the server's full telemetry snapshot — every counter,
    /// gauge, and histogram the process has registered, from the
    /// reactor event loop down to the shard executor; answered by
    /// [`Response::Metrics`].
    Metrics,
}

/// One step of a chunked [`Request::LoadDatabase`] upload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UploadPhase {
    /// Opens an upload: authorization, the matcher description the server
    /// will rebuild the tenant from, and the declared payload shape.
    /// A `Begin` abandons any upload already in progress on the
    /// connection.
    Begin {
        /// Proof of possession of the tenant's channel key.
        auth: UploadAuth,
        /// How to rebuild the tenant's matcher (backend, seed, knobs).
        spec: TenantSpec,
        /// Total serialized-database bytes the chunks will carry.
        total_bytes: u64,
        /// How many chunks will follow, in order, before `Commit`.
        chunk_count: u32,
    },
    /// One chunk of the serialized database. Chunks must arrive strictly
    /// in index order; a duplicate or out-of-order index aborts the
    /// upload with a typed [`MatchError::UploadIncomplete`].
    Chunk {
        /// Zero-based chunk index.
        index: u32,
        /// The chunk's bytes.
        data: Vec<u8>,
    },
    /// Closes the upload: every declared chunk must have arrived and the
    /// received bytes must equal the declared total, or the upload fails
    /// with [`MatchError::UploadIncomplete`] and nothing is registered.
    Commit,
}

/// Authorization for [`UploadPhase::Begin`].
///
/// The channel key plays the paper's role of the offline-provisioned
/// tenant credential: the first *completed* upload (at `Commit`) binds
/// the tenant id to this key (standing in for the paper's offline
/// step), and every later lifecycle operation on that id must present
/// the same key — the registry keeps the binding even after the
/// database is evicted, so an id can never be hijacked by
/// re-registering it. `nonce` must strictly increase per tenant id; a
/// replayed nonce is rejected with [`MatchError::Unauthorized`] at
/// `Commit` time. `tag` is an AES-CBC-MAC under the channel key over
/// the operation, tenant id, nonce, declared size, the full
/// [`TenantSpec`], and the payload digest — none of the authorized
/// values (spec knobs included) can be spliced, and the committed bytes
/// must hash to `content` or the commit is rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UploadAuth {
    /// Strictly increasing per-tenant upload nonce.
    pub nonce: u64,
    /// The tenant's AES-256 channel key (bound at the first committed
    /// upload, verified afterwards).
    pub channel_key: [u8; 32],
    /// [`content_digest`] of the full serialized database the chunks
    /// will carry; the server recomputes it over the received bytes at
    /// `Commit` and rejects a mismatch as [`MatchError::Unauthorized`].
    pub content: [u8; 16],
    /// [`upload_tag`] over (tenant, nonce, total_bytes, spec,
    /// `content`).
    pub tag: [u8; 16],
}

/// Authorization for [`Request::EvictDatabase`]: possession of the
/// channel key is proven by the MAC alone — the key itself never
/// travels in an evict frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictAuth {
    /// Strictly increasing per-tenant nonce (shared counter with upload
    /// nonces).
    pub nonce: u64,
    /// [`auth_tag`] over ([`OP_EVICT`], tenant, 0, nonce, no context).
    pub tag: [u8; 16],
}

/// Operation byte for upload authorization tags.
pub const OP_UPLOAD: u8 = 1;

/// Operation byte for evict authorization tags.
pub const OP_EVICT: u8 = 2;

/// Operation byte for upload payload digests ([`content_digest`]).
pub const OP_CONTENT: u8 = 3;

/// The lifecycle MAC: an AES-256 CBC-MAC under the tenant's channel key
/// over the length-prefixed message `op || tenant || extra || nonce ||
/// context`. Only the key holder can produce a valid tag, domain
/// separation comes from `op`, the leading total-length block prevents
/// extension splices, and the nonce makes every tag single-use once the
/// registry's per-tenant high-water mark passes it. Compare tags with
/// [`tags_match`], never `==`.
pub fn auth_tag(
    channel_key: &[u8; 32],
    op: u8,
    tenant: &str,
    extra: u64,
    nonce: u64,
    context: &[u8],
) -> [u8; 16] {
    let aes = cm_aes::Aes::new_256(channel_key);
    // Length-prefixed message: no two distinct (op, tenant, extra,
    // nonce, context) tuples serialize to the same byte stream.
    let mut message = Vec::with_capacity(64 + tenant.len() + context.len());
    message.extend_from_slice(&(tenant.len() as u64).to_le_bytes());
    message.extend_from_slice(&(context.len() as u64).to_le_bytes());
    message.push(op);
    message.extend_from_slice(tenant.as_bytes());
    message.extend_from_slice(&extra.to_le_bytes());
    message.extend_from_slice(&nonce.to_le_bytes());
    message.extend_from_slice(context);
    let mut state = [0u8; 16];
    for block in message.chunks(16) {
        for (s, b) in state.iter_mut().zip(block) {
            *s ^= b;
        }
        state = aes.encrypt_block(&state);
    }
    state
}

/// The keyed digest of an upload's full serialized database, bound into
/// the `Begin` tag so the committed bytes cannot be substituted
/// mid-upload.
pub fn content_digest(channel_key: &[u8; 32], data: &[u8]) -> [u8; 16] {
    auth_tag(channel_key, OP_CONTENT, "", data.len() as u64, 0, data)
}

/// The `Begin` authorization tag: binds the tenant id, nonce, declared
/// size, every [`TenantSpec`] knob, and the payload digest under one
/// MAC.
pub fn upload_tag(
    channel_key: &[u8; 32],
    tenant: &str,
    nonce: u64,
    total_bytes: u64,
    spec: &TenantSpec,
    content: &[u8; 16],
) -> [u8; 16] {
    let mut context = Vec::new();
    put_spec(&mut context, spec);
    context.extend_from_slice(content);
    auth_tag(channel_key, OP_UPLOAD, tenant, total_bytes, nonce, &context)
}

pub use crate::secrecy::{keys_match, tags_match};

/// The wire-tag registry: every discriminant byte the codecs emit or
/// accept, by family (`REQ_` request tags, `RESP_` response tags,
/// `QUERY_` query-payload sub-tags, `PHASE_` upload-phase sub-tags,
/// `ERR_` error tags, `DECODE_` [`cm_bfv::DecodeError`] sub-codes).
///
/// The codecs below use these constants exclusively — a raw integer tag
/// in an encoder or decoder fails the workspace lint (`cargo run -p
/// cm_analyze`, rule `wire-tags`), which also checks each family for
/// duplicate values and each constant for use on both the encode and
/// decode side.
pub mod tags {
    /// [`super::Request::Ping`].
    pub const REQ_PING: u8 = 0;
    /// [`super::Request::ListTenants`].
    pub const REQ_LIST_TENANTS: u8 = 1;
    /// [`super::Request::Match`].
    pub const REQ_MATCH: u8 = 2;
    /// [`super::Request::TenantStats`].
    pub const REQ_TENANT_STATS: u8 = 3;
    /// [`super::Request::LoadDatabase`].
    pub const REQ_LOAD_DATABASE: u8 = 4;
    /// [`super::Request::EvictDatabase`].
    pub const REQ_EVICT_DATABASE: u8 = 5;
    /// [`super::Request::DatabaseInfo`].
    pub const REQ_DATABASE_INFO: u8 = 6;
    /// [`super::Request::Metrics`].
    pub const REQ_METRICS: u8 = 7;

    /// [`super::Response::Pong`].
    pub const RESP_PONG: u8 = 0;
    /// [`super::Response::Tenants`].
    pub const RESP_TENANTS: u8 = 1;
    /// [`super::Response::Matched`].
    pub const RESP_MATCHED: u8 = 2;
    /// [`super::Response::TenantStats`].
    pub const RESP_TENANT_STATS: u8 = 3;
    /// [`super::Response::Error`].
    pub const RESP_ERROR: u8 = 4;
    /// [`super::Response::UploadProgress`].
    pub const RESP_UPLOAD_PROGRESS: u8 = 5;
    /// [`super::Response::DatabaseLoaded`].
    pub const RESP_DATABASE_LOADED: u8 = 6;
    /// [`super::Response::Evicted`].
    pub const RESP_EVICTED: u8 = 7;
    /// [`super::Response::DatabaseInfo`].
    pub const RESP_DATABASE_INFO: u8 = 8;
    /// [`super::Response::Metrics`].
    pub const RESP_METRICS: u8 = 9;

    /// [`super::QueryPayload::Bits`].
    pub const QUERY_BITS: u8 = 0;
    /// [`super::QueryPayload::CmWire`].
    pub const QUERY_CM_WIRE: u8 = 1;

    /// [`super::UploadPhase::Begin`].
    pub const PHASE_BEGIN: u8 = 0;
    /// [`super::UploadPhase::Chunk`].
    pub const PHASE_CHUNK: u8 = 1;
    /// [`super::UploadPhase::Commit`].
    pub const PHASE_COMMIT: u8 = 2;

    /// [`cm_core::MatchError::NoIndexGenerator`].
    pub const ERR_NO_INDEX_GENERATOR: u8 = 0;
    /// [`cm_core::MatchError::NoDatabase`].
    pub const ERR_NO_DATABASE: u8 = 1;
    /// [`cm_core::MatchError::EmptyQuery`].
    pub const ERR_EMPTY_QUERY: u8 = 2;
    /// [`cm_core::MatchError::QueryTooLong`].
    pub const ERR_QUERY_TOO_LONG: u8 = 3;
    /// [`cm_core::MatchError::WindowMismatch`].
    pub const ERR_WINDOW_MISMATCH: u8 = 4;
    /// [`cm_core::MatchError::WorkerPanicked`].
    pub const ERR_WORKER_PANICKED: u8 = 5;
    /// [`cm_core::MatchError::InvalidConfig`].
    pub const ERR_INVALID_CONFIG: u8 = 6;
    /// [`cm_core::MatchError::Decode`] (sub-code in `a`, one of the
    /// `DECODE_` constants).
    pub const ERR_DECODE: u8 = 7;
    /// [`cm_core::MatchError::WireQueryUnsupported`].
    pub const ERR_WIRE_QUERY_UNSUPPORTED: u8 = 8;
    /// [`cm_core::MatchError::UnknownBackend`].
    pub const ERR_UNKNOWN_BACKEND: u8 = 9;
    /// [`cm_core::MatchError::UnknownTenant`].
    pub const ERR_UNKNOWN_TENANT: u8 = 10;
    /// [`cm_core::MatchError::Frame`].
    pub const ERR_FRAME: u8 = 11;
    /// [`cm_core::MatchError::Transport`].
    pub const ERR_TRANSPORT: u8 = 12;
    /// [`cm_core::MatchError::ServerBusy`].
    pub const ERR_SERVER_BUSY: u8 = 13;
    /// [`cm_core::MatchError::Unauthorized`].
    pub const ERR_UNAUTHORIZED: u8 = 14;
    /// [`cm_core::MatchError::QuotaExceeded`].
    pub const ERR_QUOTA_EXCEEDED: u8 = 15;
    /// [`cm_core::MatchError::UploadIncomplete`].
    pub const ERR_UPLOAD_INCOMPLETE: u8 = 16;
    /// [`cm_core::MatchError::WireDatabaseUnsupported`].
    pub const ERR_WIRE_DATABASE_UNSUPPORTED: u8 = 17;
    /// [`cm_core::MatchError::ConnectionClosed`].
    pub const ERR_CONNECTION_CLOSED: u8 = 18;
    /// [`cm_core::MatchError::Internal`].
    pub const ERR_INTERNAL: u8 = 19;

    /// [`cm_bfv::DecodeError::Truncated`].
    pub const DECODE_TRUNCATED: u8 = 0;
    /// [`cm_bfv::DecodeError::BadMagic`].
    pub const DECODE_BAD_MAGIC: u8 = 1;
    /// [`cm_bfv::DecodeError::BadHeader`].
    pub const DECODE_BAD_HEADER: u8 = 2;
    /// [`cm_bfv::DecodeError::CoefficientOverflow`].
    pub const DECODE_COEFFICIENT_OVERFLOW: u8 = 3;
}

/// How a serving host rebuilds a remote tenant's matcher: the
/// wire-transportable subset of [`cm_core::MatcherConfig`]. Key
/// generation is deterministic in `seed`, so a client that built its
/// matcher from the same description holds the same key material — the
/// uploaded ciphertexts decrypt server-side without the secret key ever
/// crossing the wire as bytes of its own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Backend name ([`Backend::name`]).
    pub backend: String,
    /// Key-generation / query-encryption seed.
    pub seed: u64,
    /// Query window in bits (window-bound backends).
    pub window: u32,
    /// Per-search worker threads.
    pub threads: u32,
    /// Whether the insecure test parameter sets are selected.
    pub insecure: bool,
    /// Matcher-pool size K (how many of the tenant's queries run
    /// concurrently); at most [`MAX_TENANT_WORKERS`].
    pub workers: u32,
}

impl TenantSpec {
    /// Describes `config` with a pool of `workers`.
    ///
    /// Pinning (exemption from budget-driven demotion) is an
    /// operator-level resource decision and deliberately *not* part of
    /// the wire spec — a remote tenant must not be able to monopolize
    /// the hot tier; operators pin server-side with
    /// `TenantRegistry::set_pinned`.
    pub fn from_config(config: &cm_core::MatcherConfig, workers: u32) -> Self {
        Self {
            backend: config.backend().name().to_string(),
            seed: config.seed_value(),
            window: config.window_bits() as u32,
            threads: config.thread_count() as u32,
            insecure: config.is_insecure_test(),
            workers,
        }
    }

    /// Rebuilds the [`cm_core::MatcherConfig`] this spec describes.
    ///
    /// # Errors
    ///
    /// [`MatchError::UnknownBackend`] for an unparseable backend name.
    pub fn to_config(&self) -> Result<cm_core::MatcherConfig, MatchError> {
        let mut config = cm_core::MatcherConfig::new(Backend::parse(&self.backend)?)
            .seed(self.seed)
            .window(self.window as usize)
            .threads(self.threads as usize);
        if self.insecure {
            config = config.insecure_test();
        }
        Ok(config)
    }
}

/// A tenant database's lifecycle state, as reported by
/// [`Request::DatabaseInfo`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatabaseInfoReply {
    /// The backend serving this tenant (a [`Backend::name`] string).
    pub backend: String,
    /// Whether the database is hot (a live matcher pool holds it) or
    /// demoted to the cold tier awaiting re-materialization.
    pub resident: bool,
    /// Whether the tenant is exempt from budget-driven demotion.
    pub pinned: bool,
    /// The registry's accounting charge for this database in bytes.
    pub bytes: u64,
    /// Matcher-pool size K when hot.
    pub workers: u32,
    /// Queries served over the tenant's lifetime (survives demotion).
    pub queries: u64,
    /// Where the master copy of the database lives: `"flash"` for
    /// flash-native (`ifp`) tenants and for any demoted tenant (the cold
    /// store's simulated SSD holds the only copy), `"dram"` for a hot
    /// tenant on every other backend.
    pub tier: String,
}

/// How a query travels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryPayload {
    /// Plaintext query bits, for hosted-key tenants: the server-side
    /// matcher owns the keys and encrypts the query itself (every
    /// [`Backend`] supports this mode).
    Bits(BitString),
    /// An already-encrypted query in the CIPHERMATCH wire format
    /// ([`cm_core::EncryptedQuery::encode`]), for client-key tenants:
    /// the server never sees the pattern (`ciphermatch` and `ifp`).
    CmWire(Vec<u8>),
}

/// Identity and backend of a registered tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantInfo {
    /// The tenant id used in [`Request::Match`].
    pub id: String,
    /// The backend serving this tenant (a [`Backend::name`] string).
    pub backend: String,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness answer: every backend this server build can serve.
    Pong {
        /// [`Backend::WIRE`] names.
        backends: Vec<String>,
    },
    /// The registered tenants.
    Tenants(Vec<TenantInfo>),
    /// One query's result.
    Matched {
        /// The server-assigned AES-CTR nonce the index list was sealed
        /// with — unique per tenant, so no two replies under one channel
        /// key ever share a keystream.
        nonce: u64,
        /// The AES-sealed index list
        /// ([`cm_ssd::SecureIndexChannel::seal`] under `nonce`).
        sealed_indices: Vec<u8>,
        /// Statistics this query added to the tenant's matcher.
        stats: MatchStats,
        /// Per-shard breakdown; field-wise sums to `stats` for sharded
        /// tenants, a single entry equal to `stats` otherwise.
        shard_stats: Vec<MatchStats>,
        /// Modeled hardware latency of sealing the index list.
        seal_latency: Duration,
    },
    /// A tenant's lifetime statistics.
    TenantStats {
        /// Field-wise totals since registration.
        stats: MatchStats,
        /// Queries served.
        queries: u64,
    },
    /// Acknowledges an upload `Begin` or `Chunk` step.
    UploadProgress {
        /// Bytes received so far in this upload.
        received: u64,
        /// The declared total from `Begin`.
        expected: u64,
    },
    /// An upload `Commit` succeeded: the tenant is registered and hot.
    DatabaseLoaded {
        /// The registry's accounting charge for the database in bytes.
        bytes: u64,
        /// Tenants the admission demoted to the cold tier (LRU order).
        demoted: Vec<String>,
    },
    /// An [`Request::EvictDatabase`] succeeded.
    Evicted {
        /// Hot-tier bytes the eviction released from the accounting (0
        /// if the database was already cold).
        freed_bytes: u64,
    },
    /// A tenant database's lifecycle state.
    DatabaseInfo(DatabaseInfoReply),
    /// The server's telemetry snapshot ([`Request::Metrics`]): every
    /// registered counter, gauge, and histogram at one instant, sorted
    /// by name then labels. Histogram buckets travel sparse (index,
    /// count), so an idle server's snapshot stays small.
    Metrics(cm_telemetry::MetricsSnapshot),
    /// The request failed; `error` is the server-side [`MatchError`]
    /// (static-string payloads survive as `"remote"`).
    Error(MatchError),
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

fn io_err(what: &str, e: std::io::Error) -> MatchError {
    MatchError::Transport(format!("{what}: {e}"))
}

/// Writes one frame.
///
/// # Errors
///
/// [`MatchError::Frame`] if the payload exceeds [`MAX_FRAME_BYTES`];
/// [`MatchError::Transport`] on socket failure.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), MatchError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(MatchError::Frame("payload exceeds the frame size cap"));
    }
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)
        .map_err(|e| io_err("write frame header", e))?;
    w.write_all(payload)
        .map_err(|e| io_err("write frame payload", e))?;
    w.flush().map_err(|e| io_err("flush frame", e))?;
    Ok(())
}

/// Reads exactly `buf.len()` bytes; `Ok(false)` means the peer closed the
/// connection cleanly before the first byte (only honored when
/// `eof_ok`).
fn read_fully<R: Read>(r: &mut R, buf: &mut [u8], eof_ok: bool) -> Result<bool, MatchError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) if got == 0 && eof_ok => return Ok(false),
            Ok(0) => return Err(MatchError::Transport("unexpected end of stream".into())),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err("read", e)),
        }
    }
    Ok(true)
}

/// Reads one frame; `Ok(None)` is a clean end of stream at a frame
/// boundary.
///
/// # Errors
///
/// [`MatchError::Frame`] on bad magic or an oversized length prefix,
/// [`MatchError::Transport`] on socket failure or mid-frame EOF.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, MatchError> {
    let mut header = [0u8; 8];
    if !read_fully(r, &mut header, true)? {
        return Ok(None);
    }
    if header[..4] != FRAME_MAGIC {
        return Err(MatchError::Frame("bad frame magic"));
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(MatchError::Frame("frame length exceeds the size cap"));
    }
    let mut payload = vec![0u8; len];
    read_fully(r, &mut payload, false)?;
    Ok(Some(payload))
}

/// Encodes one frame (header + payload) into an owned buffer, for
/// transports that write asynchronously instead of into a `Write` sink
/// (the reactor queues these byte-for-byte).
///
/// # Errors
///
/// [`MatchError::Frame`] if the payload exceeds [`MAX_FRAME_BYTES`].
pub fn frame_bytes(payload: &[u8]) -> Result<Vec<u8>, MatchError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(MatchError::Frame("payload exceeds the frame size cap"));
    }
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Incremental frame reassembly: feed bytes in whatever chunks the
/// transport yields, drain complete frame payloads out. Byte-for-byte
/// equivalent to repeated [`read_frame`] calls over the same stream
/// (the crate's proptests assert this at every split point), with the
/// same hostile-header guarantees — magic and length are validated the
/// moment the 8-byte header completes, *before* any payload is
/// buffered, so a lying length prefix can never drive an allocation.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    /// Bytes of the in-progress frame (header first, then payload).
    buf: Vec<u8>,
    /// Complete payloads not yet handed out.
    ready: std::collections::VecDeque<Vec<u8>>,
    /// Sticky failure: once the stream violates framing it stays bad.
    failed: Option<&'static str>,
}

impl FrameBuffer {
    /// An empty buffer at a frame boundary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs `bytes`, queueing every frame that completes.
    ///
    /// # Errors
    ///
    /// [`MatchError::Frame`] on bad magic or an oversized length
    /// prefix; the failure is sticky and every later call returns it
    /// again.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(), MatchError> {
        if let Some(reason) = self.failed {
            return Err(MatchError::Frame(reason));
        }
        let mut rest = bytes;
        loop {
            // Complete the 8-byte header first; validate it before a
            // single payload byte is accepted.
            if self.buf.len() < 8 {
                let need = 8 - self.buf.len();
                let take = need.min(rest.len());
                self.buf.extend_from_slice(&rest[..take]);
                rest = &rest[take..];
                if self.buf.len() < 8 {
                    return Ok(());
                }
                if self.buf[..4] != FRAME_MAGIC {
                    return Err(self.fail("bad frame magic"));
                }
                let len = u32::from_le_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]);
                if len as usize > MAX_FRAME_BYTES {
                    return Err(self.fail("frame length exceeds the size cap"));
                }
            }
            let len =
                u32::from_le_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]) as usize;
            let need = len - (self.buf.len() - 8);
            let take = need.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() - 8 < len {
                return Ok(());
            }
            let payload = self.buf.split_off(8);
            self.buf.clear();
            self.ready.push_back(payload);
            if rest.is_empty() {
                return Ok(());
            }
        }
    }

    fn fail(&mut self, reason: &'static str) -> MatchError {
        self.failed = Some(reason);
        self.buf = Vec::new(); // hostile bytes are dropped, not kept
        MatchError::Frame(reason)
    }

    /// Pops the next fully reassembled frame payload, if any.
    pub fn next_frame(&mut self) -> Option<Vec<u8>> {
        self.ready.pop_front()
    }

    /// Bytes of the in-progress (incomplete) frame currently buffered.
    /// Stays at most `8 + MAX_FRAME_BYTES` by construction, and stays
    /// below 8 until a header has passed validation.
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }
}

impl cm_reactor::FrameDecoder for FrameBuffer {
    fn feed(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        FrameBuffer::feed(self, bytes).map_err(|e| match e {
            MatchError::Frame(reason) => reason,
            _ => "invalid frame stream",
        })
    }

    fn next_frame(&mut self) -> Option<Vec<u8>> {
        FrameBuffer::next_frame(self)
    }
}

// ---------------------------------------------------------------------------
// Message encoding primitives
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(data);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bits(out: &mut Vec<u8>, bits: &BitString) {
    put_u64(out, bits.len() as u64);
    let mut packed = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.bits().iter().enumerate() {
        if b {
            packed[i / 8] |= 1 << (7 - i % 8);
        }
    }
    out.extend_from_slice(&packed);
}

fn put_stats(out: &mut Vec<u8>, s: &MatchStats) {
    for v in [
        s.hom_adds,
        s.hom_muls,
        s.rotations,
        s.bootstraps,
        s.bytes_moved,
        s.flash_wear,
        s.add_time.as_nanos() as u64,
        s.mul_time.as_nanos() as u64,
    ] {
        put_u64(out, v);
    }
}

fn put_spec(out: &mut Vec<u8>, spec: &TenantSpec) {
    put_str(out, &spec.backend);
    put_u64(out, spec.seed);
    out.extend_from_slice(&spec.window.to_le_bytes());
    out.extend_from_slice(&spec.threads.to_le_bytes());
    out.push(spec.insecure as u8);
    out.extend_from_slice(&spec.workers.to_le_bytes());
}

fn read_spec(r: &mut Reader<'_>) -> Result<TenantSpec, MatchError> {
    let backend = r.str()?;
    if backend.is_empty() || backend.len() > 32 {
        return Err(MatchError::Frame("backend name length out of range"));
    }
    let seed = r.u64()?;
    let window = r.u32()?;
    let threads = r.u32()?;
    let insecure = r.bool()?;
    let workers = r.u32()?;
    if workers == 0 || workers > MAX_TENANT_WORKERS {
        return Err(MatchError::Frame("tenant worker count out of range"));
    }
    Ok(TenantSpec {
        backend,
        seed,
        window,
        threads,
        insecure,
        workers,
    })
}

/// Bounds-checked message reader; every failure is a typed
/// [`MatchError::Frame`].
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], MatchError> {
        if len > self.remaining() {
            return Err(MatchError::Frame("message truncated"));
        }
        let out = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, MatchError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a fixed-width byte array; a short message is a typed
    /// [`MatchError::Frame`], never a slice-conversion panic.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], MatchError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, MatchError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn bool(&mut self) -> Result<bool, MatchError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(MatchError::Frame("boolean byte out of range")),
        }
    }

    fn u32(&mut self) -> Result<u32, MatchError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, MatchError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, MatchError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn str(&mut self) -> Result<String, MatchError> {
        let len = self.u16()? as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| MatchError::Frame("string is not UTF-8"))
    }

    fn tenant_id(&mut self) -> Result<String, MatchError> {
        let id = self.str()?;
        if id.is_empty() || id.len() > MAX_TENANT_ID {
            return Err(MatchError::Frame("tenant id length out of range"));
        }
        Ok(id)
    }

    fn bits(&mut self) -> Result<BitString, MatchError> {
        let bit_len = self.u64()? as usize;
        let byte_len = bit_len.div_ceil(8);
        if byte_len > self.remaining() {
            return Err(MatchError::Frame("bit string longer than its frame"));
        }
        let packed = self.take(byte_len)?;
        let mut out = BitString::new();
        for i in 0..bit_len {
            out.push(packed[i / 8] >> (7 - i % 8) & 1 == 1);
        }
        Ok(out)
    }

    fn stats(&mut self) -> Result<MatchStats, MatchError> {
        Ok(MatchStats {
            hom_adds: self.u64()?,
            hom_muls: self.u64()?,
            rotations: self.u64()?,
            bootstraps: self.u64()?,
            bytes_moved: self.u64()?,
            flash_wear: self.u64()?,
            add_time: Duration::from_nanos(self.u64()?),
            mul_time: Duration::from_nanos(self.u64()?),
        })
    }

    fn finish(self) -> Result<(), MatchError> {
        if self.remaining() != 0 {
            return Err(MatchError::Frame("trailing bytes after message"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Telemetry snapshot codec
// ---------------------------------------------------------------------------

fn put_labels(out: &mut Vec<u8>, labels: &[(String, String)]) {
    out.extend_from_slice(&(labels.len() as u16).to_le_bytes());
    for (k, v) in labels {
        put_str(out, k);
        put_str(out, v);
    }
}

fn read_labels(r: &mut Reader<'_>) -> Result<Vec<(String, String)>, MatchError> {
    let count = r.u16()? as usize;
    // Each label pair costs at least its two length prefixes.
    if count > r.remaining() / 4 {
        return Err(MatchError::Frame("implausible label count"));
    }
    let mut labels = Vec::with_capacity(count);
    for _ in 0..count {
        labels.push((r.str()?, r.str()?));
    }
    Ok(labels)
}

fn put_snapshot(out: &mut Vec<u8>, snap: &MetricsSnapshot) {
    out.extend_from_slice(&(snap.counters.len() as u32).to_le_bytes());
    for c in &snap.counters {
        put_str(out, &c.name);
        put_labels(out, &c.labels);
        put_u64(out, c.value);
    }
    out.extend_from_slice(&(snap.gauges.len() as u32).to_le_bytes());
    for g in &snap.gauges {
        put_str(out, &g.name);
        put_labels(out, &g.labels);
        // Two's-complement round trip: i64 travels as its u64 bits.
        put_u64(out, g.value as u64);
    }
    out.extend_from_slice(&(snap.histograms.len() as u32).to_le_bytes());
    for h in &snap.histograms {
        put_str(out, &h.name);
        put_labels(out, &h.labels);
        put_u64(out, h.count);
        put_u64(out, h.sum);
        out.extend_from_slice(&(h.buckets.len() as u32).to_le_bytes());
        for &(index, count) in &h.buckets {
            out.extend_from_slice(&index.to_le_bytes());
            put_u64(out, count);
        }
    }
}

fn read_snapshot(r: &mut Reader<'_>) -> Result<MetricsSnapshot, MatchError> {
    // A counter or gauge sample costs at least its name prefix, label
    // count, and fixed-width value (12 bytes); a histogram header costs
    // 24 and each sparse bucket 12. Bounding every count by the actual
    // payload keeps a lying header from driving an allocation.
    let count = r.u32()? as usize;
    if count > r.remaining() / 12 {
        return Err(MatchError::Frame("implausible counter count"));
    }
    let mut counters = Vec::with_capacity(count);
    for _ in 0..count {
        counters.push(CounterSample {
            name: r.str()?,
            labels: read_labels(r)?,
            value: r.u64()?,
        });
    }
    let count = r.u32()? as usize;
    if count > r.remaining() / 12 {
        return Err(MatchError::Frame("implausible gauge count"));
    }
    let mut gauges = Vec::with_capacity(count);
    for _ in 0..count {
        gauges.push(GaugeSample {
            name: r.str()?,
            labels: read_labels(r)?,
            value: r.u64()? as i64,
        });
    }
    let count = r.u32()? as usize;
    if count > r.remaining() / 24 {
        return Err(MatchError::Frame("implausible histogram count"));
    }
    let mut histograms = Vec::with_capacity(count);
    for _ in 0..count {
        let name = r.str()?;
        let labels = read_labels(r)?;
        let total = r.u64()?;
        let sum = r.u64()?;
        let bucket_count = r.u32()? as usize;
        if bucket_count > r.remaining() / 12 {
            return Err(MatchError::Frame("implausible bucket count"));
        }
        let mut buckets: Vec<(u32, u64)> = Vec::with_capacity(bucket_count);
        for _ in 0..bucket_count {
            let index = r.u32()?;
            // Out-of-range or out-of-order indices would break the
            // bucket-geometry functions downstream (`bucket_lo` shifts
            // by the bucket's magnitude) and the sparse-merge
            // invariant; reject them structurally.
            if index >= cm_telemetry::HISTOGRAM_BUCKETS as u32 {
                return Err(MatchError::Frame("histogram bucket index out of range"));
            }
            if buckets.last().is_some_and(|&(prev, _)| prev >= index) {
                return Err(MatchError::Frame("histogram buckets out of order"));
            }
            buckets.push((index, r.u64()?));
        }
        histograms.push(HistogramSample {
            name,
            labels,
            count: total,
            sum,
            buckets,
        });
    }
    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
    })
}

// ---------------------------------------------------------------------------
// Error codec
// ---------------------------------------------------------------------------

/// `&'static str` payloads cannot round-trip a wire hop; they surface on
/// the client as this placeholder.
const REMOTE: &str = "remote";

fn put_error(out: &mut Vec<u8>, e: &MatchError) {
    use cm_bfv::DecodeError;
    let (tag, a, b, text): (u8, u64, u64, &str) = match e {
        MatchError::NoIndexGenerator => (tags::ERR_NO_INDEX_GENERATOR, 0, 0, ""),
        MatchError::NoDatabase => (tags::ERR_NO_DATABASE, 0, 0, ""),
        MatchError::EmptyQuery => (tags::ERR_EMPTY_QUERY, 0, 0, ""),
        MatchError::QueryTooLong { max, got } => {
            (tags::ERR_QUERY_TOO_LONG, *max as u64, *got as u64, "")
        }
        MatchError::WindowMismatch { expected, got } => {
            (tags::ERR_WINDOW_MISMATCH, *expected as u64, *got as u64, "")
        }
        MatchError::WorkerPanicked => (tags::ERR_WORKER_PANICKED, 0, 0, ""),
        MatchError::InvalidConfig(what) => (tags::ERR_INVALID_CONFIG, 0, 0, *what),
        MatchError::Decode(d) => {
            let code = match d {
                DecodeError::Truncated => tags::DECODE_TRUNCATED,
                DecodeError::BadMagic => tags::DECODE_BAD_MAGIC,
                DecodeError::BadHeader(_) => tags::DECODE_BAD_HEADER,
                DecodeError::CoefficientOverflow => tags::DECODE_COEFFICIENT_OVERFLOW,
            };
            (tags::ERR_DECODE, u64::from(code), 0, "")
        }
        MatchError::WireQueryUnsupported(backend) => {
            (tags::ERR_WIRE_QUERY_UNSUPPORTED, 0, 0, backend.name())
        }
        MatchError::UnknownBackend(name) => (tags::ERR_UNKNOWN_BACKEND, 0, 0, name.as_str()),
        MatchError::UnknownTenant(id) => (tags::ERR_UNKNOWN_TENANT, 0, 0, id.as_str()),
        MatchError::Frame(what) => (tags::ERR_FRAME, 0, 0, *what),
        MatchError::Transport(what) => (tags::ERR_TRANSPORT, 0, 0, what.as_str()),
        MatchError::ServerBusy { max_open_sockets } => {
            (tags::ERR_SERVER_BUSY, *max_open_sockets as u64, 0, "")
        }
        MatchError::Unauthorized(what) => (tags::ERR_UNAUTHORIZED, 0, 0, *what),
        MatchError::QuotaExceeded { budget, required } => {
            (tags::ERR_QUOTA_EXCEEDED, *budget, *required, "")
        }
        MatchError::UploadIncomplete(what) => (tags::ERR_UPLOAD_INCOMPLETE, 0, 0, *what),
        MatchError::WireDatabaseUnsupported(backend) => {
            (tags::ERR_WIRE_DATABASE_UNSUPPORTED, 0, 0, backend.name())
        }
        MatchError::ConnectionClosed => (tags::ERR_CONNECTION_CLOSED, 0, 0, ""),
        MatchError::Internal(what) => (tags::ERR_INTERNAL, 0, 0, *what),
    };
    out.push(tag);
    put_u64(out, a);
    put_u64(out, b);
    // Never slice mid-codepoint: an overlong message is summarized.
    let text = if text.len() <= u16::MAX as usize {
        text
    } else {
        "error message too long for the wire"
    };
    put_str(out, text);
}

fn read_error(r: &mut Reader<'_>) -> Result<MatchError, MatchError> {
    use cm_bfv::DecodeError;
    let tag = r.u8()?;
    let a = r.u64()? as usize;
    let b = r.u64()? as usize;
    let text = r.str()?;
    Ok(match tag {
        tags::ERR_NO_INDEX_GENERATOR => MatchError::NoIndexGenerator,
        tags::ERR_NO_DATABASE => MatchError::NoDatabase,
        tags::ERR_EMPTY_QUERY => MatchError::EmptyQuery,
        tags::ERR_QUERY_TOO_LONG => MatchError::QueryTooLong { max: a, got: b },
        tags::ERR_WINDOW_MISMATCH => MatchError::WindowMismatch {
            expected: a,
            got: b,
        },
        tags::ERR_WORKER_PANICKED => MatchError::WorkerPanicked,
        tags::ERR_INVALID_CONFIG => MatchError::InvalidConfig(REMOTE),
        tags::ERR_DECODE => MatchError::Decode(match a as u8 {
            tags::DECODE_TRUNCATED => DecodeError::Truncated,
            tags::DECODE_BAD_MAGIC => DecodeError::BadMagic,
            tags::DECODE_BAD_HEADER => DecodeError::BadHeader(REMOTE),
            tags::DECODE_COEFFICIENT_OVERFLOW => DecodeError::CoefficientOverflow,
            // An unknown sub-code still decodes; overflow is the most
            // conservative reading of a corrupt ciphertext.
            _ => DecodeError::CoefficientOverflow,
        }),
        tags::ERR_WIRE_QUERY_UNSUPPORTED => MatchError::WireQueryUnsupported(
            Backend::parse(&text).map_err(|_| MatchError::Frame("unknown backend in error"))?,
        ),
        tags::ERR_UNKNOWN_BACKEND => MatchError::UnknownBackend(text),
        tags::ERR_UNKNOWN_TENANT => MatchError::UnknownTenant(text),
        tags::ERR_FRAME => MatchError::Frame(REMOTE),
        tags::ERR_TRANSPORT => MatchError::Transport(text),
        tags::ERR_SERVER_BUSY => MatchError::ServerBusy {
            max_open_sockets: a,
        },
        tags::ERR_UNAUTHORIZED => MatchError::Unauthorized(REMOTE),
        tags::ERR_QUOTA_EXCEEDED => MatchError::QuotaExceeded {
            budget: a as u64,
            required: b as u64,
        },
        tags::ERR_UPLOAD_INCOMPLETE => MatchError::UploadIncomplete(REMOTE),
        tags::ERR_WIRE_DATABASE_UNSUPPORTED => MatchError::WireDatabaseUnsupported(
            Backend::parse(&text).map_err(|_| MatchError::Frame("unknown backend in error"))?,
        ),
        tags::ERR_CONNECTION_CLOSED => MatchError::ConnectionClosed,
        tags::ERR_INTERNAL => MatchError::Internal(REMOTE),
        _ => return Err(MatchError::Frame("unknown error tag")),
    })
}

// ---------------------------------------------------------------------------
// Request / Response codecs
// ---------------------------------------------------------------------------

impl Request {
    /// Serializes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(tags::REQ_PING),
            Request::ListTenants => out.push(tags::REQ_LIST_TENANTS),
            Request::Match { tenant, query } => {
                out.push(tags::REQ_MATCH);
                put_str(&mut out, tenant);
                match query {
                    QueryPayload::Bits(bits) => {
                        out.push(tags::QUERY_BITS);
                        put_bits(&mut out, bits);
                    }
                    QueryPayload::CmWire(bytes) => {
                        out.push(tags::QUERY_CM_WIRE);
                        put_bytes(&mut out, bytes);
                    }
                }
            }
            Request::TenantStats { tenant } => {
                out.push(tags::REQ_TENANT_STATS);
                put_str(&mut out, tenant);
            }
            Request::LoadDatabase { tenant, phase } => {
                out.push(tags::REQ_LOAD_DATABASE);
                put_str(&mut out, tenant);
                match phase {
                    UploadPhase::Begin {
                        auth,
                        spec,
                        total_bytes,
                        chunk_count,
                    } => {
                        out.push(tags::PHASE_BEGIN);
                        put_u64(&mut out, auth.nonce);
                        out.extend_from_slice(&auth.channel_key);
                        out.extend_from_slice(&auth.content);
                        out.extend_from_slice(&auth.tag);
                        put_spec(&mut out, spec);
                        put_u64(&mut out, *total_bytes);
                        out.extend_from_slice(&chunk_count.to_le_bytes());
                    }
                    UploadPhase::Chunk { index, data } => {
                        out.push(tags::PHASE_CHUNK);
                        out.extend_from_slice(&index.to_le_bytes());
                        put_bytes(&mut out, data);
                    }
                    UploadPhase::Commit => out.push(tags::PHASE_COMMIT),
                }
            }
            Request::EvictDatabase { tenant, auth } => {
                out.push(tags::REQ_EVICT_DATABASE);
                put_str(&mut out, tenant);
                put_u64(&mut out, auth.nonce);
                out.extend_from_slice(&auth.tag);
            }
            Request::DatabaseInfo { tenant } => {
                out.push(tags::REQ_DATABASE_INFO);
                put_str(&mut out, tenant);
            }
            Request::Metrics => out.push(tags::REQ_METRICS),
        }
        out
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::Frame`] on truncated, oversized, or garbage
    /// bytes; never panics.
    pub fn decode(data: &[u8]) -> Result<Self, MatchError> {
        let mut r = Reader::new(data);
        let req = match r.u8()? {
            tags::REQ_PING => Request::Ping,
            tags::REQ_LIST_TENANTS => Request::ListTenants,
            tags::REQ_MATCH => {
                let tenant = r.tenant_id()?;
                let query = match r.u8()? {
                    tags::QUERY_BITS => QueryPayload::Bits(r.bits()?),
                    tags::QUERY_CM_WIRE => QueryPayload::CmWire(r.bytes()?),
                    _ => return Err(MatchError::Frame("unknown query payload tag")),
                };
                Request::Match { tenant, query }
            }
            tags::REQ_TENANT_STATS => Request::TenantStats {
                tenant: r.tenant_id()?,
            },
            tags::REQ_LOAD_DATABASE => {
                let tenant = r.tenant_id()?;
                let phase = match r.u8()? {
                    tags::PHASE_BEGIN => {
                        let nonce = r.u64()?;
                        let channel_key: [u8; 32] = r.array()?;
                        let content: [u8; 16] = r.array()?;
                        let tag: [u8; 16] = r.array()?;
                        let spec = read_spec(&mut r)?;
                        let total_bytes = r.u64()?;
                        if total_bytes > MAX_DATABASE_BYTES {
                            return Err(MatchError::Frame(
                                "declared database size exceeds the cap",
                            ));
                        }
                        let chunk_count = r.u32()?;
                        if chunk_count == 0 || chunk_count > MAX_UPLOAD_CHUNKS {
                            return Err(MatchError::Frame("chunk count out of range"));
                        }
                        UploadPhase::Begin {
                            auth: UploadAuth {
                                nonce,
                                channel_key,
                                content,
                                tag,
                            },
                            spec,
                            total_bytes,
                            chunk_count,
                        }
                    }
                    tags::PHASE_CHUNK => UploadPhase::Chunk {
                        index: r.u32()?,
                        data: r.bytes()?,
                    },
                    tags::PHASE_COMMIT => UploadPhase::Commit,
                    _ => return Err(MatchError::Frame("unknown upload phase tag")),
                };
                Request::LoadDatabase { tenant, phase }
            }
            tags::REQ_EVICT_DATABASE => Request::EvictDatabase {
                tenant: r.tenant_id()?,
                auth: EvictAuth {
                    nonce: r.u64()?,
                    tag: r.array()?,
                },
            },
            tags::REQ_DATABASE_INFO => Request::DatabaseInfo {
                tenant: r.tenant_id()?,
            },
            tags::REQ_METRICS => Request::Metrics,
            _ => return Err(MatchError::Frame("unknown request tag")),
        };
        r.finish()?;
        Ok(req)
    }
}

/// The `DatabaseLoaded` demoted-tenant count as the wire's `u32`, or a
/// typed [`MatchError::Frame`] when the list is too long to count —
/// mirroring the decoder, which already rejects implausible counts. The
/// encoder must never cast-truncate: a wrong count desyncs the decoder
/// from the ids that follow it.
fn demoted_count(len: usize) -> Result<u32, MatchError> {
    u32::try_from(len).map_err(|_| MatchError::Frame("demoted-tenant count exceeds the wire u32"))
}

impl Response {
    /// Serializes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong { backends } => {
                out.push(tags::RESP_PONG);
                out.extend_from_slice(&(backends.len() as u16).to_le_bytes());
                for b in backends {
                    put_str(&mut out, b);
                }
            }
            Response::Tenants(tenants) => {
                out.push(tags::RESP_TENANTS);
                out.extend_from_slice(&(tenants.len() as u16).to_le_bytes());
                for t in tenants {
                    put_str(&mut out, &t.id);
                    put_str(&mut out, &t.backend);
                }
            }
            Response::Matched {
                nonce,
                sealed_indices,
                stats,
                shard_stats,
                seal_latency,
            } => {
                out.push(tags::RESP_MATCHED);
                put_u64(&mut out, *nonce);
                put_bytes(&mut out, sealed_indices);
                put_stats(&mut out, stats);
                out.extend_from_slice(&(shard_stats.len() as u16).to_le_bytes());
                for s in shard_stats {
                    put_stats(&mut out, s);
                }
                put_u64(&mut out, seal_latency.as_nanos() as u64);
            }
            Response::TenantStats { stats, queries } => {
                out.push(tags::RESP_TENANT_STATS);
                put_stats(&mut out, stats);
                put_u64(&mut out, *queries);
            }
            Response::Error(e) => {
                out.push(tags::RESP_ERROR);
                put_error(&mut out, e);
            }
            Response::UploadProgress { received, expected } => {
                out.push(tags::RESP_UPLOAD_PROGRESS);
                put_u64(&mut out, *received);
                put_u64(&mut out, *expected);
            }
            Response::DatabaseLoaded { bytes, demoted } => {
                // u32: one admission can demote far more tenants than a
                // u16 could count. A count past u32 must not be cast
                // down — a silently truncated count would desync the
                // decoder from the ids that follow — so an overflowing
                // reply degrades to a typed Frame error instead.
                match demoted_count(demoted.len()) {
                    Ok(count) => {
                        out.push(tags::RESP_DATABASE_LOADED);
                        put_u64(&mut out, *bytes);
                        out.extend_from_slice(&count.to_le_bytes());
                        for id in demoted {
                            put_str(&mut out, id);
                        }
                    }
                    Err(e) => {
                        out.push(tags::RESP_ERROR);
                        put_error(&mut out, &e);
                    }
                }
            }
            Response::Evicted { freed_bytes } => {
                out.push(tags::RESP_EVICTED);
                put_u64(&mut out, *freed_bytes);
            }
            Response::DatabaseInfo(info) => {
                out.push(tags::RESP_DATABASE_INFO);
                put_str(&mut out, &info.backend);
                out.push(info.resident as u8);
                out.push(info.pinned as u8);
                put_u64(&mut out, info.bytes);
                out.extend_from_slice(&info.workers.to_le_bytes());
                put_u64(&mut out, info.queries);
                put_str(&mut out, &info.tier);
            }
            Response::Metrics(snapshot) => {
                out.push(tags::RESP_METRICS);
                put_snapshot(&mut out, snapshot);
            }
        }
        out
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::Frame`] on truncated, oversized, or garbage
    /// bytes; never panics.
    pub fn decode(data: &[u8]) -> Result<Self, MatchError> {
        let mut r = Reader::new(data);
        let resp = match r.u8()? {
            tags::RESP_PONG => {
                let count = r.u16()? as usize;
                if count > Backend::WIRE.len() * 4 {
                    return Err(MatchError::Frame("implausible backend count"));
                }
                let mut backends = Vec::with_capacity(count);
                for _ in 0..count {
                    backends.push(r.str()?);
                }
                Response::Pong { backends }
            }
            tags::RESP_TENANTS => {
                let count = r.u16()? as usize;
                // Each listed tenant costs at least its two length
                // prefixes; bound the allocation by the actual payload.
                if count > r.remaining() / 4 {
                    return Err(MatchError::Frame("implausible tenant count"));
                }
                let mut tenants = Vec::with_capacity(count);
                for _ in 0..count {
                    tenants.push(TenantInfo {
                        id: r.str()?,
                        backend: r.str()?,
                    });
                }
                Response::Tenants(tenants)
            }
            tags::RESP_MATCHED => {
                let nonce = r.u64()?;
                let sealed_indices = r.bytes()?;
                let stats = r.stats()?;
                let count = r.u16()? as usize;
                // One serialized MatchStats is 64 bytes.
                if count > r.remaining() / 64 {
                    return Err(MatchError::Frame("implausible shard count"));
                }
                let mut shard_stats = Vec::with_capacity(count);
                for _ in 0..count {
                    shard_stats.push(r.stats()?);
                }
                let seal_latency = Duration::from_nanos(r.u64()?);
                Response::Matched {
                    nonce,
                    sealed_indices,
                    stats,
                    shard_stats,
                    seal_latency,
                }
            }
            tags::RESP_TENANT_STATS => Response::TenantStats {
                stats: r.stats()?,
                queries: r.u64()?,
            },
            tags::RESP_ERROR => Response::Error(read_error(&mut r)?),
            tags::RESP_UPLOAD_PROGRESS => Response::UploadProgress {
                received: r.u64()?,
                expected: r.u64()?,
            },
            tags::RESP_DATABASE_LOADED => {
                let bytes = r.u64()?;
                let count = r.u32()? as usize;
                // Each demoted id costs at least its length prefix.
                if count > r.remaining() / 2 {
                    return Err(MatchError::Frame("implausible demoted-tenant count"));
                }
                let mut demoted = Vec::with_capacity(count);
                for _ in 0..count {
                    demoted.push(r.str()?);
                }
                Response::DatabaseLoaded { bytes, demoted }
            }
            tags::RESP_EVICTED => Response::Evicted {
                freed_bytes: r.u64()?,
            },
            tags::RESP_DATABASE_INFO => Response::DatabaseInfo(DatabaseInfoReply {
                backend: r.str()?,
                resident: r.bool()?,
                pinned: r.bool()?,
                bytes: r.u64()?,
                workers: r.u32()?,
                queries: r.u64()?,
                tier: r.str()?,
            }),
            tags::RESP_METRICS => Response::Metrics(read_snapshot(&mut r)?),
            _ => return Err(MatchError::Frame("unknown response tag")),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let payload = b"the payload".to_vec();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(payload));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn lying_frame_lengths_are_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CMS1");
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(MatchError::Frame(_))
        ));
        // Bad magic.
        let mut bad = Vec::new();
        write_frame(&mut bad, b"x").unwrap();
        bad[0] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(MatchError::Frame(_))
        ));
        // Mid-frame EOF.
        let mut trunc = Vec::new();
        write_frame(&mut trunc, b"four bytes short").unwrap();
        trunc.truncate(trunc.len() - 4);
        assert!(matches!(
            read_frame(&mut &trunc[..]),
            Err(MatchError::Transport(_))
        ));
    }

    #[test]
    fn requests_round_trip() {
        let samples = [
            Request::Ping,
            Request::ListTenants,
            Request::Match {
                tenant: "alice".into(),
                query: QueryPayload::Bits(BitString::from_ascii("needle")),
            },
            Request::Match {
                tenant: "bob".into(),
                query: QueryPayload::CmWire(vec![1, 2, 3, 255]),
            },
            Request::TenantStats {
                tenant: "carol".into(),
            },
            Request::Metrics,
        ];
        for req in samples {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let stats = MatchStats {
            hom_adds: 10,
            bytes_moved: 4096,
            flash_wear: 0,
            add_time: Duration::from_micros(123),
            ..MatchStats::default()
        };
        let samples = [
            Response::Pong {
                backends: Backend::WIRE.iter().map(|b| b.name().to_string()).collect(),
            },
            Response::Tenants(vec![TenantInfo {
                id: "alice".into(),
                backend: "ciphermatch".into(),
            }]),
            Response::Matched {
                nonce: u64::MAX,
                sealed_indices: vec![9; 40],
                stats,
                shard_stats: vec![stats, MatchStats::default()],
                seal_latency: Duration::from_nanos(126),
            },
            Response::TenantStats { stats, queries: 3 },
            Response::Error(MatchError::QueryTooLong { max: 8, got: 99 }),
            Response::Error(MatchError::UnknownTenant("mallory".into())),
            Response::Error(MatchError::ServerBusy {
                max_open_sockets: 64,
            }),
            Response::Metrics(sample_snapshot()),
            Response::Metrics(MetricsSnapshot::default()),
        ];
        for resp in samples {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    fn sample_snapshot() -> MetricsSnapshot {
        let registry = cm_telemetry::MetricsRegistry::new();
        registry
            .register_counter(
                cm_telemetry::metric_names::SERVER_REQUESTS,
                &[("tag", "match")],
            )
            .add(17);
        registry
            .register_gauge(
                cm_telemetry::metric_names::EXEC_QUEUE_DEPTH,
                &[("pool", "frames")],
            )
            .add(-3);
        let h =
            registry.register_histogram(cm_telemetry::metric_names::SERVER_REQUEST_LATENCY_US, &[]);
        for v in [0, 1, 9, 100, 5000, u64::MAX] {
            h.record(v);
        }
        registry.snapshot()
    }

    #[test]
    fn hostile_snapshot_buckets_are_rejected() {
        // Baseline: a well-formed single-bucket histogram decodes.
        let mut snap = MetricsSnapshot::default();
        snap.histograms.push(cm_telemetry::HistogramSample {
            name: "cm_x_us".into(),
            labels: vec![],
            count: 1,
            sum: 4,
            buckets: vec![(4, 1)],
        });
        let good = Response::Metrics(snap.clone()).encode();
        assert_eq!(
            Response::decode(&good).unwrap(),
            Response::Metrics(snap.clone())
        );
        // An index past the bucket table would make quantile math shift
        // out of range; it must fail as a typed frame error.
        snap.histograms[0].buckets = vec![(cm_telemetry::HISTOGRAM_BUCKETS as u32, 1)];
        assert!(matches!(
            Response::decode(&Response::Metrics(snap.clone()).encode()),
            Err(MatchError::Frame(_))
        ));
        // Out-of-order (or duplicate) indices break the sparse-merge
        // invariant.
        snap.histograms[0].buckets = vec![(5, 1), (5, 2)];
        assert!(matches!(
            Response::decode(&Response::Metrics(snap).encode()),
            Err(MatchError::Frame(_))
        ));
    }

    fn sample_spec() -> TenantSpec {
        TenantSpec {
            backend: "ciphermatch".into(),
            seed: 0xDEAD_BEEF,
            window: 32,
            threads: 2,
            insecure: true,
            workers: 4,
        }
    }

    #[test]
    fn lifecycle_requests_round_trip() {
        let key = [0x42u8; 32];
        let content = content_digest(&key, b"the serialized database");
        let samples = [
            Request::LoadDatabase {
                tenant: "alice".into(),
                phase: UploadPhase::Begin {
                    auth: UploadAuth {
                        nonce: 7,
                        channel_key: key,
                        content,
                        tag: upload_tag(&key, "alice", 7, 1000, &sample_spec(), &content),
                    },
                    spec: sample_spec(),
                    total_bytes: 1000,
                    chunk_count: 3,
                },
            },
            Request::LoadDatabase {
                tenant: "alice".into(),
                phase: UploadPhase::Chunk {
                    index: 2,
                    data: vec![1, 2, 3, 255, 0],
                },
            },
            Request::LoadDatabase {
                tenant: "alice".into(),
                phase: UploadPhase::Commit,
            },
            Request::EvictDatabase {
                tenant: "bob".into(),
                auth: EvictAuth {
                    nonce: 9,
                    tag: auth_tag(&key, OP_EVICT, "bob", 0, 9, &[]),
                },
            },
            Request::DatabaseInfo {
                tenant: "carol".into(),
            },
        ];
        for req in samples {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn lifecycle_responses_round_trip() {
        let samples = [
            Response::UploadProgress {
                received: 512,
                expected: 4096,
            },
            Response::DatabaseLoaded {
                bytes: 4096,
                demoted: vec!["old-tenant".into(), "older-tenant".into()],
            },
            Response::Evicted { freed_bytes: 4096 },
            Response::DatabaseInfo(DatabaseInfoReply {
                backend: "ciphermatch".into(),
                resident: true,
                pinned: false,
                bytes: 4096,
                workers: 4,
                queries: 17,
                tier: "dram".into(),
            }),
            Response::DatabaseInfo(DatabaseInfoReply {
                backend: "ifp".into(),
                resident: false,
                pinned: false,
                bytes: 8192,
                workers: 2,
                queries: 3,
                tier: "flash".into(),
            }),
            Response::Error(MatchError::Unauthorized("replayed upload nonce")),
            Response::Error(MatchError::QuotaExceeded {
                budget: 1 << 20,
                required: 1 << 21,
            }),
            Response::Error(MatchError::UploadIncomplete("missing chunks")),
            Response::Error(MatchError::WireDatabaseUnsupported(Backend::Boolean)),
            Response::Error(MatchError::ConnectionClosed),
        ];
        for resp in samples {
            let decoded = Response::decode(&resp.encode()).unwrap();
            // Static strings survive the hop as the REMOTE placeholder.
            match (&decoded, &resp) {
                (
                    Response::Error(MatchError::Unauthorized(a)),
                    Response::Error(MatchError::Unauthorized(_)),
                ) => assert_eq!(*a, REMOTE),
                (
                    Response::Error(MatchError::UploadIncomplete(a)),
                    Response::Error(MatchError::UploadIncomplete(_)),
                ) => assert_eq!(*a, REMOTE),
                _ => assert_eq!(decoded, resp, "{resp:?}"),
            }
        }
    }

    #[test]
    fn demoted_counts_past_u32_become_frame_errors_not_truncation() {
        assert_eq!(demoted_count(0).unwrap(), 0);
        assert_eq!(demoted_count(u32::MAX as usize).unwrap(), u32::MAX);
        // One past u32::MAX must refuse, not wrap to 0 — a wrapped count
        // would desync the decoder from the ids that follow it.
        let overflowing = u32::MAX as usize + 1;
        assert!(matches!(
            demoted_count(overflowing),
            Err(MatchError::Frame(_))
        ));
    }

    #[test]
    fn oversized_upload_declarations_are_rejected_at_decode() {
        let key = [0u8; 32];
        let mk = |total_bytes: u64, chunk_count: u32| Request::LoadDatabase {
            tenant: "t".into(),
            phase: UploadPhase::Begin {
                auth: UploadAuth {
                    nonce: 1,
                    channel_key: key,
                    content: [0; 16],
                    tag: [0; 16],
                },
                spec: sample_spec(),
                total_bytes,
                chunk_count,
            },
        };
        assert!(matches!(
            Request::decode(&mk(MAX_DATABASE_BYTES + 1, 1).encode()),
            Err(MatchError::Frame(_))
        ));
        assert!(matches!(
            Request::decode(&mk(100, 0).encode()),
            Err(MatchError::Frame(_))
        ));
        assert!(matches!(
            Request::decode(&mk(100, MAX_UPLOAD_CHUNKS + 1).encode()),
            Err(MatchError::Frame(_))
        ));
        // In-range declarations still decode.
        assert!(Request::decode(&mk(MAX_DATABASE_BYTES, MAX_UPLOAD_CHUNKS).encode()).is_ok());
        // A worker count past the pool cap is rejected structurally.
        let mut wide = sample_spec();
        wide.workers = MAX_TENANT_WORKERS + 1;
        let req = Request::LoadDatabase {
            tenant: "t".into(),
            phase: UploadPhase::Begin {
                auth: UploadAuth {
                    nonce: 1,
                    channel_key: key,
                    content: [0; 16],
                    tag: [0; 16],
                },
                spec: wide,
                total_bytes: 100,
                chunk_count: 1,
            },
        };
        assert!(matches!(
            Request::decode(&req.encode()),
            Err(MatchError::Frame(_))
        ));
    }

    #[test]
    fn auth_tags_bind_every_authorized_value() {
        let key = [0x11u8; 32];
        let tag = auth_tag(&key, OP_UPLOAD, "alice", 1000, 7, b"ctx");
        assert_eq!(tag, auth_tag(&key, OP_UPLOAD, "alice", 1000, 7, b"ctx"));
        assert!(tags_match(&tag, &tag));
        for other in [
            auth_tag(&[0x12u8; 32], OP_UPLOAD, "alice", 1000, 7, b"ctx"),
            auth_tag(&key, OP_EVICT, "alice", 1000, 7, b"ctx"),
            auth_tag(&key, OP_UPLOAD, "alicf", 1000, 7, b"ctx"),
            auth_tag(&key, OP_UPLOAD, "alice", 1001, 7, b"ctx"),
            auth_tag(&key, OP_UPLOAD, "alice", 1000, 8, b"ctx"),
            auth_tag(&key, OP_UPLOAD, "alice", 1000, 7, b"ctX"),
            auth_tag(&key, OP_UPLOAD, "alice", 1000, 7, b"ctx0"),
        ] {
            assert_ne!(tag, other);
            assert!(!tags_match(&tag, &other));
        }
        // Length prefixes prevent boundary splices: moving a byte
        // between the tenant id and the context changes the tag.
        assert_ne!(
            auth_tag(&key, OP_UPLOAD, "ab", 0, 0, b"c"),
            auth_tag(&key, OP_UPLOAD, "a", 0, 0, b"bc"),
        );

        // The upload tag also pins the spec and the payload digest.
        let content = content_digest(&key, b"payload");
        let full = upload_tag(&key, "alice", 7, 1000, &sample_spec(), &content);
        let mut other_spec = sample_spec();
        other_spec.seed ^= 1;
        assert_ne!(
            full,
            upload_tag(&key, "alice", 7, 1000, &other_spec, &content)
        );
        let other_content = content_digest(&key, b"payloae");
        assert_ne!(content, other_content);
        assert_ne!(
            full,
            upload_tag(&key, "alice", 7, 1000, &sample_spec(), &other_content)
        );
    }

    #[test]
    fn message_decoders_reject_trailing_garbage() {
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
        let mut bytes = Response::Pong { backends: vec![] }.encode();
        bytes.push(7);
        assert!(Response::decode(&bytes).is_err());
    }
}
