//! The length-prefixed binary wire protocol.
//!
//! Framing: every message travels as `magic("CMS1") | len:u32-le |
//! payload`, with `len` capped at [`MAX_FRAME_BYTES`] so a lying header
//! can never drive an allocation. Payloads are tag-discriminated
//! [`Request`]/[`Response`] messages encoded with fixed-width
//! little-endian integers; encrypted queries ride in the `cm-bfv`-backed
//! [`cm_core::EncryptedQuery::encode`] format and match results return as
//! AES-sealed index lists ([`cm_ssd::SecureIndexChannel`]), so neither
//! queries nor results cross the socket in the clear for
//! CIPHERMATCH-family tenants.
//!
//! Every decode path returns a typed [`MatchError`] — truncated,
//! oversized, or garbage bytes must never panic the peer (extending the
//! `EncryptedDatabase::decode` hardening to the whole wire surface; the
//! crate's proptests fuzz exactly this contract).

use std::io::{Read, Write};
use std::time::Duration;

use cm_core::{Backend, BitString, MatchError, MatchStats};

/// Frame magic: "CMS1".
const FRAME_MAGIC: [u8; 4] = *b"CMS1";

/// Hard cap on one frame's payload (64 MiB) — large enough for an
/// encrypted query at paper parameters, small enough that a hostile
/// length prefix cannot balloon memory.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Longest tenant id the protocol accepts.
pub const MAX_TENANT_ID: usize = 255;

/// A client→server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness + capability probe; answered by [`Response::Pong`] with
    /// the full [`Backend::WIRE`] listing.
    Ping,
    /// Lists the registered tenants; answered by [`Response::Tenants`].
    ListTenants,
    /// Runs one match query for `tenant`; answered by
    /// [`Response::Matched`]. The AES-CTR nonce sealing the index list is
    /// *server-assigned* (monotonic per tenant) and returned in the
    /// response — client-chosen nonces would let two connections reuse
    /// one keystream.
    Match {
        /// Target tenant id.
        tenant: String,
        /// The query itself.
        query: QueryPayload,
    },
    /// Reads a tenant's lifetime statistics; answered by
    /// [`Response::TenantStats`].
    TenantStats {
        /// Target tenant id.
        tenant: String,
    },
}

/// How a query travels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryPayload {
    /// Plaintext query bits, for hosted-key tenants: the server-side
    /// matcher owns the keys and encrypts the query itself (every
    /// [`Backend`] supports this mode).
    Bits(BitString),
    /// An already-encrypted query in the CIPHERMATCH wire format
    /// ([`cm_core::EncryptedQuery::encode`]), for client-key tenants:
    /// the server never sees the pattern (`ciphermatch` and `ifp`).
    CmWire(Vec<u8>),
}

/// Identity and backend of a registered tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantInfo {
    /// The tenant id used in [`Request::Match`].
    pub id: String,
    /// The backend serving this tenant (a [`Backend::name`] string).
    pub backend: String,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness answer: every backend this server build can serve.
    Pong {
        /// [`Backend::WIRE`] names.
        backends: Vec<String>,
    },
    /// The registered tenants.
    Tenants(Vec<TenantInfo>),
    /// One query's result.
    Matched {
        /// The server-assigned AES-CTR nonce the index list was sealed
        /// with — unique per tenant, so no two replies under one channel
        /// key ever share a keystream.
        nonce: u64,
        /// The AES-sealed index list
        /// ([`cm_ssd::SecureIndexChannel::seal`] under `nonce`).
        sealed_indices: Vec<u8>,
        /// Statistics this query added to the tenant's matcher.
        stats: MatchStats,
        /// Per-shard breakdown; field-wise sums to `stats` for sharded
        /// tenants, a single entry equal to `stats` otherwise.
        shard_stats: Vec<MatchStats>,
        /// Modeled hardware latency of sealing the index list.
        seal_latency: Duration,
    },
    /// A tenant's lifetime statistics.
    TenantStats {
        /// Field-wise totals since registration.
        stats: MatchStats,
        /// Queries served.
        queries: u64,
    },
    /// The request failed; `error` is the server-side [`MatchError`]
    /// (static-string payloads survive as `"remote"`).
    Error(MatchError),
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

fn io_err(what: &str, e: std::io::Error) -> MatchError {
    MatchError::Transport(format!("{what}: {e}"))
}

/// Writes one frame.
///
/// # Errors
///
/// [`MatchError::Frame`] if the payload exceeds [`MAX_FRAME_BYTES`];
/// [`MatchError::Transport`] on socket failure.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), MatchError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(MatchError::Frame("payload exceeds the frame size cap"));
    }
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)
        .map_err(|e| io_err("write frame header", e))?;
    w.write_all(payload)
        .map_err(|e| io_err("write frame payload", e))?;
    w.flush().map_err(|e| io_err("flush frame", e))?;
    Ok(())
}

/// Reads exactly `buf.len()` bytes; `Ok(false)` means the peer closed the
/// connection cleanly before the first byte (only honored when
/// `eof_ok`).
fn read_fully<R: Read>(r: &mut R, buf: &mut [u8], eof_ok: bool) -> Result<bool, MatchError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) if got == 0 && eof_ok => return Ok(false),
            Ok(0) => return Err(MatchError::Transport("unexpected end of stream".into())),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err("read", e)),
        }
    }
    Ok(true)
}

/// Reads one frame; `Ok(None)` is a clean end of stream at a frame
/// boundary.
///
/// # Errors
///
/// [`MatchError::Frame`] on bad magic or an oversized length prefix,
/// [`MatchError::Transport`] on socket failure or mid-frame EOF.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, MatchError> {
    let mut header = [0u8; 8];
    if !read_fully(r, &mut header, true)? {
        return Ok(None);
    }
    if header[..4] != FRAME_MAGIC {
        return Err(MatchError::Frame("bad frame magic"));
    }
    let len = u32::from_le_bytes(header[4..].try_into().unwrap()) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(MatchError::Frame("frame length exceeds the size cap"));
    }
    let mut payload = vec![0u8; len];
    read_fully(r, &mut payload, false)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Message encoding primitives
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(data);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bits(out: &mut Vec<u8>, bits: &BitString) {
    put_u64(out, bits.len() as u64);
    let mut packed = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.bits().iter().enumerate() {
        if b {
            packed[i / 8] |= 1 << (7 - i % 8);
        }
    }
    out.extend_from_slice(&packed);
}

fn put_stats(out: &mut Vec<u8>, s: &MatchStats) {
    for v in [
        s.hom_adds,
        s.hom_muls,
        s.rotations,
        s.bootstraps,
        s.bytes_moved,
        s.flash_wear,
        s.add_time.as_nanos() as u64,
        s.mul_time.as_nanos() as u64,
    ] {
        put_u64(out, v);
    }
}

/// Bounds-checked message reader; every failure is a typed
/// [`MatchError::Frame`].
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], MatchError> {
        if len > self.remaining() {
            return Err(MatchError::Frame("message truncated"));
        }
        let out = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, MatchError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, MatchError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, MatchError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, MatchError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, MatchError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn str(&mut self) -> Result<String, MatchError> {
        let len = self.u16()? as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| MatchError::Frame("string is not UTF-8"))
    }

    fn tenant_id(&mut self) -> Result<String, MatchError> {
        let id = self.str()?;
        if id.is_empty() || id.len() > MAX_TENANT_ID {
            return Err(MatchError::Frame("tenant id length out of range"));
        }
        Ok(id)
    }

    fn bits(&mut self) -> Result<BitString, MatchError> {
        let bit_len = self.u64()? as usize;
        let byte_len = bit_len.div_ceil(8);
        if byte_len > self.remaining() {
            return Err(MatchError::Frame("bit string longer than its frame"));
        }
        let packed = self.take(byte_len)?;
        let mut out = BitString::new();
        for i in 0..bit_len {
            out.push(packed[i / 8] >> (7 - i % 8) & 1 == 1);
        }
        Ok(out)
    }

    fn stats(&mut self) -> Result<MatchStats, MatchError> {
        Ok(MatchStats {
            hom_adds: self.u64()?,
            hom_muls: self.u64()?,
            rotations: self.u64()?,
            bootstraps: self.u64()?,
            bytes_moved: self.u64()?,
            flash_wear: self.u64()?,
            add_time: Duration::from_nanos(self.u64()?),
            mul_time: Duration::from_nanos(self.u64()?),
        })
    }

    fn finish(self) -> Result<(), MatchError> {
        if self.remaining() != 0 {
            return Err(MatchError::Frame("trailing bytes after message"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Error codec
// ---------------------------------------------------------------------------

/// `&'static str` payloads cannot round-trip a wire hop; they surface on
/// the client as this placeholder.
const REMOTE: &str = "remote";

fn put_error(out: &mut Vec<u8>, e: &MatchError) {
    use cm_bfv::DecodeError;
    let (tag, a, b, text): (u8, u64, u64, &str) = match e {
        MatchError::NoIndexGenerator => (0, 0, 0, ""),
        MatchError::NoDatabase => (1, 0, 0, ""),
        MatchError::EmptyQuery => (2, 0, 0, ""),
        MatchError::QueryTooLong { max, got } => (3, *max as u64, *got as u64, ""),
        MatchError::WindowMismatch { expected, got } => (4, *expected as u64, *got as u64, ""),
        MatchError::WorkerPanicked => (5, 0, 0, ""),
        MatchError::InvalidConfig(what) => (6, 0, 0, *what),
        MatchError::Decode(d) => {
            let code = match d {
                DecodeError::Truncated => 0,
                DecodeError::BadMagic => 1,
                DecodeError::BadHeader(_) => 2,
                DecodeError::CoefficientOverflow => 3,
            };
            (7, code, 0, "")
        }
        MatchError::WireQueryUnsupported(backend) => (8, 0, 0, backend.name()),
        MatchError::UnknownBackend(name) => (9, 0, 0, name.as_str()),
        MatchError::UnknownTenant(id) => (10, 0, 0, id.as_str()),
        MatchError::Frame(what) => (11, 0, 0, *what),
        MatchError::Transport(what) => (12, 0, 0, what.as_str()),
        MatchError::ServerBusy { max_connections } => (13, *max_connections as u64, 0, ""),
    };
    out.push(tag);
    put_u64(out, a);
    put_u64(out, b);
    // Never slice mid-codepoint: an overlong message is summarized.
    let text = if text.len() <= u16::MAX as usize {
        text
    } else {
        "error message too long for the wire"
    };
    put_str(out, text);
}

fn read_error(r: &mut Reader<'_>) -> Result<MatchError, MatchError> {
    use cm_bfv::DecodeError;
    let tag = r.u8()?;
    let a = r.u64()? as usize;
    let b = r.u64()? as usize;
    let text = r.str()?;
    Ok(match tag {
        0 => MatchError::NoIndexGenerator,
        1 => MatchError::NoDatabase,
        2 => MatchError::EmptyQuery,
        3 => MatchError::QueryTooLong { max: a, got: b },
        4 => MatchError::WindowMismatch {
            expected: a,
            got: b,
        },
        5 => MatchError::WorkerPanicked,
        6 => MatchError::InvalidConfig(REMOTE),
        7 => MatchError::Decode(match a {
            0 => DecodeError::Truncated,
            1 => DecodeError::BadMagic,
            2 => DecodeError::BadHeader(REMOTE),
            _ => DecodeError::CoefficientOverflow,
        }),
        8 => MatchError::WireQueryUnsupported(
            Backend::parse(&text).map_err(|_| MatchError::Frame("unknown backend in error"))?,
        ),
        9 => MatchError::UnknownBackend(text),
        10 => MatchError::UnknownTenant(text),
        11 => MatchError::Frame(REMOTE),
        12 => MatchError::Transport(text),
        13 => MatchError::ServerBusy { max_connections: a },
        _ => return Err(MatchError::Frame("unknown error tag")),
    })
}

// ---------------------------------------------------------------------------
// Request / Response codecs
// ---------------------------------------------------------------------------

impl Request {
    /// Serializes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(0),
            Request::ListTenants => out.push(1),
            Request::Match { tenant, query } => {
                out.push(2);
                put_str(&mut out, tenant);
                match query {
                    QueryPayload::Bits(bits) => {
                        out.push(0);
                        put_bits(&mut out, bits);
                    }
                    QueryPayload::CmWire(bytes) => {
                        out.push(1);
                        put_bytes(&mut out, bytes);
                    }
                }
            }
            Request::TenantStats { tenant } => {
                out.push(3);
                put_str(&mut out, tenant);
            }
        }
        out
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::Frame`] on truncated, oversized, or garbage
    /// bytes; never panics.
    pub fn decode(data: &[u8]) -> Result<Self, MatchError> {
        let mut r = Reader::new(data);
        let req = match r.u8()? {
            0 => Request::Ping,
            1 => Request::ListTenants,
            2 => {
                let tenant = r.tenant_id()?;
                let query = match r.u8()? {
                    0 => QueryPayload::Bits(r.bits()?),
                    1 => QueryPayload::CmWire(r.bytes()?),
                    _ => return Err(MatchError::Frame("unknown query payload tag")),
                };
                Request::Match { tenant, query }
            }
            3 => Request::TenantStats {
                tenant: r.tenant_id()?,
            },
            _ => return Err(MatchError::Frame("unknown request tag")),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong { backends } => {
                out.push(0);
                out.extend_from_slice(&(backends.len() as u16).to_le_bytes());
                for b in backends {
                    put_str(&mut out, b);
                }
            }
            Response::Tenants(tenants) => {
                out.push(1);
                out.extend_from_slice(&(tenants.len() as u16).to_le_bytes());
                for t in tenants {
                    put_str(&mut out, &t.id);
                    put_str(&mut out, &t.backend);
                }
            }
            Response::Matched {
                nonce,
                sealed_indices,
                stats,
                shard_stats,
                seal_latency,
            } => {
                out.push(2);
                put_u64(&mut out, *nonce);
                put_bytes(&mut out, sealed_indices);
                put_stats(&mut out, stats);
                out.extend_from_slice(&(shard_stats.len() as u16).to_le_bytes());
                for s in shard_stats {
                    put_stats(&mut out, s);
                }
                put_u64(&mut out, seal_latency.as_nanos() as u64);
            }
            Response::TenantStats { stats, queries } => {
                out.push(3);
                put_stats(&mut out, stats);
                put_u64(&mut out, *queries);
            }
            Response::Error(e) => {
                out.push(4);
                put_error(&mut out, e);
            }
        }
        out
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::Frame`] on truncated, oversized, or garbage
    /// bytes; never panics.
    pub fn decode(data: &[u8]) -> Result<Self, MatchError> {
        let mut r = Reader::new(data);
        let resp = match r.u8()? {
            0 => {
                let count = r.u16()? as usize;
                if count > Backend::WIRE.len() * 4 {
                    return Err(MatchError::Frame("implausible backend count"));
                }
                let mut backends = Vec::with_capacity(count);
                for _ in 0..count {
                    backends.push(r.str()?);
                }
                Response::Pong { backends }
            }
            1 => {
                let count = r.u16()? as usize;
                // Each listed tenant costs at least its two length
                // prefixes; bound the allocation by the actual payload.
                if count > r.remaining() / 4 {
                    return Err(MatchError::Frame("implausible tenant count"));
                }
                let mut tenants = Vec::with_capacity(count);
                for _ in 0..count {
                    tenants.push(TenantInfo {
                        id: r.str()?,
                        backend: r.str()?,
                    });
                }
                Response::Tenants(tenants)
            }
            2 => {
                let nonce = r.u64()?;
                let sealed_indices = r.bytes()?;
                let stats = r.stats()?;
                let count = r.u16()? as usize;
                // One serialized MatchStats is 64 bytes.
                if count > r.remaining() / 64 {
                    return Err(MatchError::Frame("implausible shard count"));
                }
                let mut shard_stats = Vec::with_capacity(count);
                for _ in 0..count {
                    shard_stats.push(r.stats()?);
                }
                let seal_latency = Duration::from_nanos(r.u64()?);
                Response::Matched {
                    nonce,
                    sealed_indices,
                    stats,
                    shard_stats,
                    seal_latency,
                }
            }
            3 => Response::TenantStats {
                stats: r.stats()?,
                queries: r.u64()?,
            },
            4 => Response::Error(read_error(&mut r)?),
            _ => return Err(MatchError::Frame("unknown response tag")),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let payload = b"the payload".to_vec();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(payload));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn lying_frame_lengths_are_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CMS1");
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(MatchError::Frame(_))
        ));
        // Bad magic.
        let mut bad = Vec::new();
        write_frame(&mut bad, b"x").unwrap();
        bad[0] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(MatchError::Frame(_))
        ));
        // Mid-frame EOF.
        let mut trunc = Vec::new();
        write_frame(&mut trunc, b"four bytes short").unwrap();
        trunc.truncate(trunc.len() - 4);
        assert!(matches!(
            read_frame(&mut &trunc[..]),
            Err(MatchError::Transport(_))
        ));
    }

    #[test]
    fn requests_round_trip() {
        let samples = [
            Request::Ping,
            Request::ListTenants,
            Request::Match {
                tenant: "alice".into(),
                query: QueryPayload::Bits(BitString::from_ascii("needle")),
            },
            Request::Match {
                tenant: "bob".into(),
                query: QueryPayload::CmWire(vec![1, 2, 3, 255]),
            },
            Request::TenantStats {
                tenant: "carol".into(),
            },
        ];
        for req in samples {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let stats = MatchStats {
            hom_adds: 10,
            bytes_moved: 4096,
            flash_wear: 0,
            add_time: Duration::from_micros(123),
            ..MatchStats::default()
        };
        let samples = [
            Response::Pong {
                backends: Backend::WIRE.iter().map(|b| b.name().to_string()).collect(),
            },
            Response::Tenants(vec![TenantInfo {
                id: "alice".into(),
                backend: "ciphermatch".into(),
            }]),
            Response::Matched {
                nonce: u64::MAX,
                sealed_indices: vec![9; 40],
                stats,
                shard_stats: vec![stats, MatchStats::default()],
                seal_latency: Duration::from_nanos(126),
            },
            Response::TenantStats { stats, queries: 3 },
            Response::Error(MatchError::QueryTooLong { max: 8, got: 99 }),
            Response::Error(MatchError::UnknownTenant("mallory".into())),
            Response::Error(MatchError::ServerBusy {
                max_connections: 64,
            }),
        ];
        for resp in samples {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn message_decoders_reject_trailing_garbage() {
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
        let mut bytes = Response::Pong { backends: vec![] }.encode();
        bytes.push(7);
        assert!(Response::decode(&bytes).is_err());
    }
}
