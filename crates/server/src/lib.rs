#![warn(missing_docs)]
// Serving paths answer with typed `MatchError`s, never a panic: the
// `cm_analyze` `no-panic` lint enforces this lexically, and clippy
// cross-checks it here (test code is exempt via clippy.toml; CI's
// `static-analysis` job promotes these to errors with `-D warnings`).
#![warn(clippy::unwrap_used, clippy::expect_used)]

//! # cm-server
//!
//! The match-serving subsystem: one process answering encrypted
//! string-matching queries for many key owners — CM-SW sharded across
//! worker threads on the host, CM-IFP inside the (simulated) SSD — which
//! is the deployment the paper's Figure 6 sketches and the ROADMAP's
//! production north star asks for.
//!
//! Every concurrent layer runs on the shared [`cm_core::exec`] work-pool
//! runtime — no per-layer threading schemes. The layers, bottom up:
//!
//! * [`ShardPlan`] / [`ShardedDatabase`] — splits one encrypted database
//!   into [`std::sync::Arc`]-shared polynomial shards with a shard→global
//!   index remap (overlap tails make boundary-straddling windows exact);
//! * [`ShardExecutor`] — a [`cm_core::exec::WorkerPool`] with one
//!   long-lived worker per shard; a search submits one job per shard and
//!   a [`SearchHandle`] gathers the per-shard [`ShardOutcome`]s;
//! * [`ShardedCmMatcher`] — CM-SW over the executor, implementing
//!   [`cm_core::ErasedMatcher`] so sharded serving drops into any
//!   registry, with per-shard [`cm_core::MatchStats`] that sum to the
//!   matcher total; clones share the executor, so a tenant pool of K
//!   clones costs K key copies, not K×shards threads;
//! * [`IfpMatcher`] — the paper's in-flash engine
//!   ([`cm_ssd::CmIfpServer`]) behind [`cm_core::SecureMatcher`],
//!   registered *from this crate* so the `cm_core`↔`cm_ssd` dependency
//!   arrow stays inverted; `stats().flash_wear` stays zero because
//!   `bop_add` never programs or erases;
//! * [`TenantRegistry`] / [`Tenant`] — tenant id → a
//!   [`cm_core::MatcherPool`] of K `boxed_clone`'d matchers + key
//!   material ([`cm_ssd::SecureIndexChannel`]), one key domain per
//!   tenant, many tenants per process; up to K queries per tenant run
//!   concurrently, each on an exclusively checked-out matcher. The
//!   registry owns the **remote database lifecycle**: serialized
//!   encrypted databases are uploaded chunked over the wire
//!   ([`Request::LoadDatabase`], authorized by proof-of-possession of
//!   the channel key), accounted byte-exactly against a host memory
//!   budget ([`ServerConfig::memory_budget`]), demoted to a cold tier in
//!   LRU order when the budget fills (pinned tenants exempt),
//!   re-materialized on demand through the shared exec runtime, and
//!   retired with [`Request::EvictDatabase`];
//! * [`wire`] — the length-prefixed binary protocol (encrypted queries
//!   in, AES-sealed index lists out), hardened against truncated,
//!   oversized, and garbage frames;
//! * [`MatchServer`] / [`MatchClient`] — a readiness-driven
//!   `cm_reactor` front-end that admits *frames, not connections*: one
//!   reactor thread owns every socket (thousands of cheap idle
//!   connections under [`ServerConfig::max_open_sockets`]) and submits
//!   each complete request frame to a bounded frame pool
//!   ([`ServerConfig::max_inflight_frames`]; typed
//!   [`cm_core::MatchError::ServerBusy`] rejection past either cap,
//!   drain-then-join shutdown) — plus the blocking client, with
//!   [`QueryKit`] carrying the public material a remote key owner needs
//!   to encrypt queries.
//!
//! ## Example
//!
//! ```
//! use cm_core::{Backend, BitString, MatcherConfig};
//! use cm_server::{MatchClient, MatchServer, ShardedCmMatcher, TenantAccess, TenantRegistry};
//!
//! // Provision two tenants with different key material.
//! let mut registry = TenantRegistry::new();
//! let alice_db = BitString::from_ascii("alice's needle lives here");
//! let alice = ShardedCmMatcher::new(cm_bfv::BfvParams::insecure_test_add(), 2, 1).unwrap();
//! registry.register("alice", Box::new(alice), &[0xA1; 32], &alice_db).unwrap();
//! let bob = MatcherConfig::new(Backend::Plain).build().unwrap();
//! let bob_db = BitString::from_ascii("bob searches plaintext");
//! registry.register("bob", bob, &[0xB0; 32], &bob_db).unwrap();
//!
//! // Serve on an ephemeral port; query over TCP.
//! let server = MatchServer::new(registry).spawn("127.0.0.1:0").unwrap();
//! let mut client = MatchClient::connect(server.addr()).unwrap();
//! let reply = client
//!     .search_bits(&TenantAccess::new("alice", &[0xA1; 32]), &BitString::from_ascii("needle"))
//!     .unwrap();
//! assert_eq!(reply.indices, alice_db.find_all(&BitString::from_ascii("needle")));
//! server.shutdown();
//! ```

pub mod client;
pub mod executor;
pub mod ifp;
pub mod kit;
pub mod secrecy;
pub mod server;
pub mod shard;
pub mod tenant;
pub mod wire;

mod telemetry;

pub use client::{MatchClient, MatchReply, TenantAccess};
pub use executor::{SearchHandle, ShardExecutor, ShardOutcome};
pub use ifp::{IfpDatabase, IfpMatcher};
pub use kit::QueryKit;
pub use secrecy::{keys_match, tags_match};
pub use server::{MatchServer, RunningServer, ServerConfig};
pub use shard::{ShardPlan, ShardRange, ShardedDatabase};
pub use sharded::ShardedCmMatcher;
pub use tenant::{MatchedReply, Tenant, TenantRegistry, DEFAULT_TENANT_WORKERS};
pub use wire::{
    DatabaseInfoReply, EvictAuth, FrameBuffer, QueryPayload, Request, Response, TenantInfo,
    TenantSpec, UploadAuth, UploadPhase, MAX_DATABASE_BYTES, MAX_FRAME_BYTES, MAX_TENANT_WORKERS,
};

mod sharded;
