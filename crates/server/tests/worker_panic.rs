//! Regression: a panic inside a tenant's matcher worker must cross the
//! wire as a typed [`MatchError::WorkerPanicked`] error frame — it must
//! not unwind the connection worker, poison the tenant's matcher pool,
//! or take the server down. The serving path is lint-enforced
//! panic-free (`cm_analyze`'s `no-panic` rule), so the only panics left
//! are the ones a matcher backend itself raises; this test injects one.

use cm_core::{Backend, BitString, ErasedMatcher, MatchError, MatchStats};
use cm_server::{MatchClient, MatchServer, TenantAccess, TenantRegistry};

const KEY: [u8; 32] = [0x42; 32];

/// The query pattern that detonates [`PanicMatcher::find_all`].
fn trigger() -> BitString {
    BitString::from_ascii("boom")
}

/// A plaintext matcher that panics on one specific query and behaves
/// normally otherwise, so the same tenant can prove the pool still
/// serves after a worker unwound.
#[derive(Clone)]
struct PanicMatcher {
    db: Option<BitString>,
}

impl ErasedMatcher for PanicMatcher {
    fn backend(&self) -> Backend {
        Backend::Plain
    }

    fn load_database(&mut self, data: &BitString) -> Result<(), MatchError> {
        self.db = Some(data.clone());
        Ok(())
    }

    fn has_database(&self) -> bool {
        self.db.is_some()
    }

    fn database_bytes(&self) -> Option<u64> {
        self.db.as_ref().map(|d| d.len().div_ceil(8) as u64)
    }

    fn find_all(&mut self, query: &BitString) -> Result<Vec<usize>, MatchError> {
        let db = self.db.as_ref().ok_or(MatchError::NoDatabase)?;
        if *query == trigger() {
            panic!("injected matcher fault");
        }
        Ok(db.find_all(query))
    }

    fn stats(&self) -> MatchStats {
        MatchStats::default()
    }

    fn reset_stats(&mut self) {}

    fn reseed(&mut self, _seed: u64) {}

    fn boxed_clone(&self) -> Box<dyn ErasedMatcher> {
        Box::new(self.clone())
    }
}

#[test]
fn a_panicking_worker_answers_with_a_wire_error_not_a_dead_connection() {
    let database = BitString::from_ascii("the quick brown fox jumps over the lazy dog");
    let mut registry = TenantRegistry::new();
    registry
        .register_with_workers(
            "victim",
            Box::new(PanicMatcher { db: None }),
            2,
            &KEY,
            &database,
        )
        .unwrap();
    let server = MatchServer::new(registry).spawn("127.0.0.1:0").unwrap();
    let addr = server.addr();

    let mut client = MatchClient::connect(addr).unwrap();
    let access = TenantAccess::new("victim", &KEY);

    // The injected panic arrives as the typed error, not a hung or
    // reset connection.
    let err = client.search_bits(&access, &trigger()).unwrap_err();
    assert_eq!(err, MatchError::WorkerPanicked);

    // The SAME connection serves the next query: the connection worker
    // caught the unwind and answered, it did not die with the matcher.
    let pattern = BitString::from_ascii("quick");
    let reply = client.search_bits(&access, &pattern).unwrap();
    assert_eq!(reply.indices, database.find_all(&pattern));

    // The checked-out matcher went back to the pool after the unwind: a
    // second detonation still reports the typed error (nothing leaked),
    // and the pool still has workers for good queries after that.
    let err = client.search_bits(&access, &trigger()).unwrap_err();
    assert_eq!(err, MatchError::WorkerPanicked);
    let reply = client.search_bits(&access, &pattern).unwrap();
    assert_eq!(reply.indices, database.find_all(&pattern));

    // Fresh connections are accepted and the registry still answers
    // control-plane requests — the server itself never noticed.
    let mut second = MatchClient::connect(addr).unwrap();
    let tenants = second.tenants().unwrap();
    assert_eq!(tenants.len(), 1);
    assert_eq!(tenants[0].id, "victim");
    let (_stats, queries) = second.tenant_stats("victim").unwrap();
    assert_eq!(queries, 2, "only the successful queries are recorded");

    drop(client);
    drop(second);
    server.shutdown();
}
