//! Property tests for the wire protocol: round-trips of query/response
//! frames, and the hardening contract — truncated, oversized-length, and
//! garbage frames must return a typed `MatchError`, never panic
//! (extending the `EncryptedDatabase::decode` hardening to the whole wire
//! surface).

use std::time::Duration;

use cm_core::{Backend, BitString, MatchError, MatchStats};
use cm_server::wire::{
    auth_tag, content_digest, read_frame, write_frame, DatabaseInfoReply, EvictAuth, QueryPayload,
    Request, Response, TenantInfo, TenantSpec, UploadAuth, UploadPhase, MAX_DATABASE_BYTES,
    MAX_TENANT_WORKERS, MAX_UPLOAD_CHUNKS, OP_EVICT, OP_UPLOAD,
};
use proptest::prelude::*;

fn bits_from(seed: u64, len: usize) -> BitString {
    let mut bits = Vec::with_capacity(len);
    let mut state = seed | 1;
    for _ in 0..len {
        state = state.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        bits.push(state & 1 == 1);
    }
    BitString::from_bits(&bits)
}

fn stats_from(seed: u64) -> MatchStats {
    let mut state = seed | 3;
    let mut next = || {
        state = state.wrapping_mul(0xD134_2543_DE82_EF95).wrapping_add(seed);
        state >> 16
    };
    MatchStats {
        hom_adds: next(),
        hom_muls: next(),
        rotations: next(),
        bootstraps: next(),
        bytes_moved: next(),
        flash_wear: next(),
        add_time: Duration::from_nanos(next() & 0xFFFF_FFFF),
        mul_time: Duration::from_nanos(next() & 0xFFFF_FFFF),
    }
}

fn tenant_name(seed: u64, len: usize) -> String {
    (0..len.max(1))
        .map(|i| char::from(b'a' + ((seed >> (i % 8)) % 26) as u8))
        .collect()
}

proptest! {
    #[test]
    fn match_requests_round_trip(
        seed in 0u64..u64::MAX,
        name_len in 1usize..40,
        bit_len in 0usize..600,
        wire in proptest::arbitrary::any::<bool>(),
    ) {
        let query = if wire {
            QueryPayload::CmWire(bits_from(seed, bit_len).bits().iter().map(|&b| b as u8).collect())
        } else {
            QueryPayload::Bits(bits_from(seed, bit_len))
        };
        let req = Request::Match { tenant: tenant_name(seed, name_len), query };
        let encoded = req.encode();
        prop_assert_eq!(Request::decode(&encoded).unwrap(), req);
    }

    #[test]
    fn matched_responses_round_trip(
        seed in 0u64..u64::MAX,
        sealed_len in 0usize..300,
        shards in 0usize..9,
        latency in 0u64..1_000_000_000,
    ) {
        let resp = Response::Matched {
            nonce: seed,
            sealed_indices: (0..sealed_len).map(|i| (seed as usize + i) as u8).collect(),
            stats: stats_from(seed),
            shard_stats: (0..shards).map(|i| stats_from(seed ^ i as u64)).collect(),
            seal_latency: Duration::from_nanos(latency),
        };
        let encoded = resp.encode();
        prop_assert_eq!(Response::decode(&encoded).unwrap(), resp);
    }

    #[test]
    fn truncated_messages_error_never_panic(
        seed in 0u64..u64::MAX,
        cut_ppm in 0u32..1_000_000,
    ) {
        let req = Request::Match {
            tenant: tenant_name(seed, 12),
            query: QueryPayload::Bits(bits_from(seed, 96)),
        };
        let encoded = req.encode();
        let cut = (encoded.len() * cut_ppm as usize) / 1_000_000;
        prop_assume!(cut < encoded.len());
        prop_assert!(Request::decode(&encoded[..cut]).is_err());
        let resp = Response::Matched {
            nonce: seed,
            sealed_indices: vec![7; 24],
            stats: stats_from(seed),
            shard_stats: vec![stats_from(seed); 3],
            seal_latency: Duration::from_nanos(1),
        };
        let rencoded = resp.encode();
        let rcut = (rencoded.len() * cut_ppm as usize) / 1_000_000;
        prop_assume!(rcut < rencoded.len());
        prop_assert!(Response::decode(&rencoded[..rcut]).is_err());
    }

    #[test]
    fn bit_flipped_messages_never_panic(
        seed in 0u64..u64::MAX,
        flip_at in 0usize..200,
        flip_bits in 1u8..=255,
    ) {
        let req = Request::Match {
            tenant: tenant_name(seed, 8),
            query: QueryPayload::CmWire((0..64u8).collect()),
        };
        let mut encoded = req.encode();
        let idx = flip_at % encoded.len();
        encoded[idx] ^= flip_bits;
        // Decoding may succeed (payload-byte flips) or fail — but a
        // typed result either way.
        let _ = Request::decode(&encoded);
        let resp = Response::Tenants(vec![TenantInfo {
            id: tenant_name(seed, 6),
            backend: Backend::Ciphermatch.name().to_string(),
        }]);
        let mut rencoded = resp.encode();
        let ridx = flip_at % rencoded.len();
        rencoded[ridx] ^= flip_bits;
        let _ = Response::decode(&rencoded);
    }

    #[test]
    fn garbage_frames_and_messages_never_panic(
        seed in 0u64..u64::MAX,
        len in 0usize..400,
    ) {
        let garbage: Vec<u8> = (0..len)
            .map(|i| (seed.rotate_left((i % 61) as u32) as u8) ^ (i as u8))
            .collect();
        let _ = Request::decode(&garbage);
        let _ = Response::decode(&garbage);
        let _ = read_frame(&mut &garbage[..]);
    }

    #[test]
    fn frame_layer_round_trips_and_rejects_lies(
        seed in 0u64..u64::MAX,
        len in 0usize..2_000,
        lie in 0u32..u32::MAX,
    ) {
        let payload: Vec<u8> = (0..len).map(|i| (seed as usize + i * 31) as u8).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        prop_assert_eq!(read_frame(&mut &buf[..]).unwrap(), Some(payload.clone()));

        // A lying length prefix must be rejected (oversized) or read as a
        // short/torn frame (typed transport error) — never trusted into a
        // huge allocation that only later fails.
        buf[4..8].copy_from_slice(&lie.to_le_bytes());
        match read_frame(&mut &buf[..]) {
            Ok(Some(p)) => prop_assert!(p.len() as u64 == lie as u64),
            Ok(None) => prop_assert!(false, "header present, not a clean EOF"),
            Err(MatchError::Frame(_)) | Err(MatchError::Transport(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }
}

fn key_from(seed: u64) -> [u8; 32] {
    let mut key = [0u8; 32];
    for (i, b) in key.iter_mut().enumerate() {
        *b = (seed.rotate_left((i % 59) as u32) as u8) ^ (i as u8).wrapping_mul(7);
    }
    key
}

fn spec_from(seed: u64) -> TenantSpec {
    let backends = [
        "ciphermatch",
        "yasuda",
        "batched",
        "boolean",
        "plain",
        "ifp",
    ];
    TenantSpec {
        backend: backends[(seed % 6) as usize].to_string(),
        seed,
        window: (seed % 1024) as u32 + 1,
        threads: (seed % 8) as u32 + 1,
        insecure: seed.is_multiple_of(2),
        workers: (seed % u64::from(MAX_TENANT_WORKERS)) as u32 + 1,
    }
}

proptest! {
    #[test]
    fn lifecycle_requests_round_trip(
        seed in 0u64..u64::MAX,
        name_len in 1usize..40,
        total in 0u64..MAX_DATABASE_BYTES,
        chunks in 1u32..MAX_UPLOAD_CHUNKS,
        index in 0u32..u32::MAX,
        data_len in 0usize..500,
    ) {
        let tenant = tenant_name(seed, name_len);
        let key = key_from(seed);
        let samples = [
            Request::LoadDatabase {
                tenant: tenant.clone(),
                phase: UploadPhase::Begin {
                    auth: UploadAuth {
                        nonce: seed,
                        channel_key: key,
                        content: content_digest(&key, &seed.to_le_bytes()),
                        tag: auth_tag(&key, OP_UPLOAD, &tenant, total, seed, b"spec"),
                    },
                    spec: spec_from(seed),
                    total_bytes: total,
                    chunk_count: chunks,
                },
            },
            Request::LoadDatabase {
                tenant: tenant.clone(),
                phase: UploadPhase::Chunk {
                    index,
                    data: (0..data_len).map(|i| (seed as usize + i * 13) as u8).collect(),
                },
            },
            Request::LoadDatabase { tenant: tenant.clone(), phase: UploadPhase::Commit },
            Request::EvictDatabase {
                tenant: tenant.clone(),
                auth: EvictAuth { nonce: seed, tag: auth_tag(&key, OP_EVICT, &tenant, 0, seed, &[]) },
            },
            Request::DatabaseInfo { tenant },
        ];
        for req in samples {
            let encoded = req.encode();
            prop_assert_eq!(Request::decode(&encoded).unwrap(), req);
        }
    }

    #[test]
    fn lifecycle_responses_round_trip(
        seed in 0u64..u64::MAX,
        demoted_count in 0usize..5,
        resident in proptest::arbitrary::any::<bool>(),
        pinned in proptest::arbitrary::any::<bool>(),
    ) {
        let samples = [
            Response::UploadProgress { received: seed >> 1, expected: seed },
            Response::DatabaseLoaded {
                bytes: seed,
                demoted: (0..demoted_count).map(|i| tenant_name(seed ^ i as u64, 8)).collect(),
            },
            Response::Evicted { freed_bytes: seed },
            Response::DatabaseInfo(DatabaseInfoReply {
                backend: spec_from(seed).backend,
                resident,
                pinned,
                bytes: seed,
                workers: (seed % 64) as u32 + 1,
                queries: seed >> 3,
                tier: if resident { "dram".into() } else { "flash".into() },
            }),
            Response::Error(MatchError::QuotaExceeded { budget: seed, required: seed >> 1 }),
        ];
        for resp in samples {
            let encoded = resp.encode();
            prop_assert_eq!(Response::decode(&encoded).unwrap(), resp);
        }
    }

    /// Truncating any lifecycle message at any point must produce a typed
    /// error (the round-trip tests above prove the full buffer decodes),
    /// and flipping any byte must never panic or over-allocate.
    #[test]
    fn truncated_and_flipped_lifecycle_messages_never_panic(
        seed in 0u64..u64::MAX,
        cut_ppm in 0u32..1_000_000,
        flip_bits in 1u8..=255,
    ) {
        let tenant = tenant_name(seed, 10);
        let key = key_from(seed);
        let requests = [
            Request::LoadDatabase {
                tenant: tenant.clone(),
                phase: UploadPhase::Begin {
                    auth: UploadAuth {
                        nonce: seed,
                        channel_key: key,
                        content: content_digest(&key, b"payload"),
                        tag: auth_tag(&key, OP_UPLOAD, &tenant, 4096, seed, b"spec"),
                    },
                    spec: spec_from(seed),
                    total_bytes: 4096,
                    chunk_count: 4,
                },
            },
            Request::LoadDatabase {
                tenant: tenant.clone(),
                phase: UploadPhase::Chunk { index: 1, data: vec![0xAB; 64] },
            },
            Request::EvictDatabase {
                tenant,
                auth: EvictAuth { nonce: seed, tag: auth_tag(&key, OP_EVICT, "t", 0, seed, &[]) },
            },
        ];
        for req in requests {
            let encoded = req.encode();
            let cut = (encoded.len() * cut_ppm as usize) / 1_000_000;
            if cut < encoded.len() {
                prop_assert!(Request::decode(&encoded[..cut]).is_err());
            }
            let mut flipped = encoded.clone();
            let idx = (seed as usize) % flipped.len();
            flipped[idx] ^= flip_bits;
            let _ = Request::decode(&flipped);
        }
        let responses = [
            Response::DatabaseLoaded {
                bytes: seed,
                demoted: vec![tenant_name(seed, 6), tenant_name(seed ^ 1, 9)],
            },
            Response::DatabaseInfo(DatabaseInfoReply {
                backend: "ciphermatch".into(),
                resident: true,
                pinned: false,
                bytes: seed,
                workers: 4,
                queries: 11,
                tier: "dram".into(),
            }),
        ];
        for resp in responses {
            let encoded = resp.encode();
            let cut = (encoded.len() * cut_ppm as usize) / 1_000_000;
            if cut < encoded.len() {
                prop_assert!(Response::decode(&encoded[..cut]).is_err());
            }
            let mut flipped = encoded.clone();
            let idx = (seed as usize) % flipped.len();
            flipped[idx] ^= flip_bits;
            let _ = Response::decode(&flipped);
        }
    }

    /// A `Begin` lying about its declared size (past the database cap) or
    /// chunk shape must be rejected at decode time — before any upload
    /// buffer could exist, so a hostile header can never drive an
    /// allocation.
    #[test]
    fn oversized_upload_declarations_are_typed_errors(
        seed in 0u64..u64::MAX,
        excess in 1u64..(1 << 30),
        bad_chunks in proptest::arbitrary::any::<bool>(),
    ) {
        let tenant = tenant_name(seed, 8);
        let key = key_from(seed);
        let (total_bytes, chunk_count) = if bad_chunks {
            (seed % MAX_DATABASE_BYTES, MAX_UPLOAD_CHUNKS + (excess % u64::from(u32::MAX - MAX_UPLOAD_CHUNKS)) as u32 + 1)
        } else {
            (MAX_DATABASE_BYTES + excess, 1)
        };
        let req = Request::LoadDatabase {
            tenant: tenant.clone(),
            phase: UploadPhase::Begin {
                auth: UploadAuth {
                    nonce: seed,
                    channel_key: key,
                    content: content_digest(&key, b"payload"),
                    tag: auth_tag(&key, OP_UPLOAD, &tenant, total_bytes, seed, &[]),
                },
                spec: spec_from(seed),
                total_bytes,
                chunk_count,
            },
        };
        prop_assert!(matches!(Request::decode(&req.encode()), Err(MatchError::Frame(_))));
    }
}

/// A Match request whose inner CIPHERMATCH wire bytes are themselves a
/// truncated real encrypted query must fail *inside the matcher* as a
/// typed decode error — exercised end to end in the server tests; here we
/// pin that the wire layer hands the payload through byte-exact.
#[test]
fn cm_wire_payloads_pass_through_byte_exact() {
    let inner: Vec<u8> = (0..=255u8).collect();
    let req = Request::Match {
        tenant: "alice".into(),
        query: QueryPayload::CmWire(inner.clone()),
    };
    match Request::decode(&req.encode()).unwrap() {
        Request::Match {
            query: QueryPayload::CmWire(got),
            ..
        } => assert_eq!(got, inner),
        other => panic!("wrong decode: {other:?}"),
    }
}
